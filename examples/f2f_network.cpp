// Runs one profile's replica group as a *live* friend-to-friend network:
// nodes churn along their daily schedules in the discrete-event simulator,
// wall posts become profile updates with (author, seq) identities, and the
// eventual-consistency layer merges replica states at every rendezvous.
// Prints a per-update delivery timeline and compares realized propagation
// delays against the analytic worst case.
#include <cstdio>

#include "core/profile.hpp"
#include "metrics/delay.hpp"
#include "net/replica_sim.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main() {
  using namespace dosn;
  using interval::DaySchedule;
  using interval::IntervalSet;
  constexpr interval::Seconds kH = 3600;

  auto window = [](interval::Seconds a, interval::Seconds b) {
    return DaySchedule(IntervalSet::single(a * kH, b * kH));
  };

  // Owner + three friend replicas with staggered daily windows.
  const std::vector<DaySchedule> nodes{
      window(7, 10),   // owner: mornings
      window(9, 13),   // replica 1
      window(12, 17),  // replica 2
      window(16, 22),  // replica 3: evenings
  };
  const char* names[] = {"owner", "replica1", "replica2", "replica3"};

  // Posts on the profile over four days (absolute seconds, origin node).
  const std::vector<net::UpdateSpec> updates{
      {8 * kH, 0},                           // owner posts Monday morning
      {12 * kH + 1800, 2},                   // friend writes via replica 2
      {interval::kDaySeconds + 21 * kH, 3},  // Tuesday evening
      {2 * interval::kDaySeconds + 9 * kH + 1800, 1},
  };

  net::ReplicaSimConfig cfg;
  cfg.horizon_days = 6;
  const auto report = net::simulate_replica_group(nodes, updates, cfg);

  std::printf("F2F replica group: 4 nodes, %zu updates, %llu events\n\n",
              updates.size(),
              static_cast<unsigned long long>(report.events));
  for (std::size_t u = 0; u < report.deliveries.size(); ++u) {
    const auto& d = report.deliveries[u];
    std::printf("update %zu (origin %s at t=%s):\n", u, names[d.origin],
                util::format_duration_s(static_cast<double>(d.creation))
                    .c_str());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i == d.origin) continue;
      if (d.arrival[i])
        std::printf("  -> %-9s after %s\n", names[i],
                    util::format_duration_s(
                        static_cast<double>(*d.arrival[i] - d.creation))
                        .c_str());
      else
        std::printf("  -> %-9s NOT DELIVERED in horizon\n", names[i]);
    }
  }

  const auto analytic = metrics::update_propagation_delay(
      nodes[0], std::span<const DaySchedule>(nodes).subspan(1),
      placement::Connectivity::kConRep);
  std::printf(
      "\nrealized worst delay: %.1f h | analytic worst case: %.1f h "
      "(observed: %.1f h)\n",
      static_cast<double>(report.max_delay) / 3600.0,
      analytic.actual_hours(), analytic.observed_hours());
  std::printf("group availability (any node online): %.3f\n\n",
              report.empirical_availability);

  // The same exchange at the data layer: profiles converge by set union.
  core::Profile at_owner(0), at_replica3(0);
  at_owner.append(0, 8 * kH, "good morning wall");
  at_replica3.append(3, 21 * kH, "good evening wall");
  at_owner.merge(at_replica3);
  at_replica3.merge(at_owner);
  std::printf("profile replicas converged: %s, %zu posts, version %s\n",
              at_owner.posts() == at_replica3.posts() ? "yes" : "NO",
              at_owner.size(), at_owner.version().to_string().c_str());
  return 0;
}
