// study_tool: run any sweep of the study from the command line.
//
//   study_tool sweep   [options]   replication-degree sweep (Figs 3-7,10,11)
//   study_tool session [options]   session-length sweep (Fig 8)
//   study_tool degree  [options]   user-degree sweep (Fig 9)
//
// Options (all optional):
//   --dataset facebook|twitter      (default facebook)
//   --edges <path> --activities <path>  load a real dataset from disk
//                                   instead of generating (use with
//                                   --kind undirected|directed and
//                                   --min-acts for the paper's filter)
//   --scale <f>                     user-count scale (default 0.1)
//   --seed <n>                      RNG seed (default 1)
//   --model sporadic|fixed|random|enriched   (default sporadic)
//   --hours <f>                     fixed-length window hours (default 8)
//   --session <secs>                sporadic session length (default 1200)
//   --connectivity conrep|unconrep  (default conrep)
//   --policies a,b,...              of maxav,mostactive,random,coregroup,
//                                   hybrid (default the paper's three)
//   --k <n>                         max replication degree (default 10)
//   --reps <n>                      repetitions (default 3)
//   --csv <path>                    write the availability series as CSV
#include <cstdio>
#include <map>
#include <string>

#include "graph/degree_stats.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "trace/parsers.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace {

using namespace dosn;

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (!util::starts_with(key, "--"))
      throw ConfigError("expected --flag, got '" + key + "'");
    key = key.substr(2);
    if (i + 1 >= argc) throw ConfigError("--" + key + " needs a value");
    flags[key] = argv[++i];
  }
  return flags;
}

onlinetime::ModelKind parse_model(const std::string& s) {
  if (s == "sporadic") return onlinetime::ModelKind::kSporadic;
  if (s == "fixed") return onlinetime::ModelKind::kFixedLength;
  if (s == "random") return onlinetime::ModelKind::kRandomLength;
  if (s == "enriched") return onlinetime::ModelKind::kEnrichedSporadic;
  throw ConfigError("unknown model '" + s + "'");
}

placement::PolicyKind parse_policy(std::string_view s) {
  if (s == "maxav") return placement::PolicyKind::kMaxAv;
  if (s == "mostactive") return placement::PolicyKind::kMostActive;
  if (s == "random") return placement::PolicyKind::kRandom;
  if (s == "coregroup") return placement::PolicyKind::kCoreGroup;
  if (s == "hybrid") return placement::PolicyKind::kHybrid;
  throw ConfigError("unknown policy '" + std::string(s) + "'");
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int run(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode != "sweep" && mode != "session" && mode != "degree") {
    std::printf(
        "usage: study_tool <sweep|session|degree> [--dataset facebook|"
        "twitter] [--scale f] [--seed n] [--model sporadic|fixed|random|"
        "enriched] [--hours f] [--session secs] [--connectivity conrep|"
        "unconrep] [--policies list] [--k n] [--reps n] [--csv path]\n");
    return mode.empty() ? 0 : 1;
  }
  const auto flags = parse_flags(argc, argv, 2);

  // Dataset: from disk (the paper's real-trace path) or synthetic.
  const auto seed = static_cast<std::uint64_t>(
      util::parse_i64(flag_or(flags, "seed", "1")));
  trace::Dataset dataset;
  if (auto it = flags.find("edges"); it != flags.end()) {
    const auto acts = flags.find("activities");
    if (acts == flags.end())
      throw ConfigError("--edges requires --activities");
    const auto kind = flag_or(flags, "kind", "undirected") == "directed"
                          ? graph::GraphKind::kDirected
                          : graph::GraphKind::kUndirected;
    auto raw = trace::load_dataset("disk", it->second, acts->second, kind);
    const auto min_acts = static_cast<std::size_t>(
        util::parse_i64(flag_or(flags, "min-acts", "10")));
    dataset = trace::filter_isolated(
        trace::filter_min_activity(raw, min_acts));
  } else {
    const std::string dataset_name = flag_or(flags, "dataset", "facebook");
    auto preset = dataset_name == "twitter" ? synth::twitter_preset()
                                            : synth::facebook_preset();
    preset = synth::scaled(preset,
                           util::parse_f64(flag_or(flags, "scale", "0.1")));
    util::Rng rng(seed);
    dataset = synth::generate_study_dataset(preset, rng);
  }
  const auto stats = trace::stats_of(dataset);
  std::printf("%s: %zu users, avg degree %.1f, %zu activities\n",
              dataset.name.c_str(), stats.users, stats.average_degree,
              stats.activities);

  // Model.
  const auto model_kind = parse_model(flag_or(flags, "model", "sporadic"));
  onlinetime::ModelParams model_params;
  model_params.window_hours =
      util::parse_f64(flag_or(flags, "hours", "8"));
  model_params.session_length =
      util::parse_i64(flag_or(flags, "session", "1200"));

  // Connectivity and policies.
  const auto connectivity =
      flag_or(flags, "connectivity", "conrep") == "unconrep"
          ? placement::Connectivity::kUnconRep
          : placement::Connectivity::kConRep;
  sim::Study::Options opts;
  if (auto it = flags.find("policies"); it != flags.end()) {
    opts.policies.clear();
    for (const auto token : util::split(it->second, ','))
      opts.policies.push_back(parse_policy(util::trim(token)));
  }
  opts.repetitions = static_cast<std::size_t>(
      util::parse_i64(flag_or(flags, "reps", "3")));
  const auto k = static_cast<std::size_t>(
      util::parse_i64(flag_or(flags, "k", "10")));
  opts.cohort_degree = graph::most_populated_degree(dataset.graph, 5, 15);
  opts.k_max = std::min(k, opts.cohort_degree);
  std::printf("cohort: degree %zu (%zu users)\n\n", opts.cohort_degree,
              graph::users_with_degree(dataset.graph, opts.cohort_degree)
                  .size());

  sim::Study study(dataset, seed);
  sim::SweepResult sweep;
  if (mode == "sweep") {
    sweep = study.replication_sweep(model_kind, model_params, connectivity,
                                    opts);
  } else if (mode == "session") {
    const std::vector<interval::Seconds> lengths{100,   300,   1000, 3000,
                                                 10000, 30000, 100000};
    sweep = study.session_length_sweep(lengths, std::min<std::size_t>(k, 3),
                                       connectivity, opts);
  } else {
    sweep = study.user_degree_sweep(10, model_kind, model_params,
                                    connectivity, opts);
  }

  for (const auto metric :
       {sim::Metric::kAvailability, sim::Metric::kAodTime,
        sim::Metric::kDelayActualH}) {
    const auto series = sweep.series(metric);
    util::ChartOptions copts;
    copts.title = sim::to_string(metric) + " [" + sweep.model_name + ", " +
                  sweep.connectivity_name + "]";
    copts.x_label = sweep.x_label;
    copts.y_label = sim::to_string(metric);
    copts.log_x = mode == "session";
    if (metric != sim::Metric::kDelayActualH) {
      copts.y_min = 0.0;
      copts.y_max = 1.0;
    }
    std::fputs(util::render_chart(series, copts).c_str(), stdout);
    std::printf("\n");
  }

  if (auto it = flags.find("csv"); it != flags.end()) {
    util::write_series_csv(it->second, sweep.x_label,
                           sweep.series(sim::Metric::kAvailability));
    std::printf("wrote %s\n", it->second.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
