// Dataset tool: generate synthetic stand-ins, inspect any dataset on disk,
// and run the paper's filtering pipeline — the entry point for users who
// hold the real New Orleans / Twitter traces.
//
//   dataset_tool generate <facebook|twitter> <prefix> [scale] [seed]
//   dataset_tool inspect <edges> <activities> <undirected|directed>
//   dataset_tool filter <edges> <activities> <undirected|directed>
//                <min-activities> <out-prefix>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/degree_stats.hpp"
#include "synth/presets.hpp"
#include "trace/parsers.hpp"
#include "trace/statistics.hpp"

namespace {

using namespace dosn;

void print_stats(const trace::Dataset& d) {
  const auto s = trace::stats_of(d);
  std::printf("dataset '%s' (%s)\n", d.name.c_str(),
              d.graph.kind() == graph::GraphKind::kUndirected
                  ? "undirected friendships"
                  : "directed follows");
  std::printf("  users:       %zu\n", s.users);
  std::printf("  edges:       %zu\n", s.edges);
  std::printf("  activities:  %zu\n", s.activities);
  std::printf("  avg degree:  %.2f (contacts view)\n", s.average_degree);
  std::printf("  avg acts:    %.2f per user\n", s.average_activities);
  if (!d.trace.empty())
    std::printf("  time span:   %lld .. %lld (%.1f days)\n",
                static_cast<long long>(d.trace.min_timestamp()),
                static_cast<long long>(d.trace.max_timestamp()),
                static_cast<double>(d.trace.max_timestamp() -
                                    d.trace.min_timestamp()) /
                    86400.0);
  const auto hist = graph::degree_histogram(d.graph);
  std::printf("  degree-10 cohort: %zu users\n",
              hist.size() > 10 ? hist[10] : 0);
  if (!d.trace.empty())
    std::fputs(trace::to_string(trace::trace_statistics(d)).c_str(), stdout);
}

graph::GraphKind parse_kind(const std::string& s) {
  if (s == "undirected") return graph::GraphKind::kUndirected;
  if (s == "directed") return graph::GraphKind::kDirected;
  throw ConfigError("graph kind must be 'undirected' or 'directed'");
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) throw ConfigError("generate needs <facebook|twitter> <prefix>");
  const std::string which = argv[2];
  const std::string prefix = argv[3];
  const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
  const std::uint64_t seed =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

  auto preset = which == "twitter" ? synth::twitter_preset()
                                   : synth::facebook_preset();
  preset = synth::scaled(preset, scale);
  util::Rng rng(seed);
  const auto raw = synth::generate_raw(preset, rng);
  print_stats(raw);
  trace::save_dataset(prefix, raw);
  std::printf("wrote %s.edges and %s.activities\n", prefix.c_str(),
              prefix.c_str());
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 5)
    throw ConfigError("inspect needs <edges> <activities> <kind>");
  const auto d =
      trace::load_dataset("inspected", argv[2], argv[3], parse_kind(argv[4]));
  print_stats(d);
  return 0;
}

int cmd_filter(int argc, char** argv) {
  if (argc < 7)
    throw ConfigError(
        "filter needs <edges> <activities> <kind> <min-acts> <out-prefix>");
  auto d = trace::load_dataset("raw", argv[2], argv[3], parse_kind(argv[4]));
  const auto min_acts = static_cast<std::size_t>(std::atoi(argv[5]));
  std::printf("before filter:\n");
  print_stats(d);
  auto filtered = trace::filter_isolated(
      trace::filter_min_activity(d, min_acts));
  filtered.name = "filtered";
  std::printf("\nafter filter (>= %zu created activities, no isolated "
              "users):\n",
              min_acts);
  print_stats(filtered);
  trace::save_dataset(argv[6], filtered);
  std::printf("wrote %s.edges and %s.activities\n", argv[6], argv[6]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
    if (cmd == "filter") return cmd_filter(argc, argv);
    std::printf(
        "usage:\n"
        "  dataset_tool generate <facebook|twitter> <prefix> [scale] [seed]\n"
        "  dataset_tool inspect <edges> <activities> <undirected|directed>\n"
        "  dataset_tool filter <edges> <activities> <undirected|directed> "
        "<min-activities> <out-prefix>\n");
    return cmd.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
