// Twitter study: replicas live on *followers* (directed graph), tweets are
// the activity. Runs the availability and AoD-time sweeps under two online
// time models and highlights the paper's Fig 11d observation: followers
// that never connect in time to any replica keep AoD-time below 1.0.
//
// Usage: twitter_study [scale]   (default scale 0.1)
#include <cstdio>
#include <cstdlib>

#include "graph/degree_stats.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dosn;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const auto preset = synth::scaled(synth::twitter_preset(), scale);
  util::Rng rng(2);
  const auto dataset = synth::generate_study_dataset(preset, rng);
  const auto stats = trace::stats_of(dataset);
  std::printf("twitter stand-in @ scale %.2f: %zu users, avg followers "
              "%.1f, %zu tweets\n",
              scale, stats.users, stats.average_degree, stats.activities);

  sim::Study study(dataset, /*seed=*/43);
  sim::Study::Options opts;
  opts.cohort_degree = graph::most_populated_degree(dataset.graph, 5, 15);
  opts.k_max = std::min<std::size_t>(opts.cohort_degree, 10);
  opts.repetitions = 3;
  std::printf("cohort: follower-degree %zu (%zu users)\n\n",
              opts.cohort_degree,
              graph::users_with_degree(dataset.graph, opts.cohort_degree)
                  .size());

  struct ModelRun {
    const char* label;
    onlinetime::ModelKind kind;
    onlinetime::ModelParams params;
  };
  for (const auto& run :
       {ModelRun{"Sporadic (20 min sessions)",
                 onlinetime::ModelKind::kSporadic, {}},
        ModelRun{"FixedLength (8h windows)",
                 onlinetime::ModelKind::kFixedLength, {.window_hours = 8.0}}}) {
    const auto sweep = study.replication_sweep(
        run.kind, run.params, placement::Connectivity::kConRep, opts);

    std::printf("=== %s ===\n", run.label);
    util::TextTable table(
        {"k", "avail(MaxAv)", "aod-time(MaxAv)", "aod-time(MostActive)",
         "aod-time(Random)"});
    for (std::size_t k = 0; k < sweep.xs.size(); ++k) {
      table.add_row(
          std::to_string(k),
          {sweep.policies[0].points[k].availability,
           sweep.policies[0].points[k].aod_time,
           sweep.policies[1].points[k].aod_time,
           sweep.policies[2].points[k].aod_time});
    }
    std::fputs(table.render().c_str(), stdout);

    const auto& final_point = sweep.policies[0].points.back();
    std::printf("at k=%zu: availability %.3f of max achievable %.3f\n\n",
                opts.k_max, final_point.availability,
                final_point.max_availability);
  }

  std::printf(
      "Paper Fig 10/11: Twitter mirrors Facebook, but under FixedLength(8h)\n"
      "AoD-time does not reach 1.0 — some followers are never connected in\n"
      "time to any replica of the profile they follow.\n");
  return 0;
}
