// The UnconRep data path end to end: replicas that rarely meet exchange a
// profile through (a) the message-level gossip protocol when they do meet,
// and (b) a Chord-style DHT relay when they never do. Shows the realized
// delays of both paths and the DHT's routing cost.
#include <cstdio>

#include "net/dht.hpp"
#include "net/gossip.hpp"
#include "util/strings.hpp"

int main() {
  using namespace dosn;
  using interval::DaySchedule;
  using interval::IntervalSet;
  constexpr interval::Seconds kH = 3600;

  auto window = [](interval::Seconds a, interval::Seconds b) {
    return DaySchedule(IntervalSet::single(a * kH, b * kH));
  };

  // Morning owner, lunchtime friend (brief overlap), night-owl friend
  // (no overlap with anyone).
  const std::vector<DaySchedule> nodes{window(7, 11), window(10, 14),
                                       window(22, 24)};
  const char* names[] = {"owner", "lunch-friend", "night-owl"};

  // --- 1. F2F gossip: works along the 10-11h overlap, fails to the owl --
  std::vector<net::GossipWrite> writes{{8 * kH, 0, /*author=*/1}};
  net::GossipConfig gossip_cfg;
  gossip_cfg.sync_period = 300;
  gossip_cfg.link_latency = 1;
  gossip_cfg.horizon_days = 3;
  util::Rng rng(7);
  const auto gossip = net::simulate_gossip(nodes, writes, gossip_cfg, rng);

  std::printf("F2F gossip (5-minute anti-entropy, 3-day horizon):\n");
  for (std::size_t n = 1; n < nodes.size(); ++n) {
    if (gossip.arrival[0][n])
      std::printf("  post @08:00 -> %-12s after %s\n", names[n],
                  util::format_duration_s(static_cast<double>(
                      *gossip.arrival[0][n] - writes[0].time))
                      .c_str());
    else
      std::printf("  post @08:00 -> %-12s NEVER (no rendezvous)\n", names[n]);
  }
  std::printf("  protocol: %llu msgs, %llu posts shipped, %llu rounds\n\n",
              static_cast<unsigned long long>(gossip.messages_sent),
              static_cast<unsigned long long>(gossip.posts_shipped),
              static_cast<unsigned long long>(gossip.sync_rounds));

  // --- 2. UnconRep: park the update in a DHT relay --------------------
  net::DhtRing relay(/*replication=*/2);
  for (std::uint64_t id = 1; id <= 64; ++id) relay.join(id);

  const std::string key = "profile:0:update:1";
  const auto put_route = relay.lookup(key, rng);
  relay.put(key, "post @08:00 (encrypted blob)");
  std::printf("DHT relay (64 nodes, replication 2):\n");
  std::printf("  put %-24s -> node %llu in %zu hops\n", key.c_str(),
              static_cast<unsigned long long>(put_route.owner),
              put_route.hops);

  // The night owl fetches at 22:00 — delay is just his own offline gap.
  const auto get_route = relay.lookup(key, rng);
  const auto value = relay.get(key);
  std::printf("  get %-24s -> node %llu in %zu hops: %s\n", key.c_str(),
              static_cast<unsigned long long>(get_route.owner),
              get_route.hops, value ? "hit" : "MISS");
  std::printf("  night-owl delay via relay: %s (22:00 - 08:00) vs gossip: "
              "never\n\n",
              util::format_duration_s(14 * 3600.0).c_str());

  // Failure tolerance: the relay survives losing the primary holder.
  const auto owners = relay.responsible_nodes(key);
  std::printf("  primary holder %llu crashes -> get still %s (replica on "
              "node %llu)\n",
              static_cast<unsigned long long>(owners[0]),
              relay.get(key, owners[0]) ? "succeeds" : "fails",
              static_cast<unsigned long long>(owners[1]));

  std::printf(
      "\nThis is the paper's Sec V-C trade: ConRep keeps data on friends\n"
      "only but pays rendezvous delays (or never delivers); UnconRep cuts\n"
      "the delay to the reader's own offline gap at the cost of parking\n"
      "(encrypted) updates on third-party infrastructure.\n");
  return 0;
}
