// Quickstart: the core public API in ~80 lines.
//
// Builds a tiny friend network with hand-written daily schedules, places
// profile replicas with each policy, and prints the paper's efficiency
// metrics for the resulting configurations.
#include <cstdio>

#include "metrics/availability.hpp"
#include "metrics/delay.hpp"
#include "placement/policy.hpp"
#include "trace/dataset.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dosn;
  using interval::DaySchedule;
  using interval::IntervalSet;
  constexpr interval::Seconds kH = 3600;

  // --- 1. A small friendship graph: user 0 with five friends. ----------
  graph::SocialGraphBuilder builder(graph::GraphKind::kUndirected, 6);
  for (graph::UserId f = 1; f <= 5; ++f) builder.add_edge(0, f);
  trace::Dataset dataset;
  dataset.name = "quickstart";
  dataset.graph = std::move(builder).build();

  // Wall posts on user 0's profile (creator, receiver, unix-ish seconds):
  // friend 1 is by far the most active.
  dataset.trace = trace::ActivityTrace(
      6, {{1, 0, 9 * kH}, {1, 0, 10 * kH}, {1, 0, 33 * kH}, {2, 0, 21 * kH}});

  // --- 2. Daily online schedules (here: written by hand; in the full ---
  // studies they come from an onlinetime::OnlineTimeModel).
  auto window = [](interval::Seconds a, interval::Seconds b) {
    return DaySchedule(IntervalSet::single(a * kH, b * kH));
  };
  std::vector<DaySchedule> schedules{
      window(8, 10),   // 0: the owner, online 08:00-10:00
      window(9, 13),   // 1
      window(12, 16),  // 2
      window(15, 19),  // 3
      window(18, 22),  // 4
      window(2, 4),    // 5: a night owl nobody overlaps with except...
  };

  // --- 3. Place replicas with each policy and measure. -----------------
  std::printf("%-12s %-9s  %-8s %-8s %-12s %-10s\n", "policy", "replicas",
              "avail", "aod-time", "aod-activity", "delay(h)");
  util::Rng rng(7);
  for (const auto kind :
       {placement::PolicyKind::kMaxAv, placement::PolicyKind::kMostActive,
        placement::PolicyKind::kRandom}) {
    placement::PlacementContext context;
    context.user = 0;
    context.candidates = dataset.graph.contacts(0);
    context.schedules = schedules;
    context.trace = &dataset.trace;
    context.connectivity = placement::Connectivity::kConRep;
    context.max_replicas = 3;

    const auto policy = placement::make_policy(kind);
    const auto replicas = policy->select(context, rng);

    std::vector<DaySchedule> replica_schedules;
    std::string replica_list;
    for (auto host : replicas) {
      replica_schedules.push_back(schedules[host]);
      replica_list += (replica_list.empty() ? "" : ",") + std::to_string(host);
    }

    const auto profile =
        metrics::profile_schedule(schedules[0], replica_schedules);
    std::vector<DaySchedule> friends(schedules.begin() + 1, schedules.end());
    const auto aod = metrics::aod_activity(dataset.trace, 0, profile,
                                           schedules);
    const auto delay = metrics::update_propagation_delay(
        schedules[0], replica_schedules, placement::Connectivity::kConRep);

    std::printf("%-12s %-9s  %-8.3f %-8.3f %-12.3f %-10.1f\n",
                policy->name().c_str(), replica_list.c_str(),
                profile.coverage(), metrics::aod_time(friends, profile),
                aod.overall, delay.actual_hours());
  }

  std::printf(
      "\nMaxAv picks the chain 1-2-3-4 style coverage; MostActive favours\n"
      "friend 1 (who posts the most); Random is whatever it is. Delay grows\n"
      "with coverage because far-apart schedules rendezvous rarely —\n"
      "exactly the paper's availability/freshness trade-off.\n");
  return 0;
}
