// Facebook study end-to-end on the public API (a compact version of the
// fig03/fig05/fig07 harnesses): generates the calibrated synthetic stand-in
// for the New Orleans trace, runs the degree-10 cohort sweep under the
// Sporadic model, and prints availability / AoD-time / delay per policy.
//
// Usage: facebook_study [scale]   (default scale 0.1 for a fast run)
#include <cstdio>
#include <cstdlib>

#include "graph/degree_stats.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dosn;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const auto preset = synth::scaled(synth::facebook_preset(), scale);
  util::Rng rng(1);
  const auto dataset = synth::generate_study_dataset(preset, rng);
  const auto stats = trace::stats_of(dataset);
  std::printf("facebook stand-in @ scale %.2f: %zu users, avg degree %.1f, "
              "avg activities %.1f\n",
              scale, stats.users, stats.average_degree,
              stats.average_activities);

  sim::Study study(dataset, /*seed=*/42);
  sim::Study::Options opts;
  opts.cohort_degree = graph::most_populated_degree(dataset.graph, 5, 15);
  opts.k_max = std::min<std::size_t>(opts.cohort_degree, 10);
  opts.repetitions = 3;
  std::printf("cohort: degree %zu (%zu users), k = 0..%zu\n\n",
              opts.cohort_degree,
              graph::users_with_degree(dataset.graph, opts.cohort_degree)
                  .size(),
              opts.k_max);

  const auto sweep = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {}, placement::Connectivity::kConRep,
      opts);

  for (const auto metric :
       {sim::Metric::kAvailability, sim::Metric::kAodTime,
        sim::Metric::kDelayActualH}) {
    std::printf("--- %s ---\n", sim::to_string(metric).c_str());
    util::TextTable table({"k", "MaxAv", "MostActive", "Random"});
    for (std::size_t k = 0; k < sweep.xs.size(); ++k) {
      table.add_row(std::to_string(k),
                    {sim::metric_value(sweep.policies[0].points[k], metric),
                     sim::metric_value(sweep.policies[1].points[k], metric),
                     sim::metric_value(sweep.policies[2].points[k], metric)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Expected shapes (paper Sec V-A): availability flattens after a few\n"
      "replicas with MaxAv on top; AoD-time approaches 1.0 around k = 5 for\n"
      "MaxAv; the delay *increases* with k and MaxAv pays the most.\n");
  return 0;
}
