#include "serve/workload.hpp"

#include <algorithm>
#include <iterator>

#include "interval/day_schedule.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace dosn::serve {

namespace {
/// Stream tag separating the workload stream family from every other
/// mix64-derived stream in the system (placement, models, faults).
inline constexpr std::uint64_t kWorkloadTag = 0x53455256'574b4c44ULL;  // "SERVWKLD"
/// Stream tag of the flash-crowd extra-request streams (keyed by the
/// *fault plan* seed: the crowd is part of the scenario, not the base
/// workload, so two plans differing only in seed superpose different
/// crowd realizations on the same base streams).
inline constexpr std::uint64_t kFlashTag = 0x53455256'464c5348ULL;  // "SERVFLSH"

/// Draws one request's (kind, target) pair from `rng` — the shared draw
/// discipline of the base and flash streams (two draws, kind-independent).
void draw_kind_and_target(const WorkloadConfig& config, util::Rng& rng,
                          std::uint64_t target_support, Request& r) {
  const double mix = rng.uniform();
  r.kind = mix < config.read_fraction ? RequestKind::kProfileRead
           : mix < config.read_fraction + config.feed_fraction
               ? RequestKind::kFeedAssembly
               : RequestKind::kPostWrite;
  r.target_index = static_cast<std::uint32_t>(rng.below(target_support));
}
}  // namespace

std::string_view to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kProfileRead: return "profile_read";
    case RequestKind::kFeedAssembly: return "feed_assembly";
    case RequestKind::kPostWrite: return "post_write";
  }
  DOSN_UNREACHABLE("unknown RequestKind");
}

void validate(const WorkloadConfig& config) {
  if (config.requests_per_user_per_day <= 0.0)
    throw ConfigError("workload: requests_per_user_per_day must be > 0");
  if (config.read_fraction < 0.0 || config.feed_fraction < 0.0 ||
      config.read_fraction + config.feed_fraction > 1.0)
    throw ConfigError("workload: request mix fractions out of range");
  if (config.horizon_days <= 0)
    throw ConfigError("workload: horizon_days must be > 0");
}

std::vector<Request> user_requests(const WorkloadConfig& config,
                                   std::uint64_t seed, graph::UserId user,
                                   std::size_t degree) {
  validate(config);
  util::Rng rng(util::mix64(util::mix64(seed, kWorkloadTag), user));

  const double horizon_s = static_cast<double>(config.horizon_days) *
                           static_cast<double>(interval::kDaySeconds);
  const double rate_per_s = config.requests_per_user_per_day /
                            static_cast<double>(interval::kDaySeconds);
  const std::uint64_t target_support =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(degree));

  std::vector<Request> out;
  // Poisson arrivals: accumulate exponential inter-arrival gaps until the
  // horizon is exceeded. Double accumulation is deterministic (same draws,
  // same order, portable Rng::exponential).
  double t = rng.exponential(rate_per_s);
  while (t < horizon_s) {
    Request r;
    r.time = static_cast<net::SimTime>(t);
    draw_kind_and_target(config, rng, target_support, r);
    out.push_back(r);
    t += rng.exponential(rate_per_s);
  }
  return out;
}

std::vector<Request> flash_requests(const WorkloadConfig& config,
                                    const net::ScenarioSpec& scenario,
                                    std::uint64_t plan_seed,
                                    graph::UserId user, std::size_t degree) {
  validate(config);
  validate(scenario);
  const double horizon_s = static_cast<double>(config.horizon_days) *
                           static_cast<double>(interval::kDaySeconds);
  const double base_rate = config.requests_per_user_per_day /
                           static_cast<double>(interval::kDaySeconds);
  const std::uint64_t target_support =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(degree));

  std::vector<Request> out;
  for (std::size_t e = 0; e < scenario.flash_crowds.size(); ++e) {
    const auto& crowd = scenario.flash_crowds[e];
    if (!crowd.active()) continue;
    const double rate = base_rate * (crowd.load_multiplier - 1.0);
    const double end =
        std::min(static_cast<double>(crowd.end), horizon_s);
    util::Rng rng(
        util::mix64(util::mix64(plan_seed, kFlashTag, e), user));
    // Gaps accumulate from the (scale-invariant) window start, so a
    // scaled (shorter) window keeps exactly the prefix of this stream's
    // arrivals — the nesting guarantee.
    double t = static_cast<double>(crowd.start) + rng.exponential(rate);
    while (t < end) {
      Request r;
      r.time = static_cast<net::SimTime>(t);
      draw_kind_and_target(config, rng, target_support, r);
      out.push_back(r);
      t += rng.exponential(rate);
    }
  }
  if (scenario.flash_crowds.size() > 1)
    std::stable_sort(out.begin(), out.end(),
                     [](const Request& a, const Request& b) {
                       return a.time < b.time;
                     });
  return out;
}

std::vector<Request> merge_requests(std::vector<Request> base,
                                    std::vector<Request> extra) {
  if (extra.empty()) return base;
  std::vector<Request> out;
  out.reserve(base.size() + extra.size());
  std::merge(base.begin(), base.end(), extra.begin(), extra.end(),
             std::back_inserter(out),
             [](const Request& a, const Request& b) {
               return a.time < b.time;
             });
  return out;
}

}  // namespace dosn::serve
