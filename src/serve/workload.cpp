#include "serve/workload.hpp"

#include <algorithm>

#include "interval/day_schedule.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace dosn::serve {

namespace {
/// Stream tag separating the workload stream family from every other
/// mix64-derived stream in the system (placement, models, faults).
inline constexpr std::uint64_t kWorkloadTag = 0x53455256'574b4c44ULL;  // "SERVWKLD"
}  // namespace

std::string_view to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kProfileRead: return "profile_read";
    case RequestKind::kFeedAssembly: return "feed_assembly";
    case RequestKind::kPostWrite: return "post_write";
  }
  DOSN_UNREACHABLE("unknown RequestKind");
}

void validate(const WorkloadConfig& config) {
  if (config.requests_per_user_per_day <= 0.0)
    throw ConfigError("workload: requests_per_user_per_day must be > 0");
  if (config.read_fraction < 0.0 || config.feed_fraction < 0.0 ||
      config.read_fraction + config.feed_fraction > 1.0)
    throw ConfigError("workload: request mix fractions out of range");
  if (config.horizon_days <= 0)
    throw ConfigError("workload: horizon_days must be > 0");
}

std::vector<Request> user_requests(const WorkloadConfig& config,
                                   std::uint64_t seed, graph::UserId user,
                                   std::size_t degree) {
  validate(config);
  util::Rng rng(util::mix64(util::mix64(seed, kWorkloadTag), user));

  const double horizon_s = static_cast<double>(config.horizon_days) *
                           static_cast<double>(interval::kDaySeconds);
  const double rate_per_s = config.requests_per_user_per_day /
                            static_cast<double>(interval::kDaySeconds);
  const std::uint64_t target_support =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(degree));

  std::vector<Request> out;
  // Poisson arrivals: accumulate exponential inter-arrival gaps until the
  // horizon is exceeded. Double accumulation is deterministic (same draws,
  // same order, portable Rng::exponential).
  double t = rng.exponential(rate_per_s);
  while (t < horizon_s) {
    Request r;
    r.time = static_cast<net::SimTime>(t);
    const double mix = rng.uniform();
    r.kind = mix < config.read_fraction ? RequestKind::kProfileRead
             : mix < config.read_fraction + config.feed_fraction
                 ? RequestKind::kFeedAssembly
                 : RequestKind::kPostWrite;
    r.target_index = static_cast<std::uint32_t>(rng.below(target_support));
    out.push_back(r);
    t += rng.exponential(rate_per_s);
  }
  return out;
}

}  // namespace dosn::serve
