// Deterministic latency histogram for the request-level serving layer.
//
// The serving benchmark reports per-request latency percentiles (p50 /
// p99 / p999) over hundreds of thousands of simulated requests, so it
// cannot keep every sample. LatencyHistogram buckets integer second
// latencies over fixed, upper-inclusive geometric bounds and answers
// quantile queries with a precise, testable contract:
//
//   quantile(q) = the upper bound of the bucket containing the
//                 ceil(q * count)-th smallest recorded value, i.e. the
//                 smallest bucket bound >= the exact order statistic —
//                 or the exact maximum when the order statistic lies in
//                 the overflow bucket.
//
// tests/test_serve.cpp pins this against a sorted-vector oracle. Unlike
// obs::Histogram (sharded atomics, process-wide registry) this class is
// a plain value type: each worker fills its own instance and the serial
// reduction merges them in cohort order, so results are bit-identical
// for every thread count. Sum / count / max are exact (integer math, no
// float accumulation-order dependence).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "interval/interval_set.hpp"

namespace dosn::serve {

using interval::Seconds;

class LatencyHistogram {
 public:
  /// Uses default_bounds().
  LatencyHistogram();
  /// `bounds` must be strictly increasing and non-empty.
  explicit LatencyHistogram(std::vector<Seconds> bounds);

  /// The serving layer's standard bounds: 0, then a ~x1.5 geometric
  /// ladder from 1 s up to past 14 days (the longest horizon a request
  /// can wait within).
  static const std::vector<Seconds>& default_bounds();

  /// Records one latency sample (v >= 0).
  void record(Seconds v);

  /// Adds `other`'s samples (bounds must match).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  Seconds sum() const { return sum_; }
  /// Largest recorded value (0 when empty).
  Seconds max() const { return max_; }

  /// See the class comment for the exact contract. q in [0, 1]; returns 0
  /// when empty.
  Seconds quantile(double q) const;

  std::span<const Seconds> bounds() const { return bounds_; }
  /// i in [0, bounds().size()]: the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }

  friend bool operator==(const LatencyHistogram&,
                         const LatencyHistogram&) = default;

 private:
  std::vector<Seconds> bounds_;            // strictly increasing
  std::vector<std::uint64_t> buckets_;     // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  Seconds sum_ = 0;
  Seconds max_ = 0;
};

}  // namespace dosn::serve
