#include "serve/latency_histogram.hpp"

#include <algorithm>
#include <cmath>

#include "interval/day_schedule.hpp"
#include "util/check.hpp"

namespace dosn::serve {

const std::vector<Seconds>& LatencyHistogram::default_bounds() {
  static const std::vector<Seconds> bounds = [] {
    std::vector<Seconds> b;
    b.push_back(0);
    // ~x1.5 geometric ladder (integer math; strictly increasing by
    // construction); the last bound is the first past the 14-day horizon,
    // so every in-horizon wait lands below the overflow bucket.
    const Seconds limit = 14 * interval::kDaySeconds;
    for (Seconds v = 1;; v = std::max(v + 1, v + v / 2)) {
      b.push_back(v);
      if (v > limit) break;
    }
    return b;
  }();
  return bounds;
}

LatencyHistogram::LatencyHistogram() : LatencyHistogram(default_bounds()) {}

LatencyHistogram::LatencyHistogram(std::vector<Seconds> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  DOSN_REQUIRE(!bounds_.empty(), "LatencyHistogram: bounds must be non-empty");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    DOSN_REQUIRE(bounds_[i - 1] < bounds_[i],
                 "LatencyHistogram: bounds must be strictly increasing");
}

void LatencyHistogram::record(Seconds v) {
  DOSN_CHECK(v >= 0, "LatencyHistogram: negative latency");
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  max_ = std::max(max_, v);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  DOSN_CHECK(bounds_ == other.bounds_,
             "LatencyHistogram: merging mismatched bounds");
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

Seconds LatencyHistogram::quantile(double q) const {
  DOSN_CHECK(q >= 0.0 && q <= 1.0, "LatencyHistogram: quantile out of range");
  if (count_ == 0) return 0;
  // Rank of the order statistic: ceil(q * count), clamped into [1, count].
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return bounds_[i];
  }
  // The order statistic lies beyond the last bound: the exact maximum is
  // the tightest deterministic answer available.
  return max_;
}

}  // namespace dosn::serve
