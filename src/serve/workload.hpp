// Deterministic request-level traffic generation.
//
// The serving study issues three request kinds against a user's social
// neighborhood (DESIGN.md §14):
//
//   * kProfileRead  — fetch one friend's profile (the target friend is
//     part of the request: contacts(u)[target_index % degree]);
//   * kFeedAssembly — assemble the user's feed: fan-in over the profiles
//     of *all* friends, completing when the slowest fetch completes;
//   * kPostWrite    — publish a post to the user's own replica group.
//
// Each user's request stream is a Poisson process (exponential
// inter-arrival times) at `requests_per_user_per_day`, with kinds drawn
// from the configured mix. The stream is a pure function of
// (seed, user): it is drawn from Rng(mix64(mix64(seed, kWorkloadTag),
// user)) — the same per-entity stream discipline as the study engine —
// and every request consumes exactly three draws (inter-arrival, kind,
// target) regardless of its kind, so the stream is bit-identical across
// thread counts, policies, connectivity regimes, fault intensities and
// DOSN_OBS settings. Request times deliberately do NOT depend on the
// user's online schedule: a request models the user reaching for their
// data (from any device), and fixing the times across fault intensities
// is what makes the SLO-miss monotonicity property exact rather than
// statistical.
#pragma once

#include <string_view>
#include <vector>

#include "graph/social_graph.hpp"
#include "net/event_queue.hpp"
#include "net/scenario.hpp"
#include "util/rng.hpp"

namespace dosn::serve {

enum class RequestKind : std::uint8_t {
  kProfileRead = 0,
  kFeedAssembly = 1,
  kPostWrite = 2,
};

std::string_view to_string(RequestKind kind);

struct WorkloadConfig {
  /// Poisson arrival rate per user (requests per simulated day).
  double requests_per_user_per_day = 4.0;
  /// Request mix: P(profile read) and P(feed assembly); the remainder is
  /// the write fraction. read + feed must be <= 1.
  double read_fraction = 0.60;
  double feed_fraction = 0.25;
  /// Serving horizon in days (schedules repeat daily).
  int horizon_days = 14;
};

/// Throws ConfigError when rates/fractions are out of range.
void validate(const WorkloadConfig& config);

struct Request {
  net::SimTime time = 0;
  RequestKind kind = RequestKind::kProfileRead;
  /// For kProfileRead: the target friend is contacts(u)[target_index].
  /// Drawn (and stored) for every request so the draw pattern does not
  /// depend on the kind mix; other kinds ignore it.
  std::uint32_t target_index = 0;

  friend bool operator==(const Request&, const Request&) = default;
};

/// `user`'s requests over the horizon in time order. `degree` is the
/// user's contact count (target indices are drawn below max(degree, 1)).
std::vector<Request> user_requests(const WorkloadConfig& config,
                                   std::uint64_t seed, graph::UserId user,
                                   std::size_t degree);

/// The extra requests a scenario's flash crowds superpose on `user`'s
/// base stream: per active crowd entry an independent Poisson process at
/// (load_multiplier - 1) times the base rate inside [start, end), with
/// the base kind mix and draw discipline (three draws per request). Each
/// entry draws from its own stream, mix64(mix64(plan_seed, kFlashTag,
/// entry), user) — the base stream is never touched, so the zero
/// scenario adds nothing and the base requests stay bit-identical.
/// Because scaled() shrinks crowd windows start-anchored at a preserved
/// multiplier, a scaled scenario's extra requests are exactly a prefix
/// subset per entry: request sets nest across intensities. Returned in
/// time order (stable across entries).
std::vector<Request> flash_requests(const WorkloadConfig& config,
                                    const net::ScenarioSpec& scenario,
                                    std::uint64_t plan_seed,
                                    graph::UserId user, std::size_t degree);

/// Time-ordered merge of the base stream and flash extras (stable: base
/// requests precede extras at equal times).
std::vector<Request> merge_requests(std::vector<Request> base,
                                    std::vector<Request> extra);

}  // namespace dosn::serve
