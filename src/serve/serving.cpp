#include "serve/serving.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <optional>

#include "interval/day_schedule.hpp"
#include "interval/interval_set.hpp"
#include "net/replica_sim.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace dosn::serve {

using interval::DaySchedule;
using interval::Interval;
using interval::IntervalSet;
using net::SimTime;

namespace {

/// Stream tag of the per-user placement streams (distinct from the
/// workload tag and every study-engine stream family).
inline constexpr std::uint64_t kPlacementTag = 0x53455256'504c4143ULL;  // "SERVPLAC"

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

/// Per-run totals, flushed in batches so the request loop carries one
/// shard-add per user, not per request. Latency histograms are recorded
/// per request (a relaxed bucket add when observability is on).
struct ServeMetrics {
  obs::Counter& requests = obs::Registry::global().counter("serve.requests");
  obs::Counter& unserved = obs::Registry::global().counter("serve.unserved");
  obs::Counter& slo_misses =
      obs::Registry::global().counter("serve.slo_misses");
  obs::Histogram& read = obs::Registry::global().histogram(
      "serve.latency.read", LatencyHistogram::default_bounds());
  obs::Histogram& feed = obs::Registry::global().histogram(
      "serve.latency.feed", LatencyHistogram::default_bounds());
  obs::Histogram& write = obs::Registry::global().histogram(
      "serve.latency.write", LatencyHistogram::default_bounds());
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

/// One profile's realized serving surface: the replica selection plus the
/// canonical union of the group members' fault-degraded absolute online
/// sessions over the horizon.
struct GroupTimeline {
  std::vector<graph::UserId> selection;
  std::vector<Interval> online;
};

/// Wait from `t` until `pieces` (canonical absolute intervals) next
/// covers an instant; nullopt when nothing remains within the horizon.
std::optional<Seconds> wait_within(std::span<const Interval> pieces,
                                   SimTime t) {
  // First piece ending after t.
  const auto it = std::upper_bound(
      pieces.begin(), pieces.end(), t,
      [](SimTime v, const Interval& p) { return v < p.end; });
  if (it == pieces.end()) return std::nullopt;
  return it->start <= t ? 0 : it->start - t;
}

/// Per-served-user accumulation, reduced serially in cohort order.
struct UserLoad {
  KindStats read;
  KindStats feed;
  KindStats write;
  std::uint64_t digest = kFnvOffset;
};

/// The serving study's per-run immutable context, shared by all workers.
struct RunContext {
  const trace::Dataset& dataset;
  std::span<const DaySchedule> schedules;
  const ServingConfig& config;
  const placement::ReplicaPolicy& policy;
  std::uint64_t seed;
  std::uint64_t placement_stream;
  SimTime horizon;
  /// Relay availability under UnconRep: canonical outage windows clipped
  /// to the horizon (explicit plan windows — identical for every user).
  std::vector<Interval> relay_outages;

  bool relay_exists() const {
    return config.connectivity == placement::Connectivity::kUnconRep;
  }

  /// Wait from `t` until the relay is reachable (0 when no outage covers
  /// t). Only meaningful under UnconRep.
  Seconds relay_wait(SimTime t) const {
    const auto it = std::upper_bound(
        relay_outages.begin(), relay_outages.end(), t,
        [](SimTime v, const Interval& w) { return v < w.end; });
    if (it == relay_outages.end() || !it->contains(t)) return 0;
    return it->end - t;
  }

  net::FaultPlan plan_for(graph::UserId user) const {
    net::FaultPlan plan = config.faults;
    plan.seed = util::mix64(plan.seed, user);
    return plan;
  }

  /// Selection plus realized group sessions for `user`'s profile. A pure
  /// function of (seed, plan seed, user): identical whether the user is
  /// being served or fanned into a friend's feed.
  GroupTimeline realize_group(graph::UserId user) const {
    GroupTimeline g;
    util::Rng rng(util::mix64(placement_stream, user));
    placement::PlacementContext ctx;
    ctx.user = user;
    ctx.candidates = dataset.graph.contacts(user);
    ctx.schedules = schedules;
    ctx.trace = &dataset.trace;
    ctx.connectivity = config.connectivity;
    ctx.max_replicas = config.replicas;
    g.selection = policy.select(ctx, rng);

    net::FaultInjector injector(plan_for(user));
    IntervalSet online;
    const auto add_sessions = [&](std::size_t node_index,
                                  const DaySchedule& schedule) {
      for (const auto& iv :
           injector.sessions(node_index, schedule, config.workload.horizon_days))
        online.add(iv.start, iv.end);
    };
    add_sessions(0, schedules[user]);
    for (std::size_t i = 0; i < g.selection.size(); ++i)
      add_sessions(i + 1, schedules[g.selection[i]]);
    g.online.assign(online.pieces().begin(), online.pieces().end());
    return g;
  }
};

/// Sharded memo of realized group timelines. Feed fan-in touches every
/// friend of every served user — including hubs whose greedy placement is
/// expensive — and popular profiles recur across served users, so each
/// referenced profile is realized exactly once per run. Caching cannot
/// reach a result bit: realize_group is a pure function of (seed, user),
/// and computing under the shard lock keeps the placement obs counters at
/// one realization per unique profile (a thread-count-invariant total).
/// Keyed access only — the maps are never iterated, so container order
/// cannot leak into any result.
class GroupCache {
 public:
  explicit GroupCache(const RunContext& run) : run_(run) {}

  const GroupTimeline& get(graph::UserId user) {
    Shard& shard = shards_[user % kShards];
    util::MutexLock lock(shard.mutex);
    const auto [it, inserted] = shard.groups.try_emplace(user);
    if (inserted) it->second = run_.realize_group(user);
    return it->second;
  }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    util::Mutex mutex;
    std::map<graph::UserId, GroupTimeline> groups DOSN_GUARDED_BY(mutex);
  };

  const RunContext& run_;
  std::array<Shard, kShards> shards_;
};

/// Read latency of one profile fetch at time t against `group` (nullopt:
/// unreachable within the horizon). Crypto cost is added by the caller.
std::optional<Seconds> fetch_wait(const RunContext& run,
                                  const GroupTimeline& group, SimTime t) {
  const auto group_wait = wait_within(group.online, t);
  if (!run.relay_exists()) return group_wait;
  const Seconds relay = run.relay_wait(t);
  if (!group_wait) return relay;
  return std::min(*group_wait, relay);
}

void serve_user(const RunContext& run, GroupCache& cache, graph::UserId user,
                UserLoad& load) {
  const auto contacts = run.dataset.graph.contacts(user);
  const auto requests = user_requests(run.config.workload, run.seed, user,
                                      contacts.size());

  const GroupTimeline& own = cache.get(user);
  const auto friend_group = [&](std::size_t i) -> const GroupTimeline& {
    return cache.get(contacts[i]);
  };

  // Post writes run through the event-driven replica simulator: the write
  // requests become UpdateSpecs (origin 0 = the owner) and ConRep
  // durability is the realized anti-entropy arrival at the first
  // non-origin replica, under the same per-user fault plan the read path
  // realizes its sessions from.
  std::vector<net::UpdateSpec> writes;
  for (const auto& r : requests)
    if (r.kind == RequestKind::kPostWrite)
      writes.push_back({r.time, 0});
  net::ReplicaSimReport write_report;
  const bool simulate_writes =
      !writes.empty() && !own.selection.empty() &&
      run.config.connectivity == placement::Connectivity::kConRep;
  if (simulate_writes) {
    std::vector<DaySchedule> nodes;
    nodes.reserve(own.selection.size() + 1);
    nodes.push_back(run.schedules[user]);
    for (const auto holder : own.selection)
      nodes.push_back(run.schedules[holder]);
    net::ReplicaSimConfig sim_config;
    sim_config.connectivity = run.config.connectivity;
    sim_config.horizon_days = run.config.workload.horizon_days;
    sim_config.faults = run.plan_for(user);
    write_report = net::simulate_replica_group(nodes, writes, sim_config);
  }
  // Upload surface for UnconRep writes: owner online while the relay is
  // up (own.online includes the replicas; re-derive the owner's sessions
  // alone only when needed).
  std::vector<Interval> upload;
  if (run.relay_exists() && !writes.empty()) {
    net::FaultInjector injector(run.plan_for(user));
    IntervalSet owner_online;
    for (const auto& iv : injector.sessions(0, run.schedules[user],
                                            run.config.workload.horizon_days))
      owner_online.add(iv.start, iv.end);
    IntervalSet outages{std::vector<Interval>(run.relay_outages.begin(),
                                              run.relay_outages.end())};
    const auto up = owner_online.subtract(outages);
    upload.assign(up.pieces().begin(), up.pieces().end());
  }

  ServeMetrics& metrics = serve_metrics();
  const Seconds crypto = run.config.crypto_op_cost;
  std::size_t write_index = 0;
  for (const auto& r : requests) {
    std::optional<Seconds> latency;
    switch (r.kind) {
      case RequestKind::kProfileRead: {
        if (contacts.empty()) {
          latency = 0;
        } else {
          const std::size_t target = r.target_index % contacts.size();
          latency = fetch_wait(run, friend_group(target), r.time);
        }
        if (latency) *latency += crypto;
        break;
      }
      case RequestKind::kFeedAssembly: {
        // Fan-in: the feed completes with the slowest friend fetch; one
        // unreachable friend leaves the feed unassembled (unserved).
        Seconds slowest = 0;
        bool complete = true;
        for (std::size_t i = 0; i < contacts.size(); ++i) {
          const auto wait = fetch_wait(run, friend_group(i), r.time);
          if (!wait) {
            complete = false;
            break;
          }
          slowest = std::max(slowest, *wait);
        }
        if (complete)
          latency = slowest +
                    crypto * static_cast<Seconds>(contacts.size());
        break;
      }
      case RequestKind::kPostWrite: {
        const std::size_t index = write_index++;
        if (run.relay_exists()) {
          latency = wait_within(upload, r.time);
        } else if (!simulate_writes) {
          latency = 0;  // single-node group: local durability
        } else {
          const auto arrival =
              net::first_non_origin_arrival(write_report.deliveries[index]);
          if (arrival) latency = *arrival - r.time;
        }
        if (latency)
          *latency += crypto * static_cast<Seconds>(1 + own.selection.size());
        break;
      }
    }

    KindStats& stats = r.kind == RequestKind::kProfileRead ? load.read
                       : r.kind == RequestKind::kFeedAssembly ? load.feed
                                                              : load.write;
    ++stats.requests;
    if (latency) {
      stats.latency.record(*latency);
      if (*latency > run.config.slo) ++stats.slo_misses;
      obs::Histogram& h = r.kind == RequestKind::kProfileRead ? metrics.read
                          : r.kind == RequestKind::kFeedAssembly
                              ? metrics.feed
                              : metrics.write;
      h.record(*latency);
    } else {
      ++stats.unserved;
      ++stats.slo_misses;
    }

    fnv_mix(load.digest, static_cast<std::uint64_t>(r.kind));
    fnv_mix(load.digest, static_cast<std::uint64_t>(r.time));
    fnv_mix(load.digest,
            latency ? static_cast<std::uint64_t>(*latency) + 1 : 0);
  }

  metrics.requests.add(requests.size());
  metrics.unserved.add(load.read.unserved + load.feed.unserved +
                       load.write.unserved);
  metrics.slo_misses.add(load.read.slo_misses + load.feed.slo_misses +
                         load.write.slo_misses);
}

void merge_kind(KindStats& into, const KindStats& from) {
  into.latency.merge(from.latency);
  into.requests += from.requests;
  into.unserved += from.unserved;
  into.slo_misses += from.slo_misses;
}

}  // namespace

void validate(const ServingConfig& config) {
  validate(config.workload);
  net::validate(config.faults);
  if (config.crypto_op_cost < 0)
    throw ConfigError("serving: crypto_op_cost must be >= 0");
  if (config.slo < 0)
    throw ConfigError("serving: slo must be >= 0");
}

ServingReport run_serving_study(const trace::Dataset& dataset,
                                std::span<const DaySchedule> schedules,
                                std::span<const graph::UserId> cohort,
                                std::uint64_t seed,
                                const ServingConfig& config,
                                util::ThreadPool* pool) {
  validate(config);
  DOSN_REQUIRE(schedules.size() == dataset.num_users(),
               "serving: schedules must span every user");

  const std::size_t served =
      config.served_users == 0
          ? cohort.size()
          : std::min(config.served_users, cohort.size());

  const auto policy =
      placement::make_policy(config.policy, config.policy_params);
  RunContext run{
      .dataset = dataset,
      .schedules = schedules,
      .config = config,
      .policy = *policy,
      .seed = seed,
      .placement_stream = util::mix64(seed, kPlacementTag),
      .horizon = static_cast<SimTime>(config.workload.horizon_days) *
                 interval::kDaySeconds,
      .relay_outages = {},
  };

  if (run.relay_exists()) {
    IntervalSet outages;
    for (const auto& w : config.faults.relay_outages) {
      const SimTime start = std::min<SimTime>(w.start, run.horizon);
      const SimTime end = std::min<SimTime>(w.end, run.horizon);
      if (start < end) outages.add(start, end);
    }
    run.relay_outages.assign(outages.pieces().begin(),
                             outages.pieces().end());
  }

  // Fan out into per-index slots; stealing reorders execution only.
  GroupCache cache(run);
  std::vector<UserLoad> loads(served);
  util::parallel_for_each(pool, served, [&](std::size_t i) {
    serve_user(run, cache, cohort[i], loads[i]);
  });

  // Serial reduction in cohort order: the one floating-point-free fold
  // that makes every aggregate (and the checksum) thread-count invariant.
  ServingReport report;
  report.served_users = served;
  report.horizon = run.horizon;
  report.request_log_checksum = kFnvOffset;
  for (std::size_t i = 0; i < served; ++i) {
    merge_kind(report.read, loads[i].read);
    merge_kind(report.feed, loads[i].feed);
    merge_kind(report.write, loads[i].write);
    fnv_mix(report.request_log_checksum,
            static_cast<std::uint64_t>(cohort[i]));
    fnv_mix(report.request_log_checksum, loads[i].digest);
  }
  report.latency.merge(report.read.latency);
  report.latency.merge(report.feed.latency);
  report.latency.merge(report.write.latency);
  report.requests =
      report.read.requests + report.feed.requests + report.write.requests;
  report.unserved =
      report.read.unserved + report.feed.unserved + report.write.unserved;
  report.slo_misses = report.read.slo_misses + report.feed.slo_misses +
                      report.write.slo_misses;
  report.served = report.requests - report.unserved;
  return report;
}

}  // namespace dosn::serve
