#include "serve/serving.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <optional>

#include "interval/day_schedule.hpp"
#include "interval/interval_set.hpp"
#include "net/replica_sim.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace dosn::serve {

using interval::DaySchedule;
using interval::Interval;
using interval::IntervalSet;
using net::SimTime;

namespace {

/// Stream tag of the per-user placement streams (distinct from the
/// workload tag and every study-engine stream family).
inline constexpr std::uint64_t kPlacementTag = 0x53455256'504c4143ULL;  // "SERVPLAC"

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

/// Per-run totals, flushed in batches so the request loop carries one
/// shard-add per user, not per request. Latency histograms are recorded
/// per request (a relaxed bucket add when observability is on).
struct ServeMetrics {
  obs::Counter& requests = obs::Registry::global().counter("serve.requests");
  obs::Counter& unserved = obs::Registry::global().counter("serve.unserved");
  obs::Counter& slo_misses =
      obs::Registry::global().counter("serve.slo_misses");
  obs::Histogram& read = obs::Registry::global().histogram(
      "serve.latency.read", LatencyHistogram::default_bounds());
  obs::Histogram& feed = obs::Registry::global().histogram(
      "serve.latency.feed", LatencyHistogram::default_bounds());
  obs::Histogram& write = obs::Registry::global().histogram(
      "serve.latency.write", LatencyHistogram::default_bounds());
  obs::Counter& retries =
      obs::Registry::global().counter("serve.resilience.retries");
  obs::Counter& hedges =
      obs::Registry::global().counter("serve.resilience.hedges");
  obs::Counter& hedge_wins =
      obs::Registry::global().counter("serve.resilience.hedge_wins");
  obs::Counter& stale_served =
      obs::Registry::global().counter("serve.resilience.stale_served");
  obs::Counter& degraded_feeds =
      obs::Registry::global().counter("serve.resilience.degraded_feeds");
  obs::Counter& dht_lookups =
      obs::Registry::global().counter("net.social_dht.lookups");
  obs::Counter& dht_lookup_hops =
      obs::Registry::global().counter("net.social_dht.lookup_hops");
  obs::Counter& dht_locality_hits =
      obs::Registry::global().counter("net.social_dht.locality_hits");
  obs::Counter& storekeepers =
      obs::Registry::global().counter("placement.super_peer.storekeepers");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

/// One profile's realized serving surface: the replica selection plus the
/// canonical union of the group members' fault-degraded absolute online
/// sessions over the horizon. Under a resilience policy the *advertised*
/// surfaces are materialized too: `ideal` is the unfaulted group union
/// (the stale-failover surface and the feed budget's reference), `hedge`
/// the unfaulted union of the top-2 availability-ranked members (the
/// hedged-read surface). Under the zero plan ideal == online bit for bit
/// (both are produced by FaultInjector::sessions, preserving the same
/// per-(day, piece) event structure).
struct GroupTimeline {
  std::vector<graph::UserId> selection;
  /// kSuperPeer only: volunteer storekeepers widening the read surface
  /// (empty under every other regime — and under the threshold-1.0
  /// degeneracy, which is what keeps that path bit-identical).
  std::vector<graph::UserId> storekeepers;
  std::vector<Interval> online;
  /// kSocialDht only: realized union of the non-owner responsible nodes —
  /// the surface a DHT put must reach for durability.
  std::vector<Interval> store;
  std::vector<Interval> ideal;
  std::vector<Interval> hedge;
};

/// Wait from `t` until `pieces` (canonical absolute intervals) next
/// covers an instant; nullopt when nothing remains within the horizon.
std::optional<Seconds> wait_within(std::span<const Interval> pieces,
                                   SimTime t) {
  // First piece ending after t.
  const auto it = std::upper_bound(
      pieces.begin(), pieces.end(), t,
      [](SimTime v, const Interval& p) { return v < p.end; });
  if (it == pieces.end()) return std::nullopt;
  return it->start <= t ? 0 : it->start - t;
}

/// Absolute instant `pieces` next covers at or after `t`; nullopt when
/// nothing remains within the horizon.
std::optional<SimTime> arrival_within(std::span<const Interval> pieces,
                                      SimTime t) {
  const auto wait = wait_within(pieces, t);
  if (!wait) return std::nullopt;
  return t + *wait;
}

/// Per-served-user accumulation, reduced serially in cohort order.
struct UserLoad {
  KindStats read;
  KindStats feed;
  KindStats write;
  ResilienceStats res;
  RegimeStats regime;
  std::uint64_t digest = kFnvOffset;
};

/// The serving study's per-run immutable context, shared by all workers.
struct RunContext {
  const trace::Dataset& dataset;
  std::span<const DaySchedule> schedules;
  const ServingConfig& config;
  const placement::ReplicaPolicy& policy;
  std::uint64_t seed;
  std::uint64_t placement_stream;
  SimTime horizon;
  /// Resilience policy enabled (config.resilience is non-zero)?
  bool resilient;
  /// Any active flash-crowd entries in the scenario?
  bool flash;
  /// Relay availability under UnconRep: canonical outage windows clipped
  /// to the horizon (explicit plan windows — identical for every user).
  std::vector<Interval> relay_outages;
  /// Storage regime of the run (mirrors config.regime).
  placement::StorageRegime regime = placement::StorageRegime::kReplicaGroup;
  /// Scaled ring under kSocialDht; null otherwise.
  const net::SocialDht* dht = nullptr;
  /// Volunteer directory under kSuperPeer; null otherwise.
  const placement::SuperPeerDirectory* directory = nullptr;
  /// kSuperPeer churn predicate: dht_crashed over the *global* (unmixed)
  /// plan seed, so every user's assignment walk sees the same volunteer
  /// up/down state. Null outside the regime.
  const net::FaultInjector* churn = nullptr;

  bool relay_exists() const {
    return config.connectivity == placement::Connectivity::kUnconRep;
  }

  /// Wait from `t` until the relay is reachable (0 when no outage covers
  /// t). Only meaningful under UnconRep.
  Seconds relay_wait(SimTime t) const {
    const auto it = std::upper_bound(
        relay_outages.begin(), relay_outages.end(), t,
        [](SimTime v, const Interval& w) { return v < w.end; });
    if (it == relay_outages.end() || !it->contains(t)) return 0;
    return it->end - t;
  }

  net::FaultPlan plan_for(graph::UserId user) const {
    net::FaultPlan plan = config.faults;
    plan.seed = util::mix64(plan.seed, user);
    return plan;
  }

  /// Selection plus realized group sessions for `user`'s profile. A pure
  /// function of (seed, plan seed, user): identical whether the user is
  /// being served or fanned into a friend's feed.
  GroupTimeline realize_group(graph::UserId user) const {
    GroupTimeline g;
    util::Rng rng(util::mix64(placement_stream, user));
    if (regime == placement::StorageRegime::kSocialDht) {
      // The ring replaces the policy: the profile lives on the successor
      // nodes of its (socially remapped) key. The owner's local copy
      // always serves too, so the owner is dropped from the stored
      // selection on the rare ring that picks it. No draw is consumed —
      // the per-user placement stream simply goes unused.
      for (const graph::UserId n : dht->responsible_nodes(user))
        if (n != user) g.selection.push_back(n);
    } else {
      placement::PlacementContext ctx;
      ctx.user = user;
      ctx.candidates = dataset.graph.contacts(user);
      ctx.schedules = schedules;
      ctx.trace = &dataset.trace;
      ctx.connectivity = config.connectivity;
      ctx.max_replicas = config.replicas;
      g.selection = policy.select(ctx, rng);
    }
    if (regime == placement::StorageRegime::kSuperPeer) {
      // Volunteer storekeepers for a group that misses the availability
      // target; crashed volunteers are skipped (graceful re-assignment).
      // An empty directory (threshold 1.0) assigns nobody and the path
      // below is bit-identical to kReplicaGroup.
      std::vector<graph::UserId> group;
      group.reserve(g.selection.size() + 1);
      group.push_back(user);
      group.insert(group.end(), g.selection.begin(), g.selection.end());
      g.storekeepers = directory->assign_storekeepers(
          user, group, seed, [this](graph::UserId v) {
            return churn->dht_crashed(v);
          });
    }

    net::FaultInjector injector(plan_for(user));
    IntervalSet online;
    IntervalSet store;  // kSocialDht write surface: non-owner holders
    const bool dht_regime = regime == placement::StorageRegime::kSocialDht;
    const auto add_sessions = [&](std::size_t node_index,
                                  const DaySchedule& schedule) {
      for (const auto& iv :
           injector.sessions(node_index, schedule, config.workload.horizon_days)) {
        online.add(iv.start, iv.end);
        if (dht_regime && node_index > 0) store.add(iv.start, iv.end);
      }
    };
    add_sessions(0, schedules[user]);
    for (std::size_t i = 0; i < g.selection.size(); ++i)
      add_sessions(i + 1, schedules[g.selection[i]]);
    for (std::size_t i = 0; i < g.storekeepers.size(); ++i)
      add_sessions(g.selection.size() + 1 + i, schedules[g.storekeepers[i]]);
    g.online.assign(online.pieces().begin(), online.pieces().end());
    if (dht_regime) g.store.assign(store.pieces().begin(), store.pieces().end());

    if (resilient) {
      // Advertised (unfaulted) surfaces for the resilience paths, built
      // through a zero-plan injector so they share the realized surface's
      // event structure exactly — under the zero plan ideal == online.
      const auto member_schedule =
          [&](std::size_t m) -> const DaySchedule& {
        if (m == 0) return schedules[user];
        if (m <= g.selection.size()) return schedules[g.selection[m - 1]];
        return schedules[g.storekeepers[m - 1 - g.selection.size()]];
      };
      const std::size_t members =
          1 + g.selection.size() + g.storekeepers.size();
      net::FaultInjector unfaulted{net::FaultPlan{}};
      IntervalSet ideal;
      for (std::size_t m = 0; m < members; ++m)
        for (const auto& iv :
             unfaulted.sessions(m, member_schedule(m),
                                config.workload.horizon_days))
          ideal.add(iv.start, iv.end);
      g.ideal.assign(ideal.pieces().begin(), ideal.pieces().end());

      if (config.resilience.hedged_reads) {
        // Top-2 members by advertised daily online time (ties to the
        // lower member index — owner first, then selection order).
        std::size_t first = 0, second = members;
        for (std::size_t m = 1; m < members; ++m) {
          const Seconds secs = member_schedule(m).online_seconds();
          if (secs > member_schedule(first).online_seconds()) {
            second = first;
            first = m;
          } else if (second == members ||
                     secs > member_schedule(second).online_seconds()) {
            second = m;
          }
        }
        IntervalSet hedge;
        const auto add_hedge = [&](std::size_t m) {
          for (const auto& iv :
               unfaulted.sessions(m, member_schedule(m),
                                  config.workload.horizon_days))
            hedge.add(iv.start, iv.end);
        };
        add_hedge(first);
        if (second < members) add_hedge(second);
        g.hedge.assign(hedge.pieces().begin(), hedge.pieces().end());
      }
    }
    return g;
  }
};

/// Sharded memo of realized group timelines. Feed fan-in touches every
/// friend of every served user — including hubs whose greedy placement is
/// expensive — and popular profiles recur across served users, so each
/// referenced profile is realized exactly once per run. Caching cannot
/// reach a result bit: realize_group is a pure function of (seed, user),
/// and computing under the shard lock keeps the placement obs counters at
/// one realization per unique profile (a thread-count-invariant total).
/// Keyed access only — the maps are never iterated, so container order
/// cannot leak into any result.
class GroupCache {
 public:
  explicit GroupCache(const RunContext& run) : run_(run) {}

  const GroupTimeline& get(graph::UserId user) {
    Shard& shard = shards_[user % kShards];
    util::MutexLock lock(shard.mutex);
    const auto [it, inserted] = shard.groups.try_emplace(user);
    if (inserted) it->second = run_.realize_group(user);
    return it->second;
  }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    util::Mutex mutex;
    std::map<graph::UserId, GroupTimeline> groups DOSN_GUARDED_BY(mutex);
  };

  const RunContext& run_;
  std::array<Shard, kShards> shards_;
};

/// Read latency of one profile fetch at time t against `group` (nullopt:
/// unreachable within the horizon). Crypto cost is added by the caller.
std::optional<Seconds> fetch_wait(const RunContext& run,
                                  const GroupTimeline& group, SimTime t) {
  const auto group_wait = wait_within(group.online, t);
  if (!run.relay_exists()) return group_wait;
  const Seconds relay = run.relay_wait(t);
  if (!group_wait) return relay;
  return std::min(*group_wait, relay);
}

/// Instant the client gives up on fresh data: the capped-backoff retry
/// schedule summed from `t`, clipped to the deadline budget. With no
/// retries the deadline alone (or `t` itself) times the give-up.
SimTime give_up_instant(const ResiliencePolicy& p, SimTime t) {
  SimTime give_up = t;
  Seconds backoff = p.retry_backoff;
  for (int i = 0; i < p.max_retries; ++i) {
    give_up += backoff;
    backoff = std::min(p.retry_backoff_cap, backoff * 2);
  }
  if (p.deadline > 0) give_up = std::min(give_up, t + p.deadline);
  return give_up;
}

/// One resilient profile fetch: the primary (realized) wait raced against
/// the hedged and stale alternatives (serving.hpp). Every alternative is
/// no earlier than the primary under the zero plan, so the winning
/// arrival — and the request log — is bit-identical to the naive path
/// when no fault fires. Ties go to the freshest path (primary, then
/// hedge, then stale).
struct FetchOutcome {
  std::optional<SimTime> arrival;
  std::uint32_t retries = 0;
  bool hedged = false;
  bool hedge_win = false;
  bool stale_win = false;
};

FetchOutcome resilient_fetch(const RunContext& run,
                             const GroupTimeline& group, SimTime t) {
  const ResiliencePolicy& p = run.config.resilience;
  FetchOutcome out;
  const auto primary_wait = fetch_wait(run, group, t);
  std::optional<SimTime> best;
  if (primary_wait) best = t + *primary_wait;

  if (p.hedged_reads && (!best || *best > t + p.hedge_delay)) {
    // Primary not done by the hedge delay: launch the hedge against the
    // top-2 members' advertised surface.
    out.hedged = true;
    const auto hedge = arrival_within(group.hedge, t + p.hedge_delay);
    if (hedge && (!best || *hedge < *best)) {
      best = hedge;
      out.hedge_win = true;
    }
  }
  if (p.stale_failover) {
    // The freshest gossip-cached copy: retrievable from the give-up
    // instant onward whenever a group member would be online per its
    // advertised schedule, at the staleness tax.
    const auto cached = arrival_within(group.ideal, t);
    if (cached) {
      const SimTime stale =
          std::max(give_up_instant(p, t), *cached) + p.stale_read_tax;
      if (!best || stale < *best) {
        best = stale;
        out.hedge_win = false;
        out.stale_win = true;
      }
    }
  }
  if (p.max_retries > 0) {
    // Retries that actually fired: schedule instants before completion
    // (all scheduled instants when the request is never served).
    SimTime at = t;
    Seconds backoff = p.retry_backoff;
    for (int i = 0; i < p.max_retries; ++i) {
      at += backoff;
      backoff = std::min(p.retry_backoff_cap, backoff * 2);
      if (p.deadline > 0 && at > t + p.deadline) break;
      if (!best || at < *best) ++out.retries;
    }
  }
  out.arrival = best;
  return out;
}

void serve_user(const RunContext& run, GroupCache& cache, graph::UserId user,
                UserLoad& load) {
  const auto contacts = run.dataset.graph.contacts(user);
  auto requests = user_requests(run.config.workload, run.seed, user,
                                contacts.size());
  if (run.flash)
    requests = merge_requests(
        std::move(requests),
        flash_requests(run.config.workload, run.config.faults.scenario,
                       run.config.faults.seed, user, contacts.size()));

  const GroupTimeline& own = cache.get(user);
  const auto friend_group = [&](std::size_t i) -> const GroupTimeline& {
    return cache.get(contacts[i]);
  };
  const bool dht_regime =
      run.regime == placement::StorageRegime::kSocialDht;

  // Regime axes of the served user's own profile (regime-independent —
  // kReplicaGroup reports them too, which is what turns the degeneracy
  // differentials into whole-report equalities).
  load.regime.groups += 1;
  load.regime.replica_holders +=
      own.selection.size() + own.storekeepers.size();
  load.regime.storekeepers += own.storekeepers.size();
  for (const Interval& iv : own.online)
    load.regime.online_seconds += static_cast<std::uint64_t>(iv.end - iv.start);

  // Post writes run through the event-driven replica simulator: the write
  // requests become UpdateSpecs (origin 0 = the owner) and ConRep
  // durability is the realized anti-entropy arrival at the first
  // non-origin replica, under the same per-user fault plan the read path
  // realizes its sessions from.
  std::vector<net::UpdateSpec> writes;
  for (const auto& r : requests)
    if (r.kind == RequestKind::kPostWrite)
      writes.push_back({r.time, 0});
  net::ReplicaSimReport write_report;
  const bool simulate_writes =
      !writes.empty() && !own.selection.empty() && !dht_regime &&
      run.config.connectivity == placement::Connectivity::kConRep;
  if (simulate_writes) {
    std::vector<DaySchedule> nodes;
    nodes.reserve(own.selection.size() + 1);
    nodes.push_back(run.schedules[user]);
    for (const auto holder : own.selection)
      nodes.push_back(run.schedules[holder]);
    net::ReplicaSimConfig sim_config;
    sim_config.connectivity = run.config.connectivity;
    sim_config.horizon_days = run.config.workload.horizon_days;
    sim_config.faults = run.plan_for(user);
    write_report = net::simulate_replica_group(nodes, writes, sim_config);
  }
  // Upload surface for UnconRep writes: owner online while the relay is
  // up (own.online includes the replicas; re-derive the owner's sessions
  // alone only when needed).
  std::vector<Interval> upload;
  if (run.relay_exists() && !writes.empty()) {
    net::FaultInjector injector(run.plan_for(user));
    IntervalSet owner_online;
    for (const auto& iv : injector.sessions(0, run.schedules[user],
                                            run.config.workload.horizon_days))
      owner_online.add(iv.start, iv.end);
    IntervalSet outages{std::vector<Interval>(run.relay_outages.begin(),
                                              run.relay_outages.end())};
    const auto up = owner_online.subtract(outages);
    upload.assign(up.pieces().begin(), up.pieces().end());
  }

  ServeMetrics& metrics = serve_metrics();
  const Seconds crypto = run.config.crypto_op_cost;
  const auto note_fetch = [&load](const FetchOutcome& o) {
    load.res.retries += o.retries;
    if (o.hedged) ++load.res.hedges;
    if (o.hedge_win) ++load.res.hedge_wins;
    if (o.stale_win) ++load.res.stale_served;
  };
  std::vector<SimTime> arrivals;  // feed scratch, reused across requests
  std::vector<graph::UserId> feed_owners;  // DHT fan-in scratch
  std::size_t write_index = 0;
  for (const auto& r : requests) {
    std::optional<Seconds> latency;
    // Extra wait the storage regime itself charges this request (DHT
    // routing hops at hop_cost each); 0 outside kSocialDht. Applied after
    // the switch so every exit path of every kind pays it uniformly.
    Seconds regime_tax = 0;
    switch (r.kind) {
      case RequestKind::kProfileRead: {
        if (contacts.empty()) {
          latency = 0;
        } else {
          const std::size_t target = r.target_index % contacts.size();
          if (dht_regime) {
            const auto l = run.dht->lookup_from(user, contacts[target]);
            ++load.regime.lookups;
            load.regime.lookup_hops += l.hops;
            regime_tax = run.config.social_dht.hop_cost *
                         static_cast<Seconds>(l.hops);
          }
          if (!run.resilient) {
            latency = fetch_wait(run, friend_group(target), r.time);
          } else {
            const auto o = resilient_fetch(run, friend_group(target), r.time);
            note_fetch(o);
            if (o.arrival) latency = *o.arrival - r.time;
          }
        }
        if (latency) *latency += crypto;
        break;
      }
      case RequestKind::kFeedAssembly: {
        if (dht_regime) {
          // Fan-in resolution: every friend's key is resolved, but a
          // friend whose owner node was already contacted by this feed is
          // a replica-locality hit and routes for free — the payoff of
          // the socially-aware remap (cluster-mates share owner arcs).
          feed_owners.clear();
          std::size_t route_hops = 0;
          for (std::size_t i = 0; i < contacts.size(); ++i) {
            const graph::UserId owner = run.dht->owner_of(contacts[i]);
            ++load.regime.lookups;
            if (std::find(feed_owners.begin(), feed_owners.end(), owner) !=
                feed_owners.end()) {
              ++load.regime.locality_hits;
            } else {
              feed_owners.push_back(owner);
              const auto l = run.dht->lookup_from(user, contacts[i]);
              load.regime.lookup_hops += l.hops;
              route_hops += l.hops;
            }
          }
          regime_tax = run.config.social_dht.hop_cost *
                       static_cast<Seconds>(route_hops);
        }
        const Seconds fan_crypto =
            crypto * static_cast<Seconds>(contacts.size());
        if (!run.resilient) {
          // Fan-in: the feed completes with the slowest friend fetch; one
          // unreachable friend leaves the feed unassembled (unserved).
          Seconds slowest = 0;
          bool complete = true;
          for (std::size_t i = 0; i < contacts.size(); ++i) {
            const auto wait = fetch_wait(run, friend_group(i), r.time);
            if (!wait) {
              complete = false;
              break;
            }
            slowest = std::max(slowest, *wait);
          }
          if (complete) {
            latency = slowest + fan_crypto;
            load.res.feed_coverage_sum += 1.0;
            ++load.res.feed_coverage_count;
          }
          break;
        }
        // Resilient fan-in: every friend fetched through the resilient
        // path; a feed whose slowest fetches blow the feed budget is
        // served partial at the budget instant when coverage allows
        // (serving.hpp). The budget is never below the ideal feed
        // completion, so under the zero plan the full-serve branch is
        // always taken and the outcome matches the naive path bit for
        // bit.
        const ResiliencePolicy& p = run.config.resilience;
        arrivals.clear();
        bool reachable = true;
        SimTime done = r.time;
        bool budgetable = p.degrade_feeds;
        SimTime ideal_done = r.time;
        for (std::size_t i = 0; i < contacts.size(); ++i) {
          const GroupTimeline& fg = friend_group(i);
          const auto o = resilient_fetch(run, fg, r.time);
          note_fetch(o);
          if (o.arrival) {
            arrivals.push_back(*o.arrival);
            done = std::max(done, *o.arrival);
          } else {
            reachable = false;
          }
          if (budgetable) {
            const auto ideal = arrival_within(fg.ideal, r.time);
            if (ideal)
              ideal_done = std::max(ideal_done, *ideal);
            else
              budgetable = false;
          }
        }
        const SimTime budget = std::max(
            ideal_done, r.time + std::max(p.deadline, run.config.slo));
        double coverage = -1.0;
        if (reachable && done <= budget) {
          latency = done - r.time + fan_crypto;
          coverage = 1.0;
        } else if (budgetable) {
          std::size_t kept = 0;
          for (const SimTime a : arrivals)
            if (a <= budget) ++kept;
          const double cov =
              contacts.empty() ? 1.0
                               : static_cast<double>(kept) /
                                     static_cast<double>(contacts.size());
          if (cov >= p.feed_min_coverage) {
            latency = budget - r.time + fan_crypto;
            coverage = cov;
            ++load.res.degraded_feeds;
          } else if (reachable) {
            latency = done - r.time + fan_crypto;
            coverage = 1.0;
          }
        } else if (reachable) {
          latency = done - r.time + fan_crypto;
          coverage = 1.0;
        }
        if (coverage >= 0.0) {
          load.res.feed_coverage_sum += coverage;
          ++load.res.feed_coverage_count;
        }
        break;
      }
      case RequestKind::kPostWrite: {
        const std::size_t index = write_index++;
        if (dht_regime) {
          // A DHT put is durable once it reaches the first non-owner
          // responsible node — the wait until the realized store surface
          // next covers an instant. A ring too small to have one (the
          // owner is the whole responsible set) stores locally.
          latency = own.selection.empty()
                        ? std::optional<Seconds>(0)
                        : wait_within(own.store, r.time);
        } else if (run.relay_exists()) {
          latency = wait_within(upload, r.time);
        } else if (!simulate_writes) {
          latency = 0;  // single-node group: local durability
        } else {
          const auto arrival =
              net::first_non_origin_arrival(write_report.deliveries[index]);
          if (arrival) latency = *arrival - r.time;
        }
        if (latency)
          *latency += crypto * static_cast<Seconds>(1 + own.selection.size());
        break;
      }
    }
    if (latency) *latency += regime_tax;

    KindStats& stats = r.kind == RequestKind::kProfileRead ? load.read
                       : r.kind == RequestKind::kFeedAssembly ? load.feed
                                                              : load.write;
    ++stats.requests;
    if (latency) {
      stats.latency.record(*latency);
      if (*latency > run.config.slo) ++stats.slo_misses;
      obs::Histogram& h = r.kind == RequestKind::kProfileRead ? metrics.read
                          : r.kind == RequestKind::kFeedAssembly
                              ? metrics.feed
                              : metrics.write;
      h.record(*latency);
    } else {
      ++stats.unserved;
      ++stats.slo_misses;
    }

    fnv_mix(load.digest, static_cast<std::uint64_t>(r.kind));
    fnv_mix(load.digest, static_cast<std::uint64_t>(r.time));
    fnv_mix(load.digest,
            latency ? static_cast<std::uint64_t>(*latency) + 1 : 0);
  }

  metrics.requests.add(requests.size());
  metrics.unserved.add(load.read.unserved + load.feed.unserved +
                       load.write.unserved);
  metrics.slo_misses.add(load.read.slo_misses + load.feed.slo_misses +
                         load.write.slo_misses);
  if (run.resilient) {
    metrics.retries.add(load.res.retries);
    metrics.hedges.add(load.res.hedges);
    metrics.hedge_wins.add(load.res.hedge_wins);
    metrics.stale_served.add(load.res.stale_served);
    metrics.degraded_feeds.add(load.res.degraded_feeds);
  }
  if (run.regime != placement::StorageRegime::kReplicaGroup) {
    metrics.dht_lookups.add(load.regime.lookups);
    metrics.dht_lookup_hops.add(load.regime.lookup_hops);
    metrics.dht_locality_hits.add(load.regime.locality_hits);
    metrics.storekeepers.add(load.regime.storekeepers);
  }
}

void merge_kind(KindStats& into, const KindStats& from) {
  into.latency.merge(from.latency);
  into.requests += from.requests;
  into.unserved += from.unserved;
  into.slo_misses += from.slo_misses;
}

void merge_res(ResilienceStats& into, const ResilienceStats& from) {
  into.retries += from.retries;
  into.hedges += from.hedges;
  into.hedge_wins += from.hedge_wins;
  into.stale_served += from.stale_served;
  into.degraded_feeds += from.degraded_feeds;
  into.feed_coverage_sum += from.feed_coverage_sum;
  into.feed_coverage_count += from.feed_coverage_count;
}

void merge_regime(RegimeStats& into, const RegimeStats& from) {
  into.groups += from.groups;
  into.replica_holders += from.replica_holders;
  into.storekeepers += from.storekeepers;
  into.online_seconds += from.online_seconds;
  into.lookups += from.lookups;
  into.lookup_hops += from.lookup_hops;
  into.locality_hits += from.locality_hits;
}

}  // namespace

void validate(const ResiliencePolicy& policy) {
  if (policy.hedge_delay < 0)
    throw ConfigError("resilience: hedge_delay must be >= 0");
  if (policy.stale_read_tax < 0)
    throw ConfigError("resilience: stale_read_tax must be >= 0");
  if (policy.max_retries < 0 || policy.max_retries > 32)
    throw ConfigError("resilience: max_retries must be in [0, 32]");
  if (policy.max_retries > 0) {
    if (policy.retry_backoff <= 0)
      throw ConfigError("resilience: retry_backoff must be > 0");
    if (policy.retry_backoff_cap < policy.retry_backoff)
      throw ConfigError("resilience: retry_backoff_cap must be >= retry_backoff");
  }
  if (policy.deadline < 0)
    throw ConfigError("resilience: deadline must be >= 0");
  if (policy.feed_min_coverage < 0.0 || policy.feed_min_coverage > 1.0)
    throw ConfigError("resilience: feed_min_coverage must be in [0, 1]");
}

void validate(const ServingConfig& config) {
  validate(config.workload);
  net::validate(config.faults);
  validate(config.resilience);
  net::validate(config.social_dht);
  placement::validate(config.super_peer);
  if (config.regime != placement::StorageRegime::kReplicaGroup &&
      config.connectivity != placement::Connectivity::kConRep)
    throw ConfigError(
        "serving: DHT and super-peer regimes require ConRep connectivity");
  if (config.crypto_op_cost < 0)
    throw ConfigError("serving: crypto_op_cost must be >= 0");
  if (config.slo < 0)
    throw ConfigError("serving: slo must be >= 0");
}

ServingReport run_serving_study(const trace::Dataset& dataset,
                                std::span<const DaySchedule> schedules,
                                std::span<const graph::UserId> cohort,
                                std::uint64_t seed,
                                const ServingConfig& config,
                                util::ThreadPool* pool) {
  validate(config);
  DOSN_REQUIRE(schedules.size() == dataset.num_users(),
               "serving: schedules must span every user");

  const std::size_t served =
      config.served_users == 0
          ? cohort.size()
          : std::min(config.served_users, cohort.size());

  const auto policy =
      placement::make_policy(config.policy, config.policy_params);

  // Regime substrates, built once and shared read-only by every worker.
  std::optional<net::SocialDht> dht;
  std::optional<placement::SuperPeerDirectory> directory;
  std::optional<net::FaultInjector> churn;
  if (config.regime == placement::StorageRegime::kSocialDht)
    dht.emplace(dataset.graph, config.social_dht);
  if (config.regime == placement::StorageRegime::kSuperPeer) {
    directory.emplace(schedules, config.super_peer);
    churn.emplace(config.faults);  // global seed: shared volunteer state
  }

  RunContext run{
      .dataset = dataset,
      .schedules = schedules,
      .config = config,
      .policy = *policy,
      .seed = seed,
      .placement_stream = util::mix64(seed, kPlacementTag),
      .horizon = static_cast<SimTime>(config.workload.horizon_days) *
                 interval::kDaySeconds,
      .resilient = !config.resilience.zero(),
      .flash = std::any_of(config.faults.scenario.flash_crowds.begin(),
                           config.faults.scenario.flash_crowds.end(),
                           [](const net::FlashCrowd& c) { return c.active(); }),
      .relay_outages = {},
      .regime = config.regime,
      .dht = dht ? &*dht : nullptr,
      .directory = directory ? &*directory : nullptr,
      .churn = churn ? &*churn : nullptr,
  };

  if (run.relay_exists()) {
    IntervalSet outages;
    for (const auto& w : config.faults.relay_outages) {
      const SimTime start = std::min<SimTime>(w.start, run.horizon);
      const SimTime end = std::min<SimTime>(w.end, run.horizon);
      if (start < end) outages.add(start, end);
    }
    run.relay_outages.assign(outages.pieces().begin(),
                             outages.pieces().end());
  }

  // Fan out into per-index slots; stealing reorders execution only.
  GroupCache cache(run);
  std::vector<UserLoad> loads(served);
  util::parallel_for_each(pool, served, [&](std::size_t i) {
    serve_user(run, cache, cohort[i], loads[i]);
  });

  // Serial reduction in cohort order: the one floating-point-free fold
  // that makes every aggregate (and the checksum) thread-count invariant.
  ServingReport report;
  report.served_users = served;
  report.horizon = run.horizon;
  report.request_log_checksum = kFnvOffset;
  for (std::size_t i = 0; i < served; ++i) {
    merge_kind(report.read, loads[i].read);
    merge_kind(report.feed, loads[i].feed);
    merge_kind(report.write, loads[i].write);
    merge_res(report.resilience, loads[i].res);
    merge_regime(report.regime, loads[i].regime);
    fnv_mix(report.request_log_checksum,
            static_cast<std::uint64_t>(cohort[i]));
    fnv_mix(report.request_log_checksum, loads[i].digest);
  }
  report.latency.merge(report.read.latency);
  report.latency.merge(report.feed.latency);
  report.latency.merge(report.write.latency);
  report.requests =
      report.read.requests + report.feed.requests + report.write.requests;
  report.unserved =
      report.read.unserved + report.feed.unserved + report.write.unserved;
  report.slo_misses = report.read.slo_misses + report.feed.slo_misses +
                      report.write.slo_misses;
  report.served = report.requests - report.unserved;
  return report;
}

}  // namespace dosn::serve
