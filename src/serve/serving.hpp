// Request-level serving study: what a user actually waits for.
//
// Every prior metric in this repository is analytic or sim-aggregate
// (schedule-level availability, worst-case propagation delay). This layer
// issues *requests* — profile reads, feed assemblies, post writes — from a
// deterministic per-user workload (serve/workload.hpp) against the replica
// placements a policy chose, and measures the latency each request
// realizes under churn and injected faults (DESIGN.md §14):
//
//   * profile read of friend f — wait from the request instant until any
//     member of f's replica group (f plus f's selected replicas) is
//     online under the *realized* (fault-degraded) sessions; under
//     UnconRep the persistent store serves immediately whenever the relay
//     is up, so the wait is min(relay wait, group wait).
//   * feed assembly — fan-in: the max of the per-friend profile-read
//     waits over all contacts (the feed completes with the slowest
//     fetch); unreachable within the horizon => the request is unserved.
//   * post write — durability latency. Under ConRep the write is injected
//     into net::simulate_replica_group as an UpdateSpec and the latency
//     is the earliest arrival at a non-origin replica (anti-entropy
//     durability, realized by the event-driven simulator under the same
//     fault realization as the read path). Under UnconRep it is the wait
//     until the owner is next online while the relay is up (upload to the
//     persistent store). A single-node group writes locally (latency 0)
//     under ConRep.
//
// A DECENT-style crypto-cost knob taxes every object operation: reads add
// one op, feeds one per friend profile, writes 1 + |selection| ops
// (encrypt plus per-replica key distribution), modeling per-op
// cryptography on the serving path (Jahid et al.).
//
// Determinism discipline (same as the study engine): placements are
// selected on the *ideal* schedules from per-user streams
// mix64(mix64(seed, kPlacementTag), user); fault realizations come from
// per-user plans whose seed is mix64(plan.seed, user), so a user's group
// realization is identical whether it is being served or fanned into a
// friend's feed, and scaled() plans stay nested across intensities.
// Users fan out over a util::ThreadPool into per-index slots and reduce
// serially in cohort order: the request-log checksum is bit-identical
// over every thread count and DOSN_OBS setting.
#pragma once

#include <cstdint>
#include <span>

#include "net/fault.hpp"
#include "placement/policy.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/workload.hpp"
#include "trace/dataset.hpp"
#include "util/thread_pool.hpp"

namespace dosn::serve {

struct ServingConfig {
  WorkloadConfig workload;
  placement::PolicyKind policy = placement::PolicyKind::kMaxAv;
  placement::PolicyParams policy_params;
  placement::Connectivity connectivity = placement::Connectivity::kConRep;
  /// Replica budget per profile (the sweep's k).
  std::size_t replicas = 5;
  /// Fault scenario; the zero plan serves ideal schedules. Realizations
  /// are per-user-seeded (mix64(faults.seed, user)) and nested across
  /// scaled() intensities.
  net::FaultPlan faults;
  /// DECENT-style per-crypto-op latency tax in seconds (0 = off).
  Seconds crypto_op_cost = 0;
  /// A served request slower than this misses its SLO; unserved requests
  /// always miss.
  Seconds slo = 600;
  /// Serve only the first `served_users` cohort members (0 = all).
  std::size_t served_users = 0;
};

/// Throws ConfigError on out-of-range knobs.
void validate(const ServingConfig& config);

/// Aggregate over one request kind.
struct KindStats {
  LatencyHistogram latency;  ///< served requests only
  std::uint64_t requests = 0;
  std::uint64_t unserved = 0;    ///< not serveable within the horizon
  std::uint64_t slo_misses = 0;  ///< served-too-slow plus unserved

  friend bool operator==(const KindStats&, const KindStats&) = default;
};

struct ServingReport {
  KindStats read;
  KindStats feed;
  KindStats write;
  LatencyHistogram latency;  ///< all served requests
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t unserved = 0;
  std::uint64_t slo_misses = 0;
  std::size_t served_users = 0;
  Seconds horizon = 0;
  /// Order-sensitive FNV-1a digest over (user, kind, time, latency) of
  /// every request in cohort-then-time order; unserved requests
  /// contribute a distinct sentinel. Bit-identical across thread counts —
  /// the bench's parallel-correctness probe.
  std::uint64_t request_log_checksum = 0;

  double slo_miss_fraction() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(slo_misses) / static_cast<double>(requests);
  }
  /// Requests served within the SLO per simulated second.
  double goodput_rps() const {
    return horizon <= 0 ? 0.0
                        : static_cast<double>(requests - slo_misses) /
                              static_cast<double>(horizon);
  }

  friend bool operator==(const ServingReport&, const ServingReport&) = default;
};

/// Runs the serving study over `cohort` (truncated to
/// config.served_users). `schedules` spans every user of the dataset —
/// the ideal advertised schedules placements are chosen on. Fans out over
/// `pool` (null or single-threaded = serial reference order).
ServingReport run_serving_study(const trace::Dataset& dataset,
                                std::span<const interval::DaySchedule> schedules,
                                std::span<const graph::UserId> cohort,
                                std::uint64_t seed,
                                const ServingConfig& config,
                                util::ThreadPool* pool = nullptr);

}  // namespace dosn::serve
