// Request-level serving study: what a user actually waits for.
//
// Every prior metric in this repository is analytic or sim-aggregate
// (schedule-level availability, worst-case propagation delay). This layer
// issues *requests* — profile reads, feed assemblies, post writes — from a
// deterministic per-user workload (serve/workload.hpp) against the replica
// placements a policy chose, and measures the latency each request
// realizes under churn and injected faults (DESIGN.md §14):
//
//   * profile read of friend f — wait from the request instant until any
//     member of f's replica group (f plus f's selected replicas) is
//     online under the *realized* (fault-degraded) sessions; under
//     UnconRep the persistent store serves immediately whenever the relay
//     is up, so the wait is min(relay wait, group wait).
//   * feed assembly — fan-in: the max of the per-friend profile-read
//     waits over all contacts (the feed completes with the slowest
//     fetch); unreachable within the horizon => the request is unserved.
//   * post write — durability latency. Under ConRep the write is injected
//     into net::simulate_replica_group as an UpdateSpec and the latency
//     is the earliest arrival at a non-origin replica (anti-entropy
//     durability, realized by the event-driven simulator under the same
//     fault realization as the read path). Under UnconRep it is the wait
//     until the owner is next online while the relay is up (upload to the
//     persistent store). A single-node group writes locally (latency 0)
//     under ConRep.
//
// A DECENT-style crypto-cost knob taxes every object operation: reads add
// one op, feeds one per friend profile, writes 1 + |selection| ops
// (encrypt plus per-replica key distribution), modeling per-op
// cryptography on the serving path (Jahid et al.).
//
// Determinism discipline (same as the study engine): placements are
// selected on the *ideal* schedules from per-user streams
// mix64(mix64(seed, kPlacementTag), user); fault realizations come from
// per-user plans whose seed is mix64(plan.seed, user), so a user's group
// realization is identical whether it is being served or fanned into a
// friend's feed, and scaled() plans stay nested across intensities.
// Users fan out over a util::ThreadPool into per-index slots and reduce
// serially in cohort order: the request-log checksum is bit-identical
// over every thread count and DOSN_OBS setting.
#pragma once

#include <cstdint>
#include <span>

#include "net/fault.hpp"
#include "net/social_dht.hpp"
#include "placement/policy.hpp"
#include "placement/super_peer.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/workload.hpp"
#include "trace/dataset.hpp"
#include "util/thread_pool.hpp"

namespace dosn::serve {

/// Client-side resilience on the serving path (DESIGN.md §15). Every
/// mechanism is formulated as an *alternative arrival* the client races
/// against the primary wait, each alternative provably no earlier than
/// the primary under the zero FaultPlan — so an enabled policy under the
/// zero plan reproduces the naive request log bit for bit, and under
/// faults a resilient request is never served later than its naive
/// counterpart:
///
///   * hedged reads   — after `hedge_delay` without primary completion
///     the client re-issues the read to the top-2 availability-ranked
///     replica-group members over the hardened gossip path, which serves
///     on their *advertised* (ideal) schedules: the retransmission
///     machinery masks the transient faults the primary wait is exposed
///     to, at the cost of the hedge delay and the duplicated work the
///     hedge counters record.
///   * stale failover — once the retry budget is exhausted (the capped-
///     backoff schedule below, clipped to `deadline`), the client
///     falls back to the freshest gossip-cached copy, retrievable from
///     the give-up instant onward whenever any group member would be
///     online per its advertised schedule, at a `stale_read_tax`.
///   * retries        — capped exponential backoff (retry_backoff,
///     doubling, capped at retry_backoff_cap, at most max_retries). A
///     retry against the realized group timeline can never complete
///     earlier, so the schedule's role is to *time the give-up* that
///     unlocks stale failover; the retry counters measure wasted work.
///   * feed degradation — a feed whose slowest friends blow the feed
///     budget (max of the ideal feed completion, the deadline and the
///     SLO — degrading below the SLO would trade a hit for a miss) is
///     served partial at the budget instant when the covered fraction of
///     friends reaches `feed_min_coverage`, instead of an unserved miss.
struct ResiliencePolicy {
  bool hedged_reads = false;
  Seconds hedge_delay = 300;
  bool stale_failover = false;
  Seconds stale_read_tax = 120;
  int max_retries = 3;
  Seconds retry_backoff = 60;
  Seconds retry_backoff_cap = 960;
  /// Per-request deadline budget in seconds; clips the retry schedule.
  /// 0 = the backoff sum alone times the give-up.
  Seconds deadline = 0;
  bool degrade_feeds = false;
  /// Minimum served fraction of friends for a degraded (partial) feed.
  double feed_min_coverage = 0.5;

  /// True when no mechanism is enabled (the naive serving path).
  bool zero() const {
    return !hedged_reads && !stale_failover && !degrade_feeds;
  }
  friend bool operator==(const ResiliencePolicy&, const ResiliencePolicy&) =
      default;
};

/// Throws ConfigError on out-of-range knobs.
void validate(const ResiliencePolicy& policy);

struct ServingConfig {
  WorkloadConfig workload;
  placement::PolicyKind policy = placement::PolicyKind::kMaxAv;
  placement::PolicyParams policy_params;
  placement::Connectivity connectivity = placement::Connectivity::kConRep;
  /// Storage regime profiles are served from (DESIGN.md §16):
  ///   * kReplicaGroup — the paper's regime: the policy's selection
  ///     under ConRep/UnconRep (every knob below applies unchanged);
  ///   * kSocialDht    — profiles live on the successor nodes of the
  ///     socially-remapped ring in `social_dht`; the policy is bypassed,
  ///     reads pay lookup hops (taxed at social_dht.hop_cost), and a
  ///     write waits for the first non-owner responsible node;
  ///   * kSuperPeer    — the policy selection extended by volunteer
  ///     storekeepers from `super_peer` for profiles whose group misses
  ///     the availability target; storekeepers widen the read surface
  ///     only (writes stay on the replica group, so volunteer_threshold
  ///     = 1.0 — an empty directory — reproduces kReplicaGroup bit for
  ///     bit).
  /// DHT and super-peer regimes require ConRep connectivity: the regime
  /// itself replaces the UnconRep relay.
  placement::StorageRegime regime = placement::StorageRegime::kReplicaGroup;
  /// Ring knobs of the kSocialDht regime (ignored otherwise).
  net::SocialDhtConfig social_dht;
  /// Storekeeper knobs of the kSuperPeer regime (ignored otherwise).
  placement::SuperPeerConfig super_peer;
  /// Replica budget per profile (the sweep's k).
  std::size_t replicas = 5;
  /// Fault scenario; the zero plan serves ideal schedules. Realizations
  /// are per-user-seeded (mix64(faults.seed, user)) and nested across
  /// scaled() intensities.
  net::FaultPlan faults;
  /// Client-side resilience mechanisms; the default policy is the naive
  /// serving path (zero()). An enabled policy under the zero fault plan
  /// reproduces the naive request log bit for bit.
  ResiliencePolicy resilience;
  /// DECENT-style per-crypto-op latency tax in seconds (0 = off).
  Seconds crypto_op_cost = 0;
  /// A served request slower than this misses its SLO; unserved requests
  /// always miss.
  Seconds slo = 600;
  /// Serve only the first `served_users` cohort members (0 = all).
  std::size_t served_users = 0;
};

/// Throws ConfigError on out-of-range knobs.
void validate(const ServingConfig& config);

/// Aggregate over one request kind.
struct KindStats {
  LatencyHistogram latency;  ///< served requests only
  std::uint64_t requests = 0;
  std::uint64_t unserved = 0;    ///< not serveable within the horizon
  std::uint64_t slo_misses = 0;  ///< served-too-slow plus unserved

  friend bool operator==(const KindStats&, const KindStats&) = default;
};

/// Resilience-path effort and outcome totals (all zero on the naive
/// path except feed coverage, which records 1.0 per served full feed).
/// Every field is a pure function of the run's timelines, so the totals
/// are bit-identical across thread counts and DOSN_OBS settings.
struct ResilienceStats {
  std::uint64_t retries = 0;        ///< retry attempts actually fired
  std::uint64_t hedges = 0;         ///< hedged reads launched
  std::uint64_t hedge_wins = 0;     ///< requests the hedge served first
  std::uint64_t stale_served = 0;   ///< requests served from a stale copy
  std::uint64_t degraded_feeds = 0; ///< feeds served partial
  /// Sum / count of per-served-feed coverage fractions (full feed = 1.0).
  double feed_coverage_sum = 0.0;
  std::uint64_t feed_coverage_count = 0;

  double feed_coverage_mean() const {
    return feed_coverage_count == 0
               ? 1.0
               : feed_coverage_sum /
                     static_cast<double>(feed_coverage_count);
  }
  friend bool operator==(const ResilienceStats&, const ResilienceStats&) =
      default;
};

/// Storage-regime aggregates: the four comparison axes of the regime
/// ablation (availability / access delay / replication degree / lookup
/// hops — bench/ablation_storage_regimes). Accumulated per served user
/// from that user's own realized group and the DHT resolutions of its
/// read path, and reduced serially in cohort order — every field is
/// integer math, bit-identical across thread counts and DOSN_OBS
/// settings. All lookup fields stay zero outside kSocialDht; the
/// group fields are regime-independent (kReplicaGroup reports them
/// too, which is what makes the degeneracy differentials whole-report
/// equalities).
struct RegimeStats {
  std::uint64_t groups = 0;          ///< served users' profiles realized
  std::uint64_t replica_holders = 0; ///< group members beyond the owner
  std::uint64_t storekeepers = 0;    ///< super-peer assignments among them
  std::uint64_t online_seconds = 0;  ///< realized group-union online time
  std::uint64_t lookups = 0;         ///< DHT profile-key resolutions
  std::uint64_t lookup_hops = 0;     ///< greedy-route hops actually paid
  std::uint64_t locality_hits = 0;   ///< fan-in hits on a contacted owner

  /// Mean fraction of the horizon a served user's realized group union
  /// is online — the regime ablation's availability axis.
  double availability(Seconds horizon) const {
    return groups == 0 || horizon <= 0
               ? 0.0
               : static_cast<double>(online_seconds) /
                     (static_cast<double>(groups) *
                      static_cast<double>(horizon));
  }
  /// Mean group members beyond the owner (storekeepers included).
  double replication_degree() const {
    return groups == 0 ? 0.0
                       : static_cast<double>(replica_holders) /
                             static_cast<double>(groups);
  }
  /// Mean greedy-route hops per resolution (locality hits pay none).
  double mean_lookup_hops() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(lookup_hops) /
                              static_cast<double>(lookups);
  }
  friend bool operator==(const RegimeStats&, const RegimeStats&) = default;
};

struct ServingReport {
  KindStats read;
  KindStats feed;
  KindStats write;
  ResilienceStats resilience;
  RegimeStats regime;
  LatencyHistogram latency;  ///< all served requests
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t unserved = 0;
  std::uint64_t slo_misses = 0;
  std::size_t served_users = 0;
  Seconds horizon = 0;
  /// Order-sensitive FNV-1a digest over (user, kind, time, latency) of
  /// every request in cohort-then-time order; unserved requests
  /// contribute a distinct sentinel. Bit-identical across thread counts —
  /// the bench's parallel-correctness probe.
  std::uint64_t request_log_checksum = 0;

  double slo_miss_fraction() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(slo_misses) / static_cast<double>(requests);
  }
  /// Requests served within the SLO per simulated second.
  double goodput_rps() const {
    return horizon <= 0 ? 0.0
                        : static_cast<double>(requests - slo_misses) /
                              static_cast<double>(horizon);
  }

  friend bool operator==(const ServingReport&, const ServingReport&) = default;
};

/// Runs the serving study over `cohort` (truncated to
/// config.served_users). `schedules` spans every user of the dataset —
/// the ideal advertised schedules placements are chosen on. Fans out over
/// `pool` (null or single-threaded = serial reference order).
ServingReport run_serving_study(const trace::Dataset& dataset,
                                std::span<const interval::DaySchedule> schedules,
                                std::span<const graph::UserId> cohort,
                                std::uint64_t seed,
                                const ServingConfig& config,
                                util::ThreadPool* pool = nullptr);

}  // namespace dosn::serve
