#include "sim/streaming.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "graph/degree_stats.hpp"
#include "obs/obs.hpp"
#include "sim/cohort_accum.hpp"

namespace dosn::sim {
namespace {

/// Streaming-engine volume counters. The counter names shared with the
/// seed engine (users/cells) resolve to the same registry entries, so
/// reports aggregate both paths; shards_evaluated is streaming-only.
struct StreamingMetrics {
  obs::Counter& users_evaluated =
      obs::Registry::global().counter("sim.users_evaluated");
  obs::Counter& sweep_cells =
      obs::Registry::global().counter("sim.sweep_cells");
  obs::Counter& shards_evaluated =
      obs::Registry::global().counter("sim.shards_evaluated");
};

StreamingMetrics& streaming_metrics() {
  static StreamingMetrics m;
  return m;
}

}  // namespace

StreamingStudy::StreamingStudy(const trace::Dataset& dataset,
                               std::uint64_t seed)
    : dataset_(dataset), seed_(seed) {}

std::vector<graph::UserId> StreamingStudy::cohort(std::size_t degree,
                                                  std::size_t limit) const {
  auto users = graph::users_with_degree(dataset_.graph, degree);
  if (limit > 0 && users.size() > limit) users.resize(limit);
  return users;
}

std::vector<CohortMetrics> StreamingStudy::evaluate_policy_sharded(
    std::span<const DaySchedule> schedules,
    std::span<const graph::UserId> cohort_users,
    const placement::ReplicaPolicy& policy,
    placement::Connectivity connectivity, std::size_t k_max,
    std::uint64_t stream_seed, std::size_t shard_size,
    util::ThreadPool& pool) const {
  obs::ScopedTimer span("streaming.evaluate_policy");
  const std::size_t n = cohort_users.size();
  const std::size_t shard = std::max<std::size_t>(1, shard_size);
  const std::size_t num_shards = (n + shard - 1) / shard;
  const std::size_t stride = k_max + 1;
  streaming_metrics().sweep_cells.add(1);
  streaming_metrics().users_evaluated.add(n);
  streaming_metrics().shards_evaluated.add(num_shards);

  // Phase 1 (parallel): one task per shard. Each task owns a per-shard
  // arena — the EvalScratch and the shard's flat row buffer — reused
  // across the shard's users, and each user draws from the same
  // mix64(stream_seed, user_id) stream the seed engine uses.
  std::vector<std::vector<UserMetrics>> shard_rows(num_shards);
  util::parallel_for_each(&pool, num_shards, [&](std::size_t s) {
    const std::size_t begin = s * shard;
    const std::size_t end = std::min(n, begin + shard);
    EvalScratch scratch;
    std::vector<UserMetrics> user_rows;
    auto& rows = shard_rows[s];
    rows.reserve((end - begin) * stride);
    for (std::size_t i = begin; i < end; ++i) {
      const graph::UserId u = cohort_users[i];
      placement::PlacementContext context;
      context.user = u;
      context.candidates = dataset_.graph.contacts(u);
      context.schedules = schedules;
      context.trace = &dataset_.trace;
      context.connectivity = connectivity;
      context.max_replicas = k_max;
      util::Rng rng(util::mix64(stream_seed, u));
      const auto selected = policy.select(context, rng);
      evaluate_user_prefixes(dataset_, schedules, u, selected, connectivity,
                             k_max, scratch, user_rows);
      DOSN_ASSERT(user_rows.size() == stride);
      rows.insert(rows.end(), user_rows.begin(), user_rows.end());
    }
  });

  // Phase 2 (serial): shard-ordered reduction. Walking shards in index
  // order and users in order within each shard visits users in exactly
  // cohort index order — the seed engine's accumulation order — so the
  // result is bit-identical for every shard size and thread count.
  std::vector<detail::CohortAccum> accum(stride);
  for (const auto& rows : shard_rows) {
    DOSN_ASSERT(rows.size() % stride == 0);
    for (std::size_t off = 0; off < rows.size(); off += stride)
      for (std::size_t k = 0; k <= k_max; ++k) accum[k].add(rows[off + k]);
  }
  std::vector<CohortMetrics> out;
  out.reserve(stride);
  for (const auto& a : accum) out.push_back(a.mean());
  return out;
}

SweepResult StreamingStudy::sweep_over_schedules(
    std::span<const std::vector<DaySchedule>> schedules,
    bool model_randomized, std::string_view model_name,
    placement::Connectivity connectivity, const Options& options) const {
  obs::ScopedTimer span("streaming.replication_sweep");
  const auto cohort_users =
      cohort(options.cohort_degree, options.cohort_limit);
  DOSN_REQUIRE(!cohort_users.empty(),
               "replication_sweep: no user has the cohort degree");
  DOSN_REQUIRE(!schedules.empty(),
               "replication_sweep: no schedule realization");

  SweepResult result;
  result.dataset_name = dataset_.name;
  result.model_name = std::string(model_name);
  result.connectivity_name = placement::to_string(connectivity);
  result.x_label = "replication degree";
  for (std::size_t k = 0; k <= options.k_max; ++k)
    result.xs.push_back(static_cast<double>(k));

  // One worker set for the whole sweep: either the caller's shared pool
  // (kept warm across generation and successive sweeps) or a sweep-local
  // pool sized by options.threads.
  std::optional<util::ThreadPool> local_pool;
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool
                              : local_pool.emplace(options.threads);
  for (std::size_t p = 0; p < options.policies.size(); ++p) {
    const placement::PolicyKind kind = options.policies[p];
    const auto policy = placement::make_policy(kind, options.policy_params);
    const std::size_t reps =
        (model_randomized || policy->randomized()) ? options.repetitions : 1;
    std::vector<std::vector<CohortMetrics>> runs;
    for (std::size_t r = 0; r < reps; ++r) {
      const auto& sched = schedules[model_randomized ? r : 0];
      runs.push_back(evaluate_policy_sharded(
          sched, cohort_users, *policy, connectivity, options.k_max,
          sweep_stream(seed_, detail::kReplicationTag, 0, p, r),
          options.shard_size, pool));
    }
    PolicyCurve curve;
    curve.policy_name = policy->name();
    curve.policy = kind;
    for (std::size_t k = 0; k <= options.k_max; ++k) {
      std::vector<CohortMetrics> at_k;
      at_k.reserve(runs.size());
      for (const auto& run : runs) at_k.push_back(run[k]);
      curve.points.push_back(detail::average_runs(at_k));
    }
    result.policies.push_back(std::move(curve));
  }
  return result;
}

SweepResult StreamingStudy::replication_sweep(
    onlinetime::ModelKind model, const onlinetime::ModelParams& params,
    placement::Connectivity connectivity, const Options& options) const {
  return replication_sweep(*onlinetime::make_model(model, params),
                           connectivity, options);
}

SweepResult StreamingStudy::replication_sweep(
    const onlinetime::OnlineTimeModel& model,
    placement::Connectivity connectivity, const Options& options) const {
  const std::size_t model_reps =
      model.randomized() ? options.repetitions : 1;
  std::vector<std::vector<DaySchedule>> schedules;
  schedules.reserve(model_reps);
  for (std::size_t r = 0; r < model_reps; ++r) {
    util::Rng rng(detail::schedule_stream(seed_, r));
    schedules.push_back(model.schedules(dataset_, rng));
  }
  return sweep_over_schedules(schedules, model.randomized(), model.name(),
                              connectivity, options);
}

SweepResult StreamingStudy::replication_sweep(
    std::span<const DaySchedule> schedules, std::string_view model_name,
    placement::Connectivity connectivity, const Options& options) const {
  DOSN_REQUIRE(schedules.size() == dataset_.num_users(),
               "replication_sweep: schedule count mismatch");
  std::vector<std::vector<DaySchedule>> realizations;
  realizations.emplace_back(schedules.begin(), schedules.end());
  return sweep_over_schedules(realizations, /*model_randomized=*/false,
                              model_name, connectivity, options);
}

std::uint64_t sweep_checksum(const SweepResult& result) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  const auto mix_double = [&mix](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  const auto mix_str = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  };
  mix_str(result.dataset_name);
  mix_str(result.model_name);
  mix_str(result.connectivity_name);
  mix(result.xs.size());
  for (const double x : result.xs) mix_double(x);
  mix(result.policies.size());
  for (const auto& curve : result.policies) {
    mix_str(curve.policy_name);
    mix(curve.points.size());
    for (const auto& m : curve.points) {
      mix_double(m.availability);
      mix_double(m.max_availability);
      mix_double(m.aod_time);
      mix_double(m.aod_activity);
      mix_double(m.aod_activity_expected);
      mix_double(m.aod_activity_unexpected);
      mix_double(m.delay_actual_h);
      mix_double(m.delay_observed_h);
      mix_double(m.replicas_used);
      mix(m.cohort_size);
    }
  }
  return h;
}

}  // namespace dosn::sim
