// The sharded, allocation-reusing scale path through the study engine.
//
// StreamingStudy runs the same replication sweeps as Study, but partitions
// the evaluation cohort into fixed-size shards of consecutive cohort
// indices. Each shard is one parallel task on the util::ThreadPool; inside
// a shard, one per-shard arena (sim::EvalScratch plus the shard's row
// buffer) is reused across every user, so steady-state per-user evaluation
// does not allocate. Per-user RNG streams are identical to the seed path
// (mix64(stream_seed, user_id)), and the final reduction walks shards in
// index order and users in order within each shard — i.e. exactly cohort
// index order, the same floating-point accumulation order as
// Study::evaluate_policy_over_ks. Results are therefore bit-identical to
// the seed engine for every shard size and thread count (asserted by
// tests/test_streaming_equivalence.cpp).
//
// The third replication_sweep overload takes precomputed schedules: the
// million-user path (synth::build_scale_study_input) builds schedules
// chunk-by-chunk during generation and keeps only the cohort-restricted
// trace, never materializing the full activity set.
#pragma once

#include <string_view>

#include "sim/study.hpp"

namespace dosn::sim {

/// StudyOptions plus the streaming knobs.
struct StreamingOptions : StudyOptions {
  /// Cohort users per shard (>= 1). Any value produces bit-identical
  /// results; larger shards amortize scratch warm-up, smaller shards
  /// balance load better.
  std::size_t shard_size = 1024;
  /// Evaluate only the first `cohort_limit` cohort users (in user-id
  /// order); 0 = the whole cohort. A deterministic cap for the scale
  /// bench, where a million-user population yields tens of thousands of
  /// degree-d cohort users.
  std::size_t cohort_limit = 0;
  /// Shared worker pool. When set, sweeps run on this pool (its
  /// work-stealing runtime stays warm across generation and every sweep —
  /// no teardown/re-fork between pipeline phases) and `threads` is
  /// ignored; when null, the sweep constructs its own pool from
  /// `threads`. Results are bit-identical either way.
  util::ThreadPool* pool = nullptr;
};

class StreamingStudy {
 public:
  using Options = StreamingOptions;

  StreamingStudy(const trace::Dataset& dataset, std::uint64_t seed);

  const trace::Dataset& dataset() const { return dataset_; }

  /// Users with degree exactly `degree` (the sweep cohort), truncated to
  /// `limit` when non-zero.
  std::vector<graph::UserId> cohort(std::size_t degree,
                                    std::size_t limit) const;

  /// Metrics vs replication degree; bit-identical to
  /// Study::replication_sweep on the same dataset/seed/options.
  SweepResult replication_sweep(onlinetime::ModelKind model,
                                const onlinetime::ModelParams& params,
                                placement::Connectivity connectivity,
                                const Options& options = Options{}) const;

  SweepResult replication_sweep(const onlinetime::OnlineTimeModel& model,
                                placement::Connectivity connectivity,
                                const Options& options = Options{}) const;

  /// Same sweep over precomputed deterministic schedules (one realization
  /// for every user of the dataset). Equivalent to a deterministic model
  /// that returns `schedules`: policy repetitions still follow
  /// options.repetitions for randomized policies.
  SweepResult replication_sweep(std::span<const DaySchedule> schedules,
                                std::string_view model_name,
                                placement::Connectivity connectivity,
                                const Options& options = Options{}) const;

 private:
  /// Common sweep driver: `schedules` holds one realization per model
  /// repetition (a single entry when the model is deterministic).
  SweepResult sweep_over_schedules(
      std::span<const std::vector<DaySchedule>> schedules,
      bool model_randomized, std::string_view model_name,
      placement::Connectivity connectivity, const Options& options) const;

  std::vector<CohortMetrics> evaluate_policy_sharded(
      std::span<const DaySchedule> schedules,
      std::span<const graph::UserId> cohort_users,
      const placement::ReplicaPolicy& policy,
      placement::Connectivity connectivity, std::size_t k_max,
      std::uint64_t stream_seed, std::size_t shard_size,
      util::ThreadPool& pool) const;

  const trace::Dataset& dataset_;
  std::uint64_t seed_;
};

/// Order-sensitive FNV-1a checksum over every numeric field of a sweep
/// (xs, all CohortMetrics doubles bit-patterns, cohort sizes and curve
/// names). Two sweeps compare equal iff their checksums match in practice;
/// the scale bench uses it to assert cross-thread/cross-shard identity.
std::uint64_t sweep_checksum(const SweepResult& result);

}  // namespace dosn::sim
