#include "sim/timeline.hpp"

#include <algorithm>

#include "interval/day_schedule.hpp"

namespace dosn::sim {

using interval::IntervalSet;
using interval::Seconds;

TimelineSchedules timeline_sporadic(const trace::Dataset& dataset,
                                    Seconds session_length, util::Rng& rng) {
  DOSN_REQUIRE(session_length > 0, "timeline: session length must be > 0");
  TimelineSchedules out;
  out.online.resize(dataset.num_users());
  if (dataset.trace.empty()) return out;

  out.span_start = dataset.trace.min_timestamp() - session_length;
  out.span_end = dataset.trace.max_timestamp() + session_length;

  for (graph::UserId u = 0; u < dataset.num_users(); ++u) {
    for (std::uint32_t idx : dataset.trace.created_index(u)) {
      const Seconds ts = dataset.trace.activity(idx).timestamp;
      const auto offset = static_cast<Seconds>(
          rng.below(static_cast<std::uint64_t>(session_length)));
      out.online[u].add(ts - offset, ts - offset + session_length);
    }
  }
  return out;
}

TimelineMetrics evaluate_on_timeline(const trace::Dataset& dataset,
                                     const TimelineSchedules& timeline,
                                     graph::UserId user,
                                     std::span<const graph::UserId> replicas) {
  DOSN_REQUIRE(timeline.online.size() == dataset.num_users(),
               "timeline: schedule count mismatch");
  DOSN_ASSERT(user < timeline.online.size());

  IntervalSet profile = timeline.online[user];
  for (graph::UserId host : replicas)
    profile = profile.unite(timeline.online[host]);

  TimelineMetrics m;
  const Seconds span = timeline.span();
  if (span > 0)
    m.availability = static_cast<double>(profile.measure()) /
                     static_cast<double>(span);

  IntervalSet demand;
  for (graph::UserId f : dataset.graph.contacts(user))
    demand = demand.unite(timeline.online[f]);
  const Seconds demand_s = demand.measure();
  m.aod_time = demand_s == 0
                   ? 1.0
                   : static_cast<double>(profile.intersection_measure(demand)) /
                         static_cast<double>(demand_s);

  std::size_t served = 0, total = 0;
  for (const auto& a : dataset.trace.received_by(user)) {
    ++total;
    if (profile.contains(a.timestamp)) ++served;
  }
  if (total > 0)
    m.aod_activity =
        static_cast<double>(served) / static_cast<double>(total);
  return m;
}

}  // namespace dosn::sim
