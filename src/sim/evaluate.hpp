// Per-user metric evaluation: one user, one replica configuration, all of
// the paper's efficiency metrics at once.
#pragma once

#include <span>

#include "interval/day_schedule.hpp"
#include "metrics/availability.hpp"
#include "metrics/delay.hpp"
#include "trace/dataset.hpp"

namespace dosn::sim {

using interval::DaySchedule;

/// All Sec II-C metrics for one user under one replica configuration.
struct UserMetrics {
  double availability = 0.0;
  double max_availability = 0.0;  ///< F2F upper bound (all contacts)
  double aod_time = 0.0;
  double aod_activity = 0.0;
  double aod_activity_expected = 0.0;
  double aod_activity_unexpected = 0.0;
  double delay_actual_h = 0.0;
  double delay_observed_h = 0.0;
  double replicas_used = 0.0;  ///< realized replication degree
};

/// Evaluates user `u` hosting replicas at `replica_holders` (selection
/// prefix of a policy). `schedules` spans every user in the dataset.
UserMetrics evaluate_user(const trace::Dataset& dataset,
                          std::span<const DaySchedule> schedules,
                          graph::UserId u,
                          std::span<const graph::UserId> replica_holders,
                          placement::Connectivity connectivity);

}  // namespace dosn::sim
