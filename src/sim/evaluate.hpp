// Per-user metric evaluation: one user, one replica configuration, all of
// the paper's efficiency metrics at once.
#pragma once

#include <span>
#include <vector>

#include "interval/day_schedule.hpp"
#include "metrics/availability.hpp"
#include "metrics/delay.hpp"
#include "trace/dataset.hpp"

namespace dosn::sim {

using interval::DaySchedule;

/// All Sec II-C metrics for one user under one replica configuration.
struct UserMetrics {
  double availability = 0.0;
  double max_availability = 0.0;  ///< F2F upper bound (all contacts)
  double aod_time = 0.0;
  double aod_activity = 0.0;
  double aod_activity_expected = 0.0;
  double aod_activity_unexpected = 0.0;
  double delay_actual_h = 0.0;
  double delay_observed_h = 0.0;
  double replicas_used = 0.0;  ///< realized replication degree
};

/// Evaluates user `u` hosting replicas at `replica_holders` (selection
/// prefix of a policy). `schedules` spans every user in the dataset.
UserMetrics evaluate_user(const trace::Dataset& dataset,
                          std::span<const DaySchedule> schedules,
                          graph::UserId u,
                          std::span<const graph::UserId> replica_holders,
                          placement::Connectivity connectivity);

/// Evaluates user `u` at every replication prefix of `selected` at once:
/// element k of the result equals
/// evaluate_user(dataset, schedules, u, selected[0..min(k, |selected|)), c)
/// bit for bit, for k = 0..k_max. One pass shares the work the per-prefix
/// evaluation repeats: contacts, the demand union, and the availability
/// bound are computed once; the profile union grows incrementally; each
/// activity is classified once (the smallest prefix that serves it, which
/// is monotone because the profile only grows); and the delay graph grows
/// one node per prefix instead of being rebuilt (DelayPrefixEvaluator).
std::vector<UserMetrics> evaluate_user_prefixes(
    const trace::Dataset& dataset, std::span<const DaySchedule> schedules,
    graph::UserId u, std::span<const graph::UserId> selected,
    placement::Connectivity connectivity, std::size_t k_max);

/// Reusable buffers for the allocation-free evaluate_user_prefixes
/// overload: one instance per worker, reused across every user of a shard,
/// so steady-state evaluation does not allocate once the buffers have
/// warmed up. Default-constructed cold; contents are overwritten per call.
struct EvalScratch {
  interval::IntervalSet profile;      ///< growing replica-prefix union
  interval::IntervalSet demand;       ///< union of the contacts' schedules
  interval::IntervalSet max_profile;  ///< demand ∪ owner (F2F bound)
  std::vector<interval::Interval> unite_scratch;
  std::vector<std::size_t> expected_at;
  std::vector<std::size_t> unexpected_at;
  /// Reset per user; the placeholder construction is never queried.
  metrics::DelayPrefixEvaluator delay{DaySchedule{},
                                      placement::Connectivity::kConRep};
};

/// Allocation-free evaluate_user_prefixes: identical rows (bit for bit),
/// written into `out` (cleared first) using only `scratch`'s buffers. The
/// allocating overload above is a thin wrapper over this one.
void evaluate_user_prefixes(const trace::Dataset& dataset,
                            std::span<const DaySchedule> schedules,
                            graph::UserId u,
                            std::span<const graph::UserId> selected,
                            placement::Connectivity connectivity,
                            std::size_t k_max, EvalScratch& scratch,
                            std::vector<UserMetrics>& out);

}  // namespace dosn::sim
