#include "sim/evaluate.hpp"

namespace dosn::sim {

UserMetrics evaluate_user(const trace::Dataset& dataset,
                          std::span<const DaySchedule> schedules,
                          graph::UserId u,
                          std::span<const graph::UserId> replica_holders,
                          placement::Connectivity connectivity) {
  DOSN_REQUIRE(schedules.size() == dataset.num_users(),
               "evaluate_user: schedule count mismatch");
  const DaySchedule& owner = schedules[u];

  std::vector<DaySchedule> replicas;
  replicas.reserve(replica_holders.size());
  for (graph::UserId host : replica_holders) {
    DOSN_ASSERT(host < schedules.size());
    replicas.push_back(schedules[host]);
  }

  std::vector<DaySchedule> contacts;
  for (graph::UserId f : dataset.graph.contacts(u))
    contacts.push_back(schedules[f]);

  UserMetrics m;
  const DaySchedule profile = metrics::profile_schedule(owner, replicas);
  m.availability = profile.coverage();
  m.max_availability = metrics::max_achievable_availability(owner, contacts);
  m.aod_time = metrics::aod_time(contacts, profile);

  const auto aod =
      metrics::aod_activity(dataset.trace, u, profile, schedules);
  m.aod_activity = aod.overall;
  m.aod_activity_expected = aod.expected;
  m.aod_activity_unexpected = aod.unexpected;

  const auto delay =
      metrics::update_propagation_delay(owner, replicas, connectivity);
  m.delay_actual_h = delay.actual_hours();
  m.delay_observed_h = delay.observed_hours();
  m.replicas_used = static_cast<double>(replica_holders.size());
  return m;
}

}  // namespace dosn::sim
