#include "sim/evaluate.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace dosn::sim {
namespace {

/// Evaluation-volume metrics (DESIGN.md §9): how many per-user kernels ran
/// and how much work the prefix optimization amortised. Flushed once per
/// call — these functions run inside the parallel cohort loop, so the
/// per-activity work must stay atomic-free.
struct EvalMetrics {
  obs::Counter& full_evals =
      obs::Registry::global().counter("sim.full_evals");
  obs::Counter& prefix_sweeps =
      obs::Registry::global().counter("sim.prefix_sweeps");
  /// Per-k rows produced by prefix sweeps (one sweep yields k_max + 1,
  /// where the naive path would run that many full evaluations).
  obs::Counter& prefix_points =
      obs::Registry::global().counter("sim.prefix_points");
  obs::Counter& activities_classified =
      obs::Registry::global().counter("sim.activities_classified");
};

EvalMetrics& eval_metrics() {
  static EvalMetrics m;
  return m;
}

// Analytic ranges every per-user evaluation must respect: ratios are
// proper fractions, delays non-negative. Violations here mean a metric
// kernel regressed, which would skew every averaged curve downstream.
void check_metric_ranges(const UserMetrics& m) {
  DOSN_DCHECK(m.availability >= 0.0 && m.availability <= 1.0,
              "availability out of [0, 1]: ", m.availability);
  DOSN_DCHECK(m.aod_time >= 0.0 && m.aod_time <= 1.0,
              "aod_time out of [0, 1]: ", m.aod_time);
  DOSN_DCHECK(m.aod_activity >= 0.0 && m.aod_activity <= 1.0,
              "aod_activity out of [0, 1]: ", m.aod_activity);
  DOSN_DCHECK(m.delay_actual_h >= 0.0,
              "negative actual delay: ", m.delay_actual_h);
  DOSN_DCHECK(m.delay_observed_h >= 0.0,
              "negative observed delay: ", m.delay_observed_h);
}

}  // namespace

UserMetrics evaluate_user(const trace::Dataset& dataset,
                          std::span<const DaySchedule> schedules,
                          graph::UserId u,
                          std::span<const graph::UserId> replica_holders,
                          placement::Connectivity connectivity) {
  DOSN_REQUIRE(schedules.size() == dataset.num_users(),
               "evaluate_user: schedule count mismatch");
  const DaySchedule& owner = schedules[u];

  std::vector<DaySchedule> replicas;
  replicas.reserve(replica_holders.size());
  for (graph::UserId host : replica_holders) {
    DOSN_CHECK(host < schedules.size(), "evaluate_user: replica holder ",
               host, " has no schedule (", schedules.size(), " users)");
    replicas.push_back(schedules[host]);
  }

  std::vector<DaySchedule> contacts;
  for (graph::UserId f : dataset.graph.contacts(u))
    contacts.push_back(schedules[f]);

  UserMetrics m;
  const DaySchedule profile = metrics::profile_schedule(owner, replicas);
  m.availability = profile.coverage();
  m.max_availability = metrics::max_achievable_availability(owner, contacts);
  m.aod_time = metrics::aod_time(contacts, profile);

  const auto aod =
      metrics::aod_activity(dataset.trace, u, profile, schedules);
  m.aod_activity = aod.overall;
  m.aod_activity_expected = aod.expected;
  m.aod_activity_unexpected = aod.unexpected;

  const auto delay =
      metrics::update_propagation_delay(owner, replicas, connectivity);
  m.delay_actual_h = delay.actual_hours();
  m.delay_observed_h = delay.observed_hours();
  m.replicas_used = static_cast<double>(replica_holders.size());
  check_metric_ranges(m);
  eval_metrics().full_evals.add(1);
  return m;
}

std::vector<UserMetrics> evaluate_user_prefixes(
    const trace::Dataset& dataset, std::span<const DaySchedule> schedules,
    graph::UserId u, std::span<const graph::UserId> selected,
    placement::Connectivity connectivity, std::size_t k_max) {
  EvalScratch scratch;
  std::vector<UserMetrics> out;
  evaluate_user_prefixes(dataset, schedules, u, selected, connectivity, k_max,
                         scratch, out);
  return out;
}

void evaluate_user_prefixes(const trace::Dataset& dataset,
                            std::span<const DaySchedule> schedules,
                            graph::UserId u,
                            std::span<const graph::UserId> selected,
                            placement::Connectivity connectivity,
                            std::size_t k_max, EvalScratch& scratch,
                            std::vector<UserMetrics>& out) {
  DOSN_REQUIRE(schedules.size() == dataset.num_users(),
               "evaluate_user: schedule count mismatch");
  const DaySchedule& owner = schedules[u];
  const std::size_t take_max = std::min(k_max, selected.size());

  // Prefix-independent pieces, computed once. The unions are built with
  // unite_with into warmed scratch buffers; the canonical interval
  // representation is unique, so the measures (and every double derived
  // from them) match the allocating unite() path bit for bit.
  scratch.demand = interval::IntervalSet{};
  for (graph::UserId f : dataset.graph.contacts(u))
    scratch.demand.unite_with(schedules[f].set(), &scratch.unite_scratch);
  const interval::Seconds demand_s = scratch.demand.measure();
  scratch.max_profile = scratch.demand;
  scratch.max_profile.unite_with(owner.set(), &scratch.unite_scratch);
  const double max_availability =
      static_cast<double>(scratch.max_profile.measure()) /
      static_cast<double>(interval::kDaySeconds);

  // Each received activity is served at prefix k iff the profile union of
  // that prefix covers its time-of-day instant. The profile only grows, so
  // the activity has a smallest serving prefix: 0 when the owner covers the
  // instant, i + 1 when replica i is the first holder that does, never
  // otherwise. Bucket counts by that threshold; running sums then give the
  // served counts of every prefix.
  scratch.expected_at.assign(take_max + 1, 0);
  scratch.unexpected_at.assign(take_max + 1, 0);
  std::size_t expected_total = 0, unexpected_total = 0;
  std::uint64_t activities = 0;
  for (const auto& a : dataset.trace.received_by(u)) {
    ++activities;
    const interval::Seconds tod = interval::time_of_day(a.timestamp);
    DOSN_ASSERT(a.creator < schedules.size());
    const bool is_expected = schedules[a.creator].set().contains(tod);
    (is_expected ? expected_total : unexpected_total) += 1;
    std::size_t first = std::numeric_limits<std::size_t>::max();
    if (owner.set().contains(tod)) {
      first = 0;
    } else {
      for (std::size_t i = 0; i < take_max; ++i) {
        DOSN_ASSERT(selected[i] < schedules.size());
        if (schedules[selected[i]].set().contains(tod)) {
          first = i + 1;
          break;
        }
      }
    }
    if (first <= take_max)
      (is_expected ? scratch.expected_at : scratch.unexpected_at)[first] += 1;
  }

  scratch.delay.reset(owner, connectivity);
  scratch.profile = owner.set();
  std::size_t expected_served = 0, unexpected_served = 0;

  out.clear();
  out.reserve(k_max + 1);
  for (std::size_t k = 0; k <= k_max; ++k) {
    if (k >= 1 && k <= take_max) {
      const DaySchedule& added = schedules[selected[k - 1]];
      scratch.profile.unite_with(added.set(), &scratch.unite_scratch);
      scratch.delay.push(added);
      expected_served += scratch.expected_at[k];
      unexpected_served += scratch.unexpected_at[k];
    } else if (k == 0) {
      expected_served += scratch.expected_at[0];
      unexpected_served += scratch.unexpected_at[0];
    }

    UserMetrics m;
    m.availability = static_cast<double>(scratch.profile.measure()) /
                     static_cast<double>(interval::kDaySeconds);
    m.max_availability = max_availability;
    m.aod_time =
        demand_s == 0
            ? 1.0
            : static_cast<double>(
                  scratch.demand.intersection_measure(scratch.profile)) /
                  static_cast<double>(demand_s);

    const std::size_t total = expected_total + unexpected_total;
    m.aod_activity =
        total > 0 ? static_cast<double>(expected_served + unexpected_served) /
                        static_cast<double>(total)
                  : 1.0;
    m.aod_activity_expected =
        expected_total > 0 ? static_cast<double>(expected_served) /
                                 static_cast<double>(expected_total)
                           : 1.0;
    m.aod_activity_unexpected =
        unexpected_total > 0 ? static_cast<double>(unexpected_served) /
                                   static_cast<double>(unexpected_total)
                             : 1.0;

    const auto d = scratch.delay.result();
    m.delay_actual_h = d.actual_hours();
    m.delay_observed_h = d.observed_hours();
    m.replicas_used = static_cast<double>(std::min(k, selected.size()));
    check_metric_ranges(m);
    // The profile union only grows along the prefix, so availability is
    // non-decreasing in k — the monotonicity the paper's sweeps rely on.
    DOSN_DCHECK(out.empty() || m.availability >= out.back().availability,
                "availability decreased along prefix at k = ", k);
    out.push_back(m);
  }

  EvalMetrics& em = eval_metrics();
  em.prefix_sweeps.add(1);
  em.prefix_points.add(k_max + 1);
  em.activities_classified.add(activities);
}

}  // namespace dosn::sim
