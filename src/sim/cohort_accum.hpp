// Shared cohort-reduction helpers for the study engines (sim-internal).
//
// Both Study (the seed path) and StreamingStudy (the sharded scale path)
// must reduce per-user rows with the exact same floating-point operation
// order — that shared order is what makes the two engines bit-identical.
// Keeping the accumulator and the run-averaging in one header removes any
// chance of the two paths drifting apart.
#pragma once

#include <span>

#include "sim/study.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace dosn::sim::detail {

/// Running averages of every UserMetrics field. Rows must be added in
/// cohort index order: Welford updates are order-dependent, and the fixed
/// order is what makes sweep results thread-count independent.
struct CohortAccum {
  util::RunningStats availability, max_availability, aod_time, aod_activity,
      aod_expected, aod_unexpected, delay_actual, delay_observed, used;

  void add(const UserMetrics& m) {
    availability.add(m.availability);
    max_availability.add(m.max_availability);
    aod_time.add(m.aod_time);
    aod_activity.add(m.aod_activity);
    aod_expected.add(m.aod_activity_expected);
    aod_unexpected.add(m.aod_activity_unexpected);
    delay_actual.add(m.delay_actual_h);
    delay_observed.add(m.delay_observed_h);
    used.add(m.replicas_used);
  }

  CohortMetrics mean() const {
    CohortMetrics c;
    c.availability = availability.mean();
    c.max_availability = max_availability.mean();
    c.aod_time = aod_time.mean();
    c.aod_activity = aod_activity.mean();
    c.aod_activity_expected = aod_expected.mean();
    c.aod_activity_unexpected = aod_unexpected.mean();
    c.delay_actual_h = delay_actual.mean();
    c.delay_observed_h = delay_observed.mean();
    c.replicas_used = used.mean();
    c.cohort_size = availability.count();
    return c;
  }
};

/// Equal-weight average of repetition runs (runs must be non-empty and
/// share one cohort).
inline CohortMetrics average_runs(std::span<const CohortMetrics> runs) {
  DOSN_ASSERT(!runs.empty());
  CohortMetrics out;
  for (const auto& r : runs) {
    out.availability += r.availability;
    out.max_availability += r.max_availability;
    out.aod_time += r.aod_time;
    out.aod_activity += r.aod_activity;
    out.aod_activity_expected += r.aod_activity_expected;
    out.aod_activity_unexpected += r.aod_activity_unexpected;
    out.delay_actual_h += r.delay_actual_h;
    out.delay_observed_h += r.delay_observed_h;
    out.replicas_used += r.replicas_used;
  }
  const double n = static_cast<double>(runs.size());
  out.availability /= n;
  out.max_availability /= n;
  out.aod_time /= n;
  out.aod_activity /= n;
  out.aod_activity_expected /= n;
  out.aod_activity_unexpected /= n;
  out.delay_actual_h /= n;
  out.delay_observed_h /= n;
  out.replicas_used /= n;
  out.cohort_size = runs.front().cohort_size;
  return out;
}

// Sweep tags feeding sweep_stream: distinct constants per sweep so the
// same (x, policy, rep) cell of different sweeps never shares a stream.
// StreamingStudy's replication sweep reuses kReplicationTag — same cells,
// same streams, bit-identical output to the seed engine.
constexpr std::uint64_t kReplicationTag = 0x4e97;
constexpr std::uint64_t kSessionTag = 0x3e55;
constexpr std::uint64_t kDegreeTag = 0xde60;
constexpr std::uint64_t kSamplesTag = 0xd158;
constexpr std::uint64_t kFaultTag = 0xfa17;

/// RNG stream id of the schedule realization for repetition `r` — shared
/// by Study::replication_sweep, Study::resilience_sweep and the streaming
/// engine (and by synth::build_scale_study_input for its chunk-built
/// schedules), so every path sees the same realizations.
constexpr std::uint64_t schedule_stream(std::uint64_t seed, std::size_t rep) {
  return util::mix64(seed, 0x5ced0000 + rep);
}

}  // namespace dosn::sim::detail
