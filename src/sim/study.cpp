#include "sim/study.hpp"

#include <algorithm>

#include "graph/degree_stats.hpp"
#include "obs/obs.hpp"
#include "onlinetime/sporadic.hpp"
#include "sim/cohort_accum.hpp"

namespace dosn::sim {

using detail::average_runs;
using detail::kDegreeTag;
using detail::kFaultTag;
using detail::kReplicationTag;
using detail::kSamplesTag;
using detail::kSessionTag;
using Accum = detail::CohortAccum;

namespace {

/// Study-level volume counters; the sweep drivers also open obs spans
/// (study.<sweep>) so the profile tree shows where wall time goes.
struct StudyMetrics {
  obs::Counter& users_evaluated =
      obs::Registry::global().counter("sim.users_evaluated");
  /// One cell = one evaluate_policy_over_ks call (a policy at one sweep x
  /// for one repetition).
  obs::Counter& sweep_cells =
      obs::Registry::global().counter("sim.sweep_cells");
};

StudyMetrics& study_metrics() {
  static StudyMetrics m;
  return m;
}

}  // namespace

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kAvailability: return "availability";
    case Metric::kAodTime: return "availability-on-demand-time";
    case Metric::kAodActivity: return "availability-on-demand-activity";
    case Metric::kAodActivityExpected: return "aod-activity-expected";
    case Metric::kAodActivityUnexpected: return "aod-activity-unexpected";
    case Metric::kDelayActualH: return "delay (hours)";
    case Metric::kDelayObservedH: return "observed delay (hours)";
    case Metric::kReplicasUsed: return "replicas used";
  }
  return "?";
}

double metric_value(const CohortMetrics& m, Metric metric) {
  switch (metric) {
    case Metric::kAvailability: return m.availability;
    case Metric::kAodTime: return m.aod_time;
    case Metric::kAodActivity: return m.aod_activity;
    case Metric::kAodActivityExpected: return m.aod_activity_expected;
    case Metric::kAodActivityUnexpected: return m.aod_activity_unexpected;
    case Metric::kDelayActualH: return m.delay_actual_h;
    case Metric::kDelayObservedH: return m.delay_observed_h;
    case Metric::kReplicasUsed: return m.replicas_used;
  }
  return 0.0;
}

std::vector<util::Series> SweepResult::series(Metric metric) const {
  std::vector<util::Series> out;
  for (const auto& curve : policies) {
    util::Series s;
    s.name = curve.policy_name;
    s.x = xs;
    for (const auto& point : curve.points)
      s.y.push_back(metric_value(point, metric));
    out.push_back(std::move(s));
  }
  return out;
}

Study::Study(const trace::Dataset& dataset, std::uint64_t seed)
    : dataset_(dataset), seed_(seed) {}

std::vector<graph::UserId> Study::cohort(std::size_t degree) const {
  return graph::users_with_degree(dataset_.graph, degree);
}

std::vector<CohortMetrics> Study::evaluate_policy_over_ks(
    std::span<const DaySchedule> schedules,
    std::span<const graph::UserId> cohort_users,
    const placement::ReplicaPolicy& policy,
    const placement::PolicyParams& /*params*/,
    placement::Connectivity connectivity, std::size_t k_max,
    std::uint64_t stream_seed, util::ThreadPool& pool) const {
  obs::ScopedTimer span("study.evaluate_policy");
  study_metrics().sweep_cells.add(1);
  study_metrics().users_evaluated.add(cohort_users.size());

  // Phase 1 (parallel): each user evaluates independently into its own
  // slot, drawing from its own RNG stream — no shared mutable state.
  std::vector<std::vector<UserMetrics>> per_user(cohort_users.size());
  util::parallel_for_each(&pool, cohort_users.size(), [&](std::size_t i) {
    const graph::UserId u = cohort_users[i];
    placement::PlacementContext context;
    context.user = u;
    context.candidates = dataset_.graph.contacts(u);
    context.schedules = schedules;
    context.trace = &dataset_.trace;
    context.connectivity = connectivity;
    context.max_replicas = k_max;
    util::Rng rng(util::mix64(stream_seed, u));
    const auto selected = policy.select(context, rng);
    per_user[i] = evaluate_user_prefixes(dataset_, schedules, u, selected,
                                         connectivity, k_max);
  });

  // Phase 2 (serial): reduce in cohort index order. Floating-point
  // accumulation is order-dependent, so this fixed order is what makes the
  // result bit-identical for every thread count.
  std::vector<Accum> accum(k_max + 1);
  for (const auto& rows : per_user)
    for (std::size_t k = 0; k <= k_max; ++k) accum[k].add(rows[k]);
  std::vector<CohortMetrics> out;
  out.reserve(k_max + 1);
  for (const auto& a : accum) out.push_back(a.mean());
  return out;
}

SweepResult Study::replication_sweep(onlinetime::ModelKind model_kind,
                                     const onlinetime::ModelParams& params,
                                     placement::Connectivity connectivity,
                                     const Options& options) const {
  return replication_sweep(*onlinetime::make_model(model_kind, params),
                           connectivity, options);
}

SweepResult Study::replication_sweep(const onlinetime::OnlineTimeModel& model,
                                     placement::Connectivity connectivity,
                                     const Options& options) const {
  obs::ScopedTimer span("study.replication_sweep");
  const auto cohort_users = cohort(options.cohort_degree);
  DOSN_REQUIRE(!cohort_users.empty(),
               "replication_sweep: no user has the cohort degree");

  const std::size_t model_reps =
      model.randomized() ? options.repetitions : 1;
  std::vector<std::vector<DaySchedule>> schedules;
  schedules.reserve(model_reps);
  for (std::size_t r = 0; r < model_reps; ++r) {
    util::Rng rng(detail::schedule_stream(seed_, r));
    schedules.push_back(model.schedules(dataset_, rng));
  }

  SweepResult result;
  result.dataset_name = dataset_.name;
  result.model_name = model.name();
  result.connectivity_name = placement::to_string(connectivity);
  result.x_label = "replication degree";
  for (std::size_t k = 0; k <= options.k_max; ++k)
    result.xs.push_back(static_cast<double>(k));

  util::ThreadPool pool(options.threads);
  for (std::size_t p = 0; p < options.policies.size(); ++p) {
    const placement::PolicyKind kind = options.policies[p];
    const auto policy = placement::make_policy(kind, options.policy_params);
    const std::size_t reps =
        (model.randomized() || policy->randomized()) ? options.repetitions
                                                     : 1;
    std::vector<std::vector<CohortMetrics>> runs;
    for (std::size_t r = 0; r < reps; ++r) {
      const auto& sched = schedules[model.randomized() ? r : 0];
      runs.push_back(evaluate_policy_over_ks(
          sched, cohort_users, *policy, options.policy_params, connectivity,
          options.k_max, sweep_stream(seed_, kReplicationTag, 0, p, r),
          pool));
    }
    PolicyCurve curve;
    curve.policy_name = policy->name();
    curve.policy = kind;
    for (std::size_t k = 0; k <= options.k_max; ++k) {
      std::vector<CohortMetrics> at_k;
      for (const auto& run : runs) at_k.push_back(run[k]);
      curve.points.push_back(average_runs(at_k));
    }
    result.policies.push_back(std::move(curve));
  }
  return result;
}

SweepResult Study::session_length_sweep(
    std::span<const interval::Seconds> session_lengths, std::size_t k,
    placement::Connectivity connectivity, const Options& options) const {
  obs::ScopedTimer span("study.session_length_sweep");
  const auto cohort_users = cohort(options.cohort_degree);
  DOSN_REQUIRE(!cohort_users.empty(),
               "session_length_sweep: no user has the cohort degree");

  SweepResult result;
  result.dataset_name = dataset_.name;
  result.model_name = "Sporadic";
  result.connectivity_name = placement::to_string(connectivity);
  result.x_label = "session length (sec)";
  for (const auto len : session_lengths)
    result.xs.push_back(static_cast<double>(len));

  result.policies.resize(options.policies.size());
  for (std::size_t p = 0; p < options.policies.size(); ++p) {
    const auto policy =
        placement::make_policy(options.policies[p], options.policy_params);
    result.policies[p].policy_name = policy->name();
    result.policies[p].policy = options.policies[p];
  }

  util::ThreadPool pool(options.threads);
  for (std::size_t xi = 0; xi < session_lengths.size(); ++xi) {
    const onlinetime::SporadicModel model(session_lengths[xi]);
    util::Rng model_rng(util::mix64(seed_, 0x3e550000 + xi));
    const auto sched = model.schedules(dataset_, model_rng);

    for (std::size_t p = 0; p < options.policies.size(); ++p) {
      const auto policy =
          placement::make_policy(options.policies[p], options.policy_params);
      const std::size_t reps =
          policy->randomized() ? options.repetitions : 1;
      std::vector<CohortMetrics> runs;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto by_k = evaluate_policy_over_ks(
            sched, cohort_users, *policy, options.policy_params, connectivity,
            k, sweep_stream(seed_, kSessionTag, xi, p, r), pool);
        runs.push_back(by_k.back());  // the fixed-k point
      }
      result.policies[p].points.push_back(average_runs(runs));
    }
  }
  return result;
}

SweepResult Study::resilience_sweep(onlinetime::ModelKind model_kind,
                                    const onlinetime::ModelParams& params,
                                    placement::Connectivity connectivity,
                                    const net::FaultPlan& base_plan,
                                    std::span<const double> intensities,
                                    std::size_t k,
                                    const Options& options) const {
  obs::ScopedTimer span("study.resilience_sweep");
  net::validate(base_plan);
  DOSN_REQUIRE(!intensities.empty(), "resilience_sweep: no intensities");
  for (const double f : intensities)
    DOSN_REQUIRE(f >= 0.0 && f <= 1.0,
                 "resilience_sweep: intensity outside [0, 1]");
  const auto model = onlinetime::make_model(model_kind, params);
  const auto cohort_users = cohort(options.cohort_degree);
  DOSN_REQUIRE(!cohort_users.empty(),
               "resilience_sweep: no user has the cohort degree");

  // Ideal schedules come from the replication_sweep stream seeds, so the
  // intensity-0 column equals the replication_sweep point at k (with
  // k_max = k) for deterministic policies — an identity the tests assert.
  const std::size_t model_reps =
      model->randomized() ? options.repetitions : 1;
  std::vector<std::vector<DaySchedule>> schedules;
  schedules.reserve(model_reps);
  for (std::size_t r = 0; r < model_reps; ++r) {
    util::Rng rng(detail::schedule_stream(seed_, r));
    schedules.push_back(model->schedules(dataset_, rng));
  }

  SweepResult result;
  result.dataset_name = dataset_.name;
  result.model_name = model->name();
  result.connectivity_name = placement::to_string(connectivity);
  result.x_label = "fault intensity";
  result.xs.assign(intensities.begin(), intensities.end());

  result.policies.resize(options.policies.size());
  for (std::size_t p = 0; p < options.policies.size(); ++p) {
    const auto policy =
        placement::make_policy(options.policies[p], options.policy_params);
    result.policies[p].policy_name = policy->name();
    result.policies[p].policy = options.policies[p];
  }

  util::ThreadPool pool(options.threads);
  for (std::size_t xi = 0; xi < intensities.size(); ++xi) {
    const double f = intensities[xi];
    // Degraded schedules per repetition at this intensity, built lazily
    // and shared across policies. The fault realization seed varies with
    // the repetition but *not* the intensity: within a repetition the
    // realizations are nested (scaled() preserves the seed), so every
    // fault present at f1 is present at f2 >= f1 and the per-user online
    // sets — hence availability — degrade exactly monotonically.
    std::vector<std::vector<DaySchedule>> degraded(
        std::max<std::size_t>(options.repetitions, 1));
    const auto degraded_for =
        [&](std::size_t r) -> const std::vector<DaySchedule>& {
      auto& slot = degraded[r];
      if (slot.empty()) {
        net::FaultPlan realization = base_plan;
        realization.seed = util::mix64(seed_, base_plan.seed, r);
        net::FaultInjector injector(net::scaled(realization, f));
        const auto& ideal = schedules[model->randomized() ? r : 0];
        slot.reserve(ideal.size());
        for (std::size_t u = 0; u < ideal.size(); ++u)
          slot.push_back(injector.degrade_day(u, ideal[u]));
        injector.flush_stats();
      }
      return slot;
    };

    for (std::size_t p = 0; p < options.policies.size(); ++p) {
      const auto policy =
          placement::make_policy(options.policies[p], options.policy_params);
      const std::size_t reps =
          (model->randomized() || policy->randomized()) ? options.repetitions
                                                        : 1;
      std::vector<CohortMetrics> runs;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto& ideal = schedules[model->randomized() ? r : 0];
        const auto& degr = degraded_for(r);
        // Placement sees the ideal schedules; only the evaluation runs on
        // the degraded ones. x = 0 in the stream id keeps randomized
        // placements identical across intensities, preserving nesting.
        const std::uint64_t stream_seed =
            sweep_stream(seed_, kFaultTag, 0, p, r);
        study_metrics().sweep_cells.add(1);
        study_metrics().users_evaluated.add(cohort_users.size());
        std::vector<UserMetrics> per_user(cohort_users.size());
        util::parallel_for_each(
            &pool, cohort_users.size(), [&](std::size_t i) {
              const graph::UserId u = cohort_users[i];
              placement::PlacementContext context;
              context.user = u;
              context.candidates = dataset_.graph.contacts(u);
              context.schedules = ideal;
              context.trace = &dataset_.trace;
              context.connectivity = connectivity;
              context.max_replicas = k;
              util::Rng rng(util::mix64(stream_seed, u));
              const auto selected = policy->select(context, rng);
              const std::size_t take = std::min(k, selected.size());
              per_user[i] = evaluate_user(dataset_, degr, u,
                                          {selected.data(), take},
                                          connectivity);
            });
        Accum accum;
        for (const auto& row : per_user) accum.add(row);
        runs.push_back(accum.mean());
      }
      result.policies[p].points.push_back(average_runs(runs));
    }
  }
  return result;
}

std::vector<UserMetrics> Study::cohort_samples(
    onlinetime::ModelKind model_kind, const onlinetime::ModelParams& params,
    placement::Connectivity connectivity, placement::PolicyKind policy_kind,
    std::size_t k, const Options& options) const {
  obs::ScopedTimer span("study.cohort_samples");
  const auto model = onlinetime::make_model(model_kind, params);
  const auto cohort_users = cohort(options.cohort_degree);
  DOSN_REQUIRE(!cohort_users.empty(),
               "cohort_samples: no user has the cohort degree");

  util::Rng model_rng(util::mix64(seed_, 0xd157));
  const auto schedules = model->schedules(dataset_, model_rng);
  const auto policy = placement::make_policy(policy_kind,
                                             options.policy_params);
  const std::uint64_t stream_seed = sweep_stream(
      seed_, kSamplesTag, 0, static_cast<std::uint64_t>(policy_kind), 0);

  study_metrics().users_evaluated.add(cohort_users.size());
  util::ThreadPool pool(options.threads);
  std::vector<UserMetrics> samples(cohort_users.size());
  util::parallel_for_each(&pool, cohort_users.size(), [&](std::size_t i) {
    const graph::UserId u = cohort_users[i];
    placement::PlacementContext context;
    context.user = u;
    context.candidates = dataset_.graph.contacts(u);
    context.schedules = schedules;
    context.trace = &dataset_.trace;
    context.connectivity = connectivity;
    context.max_replicas = k;
    util::Rng rng(util::mix64(stream_seed, u));
    const auto selected = policy->select(context, rng);
    samples[i] =
        evaluate_user(dataset_, schedules, u, selected, connectivity);
  });
  return samples;
}

SweepResult Study::user_degree_sweep(std::size_t max_degree,
                                     onlinetime::ModelKind model_kind,
                                     const onlinetime::ModelParams& params,
                                     placement::Connectivity connectivity,
                                     const Options& options) const {
  return user_degree_sweep(max_degree,
                           *onlinetime::make_model(model_kind, params),
                           connectivity, options);
}

SweepResult Study::user_degree_sweep(std::size_t max_degree,
                                     const onlinetime::OnlineTimeModel& model,
                                     placement::Connectivity connectivity,
                                     const Options& options) const {
  obs::ScopedTimer span("study.user_degree_sweep");
  const std::size_t model_reps =
      model.randomized() ? options.repetitions : 1;
  std::vector<std::vector<DaySchedule>> schedules;
  for (std::size_t r = 0; r < model_reps; ++r) {
    util::Rng rng(util::mix64(seed_, 0xde60000 + r));
    schedules.push_back(model.schedules(dataset_, rng));
  }

  SweepResult result;
  result.dataset_name = dataset_.name;
  result.model_name = model.name();
  result.connectivity_name = placement::to_string(connectivity);
  result.x_label = "user degree";
  for (std::size_t d = 1; d <= max_degree; ++d)
    result.xs.push_back(static_cast<double>(d));

  result.policies.resize(options.policies.size());
  for (std::size_t p = 0; p < options.policies.size(); ++p) {
    const auto policy =
        placement::make_policy(options.policies[p], options.policy_params);
    result.policies[p].policy_name = policy->name();
    result.policies[p].policy = options.policies[p];
  }

  util::ThreadPool pool(options.threads);
  for (std::size_t d = 1; d <= max_degree; ++d) {
    const auto cohort_users = cohort(d);
    for (std::size_t p = 0; p < options.policies.size(); ++p) {
      if (cohort_users.empty()) {
        result.policies[p].points.emplace_back();  // empty cohort: zeros
        continue;
      }
      const auto policy =
          placement::make_policy(options.policies[p], options.policy_params);
      const std::size_t reps =
          (model.randomized() || policy->randomized()) ? options.repetitions
                                                       : 1;
      std::vector<CohortMetrics> runs;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto& sched = schedules[model.randomized() ? r : 0];
        const auto by_k = evaluate_policy_over_ks(
            sched, cohort_users, *policy, options.policy_params, connectivity,
            /*k_max=*/d, sweep_stream(seed_, kDegreeTag, d, p, r), pool);
        runs.push_back(by_k.back());  // k = user degree (max possible)
      }
      result.policies[p].points.push_back(average_runs(runs));
    }
  }
  return result;
}

}  // namespace dosn::sim
