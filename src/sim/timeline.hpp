// Absolute-timeline evaluation: how good is the daily-projection
// approximation?
//
// The paper (and this library's Study) projects every session onto one
// 24-hour cycle and measures availability there. In reality sessions
// happen at absolute times across weeks: a user "covered" in the projected
// day by sessions from different weeks is NOT covered on most actual days.
// This module rebuilds Sporadic sessions at their *absolute* times,
// evaluates the same replica configurations on the true timeline, and
// reports both views side by side — quantifying how much the projection
// inflates the availability metrics ("plan on the daily model, live on
// the real timeline").
#pragma once

#include <span>

#include "interval/interval_set.hpp"
#include "trace/dataset.hpp"
#include "util/rng.hpp"

namespace dosn::sim {

/// A user's online time as absolute intervals across the trace span.
struct TimelineSchedules {
  std::vector<interval::IntervalSet> online;  // per user, absolute seconds
  interval::Seconds span_start = 0;
  interval::Seconds span_end = 0;  // exclusive

  interval::Seconds span() const { return span_end - span_start; }
};

/// Sporadic sessions at their true absolute times (one session of
/// `session_length` per created activity, uniform random offset — the
/// same construction the daily model projects).
TimelineSchedules timeline_sporadic(const trace::Dataset& dataset,
                                    interval::Seconds session_length,
                                    util::Rng& rng);

/// Metrics of one user's replica configuration on the absolute timeline.
struct TimelineMetrics {
  /// Fraction of the trace span with >= 1 replica (or the owner) online.
  double availability = 0.0;
  /// Fraction of the friends' absolute online time covered.
  double aod_time = 0.0;
  /// Fraction of received activities whose absolute instant was covered.
  double aod_activity = 1.0;
};

TimelineMetrics evaluate_on_timeline(const trace::Dataset& dataset,
                                     const TimelineSchedules& timeline,
                                     graph::UserId user,
                                     std::span<const graph::UserId> replicas);

}  // namespace dosn::sim
