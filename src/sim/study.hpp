// The experiment driver reproducing the paper's evaluation (Sec IV–V).
//
// A Study wraps one dataset and runs the three sweeps behind every figure:
//
//   * replication_sweep  — metrics vs replication degree k = 0..k_max for
//     every policy, one online-time model, ConRep or UnconRep
//     (Figs 3–7, 10, 11);
//   * session_length_sweep — metrics vs Sporadic session length at a fixed
//     k (Fig 8);
//   * user_degree_sweep — metrics vs user degree 1..d_max with k = degree
//     (Fig 9);
//   * resilience_sweep — metrics vs fault intensity at a fixed k: the
//     hardening ablation, measuring how placements chosen under ideal
//     assumptions degrade when nodes deviate from their schedules.
//
// Methodology follows the paper: the evaluation cohort is the users of one
// particular degree (degree 10 — the best-populated); experiments whose
// components draw randomness (Random placement, RandomLength model) are
// repeated and averaged (default 5 repetitions); deterministic experiments
// run once. Everything derives from one seed.
//
// Parallel execution: cohort users are evaluated concurrently on a
// deterministic util::ThreadPool. Every (sweep cell, user) pair draws from
// its own RNG stream derived with util::mix64, and per-user results are
// reduced in cohort index order, so for a fixed seed the output is
// bit-identical for every thread count (Options::threads / DOSN_THREADS),
// including the serial threads = 1 reference.
#pragma once

#include <string>
#include <vector>

#include "net/fault.hpp"
#include "onlinetime/model.hpp"
#include "sim/evaluate.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dosn::sim {

/// Cohort averages of UserMetrics.
struct CohortMetrics {
  double availability = 0.0;
  double max_availability = 0.0;
  double aod_time = 0.0;
  double aod_activity = 0.0;
  double aod_activity_expected = 0.0;
  double aod_activity_unexpected = 0.0;
  double delay_actual_h = 0.0;
  double delay_observed_h = 0.0;
  double replicas_used = 0.0;
  std::size_t cohort_size = 0;

  /// Exact (bit-level) comparison — the differential tests assert the
  /// streaming engine reproduces the seed engine bit for bit.
  friend bool operator==(const CohortMetrics&, const CohortMetrics&) = default;
};

/// Which scalar a figure plots.
enum class Metric {
  kAvailability,
  kAodTime,
  kAodActivity,
  kAodActivityExpected,
  kAodActivityUnexpected,
  kDelayActualH,
  kDelayObservedH,
  kReplicasUsed,
};

std::string to_string(Metric metric);
double metric_value(const CohortMetrics& m, Metric metric);

/// Collision-free RNG stream id for one sweep cell. `tag` identifies the
/// sweep, `x` the sweep position (session-length index, user degree, ...),
/// `policy` the policy slot and `rep` the repetition. The nested mix64
/// guarantees distinct cells get uncorrelated streams — unlike additive
/// schemes (e.g. `x*7919 + policy*131 + rep`) where distinct cells can
/// alias (x=0,policy=1,rep=0 vs x=0,policy=0,rep=131).
constexpr std::uint64_t sweep_stream(std::uint64_t seed, std::uint64_t tag,
                                     std::uint64_t x, std::uint64_t policy,
                                     std::uint64_t rep) {
  return util::mix64(util::mix64(seed, tag),
                     util::mix64(util::mix64(x, policy), rep));
}

/// One policy's curve across the sweep's x axis.
struct PolicyCurve {
  std::string policy_name;
  placement::PolicyKind policy = placement::PolicyKind::kMaxAv;
  std::vector<CohortMetrics> points;  // parallel to SweepResult::xs
};

struct SweepResult {
  std::string dataset_name;
  std::string model_name;
  std::string connectivity_name;
  std::string x_label;
  std::vector<double> xs;
  std::vector<PolicyCurve> policies;

  /// Extracts plottable series (one per policy) for a metric.
  std::vector<util::Series> series(Metric metric) const;
};

/// Sweep configuration (namespace-scope so it can serve as a default
/// argument; also available as Study::Options).
struct StudyOptions {
  /// Cohort: users with exactly this degree (the paper uses 10).
  std::size_t cohort_degree = 10;
  /// Replication degrees 0..k_max (defaults to cohort_degree).
  std::size_t k_max = 10;
  /// Repetitions for randomized components.
  std::size_t repetitions = 5;
  /// Policies to evaluate, in plot order.
  std::vector<placement::PolicyKind> policies = {
      placement::PolicyKind::kMaxAv, placement::PolicyKind::kMostActive,
      placement::PolicyKind::kRandom};
  placement::PolicyParams policy_params;
  /// Worker threads for cohort evaluation. 0 = the DOSN_THREADS
  /// environment variable, falling back to the hardware concurrency.
  /// Results are bit-identical for every value; 1 runs fully serial.
  std::size_t threads = 0;
};

class Study {
 public:
  using Options = StudyOptions;

  Study(const trace::Dataset& dataset, std::uint64_t seed);

  const trace::Dataset& dataset() const { return dataset_; }

  /// Users with degree exactly `degree`.
  std::vector<graph::UserId> cohort(std::size_t degree) const;

  /// Figs 3–7, 10, 11: metrics vs replication degree.
  SweepResult replication_sweep(onlinetime::ModelKind model,
                                const onlinetime::ModelParams& params,
                                placement::Connectivity connectivity,
                                const Options& options = Options{}) const;

  /// Same sweep with an arbitrary model instance (e.g. a PrecomputedModel
  /// wrapping real session logs).
  SweepResult replication_sweep(const onlinetime::OnlineTimeModel& model,
                                placement::Connectivity connectivity,
                                const Options& options = Options{}) const;

  /// Fig 8: metrics vs Sporadic session length at fixed k.
  SweepResult session_length_sweep(
      std::span<const interval::Seconds> session_lengths, std::size_t k,
      placement::Connectivity connectivity, const Options& options = Options{}) const;

  /// Resilience ablation: metrics vs fault intensity at a fixed
  /// replication degree k. Placements are selected on the *ideal*
  /// schedules (the operator plans against advertised behavior), then
  /// evaluated on schedules degraded by `scaled(base_plan, intensity)` —
  /// session no-shows, truncations, and node outage windows. Within one
  /// repetition the fault realizations are nested across intensities
  /// (scaled() preserves the plan seed), so per-user online time — and
  /// hence cohort availability — degrades *exactly* monotonically, not
  /// merely in expectation. The intensity-0 column equals the
  /// replication_sweep point at k (run with k_max = k) for deterministic
  /// policies. Intensities must lie in [0, 1].
  SweepResult resilience_sweep(onlinetime::ModelKind model,
                               const onlinetime::ModelParams& params,
                               placement::Connectivity connectivity,
                               const net::FaultPlan& base_plan,
                               std::span<const double> intensities,
                               std::size_t k,
                               const Options& options = Options{}) const;

  /// Distribution view behind the cohort means: per-user metric samples
  /// for one policy at a fixed replication degree (single realization of
  /// the model and placement). Feeds percentile / CDF reporting.
  std::vector<UserMetrics> cohort_samples(
      onlinetime::ModelKind model, const onlinetime::ModelParams& params,
      placement::Connectivity connectivity, placement::PolicyKind policy,
      std::size_t k, const Options& options = Options{}) const;

  /// Fig 9: metrics vs user degree (1..max_degree) with k = degree.
  SweepResult user_degree_sweep(std::size_t max_degree,
                                onlinetime::ModelKind model,
                                const onlinetime::ModelParams& params,
                                placement::Connectivity connectivity,
                                const Options& options = Options{}) const;

  SweepResult user_degree_sweep(std::size_t max_degree,
                                const onlinetime::OnlineTimeModel& model,
                                placement::Connectivity connectivity,
                                const Options& options = Options{}) const;

 private:
  /// Averages user metrics over `cohort` for each k in 0..k_max for one
  /// policy under one set of schedules. Users fan out across `pool`; user
  /// i draws from the stream mix64(stream_seed, user_id), and per-user
  /// rows merge in cohort index order, so the result does not depend on
  /// the pool's thread count.
  std::vector<CohortMetrics> evaluate_policy_over_ks(
      std::span<const DaySchedule> schedules,
      std::span<const graph::UserId> cohort_users,
      const placement::ReplicaPolicy& policy,
      const placement::PolicyParams& params,
      placement::Connectivity connectivity, std::size_t k_max,
      std::uint64_t stream_seed, util::ThreadPool& pool) const;

  const trace::Dataset& dataset_;
  std::uint64_t seed_;
};

}  // namespace dosn::sim
