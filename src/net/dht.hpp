// A Chord-style distributed hash table — the "third-party storage"
// substrate behind UnconRep.
//
// The paper's UnconRep regime exchanges profile updates through external
// infrastructure ("CDN, DHT, cloud storage", Sec V-C; LifeSocial in the
// related work indexes profiles in a DHT). This module implements that
// substrate concretely: a consistent-hashing ring over a 64-bit identifier
// space with successor lists and finger tables, O(log n) iterative lookup,
// node join/leave with key re-assignment, and a replicated put/get store
// on top. The relay cost model used by the delay ablations (lookup hop
// counts) comes from here.
//
// This is a *simulation* of the routing structure (single address space,
// no sockets): the unit of cost is the lookup hop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dosn::net {

/// Position on the identifier ring.
using RingId = std::uint64_t;

/// Hashes an application key (e.g. "profile:42:update:7") onto the ring.
RingId ring_hash(std::string_view key);

/// Ring position of a node id — the hash DhtRing assigns joining nodes.
/// Exposed so the scaled ring of net/social_dht.hpp places its nodes at
/// exactly the positions a DhtRing would, letting small rings anchor the
/// two implementations against each other bit for bit. A bijection of
/// the id: distinct nodes can never collide.
RingId node_ring_position(std::uint64_t node_id);

/// Chord-style ring with finger tables, successor lists, and a replicated
/// key-value store. Nodes can *crash* (fail without a graceful leave):
/// a crashed node stays in the routing structure as a dead entry until
/// stabilize() runs, and lookups route around it through successor lists,
/// paying failed probes for every dead node contacted.
class DhtRing {
 public:
  /// Successor-list length (capped at ring size − 1): how many consecutive
  /// crashed successors a lookup can survive before it fails.
  static constexpr std::size_t kSuccessorListLen = 4;

  /// `replication` = number of successive nodes storing each key.
  explicit DhtRing(std::size_t replication = 2);

  /// Adds a node; its ring position derives from the node id. Keys whose
  /// ownership moves are re-assigned. Returns the ring position.
  RingId join(std::uint64_t node_id);

  /// Removes a node; its keys move to their new owners. No-op if absent.
  void leave(std::uint64_t node_id);

  /// Crashes a node: it stays in the ring as a dead entry (fingers of
  /// other nodes still point at it) and its stored replicas are lost.
  /// Returns false when absent. stabilize() removes dead entries.
  bool crash(std::uint64_t node_id);

  /// Periodic Chord maintenance, run after churn: drops crashed nodes
  /// from the routing structure, rebuilds fingers and successor lists,
  /// and re-replicates every surviving key back to `replication` alive
  /// nodes. Keys whose every replica crashed are gone for good.
  void stabilize();

  std::size_t size() const { return nodes_.size(); }
  /// Nodes present and not crashed.
  std::size_t alive_count() const;
  bool contains_node(std::uint64_t node_id) const;
  /// Present and not crashed.
  bool node_alive(std::uint64_t node_id) const;

  /// The alive node ids currently responsible for `key` (owner +
  /// replicas); dead nodes are skipped.
  std::vector<std::uint64_t> responsible_nodes(std::string_view key) const;

  /// Iterative lookup from a random start node using finger tables.
  /// Dead fingers and successors are detected by probing (counted in
  /// `failed_probes`; total messages = hops + failed_probes) and routed
  /// around via the successor list. When a node's entire successor list
  /// is dead, the lookup fails (`ok == false`) — run stabilize() and
  /// retry.
  struct Lookup {
    std::uint64_t owner = 0;
    std::size_t hops = 0;
    std::size_t failed_probes = 0;
    bool ok = true;
  };
  Lookup lookup(std::string_view key, util::Rng& rng) const;

  /// Stores the value on the responsible alive nodes. Throws when no node
  /// is alive.
  void put(std::string_view key, std::string value);

  /// Reads from the responsible alive nodes; `failed_node` (optional)
  /// simulates one additionally unreachable replica. nullopt when no
  /// responsible node has the value.
  std::optional<std::string> get(
      std::string_view key,
      std::optional<std::uint64_t> failed_node = std::nullopt) const;

  /// Total stored (key, replica) pairs — storage-balance diagnostics.
  std::size_t stored_entries() const;
  /// Entries held by one node (0 when absent).
  std::size_t entries_at(std::uint64_t node_id) const;

 private:
  struct Node {
    std::uint64_t id = 0;
    bool alive = true;
    // Finger k points at the first node >= position + 2^k (circularly).
    std::vector<RingId> fingers;
    // The next kSuccessorListLen distinct ring positions (dead or alive).
    std::vector<RingId> succ_list;
    std::map<std::string, std::string, std::less<>> store;
  };

  /// First ring position >= p (circular); requires a non-empty ring.
  RingId successor_position(RingId p) const;
  /// First *alive* ring position >= p; nullopt when every node is dead.
  std::optional<RingId> alive_successor_position(RingId p) const;
  const Node& node_at(RingId position) const;
  Node& node_at(RingId position);
  void rebuild_fingers();
  void reassign_all_keys();

  std::size_t replication_;
  std::map<RingId, Node> nodes_;  // position -> node
};

}  // namespace dosn::net
