// Deterministic fault injection for the network stack.
//
// The protocol simulators (gossip, replica_sim, profile_sync, dht) were
// built under ideal conditions: every message arrives, every node follows
// its DaySchedule to the second, the relay never blinks. Schiöberg et al.
// ("Revisiting Content Availability in Distributed Online Social
// Networks") show that availability estimates collapse under realistic
// churn and flakiness, so this layer injects the deviations those systems
// actually see — and the hardened protocols are measured against them:
//
//   * message faults   — per-message drop probability and latency jitter
//     on the gossip wire;
//   * churn faults     — sessions a replica skips entirely (no-show) or
//     cuts short (truncation), deviating from its DaySchedule;
//   * node outages     — transient failures with optional recovery
//     (generalizing crash-stop NodeFailure);
//   * relay outages    — windows during which the UnconRep store is
//     unreachable;
//   * DHT crashes      — ring nodes dead without a graceful leave.
//
// Determinism contract (same discipline as the study engine): every fault
// decision is drawn from a per-entity RNG stream derived with util::mix64
// from FaultPlan::seed — never from the protocol's own Rng — so (a) a
// fixed plan yields bit-identical runs regardless of thread count or
// observability, and (b) the zero plan consumes nothing the unfaulted
// code path would not, reproducing today's outputs exactly. Decisions are
// additionally *nested*: scaled(plan, f1) injects a subset of the faults
// of scaled(plan, f2) for f1 <= f2 (the per-entity draws are compared
// against scaled probabilities), which is what makes degradation curves
// monotone rather than merely monotone in expectation.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "interval/day_schedule.hpp"
#include "net/event_queue.hpp"
#include "net/scenario.hpp"
#include "util/rng.hpp"

namespace dosn::net {

using interval::DaySchedule;
using interval::Seconds;

/// Transient failure window of one simulated node: down at `at`, back at
/// `recover_at` (never, when absent — a crash-stop).
struct NodeOutage {
  std::size_t node = 0;
  SimTime at = 0;
  std::optional<SimTime> recover_at;
};

/// Unavailability window [start, end) of shared infrastructure (the
/// UnconRep relay).
struct OutageWindow {
  SimTime start = 0;
  SimTime end = 0;
};

/// A complete fault scenario. The default-constructed plan is the zero
/// plan: nothing ever fires and every hardened protocol reproduces its
/// unfaulted outputs bit for bit.
struct FaultPlan {
  /// Base seed of the per-entity fault streams (independent of the
  /// protocol seeds; two plans differing only in seed inject different
  /// fault realizations of the same intensity).
  std::uint64_t seed = 0;

  // --- message layer (gossip wire) ---
  /// Probability that one transmission attempt is dropped.
  double message_drop = 0.0;
  /// Uniform extra one-way latency in [0, latency_jitter_max] seconds.
  Seconds latency_jitter_max = 0;

  // --- churn layer (DaySchedule deviations) ---
  /// Probability a daily session is skipped entirely.
  double session_no_show = 0.0;
  /// Probability a session ends early.
  double session_truncate = 0.0;
  /// A truncated session loses up to this fraction of its length.
  double truncate_max_fraction = 0.0;

  // --- infrastructure ---
  /// Transient node failures (applied by index into the simulated group).
  std::vector<NodeOutage> node_outages;
  /// Windows during which the UnconRep relay is unreachable.
  std::vector<OutageWindow> relay_outages;
  /// Probability a DHT node is crashed (decided per node id).
  double dht_crash = 0.0;

  // --- composite scenarios (net/scenario.hpp) ---
  /// Macro-events layered on top of the per-node fault classes: regional
  /// outages and churn bursts materialize as extra per-node outage
  /// windows inside sessions()/degrade_day(); flash crowds are consumed
  /// by the serving workload (serve/workload.hpp). Realizations come from
  /// per-(entry, node) streams of this plan's seed, so the zero scenario
  /// stays bit-identical and scaled() realizations nest.
  ScenarioSpec scenario;

  /// True when no fault can ever fire.
  bool zero() const;
};

/// Throws ConfigError when probabilities/windows are out of range.
void validate(const FaultPlan& plan);

/// Scales a plan's intensity by `f` in [0, 1]: probabilities and the
/// truncation fraction multiply by f (clamped to 1), jitter and outage
/// window lengths shrink proportionally, and at f == 0 every fault
/// vanishes. The seed is preserved, so scaled plans are nested.
FaultPlan scaled(const FaultPlan& base, double f);

/// Per-run fault totals, accumulated by the injector and flushed once per
/// simulation into the obs registry (`net.fault.*`) by the protocol that
/// owns the run — the hot paths carry no instrumentation cost.
struct FaultStats {
  std::uint64_t messages_dropped = 0;
  std::uint64_t jitter_applied = 0;   ///< attempts delayed by jitter > 0
  std::uint64_t sessions_skipped = 0;
  std::uint64_t sessions_truncated = 0;
  std::uint64_t outage_cuts = 0;      ///< session pieces cut by an outage
  std::uint64_t relay_blocked = 0;    ///< operations refused: relay down
  std::uint64_t scenario_windows = 0; ///< realized scenario outage windows
};

/// Publishes per-run totals to the obs registry (one add per field).
void flush_fault_stats(const FaultStats& stats);

/// Draws fault decisions for one simulation run. Message decisions are
/// consumed in send order from one stream per sending entity; schedule
/// materialization is a pure function of (plan seed, node, day, session
/// index). The injector never touches a protocol Rng.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }
  bool zero() const { return zero_; }

  /// One transmission attempt by `sender`: true = the attempt is lost.
  bool drop_message(std::size_t sender);

  /// Extra one-way latency of one attempt by `sender` (0 when jitter is
  /// disabled). Always consumes exactly one draw per call, keeping the
  /// per-sender streams aligned across plan intensities.
  Seconds latency_jitter(std::size_t sender);

  /// Materializes `node`'s absolute online sessions over the horizon with
  /// churn faults and the node's outage windows applied. Preserves the
  /// unfaulted per-(day, piece) event structure: for the zero plan the
  /// result is exactly { day * kDaySeconds + piece } in day-major order
  /// (no merging of midnight-adjacent pieces), so event-driven simulators
  /// built on it reproduce their unfaulted event sequences bit for bit.
  std::vector<interval::Interval> sessions(std::size_t node,
                                           const DaySchedule& schedule,
                                           int horizon_days);

  /// Daily-projection counterpart for the analytic engine: applies one
  /// day's churn draws (the same per-node stream discipline) plus the
  /// node's outage windows projected onto the day. Feeds the resilience
  /// sweep, where placements chosen on ideal schedules are re-evaluated
  /// on degraded ones.
  DaySchedule degrade_day(std::size_t node, const DaySchedule& schedule);

  /// Is the relay inside an outage window at time t?
  bool relay_down(SimTime t) const;

  /// Is this DHT node crashed under the plan? Pure function of
  /// (plan seed, node id).
  bool dht_crashed(std::uint64_t node_id) const;

  const FaultStats& stats() const { return stats_; }
  /// Publishes the accumulated totals to obs and zeroes them.
  void flush_stats();

 private:
  util::Rng& message_stream(std::size_t sender);

  /// Applies no-show/truncation draws to one session piece; returns the
  /// kept part (empty when skipped). Draws exactly three uniforms.
  std::optional<interval::Interval> churn_piece(util::Rng& stream,
                                                interval::Interval piece);

  /// Appends `node`'s realized scenario outage windows (regional outages
  /// the node participates in, churn-burst days it drops) clipped to
  /// [0, horizon). Each scenario entry draws from its own
  /// per-(entry, node) stream, so realizations are independent of entry
  /// activity and nested across scaled() intensities.
  void append_scenario_windows(std::size_t node, SimTime horizon,
                               std::vector<interval::Interval>& windows);

  FaultPlan plan_;
  bool zero_ = false;
  FaultStats stats_;
  // Per-sender message streams, created on first use. Keyed access only —
  // never iterated — so container order cannot leak into any result.
  std::map<std::size_t, util::Rng> message_streams_;
};

}  // namespace dosn::net
