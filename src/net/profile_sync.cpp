#include "net/profile_sync.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/stats.hpp"

namespace dosn::net {

using core::PostId;
using core::Profile;
using interval::kDaySeconds;

namespace {

// Equal-time ordering: relay transitions first (half-open outage windows),
// then offline (half-open schedules), then online, then writes, then reads
// (a read at the same instant as a write sees it).
enum class EventKind {
  kRelayDown = 0,
  kRelayUp = 1,
  kOffline = 2,
  kOnline = 3,
  kWrite = 4,
  kRead = 5,
};

struct RawEvent {
  SimTime time;
  EventKind kind;
  std::size_t index;  // node for churn; write/read event index otherwise
  std::size_t node = 0;
};

}  // namespace

ProfileSyncReport simulate_profile_sync(std::span<const DaySchedule> nodes,
                                        std::span<const DaySchedule> readers,
                                        std::span<const WriteEvent> writes,
                                        std::span<const ReadEvent> reads,
                                        const ProfileSyncConfig& config) {
  DOSN_REQUIRE(config.horizon_days > 0, "profile sync: horizon must be > 0");
  DOSN_REQUIRE(!nodes.empty(), "profile sync: need at least the owner node");
  const SimTime horizon =
      static_cast<SimTime>(config.horizon_days) * kDaySeconds;
  for (const auto& w : writes)
    DOSN_REQUIRE(w.time >= 0 && w.time < horizon,
                 "profile sync: write outside horizon");
  for (const auto& r : reads) {
    DOSN_REQUIRE(r.time >= 0 && r.time < horizon,
                 "profile sync: read outside horizon");
    DOSN_REQUIRE(r.reader < readers.size(), "profile sync: bad reader index");
  }

  FaultInjector injector(config.faults);

  std::vector<RawEvent> raw;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& iv :
         injector.sessions(i, nodes[i], config.horizon_days)) {
      raw.push_back({iv.start, EventKind::kOnline, i, i});
      raw.push_back({iv.end, EventKind::kOffline, i, i});
    }
  }
  for (std::size_t w = 0; w < writes.size(); ++w)
    raw.push_back({writes[w].time, EventKind::kWrite, w});
  for (std::size_t r = 0; r < reads.size(); ++r)
    raw.push_back({reads[r].time, EventKind::kRead, r});

  // Relay outage windows only exist under UnconRep (ConRep has no relay).
  if (config.connectivity == Connectivity::kUnconRep) {
    interval::IntervalSet windows;
    for (const auto& w : config.faults.relay_outages) {
      const SimTime start = std::min(w.start, horizon);
      const SimTime end = std::min(w.end, horizon);
      if (start < end) windows.add(start, end);
    }
    for (const auto& w : windows.pieces()) {
      raw.push_back({w.start, EventKind::kRelayDown, 0, 0});
      raw.push_back({w.end, EventKind::kRelayUp, 0, 0});
    }
  }
  std::sort(raw.begin(), raw.end(), [](const RawEvent& a, const RawEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.index < b.index;
  });

  // Group invariant: every online replica shares `group`. Under UnconRep
  // the relay mirrors the group while reachable; during a relay outage the
  // group falls back to ConRep semantics (no durability) and re-merges
  // with the relay when it returns.
  const bool persistent = config.connectivity == Connectivity::kUnconRep;
  Profile group(/*owner=*/0);
  Profile relay(/*owner=*/0);  // persistent store content (UnconRep)
  bool relay_up = true;
  std::vector<Profile> held(nodes.size(), Profile(0));  // state while offline
  std::vector<bool> online(nodes.size(), false);
  std::size_t online_count = 0;
  const auto sync_relay = [&] {
    if (persistent && relay_up) relay = group;
  };

  // Reader caches for read-repair: every post a reader has seen.
  std::vector<Profile> reader_cache;
  if (config.read_repair) reader_cache.assign(readers.size(), Profile(0));
  FaultStats relay_stats;  // operations that failed while the relay was down

  // Author-signed sequence numbers: the author's client numbers his posts.
  // lint:ordered-ok — keyed increments only (operator[]); never iterated,
  // so the hash order cannot leak into any result.
  std::unordered_map<core::UserId, core::SeqNo> author_seq;

  // Accepted posts in acceptance order (creation time, id).
  std::vector<std::pair<SimTime, PostId>> accepted;

  ProfileSyncReport report;
  report.writes_attempted = writes.size();

  EventQueue queue;
  for (const auto& ev : raw) {
    queue.schedule(ev.time, [&, ev] {
      switch (ev.kind) {
        case EventKind::kRelayDown: {
          relay = group;  // mirrored while up; freeze explicitly
          relay_up = false;
          break;
        }
        case EventKind::kRelayUp: {
          relay_up = true;
          if (online_count > 0) {
            group.merge(relay);
            relay = group;
          } else {
            group = relay;  // only durable content survives an empty group
          }
          break;
        }
        case EventKind::kOnline: {
          if (online_count == 0 && !(persistent && relay_up))
            group = Profile(0);  // previous group dissolved
          group.merge(held[ev.index]);
          online[ev.index] = true;
          ++online_count;
          sync_relay();
          break;
        }
        case EventKind::kOffline: {
          held[ev.index] = group;  // carry a snapshot away
          online[ev.index] = false;
          --online_count;
          break;
        }
        case EventKind::kWrite: {
          if (online_count == 0) {  // profile unreachable: write fails
            if (persistent && !relay_up) ++relay_stats.relay_blocked;
            break;
          }
          const auto& w = writes[ev.index];
          core::Post post;
          post.id = PostId{w.author, ++author_seq[w.author]};
          post.timestamp = ev.time;
          const bool fresh = group.insert(post);
          DOSN_ASSERT(fresh);
          accepted.emplace_back(ev.time, post.id);
          ++report.writes_succeeded;
          sync_relay();
          break;
        }
        case EventKind::kRead: {
          ReadSample sample;
          sample.time = ev.time;
          sample.reader = reads[ev.index].reader;
          sample.success = online_count > 0;
          if (!sample.success && persistent && !relay_up)
            ++relay_stats.relay_blocked;
          if (sample.success) {
            Seconds oldest_missing = -1;
            for (const auto& [created, id] : accepted) {
              if (!group.contains(id)) {
                ++sample.missing;
                if (oldest_missing < 0) oldest_missing = created;
              }
            }
            if (oldest_missing >= 0)
              sample.staleness = ev.time - oldest_missing;
            sample.degraded = sample.missing > 0;
            if (sample.degraded) ++report.degraded_reads;
            if (config.read_repair) {
              // Write back posts the reader has seen but the contacted
              // replica lost, then refresh the reader's cache.
              Profile& cache = reader_cache[sample.reader];
              for (const auto& post : cache.posts()) {
                if (group.insert(post)) ++sample.repaired;
              }
              if (sample.repaired > 0) {
                report.read_repairs += sample.repaired;
                sync_relay();
              }
              cache.merge(group);
            }
          }
          report.reads.push_back(sample);
          break;
        }
      }
    });
  }
  queue.run_all();

  // Read statistics.
  std::size_t read_ok = 0;
  util::RunningStats missing_stats;
  for (const auto& s : report.reads) {
    if (!s.success) continue;
    ++read_ok;
    missing_stats.add(static_cast<double>(s.missing));
    report.max_staleness = std::max(report.max_staleness, s.staleness);
  }
  report.read_success_rate =
      report.reads.empty()
          ? 1.0
          : static_cast<double>(read_ok) /
                static_cast<double>(report.reads.size());
  report.mean_missing = missing_stats.mean();
  report.write_success_rate =
      writes.empty() ? 1.0
                     : static_cast<double>(report.writes_succeeded) /
                           static_cast<double>(writes.size());

  // Convergence: final state per node (group for those still online).
  const Profile* reference = nullptr;
  report.converged = true;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].empty()) continue;  // never participated
    const Profile& final_state = online[i] ? group : held[i];
    report.final_posts = std::max(report.final_posts, final_state.size());
    if (!reference)
      reference = &final_state;
    else if (!(final_state == *reference))
      report.converged = false;
  }
  if (!reference) report.converged = false;  // nobody ever online
  injector.flush_stats();
  flush_fault_stats(relay_stats);
  return report;
}

std::vector<ReadEvent> reads_within_schedules(
    std::span<const DaySchedule> readers, std::size_t count, int horizon_days,
    util::Rng& rng) {
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < readers.size(); ++i)
    if (!readers[i].empty()) eligible.push_back(i);
  DOSN_REQUIRE(!eligible.empty(),
               "reads_within_schedules: no reader is ever online");

  std::vector<ReadEvent> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t reader = eligible[k % eligible.size()];
    const auto& sched = readers[reader];
    const auto day = static_cast<SimTime>(
        rng.below(static_cast<std::uint64_t>(horizon_days)));
    auto offset = static_cast<Seconds>(
        rng.below(static_cast<std::uint64_t>(sched.online_seconds())));
    Seconds tod = 0;
    for (const auto& iv : sched.set().pieces()) {
      if (offset < iv.length()) {
        tod = iv.start + offset;
        break;
      }
      offset -= iv.length();
    }
    out.push_back({day * kDaySeconds + tod, reader});
  }
  std::sort(out.begin(), out.end(),
            [](const ReadEvent& a, const ReadEvent& b) {
              return a.time < b.time;
            });
  return out;
}

}  // namespace dosn::net
