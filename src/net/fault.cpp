#include "net/fault.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dosn::net {

using interval::Interval;
using interval::IntervalSet;
using interval::kDaySeconds;

namespace {

// Stream-family tags (same role as the sweep tags in sim/study): one family
// per fault class, so a node's message faults, churn faults, and DHT crash
// decision come from unrelated streams of the same plan seed.
inline constexpr std::uint64_t kMsgTag = 0xfa0c1;
inline constexpr std::uint64_t kChurnTag = 0xfa0c2;
inline constexpr std::uint64_t kDhtTag = 0xfa0c3;
inline constexpr std::uint64_t kRegionTag = 0xfa0c4;
inline constexpr std::uint64_t kBurstTag = 0xfa0c5;

struct FaultObs {
  obs::Counter& messages_dropped =
      obs::Registry::global().counter("net.fault.messages_dropped");
  obs::Counter& jitter_applied =
      obs::Registry::global().counter("net.fault.jitter_applied");
  obs::Counter& sessions_skipped =
      obs::Registry::global().counter("net.fault.sessions_skipped");
  obs::Counter& sessions_truncated =
      obs::Registry::global().counter("net.fault.sessions_truncated");
  obs::Counter& outage_cuts =
      obs::Registry::global().counter("net.fault.outage_cuts");
  obs::Counter& relay_blocked =
      obs::Registry::global().counter("net.fault.relay_blocked");
  obs::Counter& scenario_windows =
      obs::Registry::global().counter("net.fault.scenario_windows");
};

FaultObs& fault_obs() {
  static FaultObs o;
  return o;
}

void require_probability(double p, const char* what) {
  DOSN_REQUIRE(p >= 0.0 && p <= 1.0, std::string("fault plan: ") + what +
                                         " must be a probability in [0, 1]");
}

}  // namespace

bool FaultPlan::zero() const {
  return message_drop <= 0.0 && latency_jitter_max <= 0 &&
         session_no_show <= 0.0 &&
         (session_truncate <= 0.0 || truncate_max_fraction <= 0.0) &&
         node_outages.empty() && relay_outages.empty() && dht_crash <= 0.0 &&
         scenario.zero();
}

void validate(const FaultPlan& plan) {
  require_probability(plan.message_drop, "message_drop");
  require_probability(plan.session_no_show, "session_no_show");
  require_probability(plan.session_truncate, "session_truncate");
  require_probability(plan.truncate_max_fraction, "truncate_max_fraction");
  require_probability(plan.dht_crash, "dht_crash");
  DOSN_REQUIRE(plan.latency_jitter_max >= 0,
               "fault plan: negative latency_jitter_max");
  for (const auto& o : plan.node_outages) {
    DOSN_REQUIRE(o.at >= 0, "fault plan: node outage before time 0");
    DOSN_REQUIRE(!o.recover_at || *o.recover_at >= o.at,
                 "fault plan: node outage recovers before it starts");
  }
  for (const auto& w : plan.relay_outages)
    DOSN_REQUIRE(w.start >= 0 && w.start <= w.end,
                 "fault plan: malformed relay outage window");
  validate(plan.scenario);
}

FaultPlan scaled(const FaultPlan& base, double f) {
  validate(base);
  DOSN_REQUIRE(f >= 0.0 && f <= 1.0, "fault plan: intensity outside [0, 1]");
  FaultPlan out;
  out.seed = base.seed;
  // Scenario entries are preserved (inactive at f == 0) so entry indices —
  // and with them the per-(entry, node) streams — stay aligned across
  // intensities.
  out.scenario = scaled(base.scenario, f);
  if (f <= 0.0) return out;  // the zero plan, seed preserved

  out.message_drop = base.message_drop * f;
  out.latency_jitter_max =
      static_cast<Seconds>(static_cast<double>(base.latency_jitter_max) * f);
  out.session_no_show = base.session_no_show * f;
  out.session_truncate = base.session_truncate * f;
  out.truncate_max_fraction = base.truncate_max_fraction * f;
  out.dht_crash = base.dht_crash * f;

  // Outage windows keep their start and shrink proportionally; zero-length
  // results vanish. Crash-stops (no recovery) are unbounded, so any f > 0
  // keeps them whole — still nested.
  for (const auto& o : base.node_outages) {
    if (!o.recover_at) {
      out.node_outages.push_back(o);
      continue;
    }
    const auto len = static_cast<Seconds>(
        static_cast<double>(*o.recover_at - o.at) * f);
    if (len > 0) out.node_outages.push_back({o.node, o.at, o.at + len});
  }
  for (const auto& w : base.relay_outages) {
    const auto len =
        static_cast<Seconds>(static_cast<double>(w.end - w.start) * f);
    if (len > 0) out.relay_outages.push_back({w.start, w.start + len});
  }
  return out;
}

void flush_fault_stats(const FaultStats& stats) {
  FaultObs& o = fault_obs();
  o.messages_dropped.add(stats.messages_dropped);
  o.jitter_applied.add(stats.jitter_applied);
  o.sessions_skipped.add(stats.sessions_skipped);
  o.sessions_truncated.add(stats.sessions_truncated);
  o.outage_cuts.add(stats.outage_cuts);
  o.relay_blocked.add(stats.relay_blocked);
  o.scenario_windows.add(stats.scenario_windows);
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  validate(plan_);
  zero_ = plan_.zero();
}

util::Rng& FaultInjector::message_stream(std::size_t sender) {
  auto it = message_streams_.find(sender);
  if (it == message_streams_.end())
    it = message_streams_
             .emplace(sender, util::Rng(util::mix64(plan_.seed, kMsgTag,
                                                    sender)))
             .first;
  return it->second;
}

bool FaultInjector::drop_message(std::size_t sender) {
  if (plan_.message_drop <= 0.0) return false;
  const bool drop = message_stream(sender).uniform() < plan_.message_drop;
  if (drop) ++stats_.messages_dropped;
  return drop;
}

Seconds FaultInjector::latency_jitter(std::size_t sender) {
  if (plan_.latency_jitter_max <= 0) return 0;
  const double u = message_stream(sender).uniform();
  const auto jitter = std::min<Seconds>(
      static_cast<Seconds>(
          u * static_cast<double>(plan_.latency_jitter_max + 1)),
      plan_.latency_jitter_max);
  if (jitter > 0) ++stats_.jitter_applied;
  return jitter;
}

std::optional<Interval> FaultInjector::churn_piece(util::Rng& stream,
                                                   Interval piece) {
  // Fixed three draws per piece regardless of outcome: the stream position
  // depends only on (node, day, piece index), never on earlier decisions,
  // so scaled plans compare the *same* draws against scaled thresholds and
  // the injected fault sets are nested across intensities.
  const double u_skip = stream.uniform();
  const double u_gate = stream.uniform();
  const double u_amount = stream.uniform();
  if (u_skip < plan_.session_no_show) {
    ++stats_.sessions_skipped;
    return std::nullopt;
  }
  if (u_gate < plan_.session_truncate) {
    const auto cut = static_cast<Seconds>(u_amount *
                                          plan_.truncate_max_fraction *
                                          static_cast<double>(piece.length()));
    if (cut > 0) {
      ++stats_.sessions_truncated;
      piece.end -= cut;
    }
  }
  return piece;
}

void FaultInjector::append_scenario_windows(std::size_t node, SimTime horizon,
                                            std::vector<Interval>& windows) {
  const ScenarioSpec& sc = plan_.scenario;
  for (std::size_t e = 0; e < sc.regional_outages.size(); ++e) {
    const auto& r = sc.regional_outages[e];
    if (!r.active() || node % r.regions != r.region) continue;
    // One participation draw per (entry, node); scaled specs compare the
    // same draw against a scaled threshold, so realizations nest.
    util::Rng stream(util::mix64(util::mix64(plan_.seed, kRegionTag, e),
                                 node));
    if (stream.uniform() >= r.participation) continue;
    const SimTime end = std::min<SimTime>(r.end, horizon);
    if (r.start < end) {
      windows.push_back({r.start, end});
      ++stats_.scenario_windows;
    }
  }
  for (std::size_t e = 0; e < sc.churn_bursts.size(); ++e) {
    const auto& b = sc.churn_bursts[e];
    if (!b.active()) continue;
    util::Rng stream(util::mix64(util::mix64(plan_.seed, kBurstTag, e),
                                 node));
    if (stream.uniform() >= b.participation) continue;
    // One draw per day of the window, positioned by the day's ordinal
    // from the (scale-invariant) window start: the scaled window's days
    // are a prefix of the base window's days comparing identical draws.
    const SimTime first_day = b.start / kDaySeconds;
    const SimTime last_day = (b.end - 1) / kDaySeconds;
    for (SimTime day = first_day; day <= last_day; ++day) {
      const double u = stream.uniform();
      if (u >= b.no_show) continue;
      const SimTime start =
          std::max<SimTime>(b.start, day * kDaySeconds);
      const SimTime end =
          std::min<SimTime>({b.end, (day + 1) * kDaySeconds, horizon});
      if (start < end) {
        windows.push_back({start, end});
        ++stats_.scenario_windows;
      }
    }
  }
}

std::vector<Interval> FaultInjector::sessions(std::size_t node,
                                              const DaySchedule& schedule,
                                              int horizon_days) {
  DOSN_REQUIRE(horizon_days > 0, "fault: horizon must be > 0");
  const SimTime horizon = static_cast<SimTime>(horizon_days) * kDaySeconds;

  // This node's downtime windows, canonicalized (sorted + merged) so the
  // subtraction below can sweep them in one pass per session piece.
  std::vector<Interval> windows;
  for (const auto& o : plan_.node_outages) {
    if (o.node != node) continue;
    const SimTime end = o.recover_at ? std::min(*o.recover_at, horizon)
                                     : horizon;
    if (o.at < end) windows.push_back({o.at, end});
  }
  append_scenario_windows(node, horizon, windows);
  const IntervalSet down = windows.empty() ? IntervalSet{}
                                           : IntervalSet(std::move(windows));

  const bool churn =
      plan_.session_no_show > 0.0 || plan_.session_truncate > 0.0;
  util::Rng stream(util::mix64(plan_.seed, kChurnTag, node));

  std::vector<Interval> out;
  for (int day = 0; day < horizon_days; ++day) {
    const SimTime base = static_cast<SimTime>(day) * kDaySeconds;
    for (const auto& iv : schedule.set().pieces()) {
      Interval piece{base + iv.start, base + iv.end};
      if (churn) {
        const auto kept = churn_piece(stream, piece);
        if (!kept) continue;
        piece = *kept;
      }
      // Subtract the outage windows piecewise — deliberately NOT through
      // IntervalSet::add, which would merge midnight-adjacent pieces and
      // change the event structure the zero plan must preserve.
      Seconds s = piece.start;
      for (const auto& w : down.pieces()) {
        if (w.end <= s) continue;
        if (w.start >= piece.end) break;
        ++stats_.outage_cuts;
        if (w.start > s) out.push_back({s, w.start});
        s = std::max(s, w.end);
        if (s >= piece.end) break;
      }
      if (s < piece.end) out.push_back({s, piece.end});
    }
  }
  return out;
}

DaySchedule FaultInjector::degrade_day(std::size_t node,
                                       const DaySchedule& schedule) {
  const bool churn =
      plan_.session_no_show > 0.0 || plan_.session_truncate > 0.0;
  IntervalSet kept;
  if (churn) {
    // Same per-node stream as sessions(): one day's worth of draws.
    util::Rng stream(util::mix64(plan_.seed, kChurnTag, node));
    for (const auto& iv : schedule.set().pieces())
      if (const auto k = churn_piece(stream, iv)) kept.add(*k);
  } else {
    kept = schedule.set();
  }

  std::vector<Interval> windows;
  for (const auto& o : plan_.node_outages) {
    if (o.node != node) continue;
    // A crash-stop blankets the whole daily cycle.
    const SimTime end = o.recover_at ? *o.recover_at : o.at + kDaySeconds;
    if (o.at < end) windows.push_back({o.at, end});
  }
  // Scenario windows projected onto the daily cycle — the same per-node
  // realization the event horizon sees (multi-day windows blanket the
  // cycle, matching the crash-stop approximation above).
  {
    SimTime scenario_horizon = 0;
    for (const auto& r : plan_.scenario.regional_outages)
      scenario_horizon = std::max<SimTime>(scenario_horizon, r.end);
    for (const auto& b : plan_.scenario.churn_bursts)
      scenario_horizon = std::max<SimTime>(scenario_horizon, b.end);
    if (scenario_horizon > 0)
      append_scenario_windows(node, scenario_horizon, windows);
  }
  if (!windows.empty()) {
    ++stats_.outage_cuts;
    kept = kept.subtract(DaySchedule::project(windows).set());
  }
  return DaySchedule(kept);
}

bool FaultInjector::relay_down(SimTime t) const {
  for (const auto& w : plan_.relay_outages)
    if (w.start <= t && t < w.end) return true;
  return false;
}

bool FaultInjector::dht_crashed(std::uint64_t node_id) const {
  if (plan_.dht_crash <= 0.0) return false;
  util::Rng stream(util::mix64(plan_.seed, kDhtTag, node_id));
  return stream.uniform() < plan_.dht_crash;
}

void FaultInjector::flush_stats() {
  flush_fault_stats(stats_);
  stats_ = FaultStats{};
}

}  // namespace dosn::net
