#include "net/dht.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dosn::net {
namespace {

/// FNV-1a over the key bytes, finished through splitmix64 for avalanche.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// x in (a, b] on the circular ring.
bool in_half_open(RingId x, RingId a, RingId b) {
  if (a == b) return true;  // full circle: single-node ring owns everything
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}

/// x in (a, b) on the circular ring.
bool in_open(RingId x, RingId a, RingId b) {
  if (a == b) return x != a;  // full circle minus the point
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

}  // namespace

RingId ring_hash(std::string_view key) {
  std::uint64_t s = fnv1a(key);
  return util::splitmix64(s);
}

RingId node_ring_position(std::uint64_t node_id) {
  std::uint64_t s = node_id ^ 0x9e3779b97f4a7c15ULL;
  return util::splitmix64(s);
}

DhtRing::DhtRing(std::size_t replication) : replication_(replication) {
  DOSN_REQUIRE(replication_ >= 1, "DhtRing: replication must be >= 1");
}

RingId DhtRing::join(std::uint64_t node_id) {
  const RingId position = node_ring_position(node_id);
  DOSN_REQUIRE(!nodes_.count(position),
               "DhtRing: node already present (or position collision)");
  Node node;
  node.id = node_id;
  nodes_.emplace(position, std::move(node));
  rebuild_fingers();
  reassign_all_keys();
  return position;
}

void DhtRing::leave(std::uint64_t node_id) {
  const RingId position = node_ring_position(node_id);
  auto it = nodes_.find(position);
  if (it == nodes_.end()) return;
  // Carry the departing node's entries along for re-assignment.
  auto orphaned = std::move(it->second.store);
  nodes_.erase(it);
  if (nodes_.empty()) return;
  rebuild_fingers();
  reassign_all_keys();
  if (alive_count() == 0) return;  // nobody left to adopt the keys
  for (auto& [key, value] : orphaned) put(key, std::move(value));
}

bool DhtRing::crash(std::uint64_t node_id) {
  auto it = nodes_.find(node_ring_position(node_id));
  if (it == nodes_.end() || !it->second.alive) return false;
  it->second.alive = false;
  it->second.store.clear();  // a crash loses the node's replicas
  return true;
}

void DhtRing::stabilize() {
  for (auto it = nodes_.begin(); it != nodes_.end();)
    it = it->second.alive ? std::next(it) : nodes_.erase(it);
  if (nodes_.empty()) return;
  rebuild_fingers();
  reassign_all_keys();  // re-replicate surviving keys to alive nodes
}

bool DhtRing::contains_node(std::uint64_t node_id) const {
  return nodes_.count(node_ring_position(node_id)) > 0;
}

bool DhtRing::node_alive(std::uint64_t node_id) const {
  auto it = nodes_.find(node_ring_position(node_id));
  return it != nodes_.end() && it->second.alive;
}

std::size_t DhtRing::alive_count() const {
  std::size_t n = 0;
  for (const auto& [position, node] : nodes_)
    if (node.alive) ++n;
  return n;
}

RingId DhtRing::successor_position(RingId p) const {
  DOSN_ASSERT(!nodes_.empty());
  auto it = nodes_.lower_bound(p);
  if (it == nodes_.end()) it = nodes_.begin();  // wrap
  return it->first;
}

std::optional<RingId> DhtRing::alive_successor_position(RingId p) const {
  auto it = nodes_.lower_bound(p);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (it == nodes_.end()) it = nodes_.begin();  // wrap
    if (it->second.alive) return it->first;
    ++it;
  }
  return std::nullopt;
}

const DhtRing::Node& DhtRing::node_at(RingId position) const {
  auto it = nodes_.find(position);
  DOSN_ASSERT(it != nodes_.end());
  return it->second;
}

DhtRing::Node& DhtRing::node_at(RingId position) {
  auto it = nodes_.find(position);
  DOSN_ASSERT(it != nodes_.end());
  return it->second;
}

void DhtRing::rebuild_fingers() {
  const std::size_t succ_len =
      std::min(kSuccessorListLen, nodes_.size() - 1);
  for (auto& [position, node] : nodes_) {
    node.fingers.clear();
    node.fingers.reserve(64);
    for (int k = 0; k < 64; ++k) {
      const RingId target = position + (RingId{1} << k);  // wraps naturally
      node.fingers.push_back(successor_position(target));
    }
    node.succ_list.clear();
    node.succ_list.reserve(succ_len);
    RingId p = position;
    for (std::size_t s = 0; s < succ_len; ++s) {
      p = successor_position(p + 1);
      node.succ_list.push_back(p);
    }
  }
}

std::vector<std::uint64_t> DhtRing::responsible_nodes(
    std::string_view key) const {
  DOSN_REQUIRE(!nodes_.empty(), "DhtRing: empty ring");
  std::vector<std::uint64_t> out;
  const std::size_t copies = std::min(replication_, alive_count());
  std::optional<RingId> p = alive_successor_position(ring_hash(key));
  for (std::size_t r = 0; r < copies; ++r) {
    out.push_back(node_at(*p).id);
    p = alive_successor_position(*p + 1);
  }
  return out;
}

DhtRing::Lookup DhtRing::lookup(std::string_view key, util::Rng& rng) const {
  DOSN_REQUIRE(!nodes_.empty(), "DhtRing: empty ring");
  const RingId target = ring_hash(key);

  // Random entry point, as a client would have. A dead bootstrap node
  // costs a failed probe and the client tries the next ring position.
  auto it = nodes_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng.below(nodes_.size())));
  Lookup result;
  for (std::size_t n = 0; n < nodes_.size() && !it->second.alive; ++n) {
    ++result.failed_probes;
    ++it;
    if (it == nodes_.end()) it = nodes_.begin();
  }
  if (!it->second.alive) {  // every node is dead
    result.ok = false;
    return result;
  }
  RingId current = it->first;

  for (;;) {
    // Successor of `current` through its successor list: each dead entry
    // probed costs a failed probe; an exhausted list fails the lookup
    // (more consecutive crashes than the list covers — stabilize() and
    // retry).
    const Node& cur = node_at(current);
    RingId succ = current;  // single-node ring: owns everything
    if (!cur.succ_list.empty()) {
      bool found = false;
      for (const RingId s : cur.succ_list) {
        if (node_at(s).alive) {
          succ = s;
          found = true;
          break;
        }
        ++result.failed_probes;
      }
      if (!found) {
        result.ok = false;
        return result;
      }
    }
    if (in_half_open(target, current, succ)) {
      result.owner = node_at(succ).id;
      if (succ != current) ++result.hops;  // final forward to the owner
      return result;
    }
    // Closest preceding *alive* finger of `current` towards the target;
    // dead candidates probed on the way down each cost a failed probe.
    RingId next = succ;  // fallback: step to the alive successor
    for (auto f = cur.fingers.rbegin(); f != cur.fingers.rend(); ++f) {
      if (in_open(*f, current, target)) {
        if (node_at(*f).alive) {
          next = *f;
          break;
        }
        ++result.failed_probes;
      }
    }
    DOSN_ASSERT(next != current);
    current = next;
    ++result.hops;
  }
}

void DhtRing::put(std::string_view key, std::string value) {
  DOSN_REQUIRE(!nodes_.empty(), "DhtRing: empty ring");
  const std::size_t copies = std::min(replication_, alive_count());
  DOSN_REQUIRE(copies > 0, "DhtRing: no alive node");
  std::optional<RingId> p = alive_successor_position(ring_hash(key));
  for (std::size_t r = 0; r < copies; ++r) {
    node_at(*p).store.insert_or_assign(std::string(key), value);
    p = alive_successor_position(*p + 1);
  }
}

std::optional<std::string> DhtRing::get(
    std::string_view key, std::optional<std::uint64_t> failed_node) const {
  if (nodes_.empty()) return std::nullopt;
  const std::size_t copies = std::min(replication_, alive_count());
  std::optional<RingId> p = alive_successor_position(ring_hash(key));
  for (std::size_t r = 0; r < copies; ++r) {
    const Node& node = node_at(*p);
    if (!failed_node || node.id != *failed_node) {
      auto it = node.store.find(key);
      if (it != node.store.end()) return it->second;
    }
    p = alive_successor_position(*p + 1);
  }
  return std::nullopt;
}

std::size_t DhtRing::stored_entries() const {
  std::size_t total = 0;
  for (const auto& [position, node] : nodes_) total += node.store.size();
  return total;
}

std::size_t DhtRing::entries_at(std::uint64_t node_id) const {
  auto it = nodes_.find(node_ring_position(node_id));
  return it == nodes_.end() ? 0 : it->second.store.size();
}

void DhtRing::reassign_all_keys() {
  // Collect everything, clear, and re-place: simple, correct, and cheap at
  // simulation scale.
  std::vector<std::pair<std::string, std::string>> all;
  for (auto& [position, node] : nodes_) {
    for (auto& [key, value] : node.store)
      all.emplace_back(key, std::move(value));
    node.store.clear();
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end(),
                        [](const auto& a, const auto& b) {
                          return a.first == b.first;
                        }),
            all.end());
  if (alive_count() == 0) return;  // nobody can hold the keys; they are lost
  for (auto& [key, value] : all) put(key, std::move(value));
}

}  // namespace dosn::net
