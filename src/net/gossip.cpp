#include "net/gossip.hpp"

#include <algorithm>
#include <map>

#include "obs/obs.hpp"
#include "util/stats.hpp"

namespace dosn::net {

using core::Post;
using core::PostId;
using core::Profile;
using core::VersionVector;
using interval::kDaySeconds;

namespace {

enum class ChurnKind { kOffline = 0, kOnline = 1, kWrite = 2 };

struct ChurnEvent {
  SimTime time;
  ChurnKind kind;
  std::size_t node;
  std::size_t write = 0;
};

/// Mutable simulation state shared by the event handlers.
struct State {
  explicit State(std::size_t n)
      : profiles(n, Profile(0)), online(n, false), epoch(n, 0) {}

  std::vector<Profile> profiles;
  std::vector<bool> online;
  std::vector<std::uint64_t> epoch;  // bumped on every online transition

  bool valid(std::size_t node, std::uint64_t captured) const {
    return online[node] && epoch[node] == captured;
  }

  std::optional<std::size_t> random_online_peer(std::size_t self,
                                                util::Rng& rng) const {
    std::vector<std::size_t> peers;
    for (std::size_t i = 0; i < online.size(); ++i)
      if (i != self && online[i]) peers.push_back(i);
    if (peers.empty()) return std::nullopt;
    return peers[static_cast<std::size_t>(rng.below(peers.size()))];
  }
};

/// Per-run totals, flushed once from the already-accumulated report so the
/// event handlers carry no instrumentation cost.
struct GossipMetrics {
  obs::Counter& runs = obs::Registry::global().counter("net.gossip.runs");
  obs::Counter& sync_rounds =
      obs::Registry::global().counter("net.gossip.sync_rounds");
  obs::Counter& messages_sent =
      obs::Registry::global().counter("net.gossip.messages_sent");
  obs::Counter& messages_lost =
      obs::Registry::global().counter("net.gossip.messages_lost");
  obs::Counter& posts_shipped =
      obs::Registry::global().counter("net.gossip.posts_shipped");
  obs::Counter& retransmits =
      obs::Registry::global().counter("net.gossip.retransmits");
};

GossipMetrics& gossip_metrics() {
  static GossipMetrics m;
  return m;
}

}  // namespace

GossipReport simulate_gossip(std::span<const DaySchedule> nodes,
                             std::span<const GossipWrite> writes,
                             const GossipConfig& config, util::Rng& rng) {
  DOSN_REQUIRE(config.horizon_days > 0, "gossip: horizon must be > 0");
  DOSN_REQUIRE(config.sync_period > 0, "gossip: sync period must be > 0");
  DOSN_REQUIRE(config.link_latency >= 0, "gossip: negative latency");
  DOSN_REQUIRE(config.max_retransmits == 0 || config.retransmit_timeout > 0,
               "gossip: retransmission needs a positive timeout");
  DOSN_REQUIRE(config.retransmit_backoff_cap >= config.retransmit_timeout,
               "gossip: backoff cap below the initial timeout");
  FaultInjector injector(config.faults);
  const SimTime horizon =
      static_cast<SimTime>(config.horizon_days) * kDaySeconds;
  for (const auto& w : writes) {
    DOSN_REQUIRE(w.origin < nodes.size(), "gossip: bad write origin");
    DOSN_REQUIRE(w.time >= 0 && w.time < horizon,
                 "gossip: write outside horizon");
  }

  // Pre-assign author-signed post ids and the id -> write-index map.
  std::map<core::UserId, core::SeqNo> author_seq;
  std::vector<Post> posts(writes.size());
  std::map<PostId, std::size_t> write_of;
  for (std::size_t w = 0; w < writes.size(); ++w) {
    posts[w].id = PostId{writes[w].author, ++author_seq[writes[w].author]};
    posts[w].timestamp = writes[w].time;
    write_of[posts[w].id] = w;
  }

  GossipReport report;
  report.arrival.assign(
      writes.size(),
      std::vector<std::optional<SimTime>>(nodes.size(), std::nullopt));

  State state(nodes.size());
  EventQueue queue;

  // Applying a payload to a node records first-arrival times.
  auto apply = [&](std::size_t node, std::span<const Post> delta,
                   SimTime now) {
    for (const auto& post : delta) {
      if (state.profiles[node].insert(post)) {
        auto& slot = report.arrival[write_of.at(post.id)][node];
        if (!slot) slot = now;
      }
    }
  };

  // One logical message from `from`: wire drops injected by the fault plan
  // are retried with capped exponential backoff (sender-side timeout), then
  // the surviving attempt's delivery is scheduled after the accumulated
  // backoff, the link latency, and any injected jitter. Under the zero plan
  // attempt 0 is never dropped and jitter is 0, so exactly one schedule
  // call is made at link_latency — the unfaulted protocol's event stream,
  // bit for bit. Departed receivers are out of retransmission's reach: the
  // epoch check at delivery still counts those as messages_lost.
  auto transmit = [&](std::size_t from, std::function<void()> deliver) {
    Seconds waited = 0;
    Seconds backoff = config.retransmit_timeout;
    for (std::size_t attempt = 0;; ++attempt) {
      ++report.messages_sent;
      const bool dropped = injector.drop_message(from);
      const Seconds jitter = injector.latency_jitter(from);
      if (!dropped) {
        report.retransmits += attempt;
        queue.schedule_in(waited + config.link_latency + jitter,
                          std::move(deliver));
        return;
      }
      ++report.messages_dropped;
      if (attempt >= config.max_retransmits) return;  // gave up
      waited += backoff;
      backoff = std::min(backoff * 2, config.retransmit_backoff_cap);
    }
  };

  // One push-pull anti-entropy round from `a` towards a random peer.
  std::function<void(std::size_t, std::uint64_t)> tick =
      [&](std::size_t a, std::uint64_t a_epoch) {
        if (!state.valid(a, a_epoch)) return;  // went offline; timer dies
        ++report.sync_rounds;
        // Re-arm first so a long round cannot cancel the cadence.
        queue.schedule_in(config.sync_period,
                          [&tick, a, a_epoch] { tick(a, a_epoch); });

        const auto peer = state.random_online_peer(a, rng);
        if (!peer) return;
        const std::size_t b = *peer;
        const std::uint64_t b_epoch = state.epoch[b];

        // A -> B: A's digest.
        VersionVector a_digest = state.profiles[a].version();
        transmit(a, [&, a, b, a_epoch, b_epoch,
                     a_digest = std::move(a_digest)] {
          if (!state.valid(b, b_epoch)) {
            ++report.messages_lost;
            return;
          }
          // B -> A: what A lacks, plus B's digest.
          auto delta_for_a = state.profiles[b].missing_for(a_digest);
          VersionVector b_digest = state.profiles[b].version();
          report.posts_shipped += delta_for_a.size();
          transmit(b, [&, a, b, a_epoch, b_epoch,
                       delta_for_a = std::move(delta_for_a),
                       b_digest = std::move(b_digest)] {
            if (!state.valid(a, a_epoch)) {
              ++report.messages_lost;
              return;
            }
            apply(a, delta_for_a, queue.now());
            // A -> B: what B lacks.
            auto delta_for_b = state.profiles[a].missing_for(b_digest);
            report.posts_shipped += delta_for_b.size();
            transmit(a, [&, b, b_epoch,
                         delta_for_b = std::move(delta_for_b)] {
              if (!state.valid(b, b_epoch)) {
                ++report.messages_lost;
                return;
              }
              apply(b, delta_for_b, queue.now());
            });
          });
        });
      };

  // Churn and write events, scheduled upfront in deterministic order so
  // that equal-time dynamic events (message arrivals) run after them.
  std::vector<ChurnEvent> churn;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    // Sessions come through the injector (churn faults + node outages
    // applied); the zero plan reproduces the per-(day, piece) events.
    for (const auto& iv :
         injector.sessions(i, nodes[i], config.horizon_days)) {
      churn.push_back({iv.start, ChurnKind::kOnline, i});
      churn.push_back({iv.end, ChurnKind::kOffline, i});
    }
  }
  for (std::size_t w = 0; w < writes.size(); ++w)
    churn.push_back({writes[w].time, ChurnKind::kWrite, writes[w].origin, w});
  std::sort(churn.begin(), churn.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.node != b.node) return a.node < b.node;
              return a.write < b.write;
            });

  for (const auto& ev : churn) {
    queue.schedule(ev.time, [&, ev] {
      switch (ev.kind) {
        case ChurnKind::kOnline: {
          state.online[ev.node] = true;
          ++state.epoch[ev.node];
          const std::uint64_t epoch = state.epoch[ev.node];
          // First tick after a random fraction of the period: declusters
          // the fleet (all-at-once gossip storms are unrealistic).
          const auto offset = static_cast<Seconds>(
              1 + rng.below(static_cast<std::uint64_t>(config.sync_period)));
          const std::size_t node = ev.node;
          queue.schedule_in(offset, [&tick, node, epoch] {
            tick(node, epoch);
          });
          break;
        }
        case ChurnKind::kOffline:
          state.online[ev.node] = false;
          break;
        case ChurnKind::kWrite: {
          // The device holds the post locally even while offline.
          if (!state.online[ev.node]) ++report.deferred_writes;
          const Post& post = posts[ev.write];
          apply(ev.node, {&post, 1}, ev.time);
          break;
        }
      }
    });
  }
  queue.run_all();

  // Delay statistics over non-origin, never-empty nodes.
  util::RunningStats delays;
  for (std::size_t w = 0; w < writes.size(); ++w) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i == writes[w].origin || nodes[i].empty()) continue;
      if (!report.arrival[w][i]) {
        report.all_delivered = false;
        continue;
      }
      const Seconds delay = *report.arrival[w][i] - writes[w].time;
      report.max_delay = std::max(report.max_delay, delay);
      delays.add(static_cast<double>(delay));
    }
  }
  report.mean_delay = delays.mean();

  GossipMetrics& m = gossip_metrics();
  m.runs.add(1);
  m.sync_rounds.add(report.sync_rounds);
  m.messages_sent.add(report.messages_sent);
  m.messages_lost.add(report.messages_lost);
  m.posts_shipped.add(report.posts_shipped);
  m.retransmits.add(report.retransmits);
  injector.flush_stats();
  return report;
}

}  // namespace dosn::net
