// Message-level anti-entropy gossip between profile replicas.
//
// The analytic delay metric and the group-state simulators assume replicas
// exchange state *instantly* whenever they are simultaneously online. A
// real F2F client runs a protocol: while online, every node periodically
// picks an online peer and performs push-pull anti-entropy —
//
//      A --(digest: A's version vector)--> B          t + L
//      B --(delta: posts A lacks, + B's digest)--> A  t + 2L
//      A --(delta: posts B lacks)--> B                t + 3L
//
// with one-way link latency L and sync period P. Two loss modes are
// distinguished: a message *dropped on the wire* (injected by the fault
// plan) is retried by the sender after a per-message timeout with capped
// exponential backoff, up to `max_retransmits` attempts; a message that
// arrives after the *receiver went offline* is lost for good (the next
// rendezvous retries from scratch — no retransmission can reach a departed
// node). This simulator executes that protocol and measures what it costs
// relative to the instant-exchange ideal: extra propagation delay, missed
// rendezvous (overlaps shorter than the sync period), message and payload
// overhead, and — under a fault plan — how much of the loss the
// retransmission layer recovers.
#pragma once

#include <optional>
#include <vector>

#include "core/profile.hpp"
#include "net/fault.hpp"
#include "net/replica_sim.hpp"

namespace dosn::net {

struct GossipConfig {
  /// Anti-entropy period per node while online (paper-scale overlaps are
  /// minutes to hours; the default probes every 5 minutes).
  Seconds sync_period = 300;
  /// One-way message latency.
  Seconds link_latency = 1;
  /// Simulation horizon in days.
  int horizon_days = 14;

  /// Injected faults (message drops + latency jitter on the wire, churn
  /// deviations from the schedules). The default zero plan reproduces the
  /// unfaulted protocol bit for bit.
  FaultPlan faults;
  /// Retransmission attempts after a wire drop (0 = the original
  /// fire-and-forget protocol).
  std::size_t max_retransmits = 0;
  /// Sender timeout before the first retransmission.
  Seconds retransmit_timeout = 60;
  /// Backoff doubles per attempt up to this cap.
  Seconds retransmit_backoff_cap = 960;
};

/// A wall post written through a specific (online) node; author-signed ids
/// are assigned in event order per author.
struct GossipWrite {
  SimTime time = 0;
  std::size_t origin = 0;    ///< node the author contacts
  core::UserId author = 0;
};

struct GossipReport {
  /// arrival[w][n] = when write w's post reached node n (nullopt = never).
  std::vector<std::vector<std::optional<SimTime>>> arrival;
  /// Worst realized propagation delay over delivered (write, node) pairs.
  Seconds max_delay = 0;
  double mean_delay = 0.0;
  /// True when every write reached every never-failing participant.
  bool all_delivered = true;
  /// Writes that found their origin offline (held until it next onlines).
  std::size_t deferred_writes = 0;

  // Protocol cost counters.
  std::uint64_t messages_sent = 0;   ///< digests + deltas put on the wire
  std::uint64_t messages_lost = 0;   ///< arrived after the receiver left
  std::uint64_t posts_shipped = 0;   ///< post payloads transferred
  std::uint64_t sync_rounds = 0;     ///< anti-entropy timers fired online
  std::uint64_t messages_dropped = 0;  ///< wire drops injected by the plan
  std::uint64_t retransmits = 0;     ///< re-sends that delivered a message
};

/// Runs the gossip protocol over the node group. Writes must be sorted by
/// time and lie within the horizon.
GossipReport simulate_gossip(std::span<const DaySchedule> nodes,
                             std::span<const GossipWrite> writes,
                             const GossipConfig& config, util::Rng& rng);

}  // namespace dosn::net
