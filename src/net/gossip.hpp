// Message-level anti-entropy gossip between profile replicas.
//
// The analytic delay metric and the group-state simulators assume replicas
// exchange state *instantly* whenever they are simultaneously online. A
// real F2F client runs a protocol: while online, every node periodically
// picks an online peer and performs push-pull anti-entropy —
//
//      A --(digest: A's version vector)--> B          t + L
//      B --(delta: posts A lacks, + B's digest)--> A  t + 2L
//      A --(delta: posts B lacks)--> B                t + 3L
//
// with one-way link latency L and sync period P. Messages addressed to a
// node that has gone offline are lost; nothing is retransmitted (the next
// rendezvous retries from scratch). This simulator executes that protocol
// and measures what the protocol costs relative to the instant-exchange
// ideal: extra propagation delay, missed rendezvous (overlaps shorter than
// the sync period), message and payload overhead.
#pragma once

#include <optional>
#include <vector>

#include "core/profile.hpp"
#include "net/replica_sim.hpp"

namespace dosn::net {

struct GossipConfig {
  /// Anti-entropy period per node while online (paper-scale overlaps are
  /// minutes to hours; the default probes every 5 minutes).
  Seconds sync_period = 300;
  /// One-way message latency.
  Seconds link_latency = 1;
  /// Simulation horizon in days.
  int horizon_days = 14;
};

/// A wall post written through a specific (online) node; author-signed ids
/// are assigned in event order per author.
struct GossipWrite {
  SimTime time = 0;
  std::size_t origin = 0;    ///< node the author contacts
  core::UserId author = 0;
};

struct GossipReport {
  /// arrival[w][n] = when write w's post reached node n (nullopt = never).
  std::vector<std::vector<std::optional<SimTime>>> arrival;
  /// Worst realized propagation delay over delivered (write, node) pairs.
  Seconds max_delay = 0;
  double mean_delay = 0.0;
  /// True when every write reached every never-failing participant.
  bool all_delivered = true;
  /// Writes that found their origin offline (held until it next onlines).
  std::size_t deferred_writes = 0;

  // Protocol cost counters.
  std::uint64_t messages_sent = 0;   ///< digests + deltas put on the wire
  std::uint64_t messages_lost = 0;   ///< arrived after the receiver left
  std::uint64_t posts_shipped = 0;   ///< post payloads transferred
  std::uint64_t sync_rounds = 0;     ///< anti-entropy timers fired online
};

/// Runs the gossip protocol over the node group. Writes must be sorted by
/// time and lie within the horizon.
GossipReport simulate_gossip(std::span<const DaySchedule> nodes,
                             std::span<const GossipWrite> writes,
                             const GossipConfig& config, util::Rng& rng);

}  // namespace dosn::net
