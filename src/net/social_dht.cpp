#include "net/social_dht.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dosn::net {
namespace {

/// x in (a, b] on the circular ring — DhtRing's predicate verbatim.
bool in_half_open(RingId x, RingId a, RingId b) {
  if (a == b) return true;  // full circle: single-node ring owns everything
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}

/// x in (a, b) on the circular ring — DhtRing's predicate verbatim.
bool in_open(RingId x, RingId a, RingId b) {
  if (a == b) return x != a;  // full circle minus the point
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

constexpr graph::UserId kUnassigned =
    std::numeric_limits<graph::UserId>::max();

}  // namespace

RingId SocialDht::plain_key_position(graph::UserId user) {
  return ring_hash("profile:" + std::to_string(user));
}

void validate(const SocialDhtConfig& config) {
  if (config.replication < 1 || config.replication > 64)
    throw ConfigError("social_dht: replication must be in [1, 64]");
  if (config.cluster_cap < 1 || config.cluster_cap > 4096)
    throw ConfigError("social_dht: cluster_cap must be in [1, 4096]");
  if (config.hop_cost < 0)
    throw ConfigError("social_dht: hop_cost must be >= 0");
}

SocialDht::SocialDht(const graph::SocialGraph& graph,
                     const SocialDhtConfig& config)
    : config_(config) {
  validate(config);
  const std::size_t n = graph.num_users();
  DOSN_REQUIRE(n >= 1, "social_dht: graph must have at least one user");

  // Friend clustering: users scanned in id order; an unassigned user
  // anchors a cluster and absorbs its not-yet-assigned contacts in
  // adjacency order (contacts() is sorted and duplicate-free), up to
  // cluster_cap members. With the remap off — or a cap of 1 — every
  // user is its own singleton anchor and keys degrade to the plain map.
  anchor_.assign(n, kUnassigned);
  rank_.assign(n, 0);
  const bool cluster = config_.socially_aware && config_.cluster_cap > 1;
  num_clusters_ = 0;
  for (graph::UserId u = 0; u < n; ++u) {
    if (anchor_[u] != kUnassigned) continue;
    anchor_[u] = u;
    rank_[u] = 0;
    ++num_clusters_;
    if (!cluster) continue;
    std::uint32_t size = 1;
    for (const graph::UserId v : graph.contacts(u)) {
      if (size >= config_.cluster_cap) break;
      if (anchor_[v] != kUnassigned) continue;
      anchor_[v] = u;
      rank_[v] = size++;
    }
  }

  // Key positions: cluster members occupy consecutive positions after
  // their anchor's plain key (wrapping arithmetic on the ring), so
  // cluster-mates share an owner arc. Rank 0 (every singleton) is the
  // plain key itself — the exact degeneracy the differential test pins.
  key_pos_.resize(n);
  for (graph::UserId u = 0; u < n; ++u)
    key_pos_[u] = plain_key_position(anchor_[u]) + rank_[u];

  // The node ring: every user at DhtRing's node position hash. The hash
  // is a bijection of the id, so positions cannot collide.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [](std::size_t a, std::size_t b) {
    return node_ring_position(a) < node_ring_position(b);
  });
  positions_.resize(n);
  position_node_.resize(n);
  node_index_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto user = static_cast<graph::UserId>(order[i]);
    positions_[i] = node_ring_position(user);
    position_node_[i] = user;
    node_index_[user] = i;
    DOSN_CHECK(i == 0 || positions_[i - 1] < positions_[i],
               "social_dht: node position collision");
  }
}

graph::UserId SocialDht::cluster_anchor(graph::UserId user) const {
  DOSN_CHECK(user < anchor_.size(), "social_dht: user out of range");
  return anchor_[user];
}

std::uint32_t SocialDht::cluster_rank(graph::UserId user) const {
  DOSN_CHECK(user < rank_.size(), "social_dht: user out of range");
  return rank_[user];
}

RingId SocialDht::key_position(graph::UserId user) const {
  DOSN_CHECK(user < key_pos_.size(), "social_dht: user out of range");
  return key_pos_[user];
}

std::size_t SocialDht::owner_index(RingId key) const {
  // The key's successor: first node position >= key, wrapping to the
  // ring's smallest position — DhtRing::successor_position over a flat
  // sorted array.
  const auto it = std::lower_bound(positions_.begin(), positions_.end(), key);
  return it == positions_.end()
             ? 0
             : static_cast<std::size_t>(it - positions_.begin());
}

graph::UserId SocialDht::owner_of(graph::UserId user) const {
  return position_node_[owner_index(key_position(user))];
}

std::vector<graph::UserId> SocialDht::responsible_nodes(
    graph::UserId user) const {
  const std::size_t copies = std::min(config_.replication, positions_.size());
  std::vector<graph::UserId> out;
  out.reserve(copies);
  std::size_t i = owner_index(key_position(user));
  for (std::size_t r = 0; r < copies; ++r) {
    out.push_back(position_node_[i]);
    i = (i + 1) % positions_.size();
  }
  return out;
}

SocialLookup SocialDht::lookup_from(graph::UserId requester,
                                    graph::UserId target) const {
  DOSN_CHECK(requester < node_index_.size() && target < key_pos_.size(),
             "social_dht: user out of range");
  const RingId key = key_pos_[target];
  const std::size_t n = positions_.size();
  SocialLookup out;
  std::size_t cur = node_index_[requester];
  // Greedy closest-preceding-finger walk, DhtRing::lookup's route on the
  // ideal (all-alive) ring. Finger k of the current node is the
  // successor of position + 2^k, resolved by binary search instead of a
  // materialized table. Each finger hop at least halves the remaining
  // ring distance, so the walk takes at most 64 finger hops + 1.
  for (std::size_t step = 0;; ++step) {
    DOSN_CHECK(step <= 65, "social_dht: lookup failed to converge");
    const RingId cur_pos = positions_[cur];
    const std::size_t succ = (cur + 1) % n;
    if (in_half_open(key, cur_pos, positions_[succ])) {
      out.owner = position_node_[succ];
      if (succ != cur) ++out.hops;  // final forward to the owner
      return out;
    }
    // Only fingers strictly inside (cur_pos, key) qualify; targets at
    // distance >= the key distance resolve outside the arc, so start at
    // the highest power below the distance (identical to scanning k
    // from 63 down — the skipped fingers always fail the in_open test).
    const RingId distance = key - cur_pos;  // ring distance, wraps
    std::size_t next = succ;
    for (int k = std::bit_width(distance - 1) - 1; k >= 0; --k) {
      const std::size_t f = owner_index(cur_pos + (RingId{1} << k));
      if (in_open(positions_[f], cur_pos, key)) {
        next = f;
        break;
      }
    }
    DOSN_CHECK(next != cur, "social_dht: lookup stuck");
    ++out.hops;
    cur = next;
  }
}

namespace {

/// Line-parsing scaffolding, net/scenario.cpp's grammar discipline.
struct Fields {
  std::size_t line_no;
  std::vector<std::pair<std::string_view, std::string_view>> kv;
  std::vector<bool> used;

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("social_dht line " + std::to_string(line_no) + ": " +
                     why);
  }

  std::optional<std::string_view> find(std::string_view key) {
    for (std::size_t i = 0; i < kv.size(); ++i)
      if (kv[i].first == key) {
        used[i] = true;
        return kv[i].second;
      }
    return std::nullopt;
  }

  void finish() const {
    for (std::size_t i = 0; i < kv.size(); ++i)
      if (!used[i]) fail("unknown field '" + std::string(kv[i].first) + "'");
  }
};

}  // namespace

SocialDhtConfig parse_social_dht(std::string_view text) {
  SocialDhtConfig config;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = util::trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;

    const auto tokens = util::split_ws(line);
    Fields f{line_no, {}, {}};
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string_view::npos || eq == 0)
        f.fail("expected key=value, got '" + std::string(tokens[i]) + "'");
      f.kv.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
    }
    f.used.assign(f.kv.size(), false);

    if (tokens[0] != "social_dht")
      f.fail("unknown record '" + std::string(tokens[0]) + "'");
    // Every field is optional; later lines override earlier ones.
    if (const auto v = f.find("replication"))
      config.replication = static_cast<std::size_t>(util::parse_i64(*v));
    if (const auto v = f.find("socially_aware"))
      config.socially_aware = util::parse_i64(*v) != 0;
    if (const auto v = f.find("cluster_cap"))
      config.cluster_cap = static_cast<std::size_t>(util::parse_i64(*v));
    if (const auto v = f.find("hop_cost"))
      config.hop_cost = static_cast<interval::Seconds>(util::parse_i64(*v));
    f.finish();
  }
  validate(config);
  return config;
}

std::string to_text(const SocialDhtConfig& config) {
  return util::format(
      "social_dht replication=%zu socially_aware=%d cluster_cap=%zu "
      "hop_cost=%lld\n",
      config.replication, config.socially_aware ? 1 : 0, config.cluster_cap,
      static_cast<long long>(config.hop_cost));
}

}  // namespace dosn::net
