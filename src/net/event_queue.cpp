#include "net/event_queue.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace dosn::net {

void EventQueue::schedule(SimTime t, Handler handler) {
  DOSN_CHECK(t >= now_, "EventQueue: cannot schedule into the past (t = ", t,
             ", now = ", now_, ")");
  heap_.push(Entry{t, next_seq_++, std::move(handler)});
  high_water_ = std::max(high_water_, heap_.size());
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via the
  // const_cast idiom before pop (Entry ordering does not involve handler).
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  // Global-clock monotonicity: the heap can never surface an event before
  // now() because schedule() rejects past timestamps.
  DOSN_CHECK(entry.time >= now_, "EventQueue: time ran backwards (event at ",
             entry.time, ", now = ", now_, ")");
  now_ = entry.time;
  ++processed_;
  entry.handler();
  return true;
}

void EventQueue::run_until(SimTime end) {
  while (!heap_.empty() && heap_.top().time <= end) step();
  if (now_ < end) now_ = end;
  flush_metrics();
}

void EventQueue::run_all() {
  while (step()) {
  }
  flush_metrics();
}

void EventQueue::flush_metrics() {
  if (!obs::enabled()) return;
  static obs::Counter& events =
      obs::Registry::global().counter("net.event_queue.events");
  static obs::Gauge& high_water =
      obs::Registry::global().gauge("net.event_queue.high_water");
  events.add(processed_ - reported_);
  reported_ = processed_;
  high_water.record_max(static_cast<std::int64_t>(high_water_));
}

}  // namespace dosn::net
