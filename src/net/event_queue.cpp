#include "net/event_queue.hpp"

#include "util/check.hpp"

namespace dosn::net {

void EventQueue::schedule(SimTime t, Handler handler) {
  DOSN_CHECK(t >= now_, "EventQueue: cannot schedule into the past (t = ", t,
             ", now = ", now_, ")");
  heap_.push(Entry{t, next_seq_++, std::move(handler)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via the
  // const_cast idiom before pop (Entry ordering does not involve handler).
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  // Global-clock monotonicity: the heap can never surface an event before
  // now() because schedule() rejects past timestamps.
  DOSN_CHECK(entry.time >= now_, "EventQueue: time ran backwards (event at ",
             entry.time, ", now = ", now_, ")");
  now_ = entry.time;
  ++processed_;
  entry.handler();
  return true;
}

void EventQueue::run_until(SimTime end) {
  while (!heap_.empty() && heap_.top().time <= end) step();
  if (now_ < end) now_ = end;
}

void EventQueue::run_all() {
  while (step()) {
  }
}

}  // namespace dosn::net
