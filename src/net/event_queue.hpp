// Discrete-event simulation kernel.
//
// A minimal, deterministic event queue: events fire in (time, insertion
// sequence) order, so equal-time events run in the order they were
// scheduled — which the replica simulator relies on to give midnight
// offline/online transitions well-defined half-open semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace dosn::net {

using SimTime = std::int64_t;  ///< absolute simulation seconds

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `t` (must not precede now()).
  void schedule(SimTime t, Handler handler);

  /// Convenience: schedule `delay` seconds after now().
  void schedule_in(SimTime delay, Handler handler) {
    schedule(now_ + delay, std::move(handler));
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t processed() const { return processed_; }
  /// Largest number of simultaneously pending events so far.
  std::size_t high_water() const { return high_water_; }

  /// Runs a single event; false when the queue is empty.
  bool step();

  /// Runs events with time <= `end` (events an executed handler schedules
  /// are included); advances now() to `end`.
  void run_until(SimTime end);

  /// Drains the queue completely.
  void run_all();

 private:
  /// Publishes events-processed / high-water deltas to the obs registry
  /// (no-op while observability is disabled); called when a run_* driver
  /// finishes so the per-event path stays free of atomic operations.
  void flush_metrics();

  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t reported_ = 0;  // processed_ already flushed to obs
  std::size_t high_water_ = 0;
};

}  // namespace dosn::net
