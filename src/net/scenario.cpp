#include "net/scenario.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dosn::net {

namespace {

using interval::Seconds;

void require_probability(double p, const char* what) {
  DOSN_REQUIRE(p >= 0.0 && p <= 1.0,
               std::string("scenario: ") + what +
                   " must be a probability in [0, 1]");
}

void require_window(Seconds start, Seconds end, const char* what) {
  DOSN_REQUIRE(start >= 0, std::string("scenario: ") + what +
                               " window starts before time 0");
  DOSN_REQUIRE(start <= end,
               std::string("scenario: ") + what + " window is inverted");
}

/// Do two time-overlapping regional outages cover a common node? Nodes
/// n ≡ r1 (mod m1) and n ≡ r2 (mod m2) have a common solution iff
/// r1 ≡ r2 (mod gcd(m1, m2)) (CRT solvability).
bool partitions_intersect(const RegionalOutage& a, const RegionalOutage& b) {
  const std::size_t g = std::gcd(a.regions, b.regions);
  return a.region % g == b.region % g;
}

Seconds scaled_end(Seconds start, Seconds end, double f) {
  const auto len =
      static_cast<Seconds>(static_cast<double>(end - start) * f);
  return start + len;
}

}  // namespace

bool ScenarioSpec::zero() const {
  const auto inactive = [](const auto& entries) {
    return std::none_of(entries.begin(), entries.end(),
                        [](const auto& e) { return e.active(); });
  };
  return inactive(regional_outages) && inactive(flash_crowds) &&
         inactive(churn_bursts);
}

void validate(const ScenarioSpec& spec) {
  for (const auto& r : spec.regional_outages) {
    require_window(r.start, r.end, "regional outage");
    require_probability(r.participation, "regional outage participation");
    DOSN_REQUIRE(r.regions == 0 || r.region < r.regions,
                 "scenario: regional outage region must be < regions");
  }
  for (std::size_t i = 0; i < spec.regional_outages.size(); ++i) {
    const auto& a = spec.regional_outages[i];
    if (!a.active()) continue;
    for (std::size_t j = i + 1; j < spec.regional_outages.size(); ++j) {
      const auto& b = spec.regional_outages[j];
      if (!b.active()) continue;
      const bool windows_overlap = a.start < b.end && b.start < a.end;
      DOSN_REQUIRE(!windows_overlap || !partitions_intersect(a, b),
                   "scenario: concurrent regional outages must cover "
                   "non-overlapping node partitions");
    }
  }
  for (const auto& c : spec.flash_crowds) {
    require_window(c.start, c.end, "flash crowd");
    DOSN_REQUIRE(c.load_multiplier >= 1.0 && c.load_multiplier <= 64.0,
                 "scenario: flash crowd load_multiplier must be in [1, 64]");
  }
  for (const auto& b : spec.churn_bursts) {
    require_window(b.start, b.end, "churn burst");
    require_probability(b.no_show, "churn burst no_show");
    require_probability(b.participation, "churn burst participation");
  }
}

ScenarioSpec scaled(const ScenarioSpec& base, double f) {
  validate(base);
  DOSN_REQUIRE(f >= 0.0 && f <= 1.0, "scenario: intensity outside [0, 1]");
  ScenarioSpec out;
  out.regional_outages.reserve(base.regional_outages.size());
  for (const auto& r : base.regional_outages)
    out.regional_outages.push_back({r.regions, r.region, r.start,
                                    scaled_end(r.start, r.end, f),
                                    r.participation * f});
  out.flash_crowds.reserve(base.flash_crowds.size());
  for (const auto& c : base.flash_crowds)
    out.flash_crowds.push_back(
        {c.start, scaled_end(c.start, c.end, f), c.load_multiplier});
  out.churn_bursts.reserve(base.churn_bursts.size());
  for (const auto& b : base.churn_bursts)
    out.churn_bursts.push_back({b.start, scaled_end(b.start, b.end, f),
                                b.no_show * f, b.participation * f});
  return out;
}

namespace {

struct Fields {
  std::string_view line;
  std::size_t line_no;
  std::vector<std::pair<std::string_view, std::string_view>> kv;
  std::vector<bool> used;

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("scenario line " + std::to_string(line_no) + ": " + why);
  }

  std::string_view get(std::string_view key) {
    for (std::size_t i = 0; i < kv.size(); ++i)
      if (kv[i].first == key) {
        used[i] = true;
        return kv[i].second;
      }
    fail("missing field '" + std::string(key) + "'");
  }

  std::string_view get(std::string_view key, std::string_view fallback) {
    for (std::size_t i = 0; i < kv.size(); ++i)
      if (kv[i].first == key) {
        used[i] = true;
        return kv[i].second;
      }
    return fallback;
  }

  void finish() const {
    for (std::size_t i = 0; i < kv.size(); ++i)
      if (!used[i]) fail("unknown field '" + std::string(kv[i].first) + "'");
  }
};

Seconds parse_seconds(Fields& f, std::string_view key) {
  const std::int64_t v = util::parse_i64(f.get(key));
  return static_cast<Seconds>(v);
}

double parse_fraction(Fields& f, std::string_view key,
                      std::string_view fallback) {
  return util::parse_f64(f.get(key, fallback));
}

}  // namespace

ScenarioSpec parse_scenario(std::string_view text) {
  ScenarioSpec spec;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = util::trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;

    const auto tokens = util::split_ws(line);
    Fields f{line, line_no, {}, {}};
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string_view::npos || eq == 0)
        f.fail("expected key=value, got '" + std::string(tokens[i]) + "'");
      f.kv.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
    }
    f.used.assign(f.kv.size(), false);

    const std::string_view kind = tokens[0];
    if (kind == "regional_outage") {
      RegionalOutage r;
      r.regions =
          static_cast<std::size_t>(util::parse_i64(f.get("regions")));
      r.region = static_cast<std::size_t>(util::parse_i64(f.get("region")));
      r.start = parse_seconds(f, "start");
      r.end = parse_seconds(f, "end");
      r.participation = parse_fraction(f, "participation", "1");
      spec.regional_outages.push_back(r);
    } else if (kind == "flash_crowd") {
      FlashCrowd c;
      c.start = parse_seconds(f, "start");
      c.end = parse_seconds(f, "end");
      c.load_multiplier = util::parse_f64(f.get("load_multiplier"));
      spec.flash_crowds.push_back(c);
    } else if (kind == "churn_burst") {
      ChurnBurst b;
      b.start = parse_seconds(f, "start");
      b.end = parse_seconds(f, "end");
      b.no_show = util::parse_f64(f.get("no_show"));
      b.participation = parse_fraction(f, "participation", "1");
      spec.churn_bursts.push_back(b);
    } else {
      f.fail("unknown scenario class '" + std::string(kind) + "'");
    }
    f.finish();
  }
  validate(spec);
  return spec;
}

std::string to_text(const ScenarioSpec& spec) {
  std::string out;
  for (const auto& r : spec.regional_outages)
    out += util::format(
        "regional_outage regions=%zu region=%zu start=%lld end=%lld "
        "participation=%s\n",
        r.regions, r.region, static_cast<long long>(r.start),
        static_cast<long long>(r.end),
        util::format_double(r.participation).c_str());
  for (const auto& c : spec.flash_crowds)
    out += util::format("flash_crowd start=%lld end=%lld load_multiplier=%s\n",
                        static_cast<long long>(c.start),
                        static_cast<long long>(c.end),
                        util::format_double(c.load_multiplier).c_str());
  for (const auto& b : spec.churn_bursts)
    out += util::format(
        "churn_burst start=%lld end=%lld no_show=%s participation=%s\n",
        static_cast<long long>(b.start), static_cast<long long>(b.end),
        util::format_double(b.no_show).c_str(),
        util::format_double(b.participation).c_str());
  return out;
}

}  // namespace dosn::net
