// Event-driven simulation of one profile's replica group.
//
// The analytic delay metric (src/metrics) computes worst cases from the
// periodic schedules; this simulator *executes* the same system — nodes
// churn according to their daily schedules, replicas exchange state
// whenever they are simultaneously online (ConRep) or through an
// always-online relay (UnconRep) — and measures realized propagation
// delays and availability. It both cross-validates the analytic engine
// (empirical delay <= analytic worst case; empirical max approaches it)
// and carries the eventual-consistency layer of the core library.
//
// Synchronization model: pairwise anti-entropy with zero transfer latency.
// Every pair of simultaneously-online replicas is "connected in time", so
// at any instant all online replicas share one state; a node joining the
// online group merges its state bidirectionally, a node leaving keeps a
// snapshot. Under UnconRep the shared store is persistent (the relay).
#pragma once

#include <optional>
#include <vector>

#include "interval/day_schedule.hpp"
#include "net/event_queue.hpp"
#include "net/fault.hpp"
#include "placement/policy.hpp"

namespace dosn::net {

using interval::DaySchedule;
using interval::Seconds;
using placement::Connectivity;

/// Node failure at `at`: crash-stop when `recover_at` is absent (the node
/// goes offline for good; its held state survives on disk but never syncs
/// again), transient otherwise (the node resumes its schedule at
/// `recover_at` and re-merges the state it held when it went down at its
/// next session).
struct NodeFailure {
  std::size_t node = 0;
  SimTime at = 0;
  std::optional<SimTime> recover_at;
};

struct ReplicaSimConfig {
  Connectivity connectivity = Connectivity::kConRep;
  /// Simulation horizon in days (schedules repeat daily).
  int horizon_days = 14;
  /// Injected node failures (merged into `faults` as node outages).
  std::vector<NodeFailure> failures;
  /// Injected faults: session churn, node outages, and — under UnconRep —
  /// relay outage windows during which the persistent store is
  /// unreachable (the group falls back to ConRep semantics and re-merges
  /// with the relay when it returns). The zero plan with no failures
  /// reproduces the unfaulted simulation bit for bit.
  FaultPlan faults;
};

/// One update to inject. `origin` indexes the simulated node list. If the
/// origin is offline at `time`, it holds the update locally and shares it
/// when it next comes online (a user writing his own profile offline).
struct UpdateSpec {
  SimTime time = 0;
  std::size_t origin = 0;
};

/// Delivery record of one update: arrival time per node (nullopt = never
/// delivered within the horizon). arrival[origin] is the injection time.
struct UpdateDelivery {
  SimTime creation = 0;
  std::size_t origin = 0;
  std::vector<std::optional<SimTime>> arrival;
};

struct ReplicaSimReport {
  std::vector<UpdateDelivery> deliveries;
  /// Worst realized propagation delay across updates and nodes (seconds).
  Seconds max_delay = 0;
  /// Mean realized delay over delivered (update, node) pairs.
  double mean_delay = 0.0;
  /// True when every update reached every node with a non-empty schedule.
  bool all_delivered = true;
  /// Fraction of the horizon during which >= 1 node was online.
  double empirical_availability = 0.0;
  /// Events processed (diagnostics).
  std::uint64_t events = 0;
};

/// Simulates `nodes` (index 0 is conventionally the owner) for the given
/// horizon, injecting `updates`, and reports realized delays. Updates must
/// be sorted by time and lie within the horizon.
ReplicaSimReport simulate_replica_group(std::span<const DaySchedule> nodes,
                                        std::span<const UpdateSpec> updates,
                                        const ReplicaSimConfig& config);

/// Earliest arrival of the update at any node other than its origin —
/// the instant the write becomes durable beyond the writer's own copy.
/// nullopt when no other node received it within the horizon (or the
/// group has no other node).
std::optional<SimTime> first_non_origin_arrival(const UpdateDelivery& delivery);

/// Draws `count` update times uniformly inside `origin`'s online time over
/// the horizon (what the analytic metric assumes can happen), with the
/// origin cycling over the given candidates. Helper for validation runs.
std::vector<UpdateSpec> updates_within_schedules(
    std::span<const DaySchedule> nodes, std::size_t count, int horizon_days,
    util::Rng& rng);

}  // namespace dosn::net
