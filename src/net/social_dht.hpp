// Socially-aware DHT storage regime (Nasir et al., PAPERS.md).
//
// The Chord ring in net/dht.hpp is a faithful routing-structure
// simulation — per-node finger tables and successor lists — and tops out
// at a few thousand nodes. This module scales the same ring *semantics*
// to every user of a million-user dataset: each user is a DHT node at
// the position net/dht.cpp hashes node ids to (exposed here as
// node_ring_position so small rings anchor bit-for-bit against DhtRing),
// and each user's profile key is a ring position whose successor nodes
// store the replicas. Fingers are never materialized: a lookup walks the
// exact greedy closest-preceding-finger route of DhtRing::lookup, but
// each finger is resolved analytically by binary search over the sorted
// node positions, so the ring costs two flat arrays instead of O(64 n)
// finger entries.
//
// The *socially-aware* part is a deterministic friend-clustering pass
// over the social graph (users scanned in id order; an unassigned user
// anchors a cluster and absorbs its not-yet-assigned contacts in
// adjacency order, up to cluster_cap members). A member of rank r in the
// cluster anchored at `a` stores its profile at key position
// plain_key(a) + r: cluster members occupy consecutive ring positions,
// so friends' replicas land on the same (or adjacent) successor nodes
// and a feed fan-in resolves many friends through one already-contacted
// owner — the replica-locality hits the serving layer counts. Two exact
// degeneracies pin the construction: socially_aware=false and
// cluster_cap=1 both reduce every key to its plain position, bit for bit.
//
// Determinism: the ring, the clustering and every lookup are pure
// functions of (graph, config) — no RNG is consumed anywhere, so the
// serving layer's per-user streams and zero-plan bit-identity are
// untouched by the regime.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/social_graph.hpp"
#include "interval/interval_set.hpp"
#include "net/dht.hpp"

namespace dosn::net {

/// Knobs of the socially-aware DHT regime. The default-constructed
/// config is the socially-aware ring at replication 3; plain_dht() is
/// the unclustered baseline the hop ablation compares against.
struct SocialDhtConfig {
  /// Successive ring nodes storing each profile key (owner-side
  /// replicas); the key's successor node is always the first.
  std::size_t replication = 3;
  /// Friend-clustered key remap on/off. Off = plain per-user key
  /// positions (the baseline DHT).
  bool socially_aware = true;
  /// Maximum members per friend cluster; 1 degrades exactly to the
  /// plain key map.
  std::size_t cluster_cap = 16;
  /// Per-lookup-hop latency tax on the serving path, in seconds
  /// (0 = hops are reported but free).
  interval::Seconds hop_cost = 0;

  /// The unclustered baseline with otherwise identical knobs.
  SocialDhtConfig plain() const {
    SocialDhtConfig c = *this;
    c.socially_aware = false;
    return c;
  }
  friend bool operator==(const SocialDhtConfig&, const SocialDhtConfig&) =
      default;
};

/// Throws ConfigError on out-of-range knobs.
void validate(const SocialDhtConfig& config);

/// Parses the line-based `social_dht key=value ...` text form (same
/// grammar discipline as net/scenario.hpp: '#' comments, unknown or
/// malformed fields throw ParseError with the line number, out-of-range
/// values throw ConfigError). Later lines override earlier ones.
SocialDhtConfig parse_social_dht(std::string_view text);

/// Round-trips through parse_social_dht.
std::string to_text(const SocialDhtConfig& config);

/// Result of one simulated lookup.
struct SocialLookup {
  /// Node (user id) owning the key — the successor of the key position.
  graph::UserId owner = 0;
  /// Greedy finger-route length from the requester to the owner.
  std::size_t hops = 0;
};

/// The scaled ring: every user of the graph is a node; profile keys are
/// remapped by the friend clustering when socially_aware is set.
/// Immutable after construction and therefore freely shared across
/// serving workers.
class SocialDht {
 public:
  SocialDht(const graph::SocialGraph& graph, const SocialDhtConfig& config);

  /// Ring position of `user`'s *plain* (unclustered) profile key: the
  /// ring_hash of the canonical application key "profile:<user>" — the
  /// key string a DhtRing client would use, which is what lets the
  /// anchor test compare responsible sets across the implementations.
  static RingId plain_key_position(graph::UserId user);

  const SocialDhtConfig& config() const { return config_; }
  std::size_t num_nodes() const { return anchor_.size(); }
  /// Clusters formed by the friend-clustering pass (== num_nodes() when
  /// the remap is off or cluster_cap is 1).
  std::size_t num_clusters() const { return num_clusters_; }

  /// Anchor of `user`'s friend cluster (user itself when unclustered).
  graph::UserId cluster_anchor(graph::UserId user) const;
  /// Rank of `user` within its cluster (anchor = 0).
  std::uint32_t cluster_rank(graph::UserId user) const;

  /// Ring position of `user`'s profile key: plain_key(anchor) + rank.
  RingId key_position(graph::UserId user) const;
  /// Node owning `user`'s profile key (successor of key_position).
  graph::UserId owner_of(graph::UserId user) const;

  /// The `replication` distinct successor nodes storing `user`'s profile
  /// (owner first), in ring order — capped at the ring size.
  std::vector<graph::UserId> responsible_nodes(graph::UserId user) const;

  /// Simulates the greedy Chord lookup of `target`'s profile key from
  /// `requester`'s own node: the closest-preceding-finger walk of
  /// DhtRing::lookup with every finger resolved over the ideal ring.
  /// Pure function of (graph, config, requester, target) — no RNG.
  SocialLookup lookup_from(graph::UserId requester,
                           graph::UserId target) const;

 private:
  std::size_t owner_index(RingId key) const;

  SocialDhtConfig config_;
  std::size_t num_clusters_ = 0;
  std::vector<graph::UserId> anchor_;   // per user: cluster anchor
  std::vector<std::uint32_t> rank_;     // per user: rank within cluster
  std::vector<RingId> key_pos_;         // per user: profile key position
  std::vector<RingId> positions_;       // sorted node positions
  std::vector<graph::UserId> position_node_;  // node at positions_[i]
  std::vector<std::size_t> node_index_;  // per user: index into positions_
};

}  // namespace dosn::net
