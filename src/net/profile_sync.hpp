// Profile-level replica synchronization with reader experience.
//
// replica_sim.hpp tracks update *identifiers*; this simulator runs the full
// data plane of the DOSN: replicas hold core::Profile objects, rendezvous
// merges are version-vector-guided set unions, friends write wall posts
// through whichever replica is online (a write fails when the profile is
// unreachable — the empirical counterpart of availability-on-demand-
// activity), and readers probe the profile during their own online time,
// measuring empirical read availability and staleness (posts already
// accepted somewhere but missing at the contacted replica).
//
// Post identities are author-signed: the author's client numbers his own
// posts, so replicas merging in any order converge without coordination.
#pragma once

#include <optional>
#include <vector>

#include "core/profile.hpp"
#include "net/replica_sim.hpp"

namespace dosn::net {

struct ProfileSyncConfig {
  Connectivity connectivity = Connectivity::kConRep;
  int horizon_days = 14;
  /// Injected faults: session churn and node outages on the replica
  /// schedules, and — under UnconRep — relay outage windows during which
  /// the persistent store is unreachable. The zero plan reproduces the
  /// unfaulted simulation bit for bit.
  FaultPlan faults;
  /// Readers keep a cache of the posts they have seen and write back any
  /// the contacted replica is missing (read-repair at the next
  /// rendezvous). Off by default — the unhardened protocol.
  bool read_repair = false;
};

/// A wall-post attempt: `author` (any user id, typically a friend) tries to
/// write to the profile at absolute time `time`. The write succeeds iff
/// some replica is online at that instant.
struct WriteEvent {
  SimTime time = 0;
  core::UserId author = 0;
};

/// A read probe: a friend looks the profile up at absolute time `time`.
struct ReadEvent {
  SimTime time = 0;
  std::size_t reader = 0;  ///< index into the readers schedule list
};

struct ReadSample {
  SimTime time = 0;
  std::size_t reader = 0;
  bool success = false;       ///< some replica was online
  std::size_t missing = 0;    ///< accepted posts absent at the replica read
  Seconds staleness = 0;      ///< age of the oldest missing post (0 if none)
  bool degraded = false;      ///< served, but with posts missing
  std::size_t repaired = 0;   ///< posts this read wrote back (read-repair)
};

struct ProfileSyncReport {
  std::size_t writes_attempted = 0;
  std::size_t writes_succeeded = 0;
  /// Empirical availability-on-demand-activity: accepted / attempted.
  double write_success_rate = 1.0;

  std::vector<ReadSample> reads;
  /// Empirical availability-on-demand-time at probe instants.
  double read_success_rate = 1.0;
  /// Mean posts missing over successful reads.
  double mean_missing = 0.0;
  /// Worst staleness (seconds) over successful reads.
  Seconds max_staleness = 0;
  /// Successful reads that were served with posts missing.
  std::size_t degraded_reads = 0;
  /// Posts restored to a replica by read-repair.
  std::size_t read_repairs = 0;

  /// All replicas hold identical profiles at the end of the horizon
  /// (after each one's final rendezvous) — eventual consistency held.
  bool converged = false;
  /// Posts in the most complete replica at the end.
  std::size_t final_posts = 0;
};

/// Simulates the replica group (`nodes[0]` is the owner) over the horizon,
/// applying writes and serving reads. `readers` hold the probing friends'
/// daily schedules; reads must reference them. Write/read events must be
/// sorted by time and lie within the horizon.
ProfileSyncReport simulate_profile_sync(std::span<const DaySchedule> nodes,
                                        std::span<const DaySchedule> readers,
                                        std::span<const WriteEvent> writes,
                                        std::span<const ReadEvent> reads,
                                        const ProfileSyncConfig& config);

/// Draws `count` read probes uniformly inside each reader's online time
/// (round-robin across readers), sorted by time.
std::vector<ReadEvent> reads_within_schedules(
    std::span<const DaySchedule> readers, std::size_t count, int horizon_days,
    util::Rng& rng);

}  // namespace dosn::net
