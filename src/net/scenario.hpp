// Composite fault scenarios: deterministic macro-events layered onto a
// FaultPlan.
//
// The base FaultPlan describes *uncorrelated* faults — every node draws
// its churn and message faults independently at a fixed rate. Measured
// DOSN outages are not like that (Schiöberg et al.): failures arrive as
// macro-events that hit many nodes inside one time window. A ScenarioSpec
// composes three such event classes onto a plan:
//
//   * regional outages — a correlated NodeOutage window over one class of
//     a modulo partition of the node indices (nodes with
//     node % regions == region), each partition member joining the outage
//     with probability `participation`;
//   * flash crowds    — time-windowed load multipliers on the request
//     streams: inside [start, end) the serving workload superposes an
//     extra Poisson request process at (load_multiplier - 1) times the
//     base rate (serve/workload.hpp consumes these entries);
//   * churn bursts    — correlated no-show storms: each participating
//     node independently drops whole days of sessions inside the window
//     with probability `no_show` per day.
//
// Determinism contract (the same discipline as the rest of the fault
// layer):
//
//   * every draw comes from a stream seeded
//     mix64(mix64(plan.seed, <class tag>, entry index), entity) — one
//     stream per (scenario entry, entity), never shared, never taken from
//     a protocol Rng. Entry draws are therefore independent of how many
//     other entries exist or fire;
//   * the zero spec (no active entries) injects nothing and consumes
//     nothing: every hardened path reproduces its unfaulted outputs bit
//     for bit;
//   * scaled(spec, f) preserves the entry list and its indices (inactive
//     entries are kept, not dropped) and shrinks each entry: windows keep
//     their start and lose length proportionally, participation and
//     per-day probabilities multiply by f, flash-crowd multipliers keep
//     their height (the crowd gets shorter, not flatter). Scaled specs
//     therefore compare the *same* per-entity draws against scaled
//     thresholds over prefix-nested windows, so the realized fault sets —
//     and the superposed flash requests — are exactly nested across
//     intensities, which keeps degradation curves monotone rather than
//     monotone in expectation.
//
// Scenario text format (parse_scenario): one entry per line,
// `<class> key=value ...`, `#` comments and blank lines ignored:
//
//   regional_outage regions=2 region=0 start=172800 end=432000 participation=0.9
//   flash_crowd start=86400 end=259200 load_multiplier=3
//   churn_burst start=345600 end=604800 no_show=0.5 participation=0.8
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "interval/interval_set.hpp"

namespace dosn::net {

/// Correlated outage of one class of a modulo partition of the node
/// indices: every node with node % regions == region joins the outage
/// window [start, end) with probability `participation` (decided from the
/// node's own scenario stream). regions == 0 disables the entry.
struct RegionalOutage {
  std::size_t regions = 0;
  std::size_t region = 0;
  interval::Seconds start = 0;
  interval::Seconds end = 0;
  double participation = 1.0;

  /// Can this entry ever fire?
  bool active() const {
    return regions > 0 && start < end && participation > 0.0;
  }
  friend bool operator==(const RegionalOutage&, const RegionalOutage&) =
      default;
};

/// Time-windowed load multiplier on the serving request streams: inside
/// [start, end) every user's workload superposes an extra Poisson request
/// process at (load_multiplier - 1) times the base rate. A multiplier of
/// 1 disables the entry.
struct FlashCrowd {
  interval::Seconds start = 0;
  interval::Seconds end = 0;
  double load_multiplier = 1.0;

  bool active() const { return start < end && load_multiplier > 1.0; }
  friend bool operator==(const FlashCrowd&, const FlashCrowd&) = default;
};

/// Correlated no-show storm: each node joins the burst with probability
/// `participation`; a participating node drops each whole day overlapping
/// [start, end) with probability `no_show` (one draw per day, clipped to
/// the window).
struct ChurnBurst {
  interval::Seconds start = 0;
  interval::Seconds end = 0;
  double no_show = 0.0;
  double participation = 1.0;

  bool active() const {
    return start < end && no_show > 0.0 && participation > 0.0;
  }
  friend bool operator==(const ChurnBurst&, const ChurnBurst&) = default;
};

/// A composite scenario: lists of macro-events, one realization stream
/// per (entry, entity). The default-constructed spec is the zero spec.
struct ScenarioSpec {
  std::vector<RegionalOutage> regional_outages;
  std::vector<FlashCrowd> flash_crowds;
  std::vector<ChurnBurst> churn_bursts;

  /// True when no entry can ever fire.
  bool zero() const;
  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Throws ConfigError when probabilities/windows/partitions are out of
/// range, or when two time-overlapping regional outages cover a common
/// node (their residue classes intersect — the partitions must be
/// non-overlapping so a node never sits in two concurrent regional
/// outages).
void validate(const ScenarioSpec& spec);

/// Scales every entry's intensity by f in [0, 1]: windows keep their
/// start and shrink to f of their length, probabilities multiply by f,
/// flash-crowd multipliers are preserved (the crowd shortens). The entry
/// list and its indices are preserved — inactive entries are kept — so
/// per-(entry, entity) streams stay aligned and realizations nest.
ScenarioSpec scaled(const ScenarioSpec& base, double f);

/// Parses the line-based scenario text format described above. Throws
/// ParseError on malformed input and ConfigError when the parsed spec
/// fails validate().
ScenarioSpec parse_scenario(std::string_view text);

/// Renders a spec in the parse_scenario text format (active and inactive
/// entries alike); parse_scenario(to_text(s)) == s for validated specs.
std::string to_text(const ScenarioSpec& spec);

}  // namespace dosn::net
