#include "net/replica_sim.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/stats.hpp"

namespace dosn::net {

using interval::kDaySeconds;

namespace {

/// Per-run totals, flushed once per simulate_replica_group call so the
/// event loop itself carries no instrumentation cost.
inline constexpr std::int64_t kGroupSizeBounds[] = {1, 2, 4, 8, 16, 32, 64};

struct SimMetrics {
  obs::Counter& runs =
      obs::Registry::global().counter("net.replica_sim.runs");
  obs::Counter& updates =
      obs::Registry::global().counter("net.replica_sim.updates");
  obs::Counter& deliveries =
      obs::Registry::global().counter("net.replica_sim.deliveries");
  obs::Histogram& group_size = obs::Registry::global().histogram(
      "net.replica_sim.group_size", kGroupSizeBounds);
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}

// Equal-time ordering: relay transitions run first (half-open outage
// windows: the relay is down at the window start and back at its end,
// before any join at the same instant), then offline transitions
// (half-open intervals: a node is not online at its interval end), then
// online transitions, then update injections (an update at the instant a
// node comes online is received by it).
enum class EventKind {
  kRelayDown = 0,
  kRelayUp = 1,
  kOffline = 2,
  kOnline = 3,
  kUpdate = 4,
};

struct RawEvent {
  SimTime time;
  EventKind kind;
  std::size_t node;
  std::size_t update = 0;  // for kUpdate
};

class GroupState {
 public:
  GroupState(std::size_t nodes, std::size_t updates, bool persistent_store)
      : persistent_(persistent_store),
        known_(nodes, std::vector<bool>(updates, false)),
        group_(updates, false),
        relay_(updates, false),
        online_(nodes, false) {}

  bool online(std::size_t i) const { return online_[i]; }

  /// Node i joins the online group at time t; returns for each side the
  /// newly learned updates via `record`.
  template <typename Record>
  void join(std::size_t i, SimTime t, Record&& record) {
    DOSN_ASSERT(!online_[i]);
    if (online_count_ == 0 && !durable()) group_.assign(group_.size(), false);
    // Updates the group learns from i reach every online member now.
    for (std::size_t u = 0; u < group_.size(); ++u) {
      if (known_[i][u] && !group_[u]) {
        group_[u] = true;
        for (std::size_t j = 0; j < known_.size(); ++j)
          if (online_[j]) record(j, u, t);
      } else if (!known_[i][u] && group_[u]) {
        record(i, u, t);
      }
    }
    online_[i] = true;
    ++online_count_;
    known_[i] = group_;
    sync_relay();
  }

  void leave(std::size_t i) {
    DOSN_ASSERT(online_[i]);
    known_[i] = group_;
    online_[i] = false;
    --online_count_;
  }

  /// Injects update u at node i at time t.
  template <typename Record>
  void inject(std::size_t i, std::size_t u, SimTime t, Record&& record) {
    record(i, u, t);
    known_[i][u] = true;
    if (online_[i]) {
      if (!group_[u]) {
        group_[u] = true;
        for (std::size_t j = 0; j < known_.size(); ++j)
          if (online_[j] && j != i) record(j, u, t);
      }
      known_[i] = group_;
      sync_relay();
    }
  }

  /// The relay becomes unreachable: the store freezes at its current
  /// content and the group falls back to ConRep semantics (a dissolved
  /// live group loses its shared state).
  void relay_down() {
    relay_ = group_;  // already mirrored while durable; freeze explicitly
    relay_up_ = false;
  }

  /// The relay returns: live group and relay re-merge bidirectionally;
  /// with nobody online only the relay's durable content survives.
  template <typename Record>
  void relay_up(SimTime t, Record&& record) {
    relay_up_ = true;
    if (online_count_ > 0) {
      for (std::size_t u = 0; u < group_.size(); ++u) {
        if (relay_[u] && !group_[u]) {
          group_[u] = true;
          for (std::size_t j = 0; j < known_.size(); ++j)
            if (online_[j]) record(j, u, t);
        }
      }
      relay_ = group_;
    } else {
      group_ = relay_;
    }
  }

  std::size_t online_count() const { return online_count_; }

 private:
  /// Shared state survives an empty group only while the persistent store
  /// is reachable.
  bool durable() const { return persistent_ && relay_up_; }

  void sync_relay() {
    if (durable()) relay_ = group_;
  }

  bool persistent_;
  bool relay_up_ = true;
  std::vector<std::vector<bool>> known_;
  std::vector<bool> group_;
  std::vector<bool> relay_;  // the persistent store's content (UnconRep)
  std::vector<bool> online_;
  std::size_t online_count_ = 0;
};

}  // namespace

ReplicaSimReport simulate_replica_group(std::span<const DaySchedule> nodes,
                                        std::span<const UpdateSpec> updates,
                                        const ReplicaSimConfig& config) {
  DOSN_REQUIRE(config.horizon_days > 0, "replica sim: horizon must be > 0");
  const SimTime horizon =
      static_cast<SimTime>(config.horizon_days) * kDaySeconds;
  for (const auto& u : updates) {
    DOSN_REQUIRE(u.origin < nodes.size(), "replica sim: bad update origin");
    DOSN_REQUIRE(u.time >= 0 && u.time < horizon,
                 "replica sim: update outside horizon");
  }

  // Effective fault plan: explicit NodeFailures become node outages of the
  // injected plan (crash-stop when no recovery time is given). Sessions
  // then come through the injector — a session inside an outage window is
  // dropped, one in progress at the failure instant is cut short, and a
  // transient failure's sessions resume after recovery (the node's held
  // state re-merges at its next join).
  FaultPlan plan = config.faults;
  for (const auto& f : config.failures)
    plan.node_outages.push_back({f.node, f.at, f.recover_at});
  for (const auto& o : plan.node_outages)
    DOSN_REQUIRE(o.node < nodes.size(), "replica sim: bad failure node");
  FaultInjector injector(plan);

  std::vector<RawEvent> raw;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& iv :
         injector.sessions(i, nodes[i], config.horizon_days)) {
      raw.push_back({iv.start, EventKind::kOnline, i, 0});
      raw.push_back({iv.end, EventKind::kOffline, i, 0});
    }
  }
  for (std::size_t u = 0; u < updates.size(); ++u)
    raw.push_back({updates[u].time, EventKind::kUpdate, updates[u].origin, u});

  // Relay outage windows only exist under UnconRep (ConRep has no relay).
  // Overlapping windows are canonicalized so down/up events alternate.
  const bool persistent = config.connectivity == Connectivity::kUnconRep;
  if (persistent) {
    interval::IntervalSet windows;
    for (const auto& w : plan.relay_outages) {
      const SimTime start = std::min(w.start, horizon);
      const SimTime end = std::min(w.end, horizon);
      if (start < end) windows.add(start, end);
    }
    for (const auto& w : windows.pieces()) {
      raw.push_back({w.start, EventKind::kRelayDown, 0, 0});
      raw.push_back({w.end, EventKind::kRelayUp, 0, 0});
    }
  }
  std::sort(raw.begin(), raw.end(), [](const RawEvent& a, const RawEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.node != b.node) return a.node < b.node;
    return a.update < b.update;
  });

  ReplicaSimReport report;
  report.deliveries.resize(updates.size());
  for (std::size_t u = 0; u < updates.size(); ++u) {
    report.deliveries[u].creation = updates[u].time;
    report.deliveries[u].origin = updates[u].origin;
    report.deliveries[u].arrival.assign(nodes.size(), std::nullopt);
  }

  GroupState state(nodes.size(), updates.size(), persistent);
  auto record = [&](std::size_t node, std::size_t update, SimTime t) {
    auto& slot = report.deliveries[update].arrival[node];
    if (!slot) slot = t;
  };

  EventQueue queue;
  SimTime last_transition = 0;
  SimTime any_online_time = 0;
  for (const auto& ev : raw) {
    queue.schedule(ev.time, [&, ev] {
      const bool was_any = state.online_count() > 0;
      if (was_any) any_online_time += ev.time - last_transition;
      last_transition = ev.time;
      switch (ev.kind) {
        case EventKind::kRelayDown: state.relay_down(); break;
        case EventKind::kRelayUp: state.relay_up(ev.time, record); break;
        case EventKind::kOffline: state.leave(ev.node); break;
        case EventKind::kOnline: state.join(ev.node, ev.time, record); break;
        case EventKind::kUpdate:
          state.inject(ev.node, ev.update, ev.time, record);
          break;
      }
    });
  }
  queue.run_all();
  if (state.online_count() > 0) any_online_time += horizon - last_transition;
  report.events = queue.processed();
  report.empirical_availability =
      static_cast<double>(any_online_time) / static_cast<double>(horizon);

  // Delay statistics over non-origin nodes with non-empty schedules.
  util::RunningStats delays;
  std::uint64_t delivered = 0;
  for (const auto& d : report.deliveries) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i == d.origin || nodes[i].empty()) continue;
      if (!d.arrival[i]) {
        report.all_delivered = false;
        continue;
      }
      ++delivered;
      const Seconds delay = *d.arrival[i] - d.creation;
      report.max_delay = std::max(report.max_delay, delay);
      delays.add(static_cast<double>(delay));
    }
  }
  report.mean_delay = delays.mean();

  SimMetrics& m = sim_metrics();
  m.runs.add(1);
  m.updates.add(updates.size());
  m.deliveries.add(delivered);
  m.group_size.record(static_cast<std::int64_t>(nodes.size()));
  injector.flush_stats();
  return report;
}

std::optional<SimTime> first_non_origin_arrival(
    const UpdateDelivery& delivery) {
  std::optional<SimTime> earliest;
  for (std::size_t node = 0; node < delivery.arrival.size(); ++node) {
    if (node == delivery.origin) continue;
    const auto& at = delivery.arrival[node];
    if (at && (!earliest || *at < *earliest)) earliest = *at;
  }
  return earliest;
}

std::vector<UpdateSpec> updates_within_schedules(
    std::span<const DaySchedule> nodes, std::size_t count, int horizon_days,
    util::Rng& rng) {
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (!nodes[i].empty()) eligible.push_back(i);
  DOSN_REQUIRE(!eligible.empty(),
               "updates_within_schedules: no node is ever online");

  std::vector<UpdateSpec> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t origin = eligible[k % eligible.size()];
    const auto& sched = nodes[origin];
    const auto day = static_cast<SimTime>(
        rng.below(static_cast<std::uint64_t>(horizon_days)));
    // Uniform second within the node's daily online time.
    auto offset = static_cast<Seconds>(rng.below(
        static_cast<std::uint64_t>(sched.online_seconds())));
    Seconds tod = 0;
    for (const auto& iv : sched.set().pieces()) {
      if (offset < iv.length()) {
        tod = iv.start + offset;
        break;
      }
      offset -= iv.length();
    }
    out.push_back({day * kDaySeconds + tod, origin});
  }
  std::sort(out.begin(), out.end(),
            [](const UpdateSpec& a, const UpdateSpec& b) {
              return a.time < b.time;
            });
  return out;
}

}  // namespace dosn::net
