// Real session logs as online-time input.
//
// The online-time models exist because the paper's traces lack session
// data. When real session logs *are* available (e.g. the instant-messenger
// availability dataset of the paper's related work [19]), they can be
// loaded directly: one session per line, `<user> <start_ts> <end_ts>`
// (absolute seconds, '#'/'%' comments), projected onto the daily cycle.
// PrecomputedModel wraps such schedules behind the OnlineTimeModel
// interface so they drive the same Study sweeps as the synthetic models.
#pragma once

#include "onlinetime/model.hpp"
#include "trace/parsers.hpp"

namespace dosn::onlinetime {

/// Parses a session file; `ids` maps external tokens to dense UserIds
/// (share it with the graph/trace loaders). Returns one schedule per dense
/// id in [0, num_users); users without sessions stay empty. Sessions of
/// users with id >= num_users are rejected.
std::vector<DaySchedule> load_session_schedules(const std::string& path,
                                                trace::IdMap& ids,
                                                std::size_t num_users);

/// Writes a session file readable by load_session_schedules: each daily
/// piece of each schedule becomes one session on day 0.
void save_session_schedules(const std::string& path,
                            std::span<const DaySchedule> schedules);

/// Fixed, externally supplied schedules behind the model interface.
class PrecomputedModel final : public OnlineTimeModel {
 public:
  explicit PrecomputedModel(std::vector<DaySchedule> schedules,
                            std::string label = "Precomputed");

  std::string name() const override { return label_; }
  std::vector<DaySchedule> schedules_impl(const trace::Dataset& dataset,
                                     util::Rng& rng) const override;

 private:
  std::vector<DaySchedule> schedules_;
  std::string label_;
};

}  // namespace dosn::onlinetime
