// EnrichedSporadic: sporadic sessions plus passive-presence sessions
// (extension).
//
// The paper notes (Sec IV) that the traces record only one activity type
// and that "considering an even richer set of activities like passive
// profile viewing, personal communication or chats ... would increase the
// user's online time and thus availability of his profile". This model
// quantifies that: on top of the activity-anchored Sporadic sessions, each
// user gets `extra_sessions_per_day` additional sessions per trace day,
// placed around his diurnal habit (the mode of his activity times), i.e.
// browsing without posting.
#pragma once

#include "onlinetime/model.hpp"

namespace dosn::onlinetime {

class EnrichedSporadicModel final : public OnlineTimeModel {
 public:
  EnrichedSporadicModel(Seconds session_length = 20 * 60,
                        double extra_sessions_per_day = 2.0,
                        double habit_stddev_hours = 2.0);

  std::string name() const override;
  bool randomized() const override { return true; }  // extra sessions drawn
  std::vector<DaySchedule> schedules_impl(const trace::Dataset& dataset,
                                     util::Rng& rng) const override;

 private:
  Seconds session_length_;
  double extra_sessions_per_day_;
  double habit_stddev_hours_;
};

}  // namespace dosn::onlinetime
