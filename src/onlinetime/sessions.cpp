#include "onlinetime/sessions.hpp"

#include <filesystem>
#include <fstream>

#include "util/strings.hpp"

namespace dosn::onlinetime {

std::vector<DaySchedule> load_session_schedules(const std::string& path,
                                                trace::IdMap& ids,
                                                std::size_t num_users) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);

  std::vector<std::vector<interval::Interval>> sessions(num_users);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#' || trimmed.front() == '%')
      continue;
    const auto fields = util::split_ws(line);
    if (fields.size() < 3)
      throw ParseError(path + ":" + std::to_string(line_no) +
                       ": session line needs `user start end`");
    const auto user = ids.intern(fields[0]);
    if (user >= num_users)
      throw ParseError(path + ":" + std::to_string(line_no) +
                       ": session for unknown user '" +
                       std::string(fields[0]) + "'");
    const auto start = util::parse_i64(fields[1]);
    const auto end = util::parse_i64(fields[2]);
    if (start >= end)
      throw ParseError(path + ":" + std::to_string(line_no) +
                       ": session start must precede end");
    sessions[user].push_back({start, end});
  }

  std::vector<DaySchedule> out(num_users);
  for (std::size_t u = 0; u < num_users; ++u)
    if (!sessions[u].empty()) out[u] = DaySchedule::project(sessions[u]);
  return out;
}

void save_session_schedules(const std::string& path,
                            std::span<const DaySchedule> schedules) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) throw IoError("cannot create directory " + parent.string());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << "# user\tstart\tend (seconds; daily pieces on day 0)\n";
  for (std::size_t u = 0; u < schedules.size(); ++u)
    for (const auto& piece : schedules[u].set().pieces())
      out << u << '\t' << piece.start << '\t' << piece.end << '\n';
  if (!out) throw IoError("write failure on " + path);
}

PrecomputedModel::PrecomputedModel(std::vector<DaySchedule> schedules,
                                   std::string label)
    : schedules_(std::move(schedules)), label_(std::move(label)) {}

std::vector<DaySchedule> PrecomputedModel::schedules_impl(
    const trace::Dataset& dataset, util::Rng&) const {
  DOSN_REQUIRE(schedules_.size() == dataset.num_users(),
               "PrecomputedModel: schedule count does not match dataset");
  return schedules_;
}

}  // namespace dosn::onlinetime
