// User online-time models (Sec IV-C of the paper).
//
// The traces record *activities*, not sessions, so the study approximates
// each user's daily online schedule OT_u from his activity timestamps.
// Three models are defined:
//
//   * Sporadic          — one fixed-length session per activity, the
//                         activity placed uniformly at random inside it;
//                         the paper's most realistic model (default 20 min).
//   * FixedLength       — one continuous daily window of a fixed length
//                         (2/4/6/8 h), positioned over the user's activity
//                         mode ("centered around the majority of their
//                         activity times").
//   * RandomLength      — FixedLength with a per-user window length drawn
//                         uniformly from [2 h, 8 h].
//
// A model maps a whole dataset to one DaySchedule per user.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interval/day_schedule.hpp"
#include "trace/dataset.hpp"
#include "util/rng.hpp"

namespace dosn::onlinetime {

using interval::DaySchedule;
using interval::Seconds;

class OnlineTimeModel {
 public:
  virtual ~OnlineTimeModel() = default;

  virtual std::string name() const = 0;

  /// True when the model itself draws random choices that the paper's
  /// methodology averages over repetitions (RandomLength).
  virtual bool randomized() const { return false; }

  /// One daily schedule per user of the dataset.
  ///
  /// Non-virtual template method: runs the model's schedules_impl and
  /// DOSN_CHECKs the schedule contract — exactly one DaySchedule per user
  /// of the dataset (each DaySchedule already enforces the within-day
  /// invariant on construction). A model returning the wrong number of
  /// schedules would silently misalign every UserId-indexed lookup.
  std::vector<DaySchedule> schedules(const trace::Dataset& dataset,
                                     util::Rng& rng) const;

 protected:
  /// Model-specific generation; see schedules() for the enforced contract.
  virtual std::vector<DaySchedule> schedules_impl(
      const trace::Dataset& dataset, util::Rng& rng) const = 0;
};

enum class ModelKind {
  kSporadic,          ///< session per activity (paper Sec IV-C1)
  kFixedLength,       ///< fixed daily window over the activity mode (C2)
  kRandomLength,      ///< per-user window length in [2, 8] h (C3)
  kEnrichedSporadic,  ///< Sporadic + passive-presence sessions (extension)
};

struct ModelParams {
  /// Sporadic: session length in seconds (paper default: 20 min).
  Seconds session_length = 20 * 60;
  /// FixedLength: daily window length in hours (paper: 2, 4, 6, 8).
  double window_hours = 8.0;
  /// RandomLength: per-user window drawn uniformly from this range (hours).
  double random_min_hours = 2.0;
  double random_max_hours = 8.0;
  /// EnrichedSporadic: passive sessions added per trace day, and the
  /// spread (hours) of their placement around the user's diurnal habit.
  double extra_sessions_per_day = 2.0;
  double habit_stddev_hours = 2.0;
};

std::unique_ptr<OnlineTimeModel> make_model(ModelKind kind,
                                            const ModelParams& params = {});

std::string to_string(ModelKind kind);

}  // namespace dosn::onlinetime
