#include "onlinetime/model.hpp"

#include "onlinetime/continuous.hpp"
#include "onlinetime/enriched.hpp"
#include "onlinetime/sporadic.hpp"
#include "util/check.hpp"

namespace dosn::onlinetime {

std::vector<DaySchedule> OnlineTimeModel::schedules(
    const trace::Dataset& dataset, util::Rng& rng) const {
  std::vector<DaySchedule> out = schedules_impl(dataset, rng);
  DOSN_CHECK(out.size() == dataset.num_users(), name(), ": produced ",
             out.size(), " schedules for ", dataset.num_users(), " users");
  return out;
}

std::unique_ptr<OnlineTimeModel> make_model(ModelKind kind,
                                            const ModelParams& params) {
  switch (kind) {
    case ModelKind::kSporadic:
      return std::make_unique<SporadicModel>(params.session_length);
    case ModelKind::kFixedLength:
      return std::make_unique<FixedLengthModel>(params.window_hours);
    case ModelKind::kRandomLength:
      return std::make_unique<RandomLengthModel>(params.random_min_hours,
                                                 params.random_max_hours);
    case ModelKind::kEnrichedSporadic:
      return std::make_unique<EnrichedSporadicModel>(
          params.session_length, params.extra_sessions_per_day,
          params.habit_stddev_hours);
  }
  throw ConfigError("make_model: unknown model kind");
}

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kSporadic: return "Sporadic";
    case ModelKind::kFixedLength: return "FixedLength";
    case ModelKind::kRandomLength: return "RandomLength";
    case ModelKind::kEnrichedSporadic: return "EnrichedSporadic";
  }
  return "?";
}

}  // namespace dosn::onlinetime
