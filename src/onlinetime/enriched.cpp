#include "onlinetime/enriched.hpp"

#include <cmath>

#include "onlinetime/continuous.hpp"
#include "util/strings.hpp"

namespace dosn::onlinetime {

using interval::kDaySeconds;
using interval::time_of_day;

EnrichedSporadicModel::EnrichedSporadicModel(Seconds session_length,
                                             double extra_sessions_per_day,
                                             double habit_stddev_hours)
    : session_length_(session_length),
      extra_sessions_per_day_(extra_sessions_per_day),
      habit_stddev_hours_(habit_stddev_hours) {
  DOSN_REQUIRE(session_length_ > 0,
               "EnrichedSporadicModel: session length must be positive");
  DOSN_REQUIRE(extra_sessions_per_day_ >= 0.0,
               "EnrichedSporadicModel: extra sessions must be >= 0");
  DOSN_REQUIRE(habit_stddev_hours_ > 0.0,
               "EnrichedSporadicModel: habit spread must be positive");
}

std::string EnrichedSporadicModel::name() const {
  return util::format("EnrichedSporadic(%llds,+%.1f/day)",
                      static_cast<long long>(session_length_),
                      extra_sessions_per_day_);
}

std::vector<DaySchedule> EnrichedSporadicModel::schedules_impl(
    const trace::Dataset& dataset, util::Rng& rng) const {
  const std::size_t n = dataset.num_users();
  const Seconds span = dataset.trace.empty()
                           ? kDaySeconds
                           : dataset.trace.max_timestamp() -
                                 dataset.trace.min_timestamp();
  const auto trace_days =
      std::max<std::int64_t>(1, (span + kDaySeconds - 1) / kDaySeconds);

  std::vector<DaySchedule> out(n);
  std::vector<interval::Interval> sessions;
  std::vector<Seconds> times;
  for (graph::UserId u = 0; u < n; ++u) {
    sessions.clear();
    times.clear();

    // Activity-anchored sessions, as in the plain Sporadic model.
    for (std::uint32_t idx : dataset.trace.created_index(u)) {
      const trace::Seconds ts = dataset.trace.activity(idx).timestamp;
      times.push_back(time_of_day(ts));
      const auto offset = static_cast<Seconds>(
          rng.below(static_cast<std::uint64_t>(session_length_)));
      sessions.push_back({ts - offset, ts - offset + session_length_});
    }
    if (times.empty()) continue;  // no signal about this user at all

    // Passive sessions clustered around the user's diurnal habit.
    const Seconds habit = best_window_start(times, session_length_);
    const auto extra = static_cast<std::int64_t>(std::llround(
        extra_sessions_per_day_ * static_cast<double>(trace_days)));
    for (std::int64_t k = 0; k < extra; ++k) {
      const double center_h =
          static_cast<double>(habit) / 3600.0 +
          rng.normal(0.0, habit_stddev_hours_);
      const double wrapped = center_h - 24.0 * std::floor(center_h / 24.0);
      const auto start = static_cast<Seconds>(wrapped * 3600.0);
      sessions.push_back({start, start + session_length_});
    }
    out[u] = DaySchedule::project(sessions);
  }
  return out;
}

}  // namespace dosn::onlinetime
