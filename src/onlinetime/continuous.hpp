// Continuous online-time models: one daily window per user, positioned over
// the user's activity mode.
#pragma once

#include "onlinetime/model.hpp"

namespace dosn::onlinetime {

/// Places a single daily window of `window(u)` seconds so that it covers as
/// many of the user's created-activity times-of-day as possible (the
/// paper's "centered around the majority of their activity times"). Users
/// without activities receive a uniformly random window position.
class ContinuousModel : public OnlineTimeModel {
 public:
  std::vector<DaySchedule> schedules_impl(const trace::Dataset& dataset,
                                     util::Rng& rng) const final;

 protected:
  /// Window length for user u (may consult rng — RandomLength does).
  virtual Seconds window_length(graph::UserId u, util::Rng& rng) const = 0;
};

/// All users share one fixed window length (paper: 2, 4, 6 or 8 hours).
class FixedLengthModel final : public ContinuousModel {
 public:
  explicit FixedLengthModel(double window_hours = 8.0);

  std::string name() const override;
  double window_hours() const { return window_hours_; }

 protected:
  Seconds window_length(graph::UserId u, util::Rng& rng) const override;

 private:
  double window_hours_;
};

/// Each user draws his own window length uniformly from [min, max] hours.
class RandomLengthModel final : public ContinuousModel {
 public:
  RandomLengthModel(double min_hours = 2.0, double max_hours = 8.0);

  std::string name() const override;
  bool randomized() const override { return true; }

 protected:
  Seconds window_length(graph::UserId u, util::Rng& rng) const override;

 private:
  double min_hours_;
  double max_hours_;
};

/// Exposed for testing: the best window start (seconds, time-of-day) for a
/// circular multiset of activity times-of-day. Ties resolve to the smallest
/// start; activity times are weighted equally.
Seconds best_window_start(std::span<const Seconds> times_of_day,
                          Seconds window_length);

}  // namespace dosn::onlinetime
