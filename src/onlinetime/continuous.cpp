#include "onlinetime/continuous.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace dosn::onlinetime {

using interval::kDaySeconds;
using interval::time_of_day;

Seconds best_window_start(std::span<const Seconds> times_of_day,
                          Seconds window_length) {
  DOSN_REQUIRE(window_length > 0, "best_window_start: empty window");
  if (times_of_day.empty() || window_length >= kDaySeconds) return 0;

  // Some maximal window starts exactly at an activity time, so it suffices
  // to evaluate those candidates on the circularly doubled, sorted list.
  std::vector<Seconds> sorted(times_of_day.begin(), times_of_day.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t m = sorted.size();
  std::vector<Seconds> doubled(sorted);
  doubled.reserve(2 * m);
  for (Seconds t : sorted) doubled.push_back(t + kDaySeconds);

  std::size_t best_count = 0;
  Seconds best_start = sorted.front();
  for (std::size_t i = 0; i < m; ++i) {
    const auto end = std::lower_bound(doubled.begin(), doubled.end(),
                                      sorted[i] + window_length);
    const auto count = static_cast<std::size_t>(end - doubled.begin()) - i;
    if (count > best_count) {
      best_count = count;
      best_start = sorted[i];
    }
  }
  return best_start;
}

std::vector<DaySchedule> ContinuousModel::schedules_impl(
    const trace::Dataset& dataset, util::Rng& rng) const {
  const std::size_t n = dataset.num_users();
  std::vector<DaySchedule> out(n);
  std::vector<Seconds> times;
  for (graph::UserId u = 0; u < n; ++u) {
    const Seconds len = std::min(window_length(u, rng), kDaySeconds);
    DOSN_ASSERT(len > 0);
    if (len == kDaySeconds) {
      out[u] = DaySchedule::always();
      continue;
    }
    times.clear();
    for (std::uint32_t idx : dataset.trace.created_index(u))
      times.push_back(time_of_day(dataset.trace.activity(idx).timestamp));
    const Seconds start =
        times.empty() ? static_cast<Seconds>(rng.below(kDaySeconds))
                      : best_window_start(times, len);
    const interval::Interval window{start, start + len};
    out[u] = DaySchedule::project({&window, 1});
  }
  return out;
}

FixedLengthModel::FixedLengthModel(double window_hours)
    : window_hours_(window_hours) {
  DOSN_REQUIRE(window_hours > 0.0 && window_hours <= 24.0,
               "FixedLengthModel: window must be in (0, 24] hours");
}

std::string FixedLengthModel::name() const {
  return util::format("FixedLength(%gh)", window_hours_);
}

Seconds FixedLengthModel::window_length(graph::UserId, util::Rng&) const {
  return static_cast<Seconds>(std::llround(window_hours_ * 3600.0));
}

RandomLengthModel::RandomLengthModel(double min_hours, double max_hours)
    : min_hours_(min_hours), max_hours_(max_hours) {
  DOSN_REQUIRE(min_hours > 0.0 && max_hours <= 24.0 && min_hours <= max_hours,
               "RandomLengthModel: invalid hour range");
}

std::string RandomLengthModel::name() const {
  return util::format("RandomLength(%g-%gh)", min_hours_, max_hours_);
}

Seconds RandomLengthModel::window_length(graph::UserId, util::Rng& rng) const {
  return static_cast<Seconds>(
      std::llround(rng.uniform(min_hours_, max_hours_) * 3600.0));
}

}  // namespace dosn::onlinetime
