#include "onlinetime/sporadic.hpp"

#include "util/strings.hpp"

namespace dosn::onlinetime {

SporadicModel::SporadicModel(Seconds session_length)
    : session_length_(session_length) {
  DOSN_REQUIRE(session_length_ > 0,
               "SporadicModel: session length must be positive");
}

std::string SporadicModel::name() const {
  return util::format("Sporadic(%llds)",
                      static_cast<long long>(session_length_));
}

std::vector<DaySchedule> SporadicModel::schedules_impl(
    const trace::Dataset& dataset, util::Rng& rng) const {
  const std::size_t n = dataset.num_users();
  std::vector<DaySchedule> out(n);
  std::vector<interval::Interval> sessions;
  for (graph::UserId u = 0; u < n; ++u) {
    sessions.clear();
    for (std::uint32_t idx : dataset.trace.created_index(u)) {
      const trace::Seconds ts = dataset.trace.activity(idx).timestamp;
      // The activity sits at a uniform random point inside its session.
      const auto offset = static_cast<Seconds>(
          rng.below(static_cast<std::uint64_t>(session_length_)));
      sessions.push_back({ts - offset, ts - offset + session_length_});
    }
    if (!sessions.empty()) out[u] = DaySchedule::project(sessions);
  }
  return out;
}

}  // namespace dosn::onlinetime
