// Sporadic online-time model: one session per activity.
#pragma once

#include "onlinetime/model.hpp"

namespace dosn::onlinetime {

/// For every activity a user *created*, the user is online for one session
/// of fixed length containing the activity at a uniformly random offset;
/// all sessions are projected onto the daily cycle and unioned.
class SporadicModel final : public OnlineTimeModel {
 public:
  explicit SporadicModel(Seconds session_length = 20 * 60);

  std::string name() const override;
  std::vector<DaySchedule> schedules_impl(const trace::Dataset& dataset,
                                     util::Rng& rng) const override;

  Seconds session_length() const { return session_length_; }

 private:
  Seconds session_length_;
};

}  // namespace dosn::onlinetime
