#include "interval/day_schedule.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/error.hpp"

namespace dosn::interval {

DaySchedule::DaySchedule(IntervalSet within_day) : set_(std::move(within_day)) {
  if (set_.empty()) return;
  DOSN_CHECK(*set_.first() >= 0 && *set_.last_end() <= kDaySeconds,
             "DaySchedule: set must lie within [0, ", kDaySeconds,
             "), got ", set_.to_string());
  DOSN_DCHECK(set_.is_canonical(),
              "DaySchedule: set not canonical: ", set_.to_string());
}

DaySchedule DaySchedule::project(std::span<const Interval> absolute) {
  IntervalSet day;
  for (const auto& iv : absolute) {
    DOSN_REQUIRE(iv.start < iv.end, "DaySchedule::project: empty interval");
    if (iv.length() >= kDaySeconds) return always();
    const Seconds s = time_of_day(iv.start);
    const Seconds e = s + iv.length();
    if (e <= kDaySeconds) {
      day.add(s, e);
    } else {
      day.add(s, kDaySeconds);
      day.add(0, e - kDaySeconds);
    }
    if (day.measure() == kDaySeconds) return always();
  }
  return DaySchedule(std::move(day));
}

DaySchedule DaySchedule::always() {
  return DaySchedule(IntervalSet::single(0, kDaySeconds));
}

std::optional<Seconds> DaySchedule::wait_until_online(Seconds t) const {
  if (set_.empty()) return std::nullopt;
  t = time_of_day(t);
  if (set_.contains(t)) return 0;
  if (auto next = set_.next_at_or_after(t)) return *next - t;
  return *set_.first() + kDaySeconds - t;  // wrap to tomorrow's first piece
}

Seconds DaySchedule::online_within_window(Seconds t, Seconds length) const {
  if (length <= 0 || set_.empty()) return 0;
  t = time_of_day(t);
  const Seconds full_days = length / kDaySeconds;
  const Seconds rem = length % kDaySeconds;
  Seconds total = full_days * online_seconds();
  const Seconds e = t + rem;
  if (e <= kDaySeconds) {
    total += set_.measure_within(t, e);
  } else {
    total += set_.measure_within(t, kDaySeconds);
    total += set_.measure_within(0, e - kDaySeconds);
  }
  return total;
}

namespace {

// Closure membership in circular time: t is in the closure of the set when
// it lies inside a piece or on a piece boundary (a piece ending at 86400
// closes onto time-of-day 0).
bool closure_contains(const IntervalSet& set, Seconds t) {
  if (set.contains(t)) return true;
  for (const auto& piece : set.pieces())
    if (time_of_day(piece.end) == t) return true;
  return false;
}

}  // namespace

std::optional<WorstWait> worst_case_wait(const DaySchedule& source,
                                         const DaySchedule& target) {
  if (source.empty() || target.empty()) return std::nullopt;

  // wait(t) decreases with slope -1 as t advances (and is 0 inside the
  // target), jumping up exactly when t leaves a target interval. Hence the
  // maximum over event times in the *closure* of `source` is attained
  // either at the start of a source interval or at the end of a target
  // interval touching the source (the node posts an update the instant the
  // rendezvous window closes — the paper's worst case, which makes the
  // single-interval edge weight exactly 24h − overlap).
  WorstWait best{-1, 0};
  auto consider = [&](Seconds t) {
    const auto wait = target.wait_until_online(t);
    DOSN_ASSERT(wait.has_value());
    if (*wait > best.wait) best = WorstWait{*wait, t};
  };

  for (const auto& iv : source.set().pieces()) consider(iv.start);
  for (const auto& iv : target.set().pieces()) {
    const Seconds e = time_of_day(iv.end);  // iv.end == kDaySeconds wraps to 0
    if (closure_contains(source.set(), e)) consider(e);
  }
  DOSN_ASSERT(best.wait >= 0);
  return best;
}

}  // namespace dosn::interval
