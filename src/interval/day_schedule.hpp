// Daily-periodic online schedules.
//
// The study projects all user activity onto one 24-hour cycle (the paper
// measures availability "over 24 hours / 1440 minutes"): a DaySchedule is an
// IntervalSet confined to [0, 86400) seconds interpreted circularly — the
// schedule repeats every day. Circular queries ("how long until this node is
// next online, starting at time-of-day t?") are what the update-propagation
// delay metric is built from.
#pragma once

#include <optional>

#include "interval/interval_set.hpp"

namespace dosn::interval {

/// Length of the daily cycle in seconds (24 h).
inline constexpr Seconds kDaySeconds = 86400;

/// Normalizes an absolute timestamp to a time-of-day in [0, kDaySeconds).
constexpr Seconds time_of_day(Seconds t) {
  const Seconds m = t % kDaySeconds;
  return m < 0 ? m + kDaySeconds : m;
}

/// A periodic daily online schedule.
class DaySchedule {
 public:
  /// The empty schedule (never online).
  DaySchedule() = default;

  /// Wraps a set that must already lie within [0, kDaySeconds).
  explicit DaySchedule(IntervalSet within_day);

  /// Projects intervals given in absolute seconds onto the daily cycle,
  /// splitting pieces that cross midnight. An interval of length >= one day
  /// covers the full cycle.
  static DaySchedule project(std::span<const Interval> absolute);

  static DaySchedule always();
  static DaySchedule never() { return DaySchedule{}; }

  const IntervalSet& set() const { return set_; }
  bool empty() const { return set_.empty(); }

  /// Seconds online per day.
  Seconds online_seconds() const { return set_.measure(); }

  /// Fraction of the day online — the paper's availability denominator.
  double coverage() const {
    return static_cast<double>(online_seconds()) /
           static_cast<double>(kDaySeconds);
  }

  /// Is the node online at absolute time t (projected onto the day)?
  bool online_at(Seconds t) const { return set_.contains(time_of_day(t)); }

  /// Circular wait from time-of-day `t` until the schedule is next online;
  /// zero when online at t; nullopt when the schedule is empty. The result
  /// is < kDaySeconds.
  std::optional<Seconds> wait_until_online(Seconds t) const;

  /// Seconds this schedule is online inside the circular window
  /// [t, t + length); length may exceed one day (full cycles count fully).
  Seconds online_within_window(Seconds t, Seconds length) const;

  DaySchedule unite(const DaySchedule& other) const {
    return DaySchedule(set_.unite(other.set_));
  }
  /// In-place union through caller-owned scratch: allocation-free once the
  /// scratch capacity has warmed up. Day-confinement is preserved (the
  /// union of two within-day sets is within-day).
  void unite_with(const DaySchedule& other,
                  std::vector<Interval>* scratch) {
    set_.unite_with(other.set_, scratch);
  }
  DaySchedule intersect(const DaySchedule& other) const {
    return DaySchedule(set_.intersect(other.set_));
  }

  bool intersects(const DaySchedule& other) const {
    return set_.intersects(other.set_);
  }

  /// Daily seconds both schedules are online — the paper's "overlap d".
  Seconds overlap_seconds(const DaySchedule& other) const {
    return set_.intersection_measure(other.set_);
  }

  friend bool operator==(const DaySchedule&, const DaySchedule&) = default;

  std::string to_string() const { return set_.to_string(); }

 private:
  IntervalSet set_;
};

/// Result of a worst-case wait analysis: the maximal wait and a time-of-day
/// achieving it.
struct WorstWait {
  Seconds wait = 0;  ///< seconds until `target` is reachable, worst case
  Seconds at = 0;    ///< time-of-day of the worst-case event
};

/// Worst case, over event times t in `source`, of the circular wait from t
/// until the next instant `target` is online. This is the exact general form
/// of the paper's per-edge delay "24h − overlap" (to which it reduces when
/// both schedules are single daily intervals). Returns nullopt when either
/// schedule is empty.
std::optional<WorstWait> worst_case_wait(const DaySchedule& source,
                                         const DaySchedule& target);

}  // namespace dosn::interval
