// Exact interval-set algebra over integral seconds.
//
// An IntervalSet is a canonical (sorted, disjoint, non-empty, non-adjacent)
// sequence of half-open intervals [start, end). It is the representation of
// user online times OT_u: the paper's availability metrics are measures of
// unions/intersections of such sets, and the update-propagation-delay metric
// asks "next instant in S after t" style questions, all of which are exact
// here (no time discretization).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dosn::interval {

/// Time in seconds. All schedule math is integral and exact.
using Seconds = std::int64_t;

/// Half-open interval [start, end); valid iff start < end.
struct Interval {
  Seconds start = 0;
  Seconds end = 0;

  Seconds length() const { return end - start; }
  bool contains(Seconds t) const { return start <= t && t < end; }
  bool overlaps(const Interval& o) const {
    return start < o.end && o.start < end;
  }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Canonical union of half-open intervals with set algebra.
///
/// Invariants: intervals are sorted by start, pairwise disjoint, each has
/// positive length, and adjacent intervals ([a,b) and [b,c)) are merged.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Normalizes an arbitrary interval list (invalid/empty entries rejected).
  explicit IntervalSet(std::vector<Interval> intervals);

  static IntervalSet single(Seconds start, Seconds end);
  static IntervalSet empty_set() { return IntervalSet{}; }

  /// Inserts one interval, merging as needed. Amortized O(n).
  void add(Seconds start, Seconds end);
  void add(const Interval& iv) { add(iv.start, iv.end); }

  bool empty() const { return intervals_.empty(); }
  std::size_t piece_count() const { return intervals_.size(); }
  std::span<const Interval> pieces() const { return intervals_; }

  /// Total covered length.
  Seconds measure() const;

  bool contains(Seconds t) const;

  /// True iff the two sets share at least one instant.
  bool intersects(const IntervalSet& other) const;

  /// Earliest covered instant; nullopt when empty.
  std::optional<Seconds> first() const;
  /// Supremum of the covered region; nullopt when empty.
  std::optional<Seconds> last_end() const;

  /// Earliest covered instant at or after t; nullopt when none.
  std::optional<Seconds> next_at_or_after(Seconds t) const;

  IntervalSet unite(const IntervalSet& other) const;
  IntervalSet intersect(const IntervalSet& other) const;
  IntervalSet subtract(const IntervalSet& other) const;

  /// In-place union: *this becomes this ∪ other. Merges the two canonical
  /// piece lists into *scratch (grown but never shrunk) and swaps it in, so
  /// steady-state callers (shard loops, greedy candidate scans) do no
  /// allocation once the scratch has warmed up. Exactly equivalent to
  /// `*this = unite(other)` — the canonical representation is unique.
  void unite_with(const IntervalSet& other, std::vector<Interval>* scratch);

  /// Measure of this \ other, without materializing the difference.
  /// Exactly `subtract(other).measure()`; allocation-free.
  Seconds subtract_measure(const IntervalSet& other) const;

  /// Complement within the window [lo, hi).
  IntervalSet complement(Seconds lo, Seconds hi) const;

  /// Measure of the intersection, without materializing it.
  Seconds intersection_measure(const IntervalSet& other) const;

  /// Measure of this set restricted to [lo, hi).
  Seconds measure_within(Seconds lo, Seconds hi) const;

  /// Copy restricted to [lo, hi).
  IntervalSet clip(Seconds lo, Seconds hi) const;

  /// Copy with every instant shifted by delta (may be negative).
  IntervalSet shift(Seconds delta) const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

  /// True iff the representation satisfies the class invariant: sorted by
  /// start, every piece non-empty, pairwise disjoint and non-adjacent.
  /// O(n); used by the contract layer (DOSN_DCHECK postconditions) and by
  /// tests — a canonical set is what every algebra method assumes.
  bool is_canonical() const;

  /// Debug rendering, e.g. "{[10,20) [30,45)}".
  std::string to_string() const;

 private:
  void normalize();

  std::vector<Interval> intervals_;
};

IntervalSet operator|(const IntervalSet& a, const IntervalSet& b);
IntervalSet operator&(const IntervalSet& a, const IntervalSet& b);
IntervalSet operator-(const IntervalSet& a, const IntervalSet& b);

}  // namespace dosn::interval
