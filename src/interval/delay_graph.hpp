// Worst-case propagation delay of a replica group — pure schedule math.
//
// Given the daily schedules of a group of nodes, builds the weighted
// "replica time-connectivity graph" (paper Sec II-C3): the directed edge
// i -> j weighs the worst case, over event times in i's schedule, of the
// wait until the two can next exchange state — directly while both online
// (kDirect / the paper's ConRep) or through an always-online relay
// (kRelay / UnconRep). The group delay is the weighted diameter of the
// all-pairs shortest paths. metrics::update_propagation_delay wraps this;
// delay-aware placement policies consume it directly.
#pragma once

#include <optional>
#include <span>

#include "interval/day_schedule.hpp"

namespace dosn::interval {

enum class RendezvousMode {
  kDirect,  ///< state moves only when both nodes are online simultaneously
  kRelay,   ///< state parks at third-party storage (reader picks it up)
};

/// Worst-case one-hop delay from `source` to `target`; nullopt when the
/// pair can never exchange state.
std::optional<Seconds> pair_delay(const DaySchedule& source,
                                  const DaySchedule& target,
                                  RendezvousMode mode);

struct GroupDelayResult {
  /// Weighted diameter (seconds) over participating nodes.
  Seconds diameter = 0;
  /// Index (into the input span) of the receiving node of the worst pair.
  std::size_t worst_target = 0;
  /// False when some ordered pair has no route.
  bool fully_connected = true;
  /// Nodes with non-empty schedules (empty ones never exchange anything
  /// and are excluded).
  std::size_t participants = 0;
};

/// Diameter of the group's delay graph (Floyd–Warshall; groups are tiny).
/// Fewer than two participants yield a zero diameter.
GroupDelayResult group_delay(std::span<const DaySchedule> nodes,
                             RendezvousMode mode);

}  // namespace dosn::interval
