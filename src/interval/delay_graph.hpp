// Worst-case propagation delay of a replica group — pure schedule math.
//
// Given the daily schedules of a group of nodes, builds the weighted
// "replica time-connectivity graph" (paper Sec II-C3): the directed edge
// i -> j weighs the worst case, over event times in i's schedule, of the
// wait until the two can next exchange state — directly while both online
// (kDirect / the paper's ConRep) or through an always-online relay
// (kRelay / UnconRep). The group delay is the weighted diameter of the
// all-pairs shortest paths. metrics::update_propagation_delay wraps this;
// delay-aware placement policies consume it directly.
#pragma once

#include <optional>
#include <span>

#include "interval/day_schedule.hpp"

namespace dosn::interval {

enum class RendezvousMode {
  kDirect,  ///< state moves only when both nodes are online simultaneously
  kRelay,   ///< state parks at third-party storage (reader picks it up)
};

/// Worst-case one-hop delay from `source` to `target`; nullopt when the
/// pair can never exchange state.
std::optional<Seconds> pair_delay(const DaySchedule& source,
                                  const DaySchedule& target,
                                  RendezvousMode mode);

struct GroupDelayResult {
  /// Weighted diameter (seconds) over participating nodes.
  Seconds diameter = 0;
  /// Index (into the input span) of the receiving node of the worst pair.
  std::size_t worst_target = 0;
  /// False when some ordered pair has no route.
  bool fully_connected = true;
  /// Nodes with non-empty schedules (empty ones never exchange anything
  /// and are excluded).
  std::size_t participants = 0;
};

/// Diameter of the group's delay graph (Floyd–Warshall; groups are tiny).
/// Fewer than two participants yield a zero diameter.
GroupDelayResult group_delay(std::span<const DaySchedule> nodes,
                             RendezvousMode mode);

/// Incrementally maintained group_delay over a growing node sequence.
///
/// After i push() calls, result() is identical (bit for bit) to
/// group_delay(span of those i nodes, mode). The study engine evaluates
/// every replication prefix 0..k of a selection, so recomputing the
/// all-pairs matrix per prefix costs O(k^2) pair_delay edge computations
/// per prefix — O(k^3) total, with pair_delay (interval algebra) the
/// expensive part. Growing the matrix one node at a time computes each
/// edge exactly once: adding node v sets dist(i,v) = min_j dist(i,j) +
/// edge(j,v) and dist(v,j) symmetrically, then relaxes old pairs through
/// v — exact for nonnegative weights, because a shortest path in the new
/// graph either avoids v (old distance) or passes through v once.
class IncrementalGroupDelay {
 public:
  explicit IncrementalGroupDelay(RendezvousMode mode) : mode_(mode) {}

  /// Appends the next node. Empty schedules are recorded (they keep their
  /// slot in the input indexing) but never participate.
  void push(const DaySchedule& node);

  /// Returns to the empty state (as freshly constructed with `mode`) while
  /// keeping buffer capacity, so shard loops can reuse one instance across
  /// many users without reallocating the matrix per user.
  void reset(RendezvousMode mode);

  /// Equivalent of group_delay over every node pushed so far.
  GroupDelayResult result() const;

  std::size_t pushed() const { return pushed_; }

 private:
  Seconds at(std::size_t i, std::size_t j) const {
    return dist_[i * participants_.size() + j];
  }

  RendezvousMode mode_;
  std::size_t pushed_ = 0;
  std::vector<DaySchedule> participants_;  // non-empty pushed nodes
  std::vector<std::size_t> index_;         // their slots in push order
  std::vector<Seconds> dist_;              // shortest delays, row-major
  // push() scratch, kept as members so steady-state pushes are
  // allocation-free once the buffers have warmed up.
  std::vector<Seconds> edge_to_, edge_from_;
  std::vector<Seconds> dist_to_, dist_from_;
  std::vector<Seconds> next_;
};

}  // namespace dosn::interval
