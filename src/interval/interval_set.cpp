#include "interval/interval_set.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/error.hpp"

namespace dosn::interval {

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  for (const auto& iv : intervals_)
    DOSN_REQUIRE(iv.start < iv.end, "IntervalSet: interval must be non-empty");
  normalize();
  DOSN_DCHECK(is_canonical(), "normalize postcondition: ", to_string());
}

IntervalSet IntervalSet::single(Seconds start, Seconds end) {
  DOSN_REQUIRE(start < end, "IntervalSet::single: start must precede end");
  IntervalSet s;
  s.intervals_.push_back({start, end});
  return s;
}

void IntervalSet::add(Seconds start, Seconds end) {
  DOSN_REQUIRE(start < end, "IntervalSet::add: start must precede end");
  // Find all existing intervals touching [start, end] and merge them in.
  auto lo = std::lower_bound(
      intervals_.begin(), intervals_.end(), start,
      [](const Interval& iv, Seconds s) { return iv.end < s; });
  auto hi = lo;
  while (hi != intervals_.end() && hi->start <= end) {
    start = std::min(start, hi->start);
    end = std::max(end, hi->end);
    ++hi;
  }
  lo = intervals_.erase(lo, hi);
  intervals_.insert(lo, {start, end});
  DOSN_DCHECK(is_canonical(), "add postcondition: ", to_string());
}

Seconds IntervalSet::measure() const {
  Seconds total = 0;
  for (const auto& iv : intervals_) total += iv.length();
  return total;
}

bool IntervalSet::contains(Seconds t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Seconds v, const Interval& iv) { return v < iv.start; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->contains(t);
}

bool IntervalSet::intersects(const IntervalSet& other) const {
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    if (a->overlaps(*b)) return true;
    if (a->end <= b->end)
      ++a;
    else
      ++b;
  }
  return false;
}

std::optional<Seconds> IntervalSet::first() const {
  if (intervals_.empty()) return std::nullopt;
  return intervals_.front().start;
}

std::optional<Seconds> IntervalSet::last_end() const {
  if (intervals_.empty()) return std::nullopt;
  return intervals_.back().end;
}

std::optional<Seconds> IntervalSet::next_at_or_after(Seconds t) const {
  for (const auto& iv : intervals_) {
    if (iv.end <= t) continue;
    return std::max(iv.start, t);
  }
  return std::nullopt;
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  std::vector<Interval> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());
  merged.insert(merged.end(), intervals_.begin(), intervals_.end());
  merged.insert(merged.end(), other.intervals_.begin(),
                other.intervals_.end());
  IntervalSet out;
  out.intervals_ = std::move(merged);
  out.normalize();
  DOSN_DCHECK(out.is_canonical(), "unite postcondition: ", out.to_string());
  return out;
}

void IntervalSet::unite_with(const IntervalSet& other,
                             std::vector<Interval>* scratch) {
  DOSN_REQUIRE(scratch != nullptr, "unite_with: scratch must be non-null");
  if (other.intervals_.empty()) return;
  if (intervals_.empty()) {
    intervals_ = other.intervals_;
    return;
  }
  // Two-pointer merge of two canonical lists; output is built canonical
  // directly (sorted inputs, touching pieces merged), so the result is the
  // unique canonical form — identical to unite().
  scratch->clear();
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  auto emit = [&scratch](const Interval& iv) {
    if (!scratch->empty() && iv.start <= scratch->back().end)
      scratch->back().end = std::max(scratch->back().end, iv.end);
    else
      scratch->push_back(iv);
  };
  while (a != intervals_.end() || b != other.intervals_.end()) {
    if (b == other.intervals_.end() ||
        (a != intervals_.end() && a->start <= b->start))
      emit(*a++);
    else
      emit(*b++);
  }
  intervals_.swap(*scratch);
  DOSN_DCHECK(is_canonical(), "unite_with postcondition: ", to_string());
}

Seconds IntervalSet::subtract_measure(const IntervalSet& other) const {
  // Same sweep as subtract(), summing piece lengths instead of storing them.
  Seconds total = 0;
  auto b = other.intervals_.begin();
  for (const Interval& cur : intervals_) {
    while (b != other.intervals_.end() && b->end <= cur.start) ++b;
    auto bb = b;
    Seconds pos = cur.start;
    while (bb != other.intervals_.end() && bb->start < cur.end) {
      if (bb->start > pos) total += bb->start - pos;
      pos = std::max(pos, bb->end);
      ++bb;
    }
    if (pos < cur.end) total += cur.end - pos;
  }
  return total;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    const Seconds lo = std::max(a->start, b->start);
    const Seconds hi = std::min(a->end, b->end);
    if (lo < hi) out.intervals_.push_back({lo, hi});
    if (a->end <= b->end)
      ++a;
    else
      ++b;
  }
  DOSN_DCHECK(out.is_canonical(),
              "intersect postcondition: ", out.to_string());
  return out;  // already canonical: inputs were sorted/disjoint
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  IntervalSet out;
  auto b = other.intervals_.begin();
  for (Interval cur : intervals_) {
    while (b != other.intervals_.end() && b->end <= cur.start) ++b;
    auto bb = b;
    Seconds pos = cur.start;
    while (bb != other.intervals_.end() && bb->start < cur.end) {
      if (bb->start > pos) out.intervals_.push_back({pos, bb->start});
      pos = std::max(pos, bb->end);
      ++bb;
    }
    if (pos < cur.end) out.intervals_.push_back({pos, cur.end});
  }
  DOSN_DCHECK(out.is_canonical(), "subtract postcondition: ", out.to_string());
  return out;
}

IntervalSet IntervalSet::complement(Seconds lo, Seconds hi) const {
  DOSN_REQUIRE(lo < hi, "complement: empty window");
  return IntervalSet::single(lo, hi).subtract(*this);
}

Seconds IntervalSet::intersection_measure(const IntervalSet& other) const {
  Seconds total = 0;
  auto a = intervals_.begin();
  auto b = other.intervals_.begin();
  while (a != intervals_.end() && b != other.intervals_.end()) {
    const Seconds lo = std::max(a->start, b->start);
    const Seconds hi = std::min(a->end, b->end);
    if (lo < hi) total += hi - lo;
    if (a->end <= b->end)
      ++a;
    else
      ++b;
  }
  return total;
}

Seconds IntervalSet::measure_within(Seconds lo, Seconds hi) const {
  if (lo >= hi) return 0;
  Seconds total = 0;
  for (const auto& iv : intervals_) {
    const Seconds a = std::max(iv.start, lo);
    const Seconds b = std::min(iv.end, hi);
    if (a < b) total += b - a;
  }
  return total;
}

IntervalSet IntervalSet::clip(Seconds lo, Seconds hi) const {
  IntervalSet out;
  if (lo >= hi) return out;
  for (const auto& iv : intervals_) {
    const Seconds a = std::max(iv.start, lo);
    const Seconds b = std::min(iv.end, hi);
    if (a < b) out.intervals_.push_back({a, b});
  }
  return out;
}

IntervalSet IntervalSet::shift(Seconds delta) const {
  IntervalSet out;
  out.intervals_.reserve(intervals_.size());
  for (const auto& iv : intervals_)
    out.intervals_.push_back({iv.start + delta, iv.end + delta});
  return out;
}

bool IntervalSet::is_canonical() const {
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].start >= intervals_[i].end) return false;  // empty piece
    // Strict gap: touching pieces ([a,b) [b,c)) must have been merged.
    if (i > 0 && intervals_[i - 1].end >= intervals_[i].start) return false;
  }
  return true;
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (i) os << ' ';
    os << '[' << intervals_[i].start << ',' << intervals_[i].end << ')';
  }
  os << '}';
  return os.str();
}

void IntervalSet::normalize() {
  if (intervals_.empty()) return;
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  std::vector<Interval> out;
  out.reserve(intervals_.size());
  for (const auto& iv : intervals_) {
    if (!out.empty() && iv.start <= out.back().end)
      out.back().end = std::max(out.back().end, iv.end);
    else
      out.push_back(iv);
  }
  intervals_ = std::move(out);
}

IntervalSet operator|(const IntervalSet& a, const IntervalSet& b) {
  return a.unite(b);
}
IntervalSet operator&(const IntervalSet& a, const IntervalSet& b) {
  return a.intersect(b);
}
IntervalSet operator-(const IntervalSet& a, const IntervalSet& b) {
  return a.subtract(b);
}

}  // namespace dosn::interval
