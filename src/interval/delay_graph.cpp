#include "interval/delay_graph.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace dosn::interval {
namespace {

constexpr Seconds kInf = std::numeric_limits<Seconds>::max() / 4;

}  // namespace

std::optional<Seconds> pair_delay(const DaySchedule& source,
                                  const DaySchedule& target,
                                  RendezvousMode mode) {
  if (source.empty() || target.empty()) return std::nullopt;
  if (mode == RendezvousMode::kDirect) {
    const DaySchedule rendezvous = source.intersect(target);
    if (rendezvous.empty()) return std::nullopt;
    const auto worst = worst_case_wait(source, rendezvous);
    DOSN_ASSERT(worst.has_value());
    return worst->wait;
  }
  const auto worst = worst_case_wait(source, target);
  DOSN_ASSERT(worst.has_value());
  return worst->wait;
}

void IncrementalGroupDelay::push(const DaySchedule& node) {
  const std::size_t slot = pushed_++;
  if (node.empty()) return;

  const std::size_t m = participants_.size();
  // One-hop edges between the existing participants and the new node, both
  // directions (the delay graph is directed).
  edge_to_.assign(m, kInf);
  edge_from_.assign(m, kInf);
  for (std::size_t p = 0; p < m; ++p) {
    if (auto w = pair_delay(participants_[p], node, mode_)) edge_to_[p] = *w;
    if (auto w = pair_delay(node, participants_[p], mode_)) edge_from_[p] = *w;
  }

  // Shortest i -> new and new -> j. A shortest path touches the new node
  // only at its endpoint (weights are nonnegative), so it decomposes into
  // an old-graph shortest path plus one new edge.
  dist_to_.assign(m, kInf);
  dist_from_.assign(m, kInf);
  for (std::size_t i = 0; i < m; ++i) {
    Seconds best = edge_to_[i];
    for (std::size_t j = 0; j < m; ++j) {
      if (at(i, j) == kInf || edge_to_[j] == kInf) continue;
      best = std::min(best, at(i, j) + edge_to_[j]);
    }
    dist_to_[i] = best;
  }
  for (std::size_t j = 0; j < m; ++j) {
    Seconds best = edge_from_[j];
    for (std::size_t p = 0; p < m; ++p) {
      if (edge_from_[p] == kInf || at(p, j) == kInf) continue;
      best = std::min(best, edge_from_[p] + at(p, j));
    }
    dist_from_[j] = best;
  }

  // Relax old pairs through the new node and rebuild the matrix at the
  // larger stride.
  next_.assign((m + 1) * (m + 1), kInf);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      Seconds d = at(i, j);
      if (dist_to_[i] != kInf && dist_from_[j] != kInf)
        d = std::min(d, dist_to_[i] + dist_from_[j]);
      next_[i * (m + 1) + j] = d;
    }
  for (std::size_t i = 0; i < m; ++i) {
    next_[i * (m + 1) + m] = dist_to_[i];
    next_[m * (m + 1) + i] = dist_from_[i];
  }
  next_[m * (m + 1) + m] = 0;

  dist_.swap(next_);
  participants_.push_back(node);
  index_.push_back(slot);
}

void IncrementalGroupDelay::reset(RendezvousMode mode) {
  mode_ = mode;
  pushed_ = 0;
  participants_.clear();
  index_.clear();
  dist_.clear();
}

GroupDelayResult IncrementalGroupDelay::result() const {
  GroupDelayResult result;
  result.participants = index_.size();
  if (index_.size() < 2) return result;

  const std::size_t n = index_.size();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (at(i, j) == kInf) {
        result.fully_connected = false;
        continue;
      }
      if (at(i, j) > result.diameter) {
        result.diameter = at(i, j);
        result.worst_target = index_[j];
      }
    }
  return result;
}

GroupDelayResult group_delay(std::span<const DaySchedule> nodes,
                             RendezvousMode mode) {
  // Participants: nodes that are ever online.
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (!nodes[i].empty()) index.push_back(i);

  GroupDelayResult result;
  result.participants = index.size();
  if (index.size() < 2) return result;

  const std::size_t n = index.size();
  std::vector<Seconds> dist(n * n, kInf);
  auto at = [&](std::size_t i, std::size_t j) -> Seconds& {
    return dist[i * n + j];
  };
  for (std::size_t i = 0; i < n; ++i) {
    at(i, i) = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (auto w = pair_delay(nodes[index[i]], nodes[index[j]], mode))
        at(i, j) = *w;
    }
  }

  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      if (at(i, k) == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (at(k, j) == kInf) continue;
        at(i, j) = std::min(at(i, j), at(i, k) + at(k, j));
      }
    }

  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (at(i, j) == kInf) {
        result.fully_connected = false;
        continue;
      }
      if (at(i, j) > result.diameter) {
        result.diameter = at(i, j);
        result.worst_target = index[j];
      }
    }
  return result;
}

}  // namespace dosn::interval
