#include "interval/delay_graph.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace dosn::interval {
namespace {

constexpr Seconds kInf = std::numeric_limits<Seconds>::max() / 4;

}  // namespace

std::optional<Seconds> pair_delay(const DaySchedule& source,
                                  const DaySchedule& target,
                                  RendezvousMode mode) {
  if (source.empty() || target.empty()) return std::nullopt;
  if (mode == RendezvousMode::kDirect) {
    const DaySchedule rendezvous = source.intersect(target);
    if (rendezvous.empty()) return std::nullopt;
    const auto worst = worst_case_wait(source, rendezvous);
    DOSN_ASSERT(worst.has_value());
    return worst->wait;
  }
  const auto worst = worst_case_wait(source, target);
  DOSN_ASSERT(worst.has_value());
  return worst->wait;
}

GroupDelayResult group_delay(std::span<const DaySchedule> nodes,
                             RendezvousMode mode) {
  // Participants: nodes that are ever online.
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (!nodes[i].empty()) index.push_back(i);

  GroupDelayResult result;
  result.participants = index.size();
  if (index.size() < 2) return result;

  const std::size_t n = index.size();
  std::vector<Seconds> dist(n * n, kInf);
  auto at = [&](std::size_t i, std::size_t j) -> Seconds& {
    return dist[i * n + j];
  };
  for (std::size_t i = 0; i < n; ++i) {
    at(i, i) = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (auto w = pair_delay(nodes[index[i]], nodes[index[j]], mode))
        at(i, j) = *w;
    }
  }

  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      if (at(i, k) == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (at(k, j) == kInf) continue;
        at(i, j) = std::min(at(i, j), at(i, k) + at(k, j));
      }
    }

  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (at(i, j) == kInf) {
        result.fully_connected = false;
        continue;
      }
      if (at(i, j) > result.diameter) {
        result.diameter = at(i, j);
        result.worst_target = index[j];
      }
    }
  return result;
}

}  // namespace dosn::interval
