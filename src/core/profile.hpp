// The profile data model of the decentralized OSN.
//
// A Profile is the unit that gets replicated: the owner's "wall" — an
// append-only set of posts, each identified by (author, per-author sequence
// number). Replicas merge by set union; the merge is commutative,
// associative and idempotent, so any gossip order converges (eventual
// consistency, the guarantee the paper deems adequate). A version vector
// summarizes which post ids a replica holds so that a sync transfers only
// the difference.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/version_vector.hpp"
#include "interval/interval_set.hpp"

namespace dosn::core {

using interval::Seconds;

/// Globally unique post identity.
struct PostId {
  UserId author = 0;
  SeqNo seq = 0;

  friend auto operator<=>(const PostId&, const PostId&) = default;
};

/// Access level of a post (Sec II-B2: "semi-private part of a user's
/// profile is configured to be accessible only by the 1-hop friends").
enum class Visibility : std::uint8_t {
  kPublic = 0,       ///< anyone who can reach a replica
  kFriendsOnly = 1,  ///< the owner's 1-hop friends (and the owner)
};

struct Post {
  PostId id;
  Seconds timestamp = 0;  ///< creation time (absolute seconds)
  std::string body;
  Visibility visibility = Visibility::kFriendsOnly;

  friend bool operator==(const Post&, const Post&) = default;
};

/// One replica's view of one user's profile.
class Profile {
 public:
  Profile() = default;
  explicit Profile(UserId owner) : owner_(owner) {}

  UserId owner() const { return owner_; }
  const VersionVector& version() const { return version_; }

  /// Posts ordered by (timestamp, id) — the wall in display order.
  const std::vector<Post>& posts() const { return posts_; }
  std::size_t size() const { return posts_.size(); }

  bool contains(const PostId& id) const;
  std::optional<Post> find(const PostId& id) const;

  /// Creates a new post by `author`, assigning the next sequence number
  /// this replica has seen from that author. Callers that own the author's
  /// identity (the author's own client) get globally unique ids; tests use
  /// insert() to inject concurrent histories.
  const Post& append(UserId author, Seconds timestamp, std::string body);

  /// Inserts a fully formed post (e.g. received from a peer); duplicate
  /// ids are ignored. Returns true when the post was new.
  bool insert(Post post);

  /// Set-union merge; returns the number of posts newly learned.
  std::size_t merge(const Profile& other);

  /// Posts the peer summarized by `have` is missing — the sync payload.
  std::vector<Post> missing_for(const VersionVector& have) const;

  /// The wall as `viewer` may see it: the owner and friends see
  /// everything, strangers only public posts. Replicas enforce this at
  /// read time — hosting a profile does not widen the audience.
  std::vector<Post> wall_for(UserId viewer, bool viewer_is_friend) const;

  friend bool operator==(const Profile&, const Profile&) = default;

 private:
  static bool display_less(const Post& a, const Post& b) {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.id < b.id;
  }

  UserId owner_ = 0;
  std::vector<Post> posts_;    // sorted by display_less
  std::vector<PostId> ids_;    // sorted; lookup index for contains()
  VersionVector version_;
};

}  // namespace dosn::core
