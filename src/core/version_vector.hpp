// Version vectors for eventually consistent profile replication.
//
// The paper argues eventual consistency suffices for decentralized OSNs
// (Sec II-B1). Replicas exchange whole profiles; a version vector — the
// per-author maximum sequence number a replica has seen — summarizes a
// replica's state, decides whether one state dominates another, and lets a
// sync ship only the missing suffix per author.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "graph/social_graph.hpp"

namespace dosn::core {

using graph::UserId;
using SeqNo = std::uint64_t;

enum class Ordering { kEqual, kBefore, kAfter, kConcurrent };

class VersionVector {
 public:
  /// Highest sequence number seen from `author`; 0 = none.
  SeqNo seq_of(UserId author) const;

  /// Records that the sequence numbers of `author` up to `seq` are known.
  /// Monotone: lowering is a no-op.
  void advance(UserId author, SeqNo seq);

  /// Pointwise maximum.
  void merge(const VersionVector& other);

  /// True iff every entry of `other` is <= the matching entry here.
  bool includes(const VersionVector& other) const;

  Ordering compare(const VersionVector& other) const;

  bool empty() const { return clock_.empty(); }
  std::size_t authors() const { return clock_.size(); }
  const std::map<UserId, SeqNo>& entries() const { return clock_; }

  friend bool operator==(const VersionVector&, const VersionVector&) = default;

  std::string to_string() const;

 private:
  std::map<UserId, SeqNo> clock_;  // absent == 0
};

}  // namespace dosn::core
