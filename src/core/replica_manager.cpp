#include "core/replica_manager.hpp"

#include <algorithm>
#include <numeric>

namespace dosn::core {

double ReplicaAssignment::average_replication_degree() const {
  if (replicas.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& r : replicas) total += r.size();
  return static_cast<double>(total) / static_cast<double>(replicas.size());
}

ReplicaAssignment assign_replicas(const trace::Dataset& dataset,
                                  std::span<const DaySchedule> schedules,
                                  const AssignmentConfig& config,
                                  util::Rng& rng,
                                  std::span<const graph::UserId> cohort) {
  DOSN_REQUIRE(schedules.size() == dataset.num_users(),
               "assign_replicas: schedule count mismatch");
  const auto policy = placement::make_policy(config.policy, config.params);

  ReplicaAssignment out;
  if (cohort.empty()) {
    out.users.resize(dataset.num_users());
    std::iota(out.users.begin(), out.users.end(), 0);
  } else {
    out.users.assign(cohort.begin(), cohort.end());
  }
  out.replicas.reserve(out.users.size());
  out.host_load.assign(dataset.num_users(), 0);

  std::vector<graph::UserId> capped_pool;
  for (graph::UserId u : out.users) {
    placement::PlacementContext context;
    context.user = u;
    const auto contacts = dataset.graph.contacts(u);
    if (config.load_cap > 0) {
      capped_pool.clear();
      for (graph::UserId host : contacts)
        if (out.host_load[host] < config.load_cap)
          capped_pool.push_back(host);
      context.candidates = capped_pool;
    } else {
      context.candidates = contacts;
    }
    context.schedules = schedules;
    context.trace = &dataset.trace;
    context.connectivity = config.connectivity;
    context.max_replicas = config.max_replicas;
    auto selected = policy->select(context, rng);
    for (graph::UserId host : selected) ++out.host_load[host];
    out.replicas.push_back(std::move(selected));
  }
  return out;
}

LoadStats load_stats(std::span<const std::size_t> host_load) {
  LoadStats s;
  if (host_load.empty()) return s;
  const double n = static_cast<double>(host_load.size());
  double total = 0.0;
  for (std::size_t x : host_load) {
    total += static_cast<double>(x);
    s.max = std::max(s.max, x);
  }
  s.mean = total / n;
  if (total == 0.0) return s;

  // Gini via the sorted-rank formula.
  std::vector<std::size_t> sorted(host_load.begin(), host_load.end());
  std::sort(sorted.begin(), sorted.end());
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i)
    weighted += static_cast<double>(2 * (i + 1)) *
                static_cast<double>(sorted[i]);
  s.gini = (weighted - (n + 1.0) * total) / (n * total);
  return s;
}

}  // namespace dosn::core
