#include "core/version_vector.hpp"

#include <sstream>

namespace dosn::core {

SeqNo VersionVector::seq_of(UserId author) const {
  auto it = clock_.find(author);
  return it == clock_.end() ? 0 : it->second;
}

void VersionVector::advance(UserId author, SeqNo seq) {
  if (seq == 0) return;
  auto& slot = clock_[author];
  if (seq > slot) slot = seq;
}

void VersionVector::merge(const VersionVector& other) {
  for (const auto& [author, seq] : other.clock_) advance(author, seq);
}

bool VersionVector::includes(const VersionVector& other) const {
  for (const auto& [author, seq] : other.clock_)
    if (seq_of(author) < seq) return false;
  return true;
}

Ordering VersionVector::compare(const VersionVector& other) const {
  const bool ge = includes(other);
  const bool le = other.includes(*this);
  if (ge && le) return Ordering::kEqual;
  if (ge) return Ordering::kAfter;
  if (le) return Ordering::kBefore;
  return Ordering::kConcurrent;
}

std::string VersionVector::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [author, seq] : clock_) {
    if (!first) os << ' ';
    os << author << ':' << seq;
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace dosn::core
