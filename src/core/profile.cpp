#include "core/profile.hpp"

#include <algorithm>

namespace dosn::core {

bool Profile::contains(const PostId& id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

std::optional<Post> Profile::find(const PostId& id) const {
  auto it = std::find_if(posts_.begin(), posts_.end(),
                         [&](const Post& p) { return p.id == id; });
  if (it == posts_.end()) return std::nullopt;
  return *it;
}

const Post& Profile::append(UserId author, Seconds timestamp,
                            std::string body) {
  Post post;
  post.id = PostId{author, version_.seq_of(author) + 1};
  post.timestamp = timestamp;
  post.body = std::move(body);
  const bool inserted = insert(std::move(post));
  DOSN_ASSERT(inserted);
  // insert keeps display order; find the post again for a stable reference.
  const PostId id{author, version_.seq_of(author)};
  auto it = std::find_if(posts_.begin(), posts_.end(),
                         [&](const Post& p) { return p.id == id; });
  DOSN_ASSERT(it != posts_.end());
  return *it;
}

bool Profile::insert(Post post) {
  DOSN_REQUIRE(post.id.seq > 0, "Profile: post sequence numbers start at 1");
  if (contains(post.id)) return false;
  const PostId id = post.id;
  auto it = std::lower_bound(posts_.begin(), posts_.end(), post, display_less);
  posts_.insert(it, std::move(post));
  ids_.insert(std::lower_bound(ids_.begin(), ids_.end(), id), id);
  version_.advance(id.author, id.seq);
  return true;
}

std::size_t Profile::merge(const Profile& other) {
  std::size_t learned = 0;
  for (const auto& post : other.posts_)
    if (insert(post)) ++learned;
  return learned;
}

std::vector<Post> Profile::wall_for(UserId viewer,
                                    bool viewer_is_friend) const {
  if (viewer == owner_ || viewer_is_friend) return posts_;
  std::vector<Post> out;
  for (const auto& post : posts_)
    if (post.visibility == Visibility::kPublic) out.push_back(post);
  return out;
}

std::vector<Post> Profile::missing_for(const VersionVector& have) const {
  std::vector<Post> out;
  for (const auto& post : posts_)
    if (post.id.seq > have.seq_of(post.id.author)) out.push_back(post);
  return out;
}

}  // namespace dosn::core
