// Replica assignment across a whole network.
//
// Applies one placement policy to every user (or a cohort) of a dataset and
// records who hosts whom. Besides feeding the study driver, it exposes the
// storage-fairness view the paper's requirements discuss (Sec II-B1): how
// evenly hosting load spreads across nodes.
#pragma once

#include <span>
#include <vector>

#include "interval/day_schedule.hpp"
#include "placement/policy.hpp"
#include "trace/dataset.hpp"

namespace dosn::core {

using interval::DaySchedule;

struct AssignmentConfig {
  placement::PolicyKind policy = placement::PolicyKind::kMaxAv;
  placement::PolicyParams params;
  placement::Connectivity connectivity = placement::Connectivity::kConRep;
  /// Replication degree k: max friend replicas per profile.
  std::size_t max_replicas = 0;
  /// Fairness cap (extension, Sec II-B1 "balancing the storage and
  /// communication overhead"): when > 0, a node already hosting this many
  /// profiles is removed from later users' candidate pools. Users are
  /// processed in cohort order, so the cap is a sequential admission rule.
  std::size_t load_cap = 0;
};

struct ReplicaAssignment {
  /// replicas[i] = selection-ordered replica holders of users[i]'s profile.
  std::vector<graph::UserId> users;
  std::vector<std::vector<graph::UserId>> replicas;
  /// host_load[u] = number of foreign profiles user u hosts (whole-network
  /// view; counts only placements made in this assignment).
  std::vector<std::size_t> host_load;

  /// Mean realized replication degree (ConRep may place fewer than k).
  double average_replication_degree() const;
};

/// Runs the policy for each user in `cohort` (all users when empty).
/// `schedules` indexes every user in the dataset.
ReplicaAssignment assign_replicas(const trace::Dataset& dataset,
                                  std::span<const DaySchedule> schedules,
                                  const AssignmentConfig& config,
                                  util::Rng& rng,
                                  std::span<const graph::UserId> cohort = {});

/// Hosting-load fairness across the nodes that host at least one profile
/// plus the nodes that host none but were candidates.
struct LoadStats {
  double mean = 0.0;
  std::size_t max = 0;
  /// Gini coefficient in [0, 1]: 0 = perfectly even hosting load.
  double gini = 0.0;
};

LoadStats load_stats(std::span<const std::size_t> host_load);

}  // namespace dosn::core
