#include "graph/analysis.hpp"

#include <algorithm>
#include <cmath>

namespace dosn::graph {
namespace {

/// Neighbour view that works for both kinds: union of in and out is not
/// needed — for components and clustering we treat directed edges as
/// undirected by scanning both adjacency directions.
template <typename Visit>
void for_each_undirected_neighbor(const SocialGraph& g, UserId u,
                                  Visit&& visit) {
  for (UserId v : g.out_neighbors(u)) visit(v);
  if (g.kind() == GraphKind::kDirected)
    for (UserId v : g.in_neighbors(u)) visit(v);
}

}  // namespace

std::vector<std::uint32_t> connected_components(const SocialGraph& g) {
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> component(g.num_users(), kUnvisited);
  std::uint32_t next = 0;
  std::vector<UserId> stack;
  for (UserId start = 0; start < g.num_users(); ++start) {
    if (component[start] != kUnvisited) continue;
    component[start] = next;
    stack.push_back(start);
    while (!stack.empty()) {
      const UserId u = stack.back();
      stack.pop_back();
      for_each_undirected_neighbor(g, u, [&](UserId v) {
        if (component[v] == kUnvisited) {
          component[v] = next;
          stack.push_back(v);
        }
      });
    }
    ++next;
  }
  return component;
}

std::size_t largest_component_size(const SocialGraph& g) {
  if (g.num_users() == 0) return 0;
  const auto component = connected_components(g);
  std::vector<std::size_t> sizes;
  for (std::uint32_t c : component) {
    if (c >= sizes.size()) sizes.resize(c + 1, 0);
    ++sizes[c];
  }
  return *std::max_element(sizes.begin(), sizes.end());
}

double sample_clustering_coefficient(const SocialGraph& g,
                                     std::size_t samples, util::Rng& rng) {
  std::vector<UserId> eligible;
  for (UserId u = 0; u < g.num_users(); ++u)
    if (g.contacts(u).size() >= 2) eligible.push_back(u);
  if (eligible.empty()) return 0.0;

  std::vector<UserId> chosen;
  if (samples >= eligible.size()) {
    chosen = eligible;
  } else {
    for (auto idx : rng.sample_indices(eligible.size(), samples))
      chosen.push_back(eligible[idx]);
  }

  double total = 0.0;
  for (UserId u : chosen) {
    const auto nbrs = g.contacts(u);
    std::size_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        if (g.has_edge(nbrs[i], nbrs[j]) || g.has_edge(nbrs[j], nbrs[i]))
          ++closed;
    const double pairs =
        static_cast<double>(nbrs.size()) *
        static_cast<double>(nbrs.size() - 1) / 2.0;
    total += static_cast<double>(closed) / pairs;
  }
  return total / static_cast<double>(chosen.size());
}

double degree_assortativity(const SocialGraph& g) {
  // Pearson correlation of (deg(u), deg(v)) over undirected edge
  // instances, counted once per direction for symmetry.
  double n = 0, sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (UserId u = 0; u < g.num_users(); ++u) {
    const double du = static_cast<double>(g.degree(u));
    for (UserId v : g.out_neighbors(u)) {
      const double dv = static_cast<double>(g.degree(v));
      n += 1;
      sx += du;
      sy += dv;
      sxx += du * du;
      syy += dv * dv;
      sxy += du * dv;
    }
  }
  if (n == 0) return 0.0;
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace dosn::graph
