#include "graph/social_graph.hpp"

#include <algorithm>

namespace dosn::graph {
namespace {

// Builds CSR arrays from an edge list interpreted as (src -> dst).
void build_csr(std::size_t n, std::span<const std::pair<UserId, UserId>> edges,
               std::vector<std::size_t>& offsets, std::vector<UserId>& adj) {
  offsets.assign(n + 1, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    ++offsets[src + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  adj.resize(edges.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [src, dst] : edges) adj[cursor[src]++] = dst;
  for (std::size_t u = 0; u < n; ++u)
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(offsets[u]),
              adj.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]));
}

}  // namespace

SocialGraphBuilder::SocialGraphBuilder(GraphKind kind, std::size_t num_users)
    : kind_(kind), num_users_(num_users) {}

void SocialGraphBuilder::add_edge(UserId u, UserId v) {
  DOSN_REQUIRE(u < num_users_ && v < num_users_,
               "add_edge: user id out of range");
  if (u == v) return;  // self-loops carry no information here
  if (kind_ == GraphKind::kUndirected && u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

SocialGraph SocialGraphBuilder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  SocialGraph g;
  g.kind_ = kind_;
  g.num_edges_ = edges_.size();

  if (kind_ == GraphKind::kUndirected) {
    // Materialize both directions into the single CSR.
    std::vector<std::pair<UserId, UserId>> both;
    both.reserve(edges_.size() * 2);
    for (const auto& [u, v] : edges_) {
      both.emplace_back(u, v);
      both.emplace_back(v, u);
    }
    build_csr(num_users_, both, g.offsets_out_, g.adj_out_);
  } else {
    build_csr(num_users_, edges_, g.offsets_out_, g.adj_out_);
    std::vector<std::pair<UserId, UserId>> reversed;
    reversed.reserve(edges_.size());
    for (const auto& [u, v] : edges_) reversed.emplace_back(v, u);
    build_csr(num_users_, reversed, g.offsets_in_, g.adj_in_);
  }
  return g;
}

double SocialGraph::average_degree() const {
  if (num_users() == 0) return 0.0;
  std::size_t total = 0;
  for (UserId u = 0; u < num_users(); ++u) total += degree(u);
  return static_cast<double>(total) / static_cast<double>(num_users());
}

bool SocialGraph::has_edge(UserId u, UserId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

SocialGraph SocialGraph::induced(const std::vector<bool>& keep,
                                 std::vector<UserId>* old_of_new) const {
  DOSN_REQUIRE(keep.size() == num_users(), "induced: mask size mismatch");
  std::vector<UserId> new_of_old(num_users(), 0);
  std::vector<UserId> old_ids;
  for (UserId u = 0; u < num_users(); ++u) {
    if (keep[u]) {
      new_of_old[u] = static_cast<UserId>(old_ids.size());
      old_ids.push_back(u);
    }
  }

  SocialGraphBuilder builder(kind_, old_ids.size());
  for (UserId u : old_ids) {
    for (UserId v : out_neighbors(u)) {
      if (!keep[v]) continue;
      builder.add_edge(new_of_old[u], new_of_old[v]);
    }
  }
  if (old_of_new) *old_of_new = std::move(old_ids);
  return std::move(builder).build();
}

}  // namespace dosn::graph
