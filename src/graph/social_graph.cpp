#include "graph/social_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dosn::graph {
namespace {

// One-sided CSR contract shared by the out- and in-adjacency of a graph.
void validate_csr(std::size_t n, const std::vector<std::size_t>& offsets,
                  const std::vector<UserId>& adj, const char* which) {
  DOSN_CHECK(offsets.size() == n + 1, which, ": offsets size ",
             offsets.size(), " != num_users + 1 = ", n + 1);
  DOSN_CHECK(offsets.front() == 0, which, ": offsets must start at 0");
  DOSN_CHECK(offsets.back() == adj.size(), which, ": offsets end ",
             offsets.back(), " != adjacency size ", adj.size());
  for (std::size_t u = 0; u < n; ++u) {
    DOSN_CHECK(offsets[u] <= offsets[u + 1], which,
               ": offsets not monotone at user ", u);
    for (std::size_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      DOSN_CHECK(adj[e] < n, which, ": edge target ", adj[e],
                 " out of range [0, ", n, ") at user ", u);
      DOSN_DCHECK(e == offsets[u] || adj[e - 1] < adj[e], which,
                  ": adjacency row of user ", u,
                  " not sorted/duplicate-free");
    }
  }
}

// Builds CSR arrays from an edge list interpreted as (src -> dst).
void build_csr(std::size_t n, std::span<const std::pair<UserId, UserId>> edges,
               std::vector<std::size_t>& offsets, std::vector<UserId>& adj) {
  offsets.assign(n + 1, 0);
  for (const auto& [src, dst] : edges) {
    (void)dst;
    ++offsets[src + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
  adj.resize(edges.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [src, dst] : edges) adj[cursor[src]++] = dst;
  for (std::size_t u = 0; u < n; ++u)
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(offsets[u]),
              adj.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]));
}

}  // namespace

SocialGraphBuilder::SocialGraphBuilder(GraphKind kind, std::size_t num_users)
    : kind_(kind), num_users_(num_users) {}

void SocialGraphBuilder::add_edge(UserId u, UserId v) {
  DOSN_CHECK(u < num_users_ && v < num_users_, "add_edge: edge (", u, ", ", v,
             ") out of range [0, ", num_users_, ")");
  if (u == v) return;  // self-loops carry no information here
  if (kind_ == GraphKind::kUndirected && u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

SocialGraph SocialGraphBuilder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  SocialGraph g;
  g.kind_ = kind_;
  g.num_edges_ = edges_.size();

  if (kind_ == GraphKind::kUndirected) {
    // Materialize both directions into the single CSR.
    std::vector<std::pair<UserId, UserId>> both;
    both.reserve(edges_.size() * 2);
    for (const auto& [u, v] : edges_) {
      both.emplace_back(u, v);
      both.emplace_back(v, u);
    }
    build_csr(num_users_, both, g.offsets_out_, g.adj_out_);
  } else {
    build_csr(num_users_, edges_, g.offsets_out_, g.adj_out_);
    std::vector<std::pair<UserId, UserId>> reversed;
    reversed.reserve(edges_.size());
    for (const auto& [u, v] : edges_) reversed.emplace_back(v, u);
    build_csr(num_users_, reversed, g.offsets_in_, g.adj_in_);
  }
  g.validate();
  return g;
}

SocialGraph SocialGraph::from_csr(GraphKind kind,
                                  std::vector<std::size_t> offsets,
                                  std::vector<UserId> adj,
                                  std::vector<std::size_t> offsets_in,
                                  std::vector<UserId> adj_in) {
  DOSN_CHECK(kind == GraphKind::kDirected || offsets_in.empty(),
             "from_csr: undirected graphs carry no transposed CSR");
  DOSN_CHECK(kind == GraphKind::kUndirected || !offsets_in.empty(),
             "from_csr: directed graphs need both adjacency directions");
  SocialGraph g;
  g.kind_ = kind;
  g.offsets_out_ = std::move(offsets);
  g.adj_out_ = std::move(adj);
  g.offsets_in_ = std::move(offsets_in);
  g.adj_in_ = std::move(adj_in);
  // Undirected CSRs store each edge twice; directed ones once per direction.
  g.num_edges_ = kind == GraphKind::kUndirected ? g.adj_out_.size() / 2
                                                : g.adj_out_.size();
  g.validate();
  return g;
}

void SocialGraph::validate() const {
  const std::size_t n = num_users();
  if (n == 0) {
    DOSN_CHECK(adj_out_.empty() && adj_in_.empty(),
               "SocialGraph: empty graph with dangling adjacency");
    return;
  }
  validate_csr(n, offsets_out_, adj_out_, "SocialGraph(out)");
  if (kind_ == GraphKind::kDirected) {
    validate_csr(n, offsets_in_, adj_in_, "SocialGraph(in)");
    DOSN_CHECK(adj_in_.size() == adj_out_.size(),
               "SocialGraph: transposed CSR edge count ", adj_in_.size(),
               " != forward edge count ", adj_out_.size());
  } else {
    DOSN_CHECK(offsets_in_.empty() && adj_in_.empty(),
               "SocialGraph: undirected graph with transposed CSR");
  }
}

double SocialGraph::average_degree() const {
  if (num_users() == 0) return 0.0;
  std::size_t total = 0;
  for (UserId u = 0; u < num_users(); ++u) total += degree(u);
  return static_cast<double>(total) / static_cast<double>(num_users());
}

bool SocialGraph::has_edge(UserId u, UserId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

SocialGraph SocialGraph::induced(const std::vector<bool>& keep,
                                 std::vector<UserId>* old_of_new) const {
  DOSN_REQUIRE(keep.size() == num_users(), "induced: mask size mismatch");
  std::vector<UserId> new_of_old(num_users(), 0);
  std::vector<UserId> old_ids;
  for (UserId u = 0; u < num_users(); ++u) {
    if (keep[u]) {
      new_of_old[u] = static_cast<UserId>(old_ids.size());
      old_ids.push_back(u);
    }
  }

  SocialGraphBuilder builder(kind_, old_ids.size());
  for (UserId u : old_ids) {
    for (UserId v : out_neighbors(u)) {
      if (!keep[v]) continue;
      builder.add_edge(new_of_old[u], new_of_old[v]);
    }
  }
  if (old_of_new) *old_of_new = std::move(old_ids);
  return std::move(builder).build();
}

}  // namespace dosn::graph
