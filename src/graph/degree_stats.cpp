#include "graph/degree_stats.hpp"

#include <algorithm>

namespace dosn::graph {

std::vector<std::size_t> degree_histogram(const SocialGraph& g) {
  std::size_t max_degree = 0;
  for (UserId u = 0; u < g.num_users(); ++u)
    max_degree = std::max(max_degree, g.degree(u));
  std::vector<std::size_t> counts(max_degree + 1, 0);
  for (UserId u = 0; u < g.num_users(); ++u) ++counts[g.degree(u)];
  return counts;
}

std::vector<UserId> users_with_degree(const SocialGraph& g, std::size_t d) {
  return users_with_degree_between(g, d, d);
}

std::vector<UserId> users_with_degree_between(const SocialGraph& g,
                                              std::size_t lo, std::size_t hi) {
  DOSN_REQUIRE(lo <= hi, "users_with_degree_between: lo > hi");
  std::vector<UserId> out;
  for (UserId u = 0; u < g.num_users(); ++u) {
    const std::size_t d = g.degree(u);
    if (d >= lo && d <= hi) out.push_back(u);
  }
  return out;
}

std::size_t most_populated_degree(const SocialGraph& g, std::size_t lo,
                                  std::size_t hi) {
  DOSN_REQUIRE(lo <= hi, "most_populated_degree: lo > hi");
  const auto hist = degree_histogram(g);
  std::size_t best_degree = lo;
  std::size_t best_count = 0;
  for (std::size_t d = lo; d <= hi && d < hist.size(); ++d) {
    if (hist[d] > best_count) {
      best_count = hist[d];
      best_degree = d;
    }
  }
  return best_degree;
}

}  // namespace dosn::graph
