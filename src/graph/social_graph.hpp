// Compressed-sparse-row social graphs.
//
// The study runs over two graph shapes: an undirected friendship graph
// (Facebook) and a directed follow graph (Twitter). The key abstraction the
// replica-placement layer consumes is `contacts(u)` — the set of nodes
// eligible to host u's profile replica: friends in the undirected case,
// followers (in-neighbours) in the directed case, exactly as chosen by the
// paper ("in a decentralized Twitter, we replicate a user's profile on his
// followers"). `degree(u) = |contacts(u)|` is the paper's "user degree".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace dosn::graph {

using UserId = std::uint32_t;

enum class GraphKind {
  kUndirected,  ///< friendship graph (Facebook)
  kDirected,    ///< follow graph (Twitter); edge u->v means "u follows v"
};

class SocialGraph;

/// Accumulates edges, then produces a canonical CSR graph (sorted
/// adjacency, self-loops dropped, duplicate edges collapsed).
class SocialGraphBuilder {
 public:
  SocialGraphBuilder(GraphKind kind, std::size_t num_users);

  /// Undirected: connects u and v. Directed: records "u follows v".
  void add_edge(UserId u, UserId v);

  std::size_t num_users() const { return num_users_; }

  SocialGraph build() &&;

 private:
  GraphKind kind_;
  std::size_t num_users_;
  std::vector<std::pair<UserId, UserId>> edges_;
};

/// Immutable CSR social graph.
class SocialGraph {
 public:
  /// The empty graph (no users, no edges).
  SocialGraph() = default;

  /// Adopts prebuilt CSR arrays (e.g. from a preprocessed on-disk graph).
  /// `offsets` has num_users + 1 entries; for directed graphs the
  /// transposed CSR must be supplied as well. The arrays are validated
  /// against the full CSR contract (see validate()) before adoption.
  static SocialGraph from_csr(GraphKind kind, std::vector<std::size_t> offsets,
                              std::vector<UserId> adj,
                              std::vector<std::size_t> offsets_in = {},
                              std::vector<UserId> adj_in = {});

  GraphKind kind() const { return kind_; }
  std::size_t num_users() const {
    return offsets_out_.empty() ? 0 : offsets_out_.size() - 1;
  }

  /// Unique edges (undirected: unordered pairs; directed: ordered pairs).
  std::size_t num_edges() const { return num_edges_; }

  /// Undirected: friends of u. Directed: users u follows (followees).
  std::span<const UserId> out_neighbors(UserId u) const {
    return slice(offsets_out_, adj_out_, u);
  }

  /// Undirected: friends of u (same as out). Directed: followers of u.
  std::span<const UserId> in_neighbors(UserId u) const {
    if (kind_ == GraphKind::kUndirected) return out_neighbors(u);
    return slice(offsets_in_, adj_in_, u);
  }

  /// Replica-candidate set for u's profile (friends resp. followers).
  std::span<const UserId> contacts(UserId u) const { return in_neighbors(u); }

  /// The paper's "user degree": |contacts(u)|.
  std::size_t degree(UserId u) const { return contacts(u).size(); }

  /// Mean of degree(u) over all users.
  double average_degree() const;

  /// Undirected: is {u, v} an edge? Directed: does u follow v?
  bool has_edge(UserId u, UserId v) const;

  /// Subgraph induced by users with keep[u] == true. Surviving users are
  /// renumbered densely in increasing old-id order; `old_of_new` receives
  /// the reverse mapping.
  SocialGraph induced(const std::vector<bool>& keep,
                      std::vector<UserId>* old_of_new = nullptr) const;

  /// Enforces the structural CSR contract with DOSN_CHECK: offsets start at
  /// 0, end at adj.size() and are monotone; every edge target is a valid
  /// user id; every adjacency row is sorted and duplicate-free. Called by
  /// the builder and from_csr; cheap enough to rerun after deserialization.
  void validate() const;

 private:
  friend class SocialGraphBuilder;

  static std::span<const UserId> slice(const std::vector<std::size_t>& offsets,
                                       const std::vector<UserId>& adj,
                                       UserId u) {
    DOSN_ASSERT(static_cast<std::size_t>(u) + 1 < offsets.size());
    return {adj.data() + offsets[u], offsets[u + 1] - offsets[u]};
  }

  GraphKind kind_ = GraphKind::kUndirected;
  std::size_t num_edges_ = 0;
  std::vector<std::size_t> offsets_out_;
  std::vector<UserId> adj_out_;
  // Directed graphs carry a second CSR for the transposed adjacency;
  // undirected graphs leave these empty and alias out.
  std::vector<std::size_t> offsets_in_;
  std::vector<UserId> adj_in_;
};

}  // namespace dosn::graph
