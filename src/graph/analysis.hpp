// Structural graph analytics used to characterize datasets (and to check
// that the synthetic stand-ins look like social networks): connectivity,
// clustering, and degree assortativity.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/social_graph.hpp"
#include "util/rng.hpp"

namespace dosn::graph {

/// Weakly connected component id per user (directed edges are treated as
/// undirected); ids are dense, assigned in discovery order.
std::vector<std::uint32_t> connected_components(const SocialGraph& g);

/// Number of users in the largest (weakly) connected component.
std::size_t largest_component_size(const SocialGraph& g);

/// Average local clustering coefficient over `samples` uniformly drawn
/// users with degree >= 2 (0 when none exist). Sampling keeps hub-heavy
/// graphs tractable; pass samples >= num_users for the exact average.
double sample_clustering_coefficient(const SocialGraph& g,
                                     std::size_t samples, util::Rng& rng);

/// Pearson correlation of endpoint degrees over all edges (degree
/// assortativity); 0 when degenerate. Social graphs are typically
/// assortative (> 0), web graphs disassortative.
double degree_assortativity(const SocialGraph& g);

}  // namespace dosn::graph
