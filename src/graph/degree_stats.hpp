// Degree statistics — Figure 2 of the paper (user degree distribution).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/social_graph.hpp"

namespace dosn::graph {

/// counts[d] = number of users with degree exactly d (contacts view).
std::vector<std::size_t> degree_histogram(const SocialGraph& g);

/// Ids of all users with degree exactly `d` — the paper's evaluation cohort
/// (it reports averages over the users of degree 10).
std::vector<UserId> users_with_degree(const SocialGraph& g, std::size_t d);

/// Ids of all users with degree in [lo, hi] inclusive.
std::vector<UserId> users_with_degree_between(const SocialGraph& g,
                                              std::size_t lo, std::size_t hi);

/// The degree with the most users within [lo, hi]; used by tooling to pick
/// a well-populated cohort the way the paper picked degree 10.
std::size_t most_populated_degree(const SocialGraph& g, std::size_t lo,
                                  std::size_t hi);

}  // namespace dosn::graph
