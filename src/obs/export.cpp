#include "obs/export.hpp"

#include "util/strings.hpp"
#include "util/table.hpp"

namespace dosn::obs {
namespace {

void append_span(util::JsonWriter& w, const SpanSample& span) {
  w.begin_object();
  w.field("name", span.name);
  w.field("calls", span.calls);
  w.field("total_ns", span.total_ns);
  w.key("children");
  w.begin_array();
  for (const SpanSample& child : span.children) append_span(w, child);
  w.end_array();
  w.end_object();
}

void render_spans(const SpanSample& span, int depth, util::TextTable& table) {
  table.add_row({std::string(static_cast<std::size_t>(2 * depth), ' ') +
                     span.name,
                 std::to_string(span.calls),
                 util::format("%.3f", static_cast<double>(span.total_ns) /
                                          1e6)});
  for (const SpanSample& child : span.children)
    render_spans(child, depth + 1, table);
}

}  // namespace

void append_json(util::JsonWriter& w, const Snapshot& snap) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const CounterSample& c : snap.counters) w.field(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const GaugeSample& g : snap.gauges) w.field(g.name, g.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const HistogramSample& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      w.begin_object();
      w.key("le");
      if (i < h.bounds.size()) {
        w.value(h.bounds[i]);
      } else {
        w.value("+inf");
      }
      w.field("count", h.buckets[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("spans");
  w.begin_array();
  for (const SpanSample& span : snap.spans) append_span(w, span);
  w.end_array();
  w.end_object();
}

std::string to_json(const Snapshot& snap) {
  util::JsonWriter w;
  append_json(w, snap);
  return w.str();
}

std::string to_table(const Snapshot& snap) {
  std::string out;
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    util::TextTable table({"metric", "value"});
    for (const CounterSample& c : snap.counters)
      table.add_row({c.name, std::to_string(c.value)});
    for (const GaugeSample& g : snap.gauges)
      table.add_row({g.name + " (gauge)", std::to_string(g.value)});
    out += table.render();
  }
  for (const HistogramSample& h : snap.histograms) {
    util::TextTable table({h.name, "le", "count"});
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      table.add_row({"", i < h.bounds.size()
                             ? std::to_string(h.bounds[i])
                             : std::string("+inf"),
                     std::to_string(h.buckets[i])});
    table.add_row({"", "total", std::to_string(h.count)});
    out += table.render();
  }
  if (!snap.spans.empty()) {
    util::TextTable table({"span", "calls", "total_ms"});
    for (const SpanSample& span : snap.spans) render_spans(span, 0, table);
    out += table.render();
  }
  return out;
}

}  // namespace dosn::obs
