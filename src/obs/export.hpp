// Snapshot exporters: JSON (machine-readable, embedded into BENCH_*.json)
// and util::TextTable (console reports).
//
// Both walk the snapshot in its already-sorted order, so two snapshots of
// identical metric values render byte-identically — the property the
// bench-regression CI gate diffs against. The only nondeterministic bytes
// are span durations (total_ns / total_ms), which consumers must treat as
// measurements, not results.
#pragma once

#include <string>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace dosn::obs {

/// The snapshot as a standalone JSON document:
///
///   {
///     "counters":   { "<name>": <value>, ... },
///     "gauges":     { "<name>": <value>, ... },
///     "histograms": { "<name>": { "count": n, "sum": s,
///                                 "buckets": [ { "le": <bound>|"+inf",
///                                                "count": c }, ... ] } },
///     "spans":      [ { "name": ..., "calls": ..., "total_ns": ...,
///                       "children": [ ... ] }, ... ]
///   }
std::string to_json(const Snapshot& snap);

/// Appends the same structure as one JSON object value through an already
/// positioned writer (caller has emitted the key); used to embed a
/// metrics section into a larger document.
void append_json(util::JsonWriter& w, const Snapshot& snap);

/// Counters/gauges/histograms as one aligned table plus an indented span
/// profile tree — the human-facing form for bench stdout.
std::string to_table(const Snapshot& snap);

}  // namespace dosn::obs
