#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/check.hpp"

namespace dosn::obs {
namespace {

std::atomic<bool>& enabled_flag() {
  // Initialized once from the environment: DOSN_OBS=0 starts disabled,
  // anything else (or unset) starts enabled.
  static std::atomic<bool> flag = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — one read under the static
    // initializer's guard, before any instrumented thread can exist.
    const char* env = std::getenv("DOSN_OBS");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}

std::uint64_t now_ns() {
  // steady_clock, not wall clock: spans measure durations only, and
  // nothing derived from them ever feeds back into simulation results.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// protocol: relaxed — a standalone on/off flag; flips happen between
// phases and order nothing. Hot paths pay one unordered load.
bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  // protocol: relaxed — pairs with the relaxed load in enabled(); no
  // data is published under this flag, so no release is needed.
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_slot() {
  static std::atomic<std::size_t> next_slot{0};
  // protocol: relaxed — a unique-ticket draw; only atomicity matters
  // (two threads must not share a ticket), no ordering with other data.
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

/// One (parent, name) node of the span profile tree. Mutated only under
/// Registry::span_mutex_; the sorted children map gives exports a
/// deterministic structure regardless of which thread opened what first.
struct SpanNode {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, std::unique_ptr<SpanNode>, std::less<>> children;
};

namespace {
/// The innermost live span of the calling thread (null: next span is a
/// root child). Maintained LIFO by ScopedTimer construction/destruction.
thread_local SpanNode* t_current_span = nullptr;
}  // namespace

}  // namespace detail

// ---------------------------------------------------------------- metrics

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  // protocol: relaxed — pairs with the relaxed shard increments in add();
  // readers merge between phases (quiescent) or accept a momentary sum.
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  // protocol: relaxed — between-phases operation; concurrent adds would
  // be lost by design (counters are write-mostly sinks, §9 rule 1).
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::record_max(std::int64_t v) noexcept {
  if (!enabled()) return;
  // protocol: relaxed — monotone high-water CAS loop; the final maximum
  // is interleaving-independent and orders no other data.
  std::int64_t seen = value_.load(std::memory_order_relaxed);
  // protocol: relaxed ^ (the CAS retries until v <= max; commutative)
  while (v > seen &&
         !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::string name, std::span<const std::int64_t> bounds)
    : name_(std::move(name)),
      bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1) {
  DOSN_CHECK(!bounds_.empty(), "obs: histogram '", name_, "' needs bounds");
  DOSN_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "obs: histogram '", name_,
             "' bounds must be strictly increasing");
}

void Histogram::record(std::int64_t v) noexcept {
  if (!enabled()) return;
  // Upper-inclusive buckets: the first bound >= v owns the value; values
  // beyond the last bound land in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  // protocol: relaxed — independent commutative tallies (bucket, count,
  // sum); cross-field consistency only read between phases (quiescent).
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);   // protocol: relaxed ^
  sum_.fetch_add(v, std::memory_order_relaxed);     // protocol: relaxed ^
}

std::uint64_t Histogram::bucket_count(std::size_t i) const noexcept {
  // protocol: relaxed — pairs with record()'s relaxed tallies; readers
  // sample between phases.
  return buckets_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);  // protocol: relaxed ^
}

std::int64_t Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);  // protocol: relaxed ^
}

void Histogram::reset() noexcept {
  // protocol: relaxed — between-phases zeroing, same rules as
  // Counter::reset().
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);  // protocol: relaxed ^
  sum_.store(0, std::memory_order_relaxed);    // protocol: relaxed ^
}

// --------------------------------------------------------------- registry

struct Registry::Entry {
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

Registry::Registry() : span_root_(new detail::SpanNode{}) {}

Registry& Registry::global() {
  // Leaked on purpose: instrumented code (thread pool workers, static
  // destructors) may touch metrics arbitrarily late in shutdown.
  static Registry* instance = new Registry;
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->kind = MetricKind::kCounter;
    entry->counter.reset(new Counter(std::string(name)));
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  DOSN_CHECK(it->second->kind == MetricKind::kCounter, "obs: metric '", name,
             "' is already registered as a different kind");
  return *it->second->counter;
}

Gauge& Registry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->kind = MetricKind::kGauge;
    entry->gauge.reset(new Gauge(std::string(name)));
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  DOSN_CHECK(it->second->kind == MetricKind::kGauge, "obs: metric '", name,
             "' is already registered as a different kind");
  return *it->second->gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const std::int64_t> bounds) {
  util::MutexLock lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->kind = MetricKind::kHistogram;
    entry->histogram.reset(new Histogram(std::string(name), bounds));
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  DOSN_CHECK(it->second->kind == MetricKind::kHistogram, "obs: metric '",
             name, "' is already registered as a different kind");
  const Histogram& h = *it->second->histogram;
  DOSN_CHECK(std::equal(h.bounds().begin(), h.bounds().end(), bounds.begin(),
                        bounds.end()),
             "obs: histogram '", name,
             "' re-registered with different bounds");
  return *it->second->histogram;
}

namespace {

SpanSample sample_span_tree(const detail::SpanNode& node) {
  SpanSample s;
  s.name = node.name;
  s.calls = node.calls;
  s.total_ns = node.total_ns;
  for (const auto& [name, child] : node.children)
    s.children.push_back(sample_span_tree(*child));
  return s;
}

}  // namespace

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    util::MutexLock lock(mutex_);
    // std::map iteration = sorted names: the deterministic export order.
    for (const auto& [name, entry] : metrics_) {
      switch (entry->kind) {
        case MetricKind::kCounter:
          snap.counters.push_back({name, entry->counter->value()});
          break;
        case MetricKind::kGauge:
          snap.gauges.push_back({name, entry->gauge->value()});
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *entry->histogram;
          HistogramSample hs;
          hs.name = name;
          hs.bounds = h.bounds();
          for (std::size_t i = 0; i <= hs.bounds.size(); ++i)
            hs.buckets.push_back(h.bucket_count(i));
          hs.count = h.count();
          hs.sum = h.sum();
          snap.histograms.push_back(std::move(hs));
          break;
        }
      }
    }
  }
  {
    util::MutexLock lock(span_mutex_);
    for (const auto& [name, child] : span_root_->children)
      snap.spans.push_back(sample_span_tree(*child));
  }
  return snap;
}

void Registry::reset() {
  {
    util::MutexLock lock(mutex_);
    for (const auto& [name, entry] : metrics_) {
      switch (entry->kind) {
        case MetricKind::kCounter: entry->counter->reset(); break;
        case MetricKind::kGauge: entry->gauge->reset(); break;
        case MetricKind::kHistogram: entry->histogram->reset(); break;
      }
    }
  }
  {
    // Precondition: no ScopedTimer is live anywhere (their nodes would
    // dangle). reset() is a between-phases operation, not a hot-path one.
    util::MutexLock lock(span_mutex_);
    span_root_->children.clear();
  }
}

detail::SpanNode* Registry::span_enter(std::string_view name) {
  util::MutexLock lock(span_mutex_);
  detail::SpanNode* parent = detail::t_current_span != nullptr
                                 ? detail::t_current_span
                                 : span_root_.get();
  auto it = parent->children.find(name);
  if (it == parent->children.end()) {
    auto node = std::make_unique<detail::SpanNode>();
    node->name = std::string(name);
    it = parent->children.emplace(std::string(name), std::move(node)).first;
  }
  return it->second.get();
}

void Registry::span_exit(detail::SpanNode* node, std::uint64_t elapsed_ns) {
  util::MutexLock lock(span_mutex_);
  node->calls += 1;
  node->total_ns += elapsed_ns;
}

// ------------------------------------------------------------------ spans

ScopedTimer::ScopedTimer(std::string_view name) {
  if (!enabled()) return;
  node_ = Registry::global().span_enter(name);
  parent_ = detail::t_current_span;
  detail::t_current_span = node_;
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (node_ == nullptr) return;
  const std::uint64_t elapsed = now_ns() - start_ns_;
  detail::t_current_span = parent_;
  Registry::global().span_exit(node_, elapsed);
}

}  // namespace dosn::obs
