// Deterministic, thread-safe observability: counters, gauges, histograms
// and span timers in a process-wide registry (DESIGN.md §9).
//
// The study engine's tier-1 guarantee is bit-identical results for a fixed
// seed across platforms and thread counts, so the metrics layer obeys two
// hard rules:
//
//   1. Observability never feeds back into results. Metrics are
//      write-mostly sinks; no simulation or placement code path reads one.
//      Enabling or disabling the subsystem therefore cannot perturb a
//      single output bit (asserted by tests/test_obs.cpp).
//   2. Metric *values* are themselves deterministic wherever the counted
//      quantity is: counters shard per thread (padded atomic slots, relaxed
//      increments) and merge by summation — commutative, so the total does
//      not depend on scheduling — and every exporter walks the registry in
//      sorted-name order. Only span durations (wall time) vary run to run;
//      span structure and call counts do not. Scheduling-observing metrics
//      — the work-stealing runtime's `util.runtime.steals` counter and the
//      generation pipeline's `synth.scale.queue_high_water` gauge — are the
//      counter/gauge analogue of span durations: they measure *how* a run
//      was scheduled, not *what* it computed, and are likewise excluded
//      from byte-determinism expectations (DESIGN.md §12).
//
// Cost model: every hot-path hook first loads one relaxed atomic bool
// (`enabled()`); when observability is off that load-and-branch is the
// entire cost. When on, counters are a relaxed fetch_add on a per-thread
// shard, and the hot loops batch locally and flush once per call. Spans
// take a mutex, so they belong around phases, not per-element work.
//
// Metric naming scheme: `<module>.<name>` (dots separate levels, snake_case
// leaves), e.g. `sim.prefix_evals`, `placement.maxav.lazy_hits`,
// `net.event_queue.high_water`. Counters count events, gauges hold levels
// or high-water marks, histograms bucket integer magnitudes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace dosn::obs {

/// Global on/off switch. Initialized from the DOSN_OBS environment
/// variable ("0" disables; unset or anything else enables); flip at
/// runtime with set_enabled. Reads are a single relaxed atomic load.
bool enabled();
void set_enabled(bool on);

namespace detail {
/// Number of counter shards; slots are assigned to threads round-robin on
/// first use, so any thread count spreads over all shards.
inline constexpr std::size_t kShards = 16;

/// The calling thread's shard slot in [0, kShards): a thread_local index
/// drawn from a process-wide counter — no scheduler-assigned ids involved,
/// and the merged total is slot-assignment independent (sums commute).
std::size_t shard_slot();

struct SpanNode;  // profile-tree node (definition private to obs.cpp)
}  // namespace detail

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotone event count, sharded per thread. add() is wait-free when
/// enabled and one load+branch when disabled.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    // protocol: relaxed — per-thread shard tally; pairs with the relaxed
    // merge in value(). Sums commute, so no ordering is needed.
    shards_[detail::shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards in fixed slot order (commutative, so the value is
  /// independent of which thread incremented which shard).
  std::uint64_t value() const noexcept;

  void reset() noexcept;
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  std::string name_;
  std::array<Shard, detail::kShards> shards_{};
};

/// A signed level (queue depth, high-water mark). set/add/record_max are
/// atomic; record_max keeps the largest value seen since reset.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    // protocol: relaxed — last-writer-wins level; orders no other data.
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    // protocol: relaxed — commutative delta; pairs with value()'s
    // relaxed load between phases.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if it is below (a monotone high-water mark —
  /// the merged result is interleaving-independent).
  void record_max(std::int64_t v) noexcept;

  std::int64_t value() const noexcept {
    // protocol: relaxed — sampling read; see set()/add().
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    // protocol: relaxed — between-phases zeroing.
    value_.store(0, std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Integer-valued histogram over fixed, upper-inclusive bucket bounds:
/// value v lands in the first bucket with v <= bound, values above the
/// last bound in the overflow bucket. Integer sum keeps the aggregate
/// deterministic (no float accumulation-order dependence).
class Histogram {
 public:
  void record(std::int64_t v) noexcept;

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// bucket_count(i) for i in [0, bounds().size()]: the last index is the
  /// overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const noexcept;
  std::uint64_t count() const noexcept;
  std::int64_t sum() const noexcept;
  void reset() noexcept;
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::span<const std::int64_t> bounds);

  std::string name_;
  std::vector<std::int64_t> bounds_;  // strictly increasing
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

// -------------------------------------------------------------- snapshot

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  std::int64_t sum = 0;
};

struct SpanSample {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;  // wall time: the one nondeterministic field
  std::vector<SpanSample> children;  // sorted by name
};

/// A consistent copy of every registered metric, each section sorted by
/// metric name — the deterministic merge order the exporters rely on.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SpanSample> spans;  // children of the implicit root
};

// -------------------------------------------------------------- registry

/// Process-wide, mutex-protected name -> metric map (std::map: sorted
/// iteration is what makes snapshots and exports deterministic).
/// Registration returns stable references; hot paths register once
/// (function-local static) and keep the reference.
class Registry {
 public:
  /// The process-wide instance. Intentionally leaked so metrics outlive
  /// every other static and thread during shutdown.
  static Registry& global();

  /// Returns the counter named `name`, creating it on first use. Fails a
  /// contract check if the name is already registered as another kind.
  Counter& counter(std::string_view name) DOSN_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) DOSN_EXCLUDES(mutex_);
  /// As above; re-registration must also repeat the same bucket bounds
  /// (which must be strictly increasing and non-empty).
  Histogram& histogram(std::string_view name,
                       std::span<const std::int64_t> bounds)
      DOSN_EXCLUDES(mutex_);

  Snapshot snapshot() const DOSN_EXCLUDES(mutex_, span_mutex_);

  /// Zeroes every metric and clears the span tree. Registrations (and the
  /// references they handed out) stay valid.
  void reset() DOSN_EXCLUDES(mutex_, span_mutex_);

 private:
  friend class ScopedTimer;
  Registry();

  detail::SpanNode* span_enter(std::string_view name)
      DOSN_EXCLUDES(span_mutex_);
  void span_exit(detail::SpanNode* node, std::uint64_t elapsed_ns)
      DOSN_EXCLUDES(span_mutex_);

  // Capability map (DESIGN.md §13): `mutex_` guards the sorted metric
  // registry (name -> Entry); the metric objects it hands out are
  // internally synchronized (sharded/relaxed atomics), so references
  // escape the lock on purpose. `span_mutex_` guards the span profile
  // tree — the root and every node reachable from it. The two are never
  // held together (snapshot/reset take them in sequence, not nested).
  struct Entry;
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> metrics_
      DOSN_GUARDED_BY(mutex_);

  mutable util::Mutex span_mutex_;
  std::unique_ptr<detail::SpanNode> span_root_
      DOSN_GUARDED_BY(span_mutex_) DOSN_PT_GUARDED_BY(span_mutex_);
};

// ----------------------------------------------------------------- spans

/// RAII phase timer. Spans nest per thread: a ScopedTimer opened while
/// another is live on the same thread becomes its child in the profile
/// tree; the first span on any thread (pool workers included) attaches to
/// the root. Each distinct (parent, name) pair is one tree node
/// aggregating calls and total wall time. No-op while disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  detail::SpanNode* node_ = nullptr;  // null: disabled at construction
  detail::SpanNode* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace dosn::obs
