// Random: uniformly random replica holders (Sec III-C of the paper).
#pragma once

#include "placement/policy.hpp"

namespace dosn::placement {

/// UnconRep: a uniformly random subset, in random order. ConRep: each step
/// picks uniformly among the still-unchosen *time-connected* candidates.
class RandomPolicy final : public ReplicaPolicy {
 public:
  std::string name() const override { return "Random"; }
  bool randomized() const override { return true; }
  std::vector<UserId> select_impl(const PlacementContext& context,
                             util::Rng& rng) const override;
};

}  // namespace dosn::placement
