// MaxAv: greedy set-cover replica selection maximizing availability
// (Sec III-A of the paper).
#pragma once

#include "placement/policy.hpp"

namespace dosn::placement {

/// Greedy set cover: repeatedly select the candidate contributing the most
/// still-uncovered universe, stopping when no candidate improves coverage.
/// The universe depends on the objective:
///   * kAvailability — the union of candidate schedules; coverage is
///     seeded with the owner's own schedule (the owner always holds his
///     profile, so time he is online is already covered);
///   * kAoDTime      — the same universe without the owner seed;
///   * kAoDActivity  — the multiset of time-of-day instants of activities
///     received on the user's profile.
/// Under ConRep only time-connected candidates are eligible at each step;
/// with `conrep_least_overlap` the connected candidate with minimal overlap
/// with the covered set is picked instead of the max-gain one (the paper's
/// literal phrasing), still requiring positive gain. The rule applies to
/// every objective — for kAoDActivity the overlap is counted over covered
/// activity instants.
///
/// The default max-gain rule runs as a CELF-style lazy greedy: marginal
/// gains are cached in a max-heap and only recomputed when a stale entry
/// reaches the top. Because coverage only grows, cached gains are upper
/// bounds (submodularity), so the lazy path selects exactly the same
/// replicas as a full per-round rescan while skipping most gain
/// evaluations. `lazy = false` forces the reference rescan implementation
/// (used by the equivalence tests and the engine benchmarks).
class MaxAvPolicy final : public ReplicaPolicy {
 public:
  explicit MaxAvPolicy(MaxAvObjective objective = MaxAvObjective::kAvailability,
                       bool conrep_least_overlap = false, bool lazy = true);

  std::string name() const override;
  std::vector<UserId> select_impl(const PlacementContext& context,
                             util::Rng& rng) const override;

 private:
  std::vector<UserId> select_schedule_cover(const PlacementContext& context)
      const;
  std::vector<UserId> select_activity_cover(const PlacementContext& context)
      const;

  MaxAvObjective objective_;
  bool conrep_least_overlap_;
  bool lazy_;
};

}  // namespace dosn::placement
