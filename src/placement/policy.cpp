#include "placement/policy.hpp"

#include <algorithm>

#include "placement/core_group.hpp"
#include "placement/hybrid.hpp"
#include "placement/max_av.hpp"
#include "placement/most_active.hpp"
#include "placement/random.hpp"
#include "util/check.hpp"

namespace dosn::placement {

std::vector<UserId> ReplicaPolicy::select(const PlacementContext& context,
                                          util::Rng& rng) const {
  std::vector<UserId> selection = select_impl(context, rng);
  detail::validate_selection(context, selection, name());
  return selection;
}

std::string to_string(Connectivity c) {
  return c == Connectivity::kConRep ? "ConRep" : "UnconRep";
}

std::string to_string(StorageRegime regime) {
  switch (regime) {
    case StorageRegime::kReplicaGroup: return "ReplicaGroup";
    case StorageRegime::kSocialDht: return "SocialDht";
    case StorageRegime::kSuperPeer: return "SuperPeer";
  }
  DOSN_UNREACHABLE("unknown StorageRegime");
}

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMaxAv: return "MaxAv";
    case PolicyKind::kMostActive: return "MostActive";
    case PolicyKind::kRandom: return "Random";
    case PolicyKind::kCoreGroup: return "CoreGroup";
    case PolicyKind::kHybrid: return "Hybrid";
  }
  return "?";
}

std::unique_ptr<ReplicaPolicy> make_policy(PolicyKind kind,
                                           const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::kMaxAv:
      return std::make_unique<MaxAvPolicy>(params.objective,
                                           params.conrep_least_overlap,
                                           params.maxav_lazy);
    case PolicyKind::kMostActive:
      return std::make_unique<MostActivePolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
    case PolicyKind::kCoreGroup:
      return std::make_unique<CoreGroupPolicy>();
    case PolicyKind::kHybrid:
      return std::make_unique<HybridPolicy>(params.hybrid_alpha);
  }
  throw ConfigError("make_policy: unknown policy kind");
}

namespace detail {

bool is_connected(const DaySchedule& candidate,
                  const DaySchedule& connectivity_union, bool any_selected) {
  if (!connectivity_union.empty())
    return candidate.intersects(connectivity_union);
  // The connectivity set is empty (owner never online): the first replica
  // seeds connectivity, so any candidate with a schedule qualifies; after
  // that nothing can connect to an empty union.
  return !any_selected && !candidate.empty();
}

void validate_selection(const PlacementContext& context,
                        std::span<const UserId> selection,
                        const std::string& policy_name) {
  DOSN_CHECK(selection.size() <= context.max_replicas, policy_name,
             ": selected ", selection.size(),
             " replicas, exceeding the replication budget k = ",
             context.max_replicas, " for user ", context.user);
  std::vector<UserId> seen(selection.begin(), selection.end());
  std::sort(seen.begin(), seen.end());
  DOSN_CHECK(std::adjacent_find(seen.begin(), seen.end()) == seen.end(),
             policy_name, ": duplicate replica holder for user ",
             context.user);
  for (UserId holder : selection) {
    // Linear membership scan: candidate spans need not be sorted, and the
    // selection is at most k entries, so this is cheaper than the
    // selection pass that produced it.
    DOSN_CHECK(std::find(context.candidates.begin(),
                         context.candidates.end(),
                         holder) != context.candidates.end(),
               policy_name, ": replica holder ", holder,
               " is not a contact of user ", context.user);
  }
}

}  // namespace detail

}  // namespace dosn::placement
