#include "placement/policy.hpp"

#include "placement/core_group.hpp"
#include "placement/hybrid.hpp"
#include "placement/max_av.hpp"
#include "placement/most_active.hpp"
#include "placement/random.hpp"

namespace dosn::placement {

std::string to_string(Connectivity c) {
  return c == Connectivity::kConRep ? "ConRep" : "UnconRep";
}

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMaxAv: return "MaxAv";
    case PolicyKind::kMostActive: return "MostActive";
    case PolicyKind::kRandom: return "Random";
    case PolicyKind::kCoreGroup: return "CoreGroup";
    case PolicyKind::kHybrid: return "Hybrid";
  }
  return "?";
}

std::unique_ptr<ReplicaPolicy> make_policy(PolicyKind kind,
                                           const PolicyParams& params) {
  switch (kind) {
    case PolicyKind::kMaxAv:
      return std::make_unique<MaxAvPolicy>(params.objective,
                                           params.conrep_least_overlap,
                                           params.maxav_lazy);
    case PolicyKind::kMostActive:
      return std::make_unique<MostActivePolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
    case PolicyKind::kCoreGroup:
      return std::make_unique<CoreGroupPolicy>();
    case PolicyKind::kHybrid:
      return std::make_unique<HybridPolicy>(params.hybrid_alpha);
  }
  throw ConfigError("make_policy: unknown policy kind");
}

namespace detail {

bool is_connected(const DaySchedule& candidate,
                  const DaySchedule& connectivity_union, bool any_selected) {
  if (!connectivity_union.empty())
    return candidate.intersects(connectivity_union);
  // The connectivity set is empty (owner never online): the first replica
  // seeds connectivity, so any candidate with a schedule qualifies; after
  // that nothing can connect to an empty union.
  return !any_selected && !candidate.empty();
}

}  // namespace detail

}  // namespace dosn::placement
