// Replica-selection policies (Sec III of the paper).
//
// Given a user, his contacts (trusted friends resp. followers) and
// everyone's daily online schedule, a policy returns an ordered list of
// replica holders. The order is a *selection order*: the k-replica
// configuration of the paper's sweeps is exactly the length-k prefix, and
// for ConRep every prefix satisfies the time-connectivity constraint
// because policies build their selection incrementally.
//
// ConRep (connected replicas): each new replica must overlap in time with
// at least one already-selected replica. The owner's own schedule seeds the
// connectivity set — the profile originates at the owner. If the owner is
// never online, the first replica seeds connectivity instead.
// UnconRep: no constraint (replicas exchange updates through third-party
// storage).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interval/day_schedule.hpp"
#include "trace/activity.hpp"
#include "util/rng.hpp"

namespace dosn::placement {

using graph::UserId;
using interval::DaySchedule;
using interval::Seconds;

enum class Connectivity { kConRep, kUnconRep };

std::string to_string(Connectivity c);

/// Where a profile's replicas live — the storage-regime axis the serving
/// layer dispatches on (DESIGN.md §16). kReplicaGroup is the paper's
/// friend-replica regime (a ReplicaPolicy selection under ConRep or
/// UnconRep); kSocialDht stores profiles on the successor nodes of a
/// socially-remapped DHT ring (net/social_dht.hpp); kSuperPeer extends
/// the policy selection with volunteer storekeepers for users whose
/// replica group misses a target availability (placement/super_peer.hpp).
enum class StorageRegime { kReplicaGroup, kSocialDht, kSuperPeer };

std::string to_string(StorageRegime regime);

/// Inputs for placing the replicas of one user's profile.
struct PlacementContext {
  UserId user = 0;
  /// Eligible replica holders: contacts(user) in the social graph.
  std::span<const UserId> candidates;
  /// Daily schedules of *all* users (indexed by UserId).
  std::span<const DaySchedule> schedules;
  /// Activity trace (MostActive ranking; MaxAv activity universe). May be
  /// null for policies that do not need it.
  const trace::ActivityTrace* trace = nullptr;
  Connectivity connectivity = Connectivity::kConRep;
  /// Maximum number of replicas to select (the sweep's k).
  std::size_t max_replicas = 0;

  const DaySchedule& schedule_of(UserId u) const {
    DOSN_ASSERT(u < schedules.size());
    return schedules[u];
  }
};

class ReplicaPolicy {
 public:
  virtual ~ReplicaPolicy() = default;

  virtual std::string name() const = 0;

  /// True when selection draws randomness the methodology averages over
  /// (the paper repeats Random placement five times).
  virtual bool randomized() const { return false; }

  /// Replica holders in selection order; size <= max_replicas (policies
  /// may stop early: MaxAv stops when coverage no longer improves, ConRep
  /// stops when no remaining candidate is time-connected).
  ///
  /// Non-virtual template method: runs the policy's select_impl and then
  /// enforces the placement contract (within budget, drawn from the
  /// candidate set, duplicate-free) with DOSN_CHECK — a policy that
  /// violates it throws util::ContractError instead of silently skewing
  /// every downstream availability/delay figure.
  std::vector<UserId> select(const PlacementContext& context,
                             util::Rng& rng) const;

 protected:
  /// Policy-specific selection; see select() for the enforced contract.
  virtual std::vector<UserId> select_impl(const PlacementContext& context,
                                          util::Rng& rng) const = 0;
};

enum class PolicyKind {
  kMaxAv,       ///< greedy availability set cover (paper Sec III-A)
  kMostActive,  ///< most interactive friends first (paper Sec III-B)
  kRandom,      ///< uniform choice (paper Sec III-C)
  kCoreGroup,   ///< delay-aware greedy (extension; paper Sec V-C idea)
  kHybrid,      ///< activity x coverage blend (extension)
};

std::string to_string(PolicyKind kind);

/// MaxAv greedy set-cover objective: which universe the replicas cover.
enum class MaxAvObjective {
  kAvailability,  ///< union of candidate online times (paper's default)
  kAoDTime,       ///< same universe, not seeded by the owner's schedule
  kAoDActivity,   ///< activity instants received on the user's profile
};

struct PolicyParams {
  MaxAvObjective objective = MaxAvObjective::kAvailability;
  /// ConRep tie-break: paper's literal phrasing picks, among connected
  /// candidates, the one whose schedule overlaps the covered set least;
  /// the default picks the one adding the most uncovered time.
  bool conrep_least_overlap = false;
  /// MaxAv implementation switch: CELF lazy greedy (default) or the
  /// reference full-rescan greedy. Both produce identical selections;
  /// `false` exists for benchmarks and equivalence tests.
  bool maxav_lazy = true;
  /// Hybrid policy: weight of the activity component in [0, 1].
  double hybrid_alpha = 0.5;
};

std::unique_ptr<ReplicaPolicy> make_policy(PolicyKind kind,
                                           const PolicyParams& params = {});

namespace detail {

/// Incremental ConRep helper shared by the policies: true iff `candidate`
/// may be selected given the connectivity set accumulated so far.
bool is_connected(const DaySchedule& candidate,
                  const DaySchedule& connectivity_union, bool any_selected);

/// DOSN_CHECKs the placement contract for `selection` against `context`:
/// size within max_replicas, every holder a member of context.candidates,
/// no holder selected twice. Exposed for tests and external policy hosts.
void validate_selection(const PlacementContext& context,
                        std::span<const UserId> selection,
                        const std::string& policy_name);

}  // namespace detail

}  // namespace dosn::placement
