#include "placement/max_av.hpp"

#include <algorithm>
#include <queue>

#include "obs/obs.hpp"

namespace dosn::placement {

using interval::IntervalSet;

namespace {

/// Greedy-core metrics (DESIGN.md §9). Every count is batched in plain
/// locals inside the greedy loops and flushed once per selection, so the
/// hot path never touches an atomic.
inline constexpr std::int64_t kSelectedKBounds[] = {0, 1, 2, 3, 4, 6, 8, 12};

struct PlacementMetrics {
  obs::Counter& selections =
      obs::Registry::global().counter("placement.maxav.selections");
  /// Marginal-gain oracle invocations (eager rescans + CELF recomputes).
  obs::Counter& gain_evals =
      obs::Registry::global().counter("placement.maxav.gain_evals");
  /// CELF picks accepted straight off the heap without recomputation.
  obs::Counter& lazy_hits =
      obs::Registry::global().counter("placement.maxav.lazy_hits");
  /// CELF pops whose cached upper bound was stale and had to be refreshed.
  obs::Counter& lazy_misses =
      obs::Registry::global().counter("placement.maxav.lazy_misses");
  /// ConRep candidates parked for a round while disconnected.
  obs::Counter& parked =
      obs::Registry::global().counter("placement.maxav.parked");
  obs::Histogram& selected_k = obs::Registry::global().histogram(
      "placement.maxav.selected_k", kSelectedKBounds);
};

PlacementMetrics& placement_metrics() {
  static PlacementMetrics m;
  return m;
}

// Both MaxAv universes (schedule seconds, activity instants) are covered
// through the same greedy skeleton, abstracted as an oracle:
//   gain(i)    — marginal coverage candidate i adds to the covered set;
//   overlap(i) — measure of candidate i's schedule already covered (the
//                ConRep least-overlap tie-break);
//   commit(i)  — fold candidate i into the covered set.
// Coverage only grows, so gain(i) is non-increasing and overlap(i)
// non-decreasing across rounds (submodularity) — the property the lazy
// evaluation below relies on.

struct ScheduleOracle {
  const PlacementContext& context;
  IntervalSet covered;
  std::vector<interval::Interval> scratch;  ///< unite_with spare buffer

  std::int64_t gain(std::size_t i) const {
    // subtract_measure sweeps without materializing the difference set —
    // the by-far hottest call of a MaxAv candidate scan.
    return context.schedule_of(context.candidates[i])
        .set()
        .subtract_measure(covered);
  }
  std::int64_t overlap(std::size_t i) const {
    return context.schedule_of(context.candidates[i])
        .set()
        .intersection_measure(covered);
  }
  void commit(std::size_t i) {
    covered.unite_with(context.schedule_of(context.candidates[i]).set(),
                       &scratch);
  }
};

struct ActivityOracle {
  const PlacementContext& context;
  std::vector<Seconds> points;     // activity instants (time-of-day)
  std::vector<bool> covered;       // parallel to points

  std::int64_t gain(std::size_t i) const {
    const DaySchedule& cand = context.schedule_of(context.candidates[i]);
    std::int64_t g = 0;
    for (std::size_t p = 0; p < points.size(); ++p)
      if (!covered[p] && cand.set().contains(points[p])) ++g;
    return g;
  }
  std::int64_t overlap(std::size_t i) const {
    const DaySchedule& cand = context.schedule_of(context.candidates[i]);
    std::int64_t o = 0;
    for (std::size_t p = 0; p < points.size(); ++p)
      if (covered[p] && cand.set().contains(points[p])) ++o;
    return o;
  }
  void commit(std::size_t i) {
    const DaySchedule& cand = context.schedule_of(context.candidates[i]);
    for (std::size_t p = 0; p < points.size(); ++p)
      if (!covered[p] && cand.set().contains(points[p])) covered[p] = true;
  }
};

/// Reference greedy: full rescan of every candidate per round. Used for the
/// ConRep least-overlap rule (whose compound key does not cache as cheaply)
/// and, via MaxAvPolicy's `lazy` switch, as the baseline the benchmarks and
/// equivalence tests compare the CELF path against.
template <typename Oracle>
std::vector<UserId> greedy_eager(const PlacementContext& context,
                                 Oracle& oracle,
                                 DaySchedule connectivity_union,
                                 bool least_overlap) {
  const bool conrep = context.connectivity == Connectivity::kConRep;
  const bool by_overlap = conrep && least_overlap;

  std::vector<UserId> chosen;
  std::vector<bool> used(context.candidates.size(), false);
  std::vector<interval::Interval> union_scratch;
  std::uint64_t gain_evals = 0;

  while (chosen.size() < context.max_replicas) {
    std::ptrdiff_t best = -1;
    std::int64_t best_gain = 0;
    std::int64_t best_overlap = 0;
    for (std::size_t i = 0; i < context.candidates.size(); ++i) {
      if (used[i]) continue;
      const DaySchedule& cand = context.schedule_of(context.candidates[i]);
      if (conrep &&
          !detail::is_connected(cand, connectivity_union, !chosen.empty()))
        continue;
      ++gain_evals;
      const std::int64_t gain = oracle.gain(i);
      if (gain <= 0) continue;
      bool better = false;
      if (by_overlap) {
        const std::int64_t overlap = oracle.overlap(i);
        better = best < 0 || overlap < best_overlap ||
                 (overlap == best_overlap && gain > best_gain);
        if (better) best_overlap = overlap;
      } else {
        better = gain > best_gain;
      }
      if (better) {
        best = static_cast<std::ptrdiff_t>(i);
        best_gain = gain;
      }
    }
    if (best < 0) break;  // no candidate improves coverage (or none connected)
    const std::size_t idx = static_cast<std::size_t>(best);
    used[idx] = true;
    chosen.push_back(context.candidates[idx]);
    oracle.commit(idx);
    connectivity_union.unite_with(context.schedule_of(context.candidates[idx]),
                                  &union_scratch);
  }
  placement_metrics().gain_evals.add(gain_evals);
  return chosen;
}

/// CELF lazy-greedy entry: the cached gain is an upper bound on the true
/// marginal gain because coverage only grows.
struct LazyEntry {
  std::int64_t gain = 0;
  std::size_t index = 0;
  std::size_t stamp = 0;  ///< |chosen| at the time `gain` was computed
};

/// Max-heap order: larger gain first; on equal gain, lower candidate index
/// first — exactly the eager scan's "first strict maximum" tie-break.
struct LazyEntryLess {
  bool operator()(const LazyEntry& a, const LazyEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.index > b.index;
  }
};

/// CELF lazy-greedy (Leskovec et al., "Cost-effective Outbreak Detection"):
/// pop the largest cached gain; if it was computed this round it is exact
/// and beats every other upper bound, so select it without rescanning;
/// otherwise recompute, reinsert, repeat. Candidates whose recomputed gain
/// drops to zero are discarded permanently (gains never recover), while
/// ConRep-disconnected candidates are parked for the round and re-enter the
/// heap afterwards (connectivity can open up as the union grows). Produces
/// bit-identical selections to greedy_eager.
template <typename Oracle>
std::vector<UserId> greedy_lazy(const PlacementContext& context,
                                Oracle& oracle,
                                DaySchedule connectivity_union) {
  const bool conrep = context.connectivity == Connectivity::kConRep;

  std::uint64_t gain_evals = 0;
  std::uint64_t lazy_hits = 0;
  std::uint64_t lazy_misses = 0;
  std::uint64_t parked_count = 0;

  std::priority_queue<LazyEntry, std::vector<LazyEntry>, LazyEntryLess> heap;
  for (std::size_t i = 0; i < context.candidates.size(); ++i) {
    ++gain_evals;
    const std::int64_t gain = oracle.gain(i);
    if (gain > 0) heap.push({gain, i, 0});
  }

  std::vector<UserId> chosen;
  std::vector<LazyEntry> parked;  // disconnected this round
  std::vector<interval::Interval> union_scratch;
  while (chosen.size() < context.max_replicas && !heap.empty()) {
    std::ptrdiff_t picked = -1;
    while (!heap.empty()) {
      LazyEntry top = heap.top();
      heap.pop();
      if (conrep &&
          !detail::is_connected(
              context.schedule_of(context.candidates[top.index]),
              connectivity_union, !chosen.empty())) {
        parked.push_back(top);
        ++parked_count;
        continue;
      }
      if (top.stamp == chosen.size()) {
        ++lazy_hits;
        picked = static_cast<std::ptrdiff_t>(top.index);
        break;
      }
      ++lazy_misses;
      ++gain_evals;
      top.gain = oracle.gain(top.index);
      if (top.gain <= 0) continue;
      top.stamp = chosen.size();
      heap.push(top);
    }
    if (picked < 0) break;  // nothing connected improves coverage
    const std::size_t idx = static_cast<std::size_t>(picked);
    chosen.push_back(context.candidates[idx]);
    oracle.commit(idx);
    connectivity_union.unite_with(context.schedule_of(context.candidates[idx]),
                                  &union_scratch);
    for (const LazyEntry& e : parked) heap.push(e);
    parked.clear();
  }
  PlacementMetrics& m = placement_metrics();
  m.gain_evals.add(gain_evals);
  m.lazy_hits.add(lazy_hits);
  m.lazy_misses.add(lazy_misses);
  m.parked.add(parked_count);
  return chosen;
}

template <typename Oracle>
std::vector<UserId> run_greedy(const PlacementContext& context,
                               Oracle& oracle, const DaySchedule& owner,
                               bool least_overlap, bool lazy) {
  const bool by_overlap =
      context.connectivity == Connectivity::kConRep && least_overlap;
  if (lazy && !by_overlap) return greedy_lazy(context, oracle, owner);
  return greedy_eager(context, oracle, owner, least_overlap);
}

}  // namespace

MaxAvPolicy::MaxAvPolicy(MaxAvObjective objective, bool conrep_least_overlap,
                         bool lazy)
    : objective_(objective),
      conrep_least_overlap_(conrep_least_overlap),
      lazy_(lazy) {}

std::string MaxAvPolicy::name() const {
  switch (objective_) {
    case MaxAvObjective::kAvailability: return "MaxAv";
    case MaxAvObjective::kAoDTime: return "MaxAv(aod-time)";
    case MaxAvObjective::kAoDActivity: return "MaxAv(aod-activity)";
  }
  return "MaxAv(?)";
}

std::vector<UserId> MaxAvPolicy::select_impl(const PlacementContext& context,
                                        util::Rng&) const {
  std::vector<UserId> chosen = objective_ == MaxAvObjective::kAoDActivity
                                   ? select_activity_cover(context)
                                   : select_schedule_cover(context);
  PlacementMetrics& m = placement_metrics();
  m.selections.add(1);
  m.selected_k.record(static_cast<std::int64_t>(chosen.size()));
  return chosen;
}

std::vector<UserId> MaxAvPolicy::select_schedule_cover(
    const PlacementContext& context) const {
  const DaySchedule& owner = context.schedule_of(context.user);
  ScheduleOracle oracle{context,
                        objective_ == MaxAvObjective::kAvailability
                            ? owner.set()
                            : IntervalSet{},
                        {}};
  return run_greedy(context, oracle, owner, conrep_least_overlap_, lazy_);
}

std::vector<UserId> MaxAvPolicy::select_activity_cover(
    const PlacementContext& context) const {
  DOSN_REQUIRE(context.trace != nullptr,
               "MaxAv(aod-activity) needs the activity trace");
  const DaySchedule& owner = context.schedule_of(context.user);

  // Universe: time-of-day instants of the activities received on the
  // user's profile in the observed past.
  ActivityOracle oracle{context, {}, {}};
  for (const auto& a : context.trace->received_by(context.user))
    oracle.points.push_back(interval::time_of_day(a.timestamp));
  oracle.covered.assign(oracle.points.size(), false);
  for (std::size_t p = 0; p < oracle.points.size(); ++p)
    if (owner.set().contains(oracle.points[p])) oracle.covered[p] = true;

  return run_greedy(context, oracle, owner, conrep_least_overlap_, lazy_);
}

}  // namespace dosn::placement
