#include "placement/max_av.hpp"

#include <algorithm>

namespace dosn::placement {

using interval::IntervalSet;

MaxAvPolicy::MaxAvPolicy(MaxAvObjective objective, bool conrep_least_overlap)
    : objective_(objective), conrep_least_overlap_(conrep_least_overlap) {}

std::string MaxAvPolicy::name() const {
  switch (objective_) {
    case MaxAvObjective::kAvailability: return "MaxAv";
    case MaxAvObjective::kAoDTime: return "MaxAv(aod-time)";
    case MaxAvObjective::kAoDActivity: return "MaxAv(aod-activity)";
  }
  return "MaxAv(?)";
}

std::vector<UserId> MaxAvPolicy::select(const PlacementContext& context,
                                        util::Rng&) const {
  if (objective_ == MaxAvObjective::kAoDActivity)
    return select_activity_cover(context);
  return select_schedule_cover(context);
}

std::vector<UserId> MaxAvPolicy::select_schedule_cover(
    const PlacementContext& context) const {
  const bool conrep = context.connectivity == Connectivity::kConRep;
  const DaySchedule& owner = context.schedule_of(context.user);

  IntervalSet covered;
  if (objective_ == MaxAvObjective::kAvailability) covered = owner.set();
  DaySchedule connectivity_union = owner;

  std::vector<UserId> chosen;
  std::vector<bool> used(context.candidates.size(), false);

  while (chosen.size() < context.max_replicas) {
    std::ptrdiff_t best = -1;
    Seconds best_gain = 0;
    Seconds best_overlap = 0;
    for (std::size_t i = 0; i < context.candidates.size(); ++i) {
      if (used[i]) continue;
      const DaySchedule& cand = context.schedule_of(context.candidates[i]);
      if (conrep &&
          !detail::is_connected(cand, connectivity_union, !chosen.empty()))
        continue;
      const Seconds gain = cand.set().subtract(covered).measure();
      if (gain <= 0) continue;
      bool better = false;
      if (conrep && conrep_least_overlap_) {
        const Seconds overlap = cand.set().intersection_measure(covered);
        better = best < 0 || overlap < best_overlap ||
                 (overlap == best_overlap && gain > best_gain);
        if (better) best_overlap = overlap;
      } else {
        better = gain > best_gain;
      }
      if (better) {
        best = static_cast<std::ptrdiff_t>(i);
        best_gain = gain;
      }
    }
    if (best < 0) break;  // no candidate improves coverage (or none connected)
    used[static_cast<std::size_t>(best)] = true;
    const UserId f = context.candidates[static_cast<std::size_t>(best)];
    chosen.push_back(f);
    covered = covered.unite(context.schedule_of(f).set());
    connectivity_union = connectivity_union.unite(context.schedule_of(f));
  }
  return chosen;
}

std::vector<UserId> MaxAvPolicy::select_activity_cover(
    const PlacementContext& context) const {
  DOSN_REQUIRE(context.trace != nullptr,
               "MaxAv(aod-activity) needs the activity trace");
  const bool conrep = context.connectivity == Connectivity::kConRep;
  const DaySchedule& owner = context.schedule_of(context.user);

  // Universe: time-of-day instants of the activities received on the
  // user's profile in the observed past.
  std::vector<Seconds> points;
  for (const auto& a : context.trace->received_by(context.user))
    points.push_back(interval::time_of_day(a.timestamp));
  std::vector<bool> covered(points.size(), false);
  for (std::size_t p = 0; p < points.size(); ++p)
    if (owner.set().contains(points[p])) covered[p] = true;

  DaySchedule connectivity_union = owner;
  std::vector<UserId> chosen;
  std::vector<bool> used(context.candidates.size(), false);

  while (chosen.size() < context.max_replicas) {
    std::ptrdiff_t best = -1;
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < context.candidates.size(); ++i) {
      if (used[i]) continue;
      const DaySchedule& cand = context.schedule_of(context.candidates[i]);
      if (conrep &&
          !detail::is_connected(cand, connectivity_union, !chosen.empty()))
        continue;
      std::size_t gain = 0;
      for (std::size_t p = 0; p < points.size(); ++p)
        if (!covered[p] && cand.set().contains(points[p])) ++gain;
      if (gain > best_gain) {
        best = static_cast<std::ptrdiff_t>(i);
        best_gain = gain;
      }
    }
    if (best < 0) break;
    used[static_cast<std::size_t>(best)] = true;
    const UserId f = context.candidates[static_cast<std::size_t>(best)];
    chosen.push_back(f);
    const DaySchedule& sched = context.schedule_of(f);
    for (std::size_t p = 0; p < points.size(); ++p)
      if (!covered[p] && sched.set().contains(points[p])) covered[p] = true;
    connectivity_union = connectivity_union.unite(sched);
  }
  return chosen;
}

}  // namespace dosn::placement
