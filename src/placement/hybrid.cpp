#include "placement/hybrid.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace dosn::placement {

HybridPolicy::HybridPolicy(double alpha) : alpha_(alpha) {
  DOSN_REQUIRE(alpha >= 0.0 && alpha <= 1.0,
               "HybridPolicy: alpha must be in [0, 1]");
}

std::string HybridPolicy::name() const {
  return util::format("Hybrid(%.2f)", alpha_);
}

std::vector<UserId> HybridPolicy::select_impl(const PlacementContext& context,
                                         util::Rng&) const {
  DOSN_REQUIRE(context.trace != nullptr, "Hybrid needs the activity trace");
  const bool conrep = context.connectivity == Connectivity::kConRep;
  const DaySchedule& owner = context.schedule_of(context.user);

  std::vector<double> activity(context.candidates.size());
  double max_activity = 0.0;
  for (std::size_t i = 0; i < context.candidates.size(); ++i) {
    activity[i] = static_cast<double>(context.trace->interaction_count(
        context.user, context.candidates[i]));
    max_activity = std::max(max_activity, activity[i]);
  }
  if (max_activity > 0.0)
    for (auto& a : activity) a /= max_activity;

  interval::IntervalSet covered = owner.set();
  DaySchedule connectivity_union = owner;
  std::vector<UserId> chosen;
  std::vector<bool> used(context.candidates.size(), false);

  while (chosen.size() < context.max_replicas) {
    // Collect eligible candidates with their raw coverage gains first: the
    // coverage component is normalized over the current pool.
    std::vector<std::pair<std::size_t, Seconds>> eligible;
    Seconds max_gain = 0;
    for (std::size_t i = 0; i < context.candidates.size(); ++i) {
      if (used[i]) continue;
      const DaySchedule& cand = context.schedule_of(context.candidates[i]);
      if (conrep &&
          !detail::is_connected(cand, connectivity_union, !chosen.empty()))
        continue;
      const Seconds gain = cand.set().subtract(covered).measure();
      eligible.emplace_back(i, gain);
      max_gain = std::max(max_gain, gain);
    }
    if (eligible.empty()) break;

    std::ptrdiff_t best = -1;
    double best_score = -1.0;
    for (const auto& [i, gain] : eligible) {
      const double coverage =
          max_gain > 0 ? static_cast<double>(gain) /
                             static_cast<double>(max_gain)
                       : 0.0;
      const double score = alpha_ * activity[i] + (1.0 - alpha_) * coverage;
      if (score > best_score) {
        best_score = score;
        best = static_cast<std::ptrdiff_t>(i);
      }
    }
    // Stop once no candidate contributes on either axis.
    if (best < 0 || best_score <= 0.0) break;
    used[static_cast<std::size_t>(best)] = true;
    const UserId f = context.candidates[static_cast<std::size_t>(best)];
    chosen.push_back(f);
    const DaySchedule& sched = context.schedule_of(f);
    covered = covered.unite(sched.set());
    connectivity_union = connectivity_union.unite(sched);
  }
  return chosen;
}

}  // namespace dosn::placement
