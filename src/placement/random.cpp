#include "placement/random.hpp"

namespace dosn::placement {

std::vector<UserId> RandomPolicy::select_impl(const PlacementContext& context,
                                         util::Rng& rng) const {
  std::vector<UserId> pool(context.candidates.begin(),
                           context.candidates.end());
  const bool conrep = context.connectivity == Connectivity::kConRep;

  std::vector<UserId> chosen;
  if (!conrep) {
    rng.shuffle(pool);
    const std::size_t take = std::min(pool.size(), context.max_replicas);
    chosen.assign(pool.begin(),
                  pool.begin() + static_cast<std::ptrdiff_t>(take));
    return chosen;
  }

  DaySchedule connectivity_union = context.schedule_of(context.user);
  while (chosen.size() < context.max_replicas && !pool.empty()) {
    std::vector<std::size_t> connected;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (detail::is_connected(context.schedule_of(pool[i]),
                               connectivity_union, !chosen.empty()))
        connected.push_back(i);
    }
    if (connected.empty()) break;
    const std::size_t pick =
        connected[static_cast<std::size_t>(rng.below(connected.size()))];
    const UserId f = pool[pick];
    chosen.push_back(f);
    connectivity_union = connectivity_union.unite(context.schedule_of(f));
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return chosen;
}

}  // namespace dosn::placement
