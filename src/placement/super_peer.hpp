// SuperNova-style super-peer storekeeper tier (Sharma & Datta,
// PAPERS.md).
//
// In SuperNova, nodes with good uptime volunteer as *storekeepers*: they
// host the data of users whose own friend-replica group cannot keep the
// profile available. This module realizes that tier on top of any
// ReplicaPolicy selection:
//
//   * the volunteer directory is global and deterministic — every user
//     whose DaySchedule coverage() reaches volunteer_threshold
//     volunteers, in id order;
//   * a user whose group (owner + selected replicas) already meets
//     target_availability gets no storekeepers — the tier only steps in
//     for the poorly covered;
//   * otherwise storekeepers are drawn from the per-user stream
//     Rng(mix64(mix64(seed, kStorekeeperTag), user)): uniform picks over
//     the directory, skipping the owner, group members, duplicates and
//     crashed volunteers (the fault layer's churn — a crashed volunteer
//     is skipped and the walk simply continues, which is the graceful
//     re-assignment), until the union coverage reaches the target or the
//     max_storekeepers budget / attempt bound runs out.
//
// Determinism and monotonicity: the walk for a lower target is an exact
// prefix of the walk for a higher one (identical draws and skip
// decisions; only the stop condition differs), so raising
// target_availability only ever *adds* storekeepers — delivered
// availability is monotone in the knob, not merely in expectation.
// Setting volunteer_threshold to 1.0 empties the directory for any
// realistic schedule population and the regime degrades bit-for-bit to
// the plain replica-group path (the differential test's anchor).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "interval/day_schedule.hpp"
#include "placement/policy.hpp"

namespace dosn::placement {

/// Knobs of the super-peer storekeeper tier.
struct SuperPeerConfig {
  /// Minimum daily coverage() for a node to volunteer as a storekeeper.
  /// 1.0 admits only always-on nodes (none, under every synthetic
  /// online-time model) — the exact ConRep degeneracy.
  double volunteer_threshold = 0.5;
  /// Daily group-union coverage a profile must reach; storekeepers are
  /// assigned until it does (or the budget runs out).
  double target_availability = 0.9;
  /// Storekeeper budget per user.
  std::size_t max_storekeepers = 8;

  friend bool operator==(const SuperPeerConfig&, const SuperPeerConfig&) =
      default;
};

/// Throws ConfigError on out-of-range knobs.
void validate(const SuperPeerConfig& config);

/// Parses the line-based `super_peer key=value ...` text form (scenario
/// grammar discipline: '#' comments, ParseError with the line number on
/// malformed fields, ConfigError on out-of-range values). Later lines
/// override earlier ones.
SuperPeerConfig parse_super_peer(std::string_view text);

/// Round-trips through parse_super_peer.
std::string to_text(const SuperPeerConfig& config);

/// Stream tag of the per-user storekeeper-assignment streams.
inline constexpr std::uint64_t kStorekeeperTag = 0x53544f52454b5052ULL;  // "STOREKPR"

/// The global volunteer directory plus the deterministic storekeeper
/// assignment. Immutable after construction; `schedules` must outlive
/// the directory (the serving run owns both).
class SuperPeerDirectory {
 public:
  SuperPeerDirectory(std::span<const interval::DaySchedule> schedules,
                     const SuperPeerConfig& config);

  const SuperPeerConfig& config() const { return config_; }
  /// Volunteering users in id order.
  std::span<const UserId> volunteers() const { return volunteers_; }
  bool is_volunteer(UserId user) const;

  /// Storekeepers for `user`'s profile, in assignment order. `group` is
  /// the replica group (owner first, then the policy selection) whose
  /// union coverage is tested against the target; `crashed` (optional)
  /// marks volunteers the fault layer currently holds down — they are
  /// skipped and assignment walks on (re-assignment under churn). Pure
  /// function of (schedules, config, user, group, seed, crashed):
  /// thread-safe and bit-identical for every thread count.
  std::vector<UserId> assign_storekeepers(
      UserId user, std::span<const UserId> group, std::uint64_t seed,
      const std::function<bool(UserId)>& crashed = {}) const;

 private:
  SuperPeerConfig config_;
  std::span<const interval::DaySchedule> schedules_;
  std::vector<UserId> volunteers_;
};

}  // namespace dosn::placement
