#include "placement/super_peer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dosn::placement {

using interval::Interval;
using interval::IntervalSet;
using interval::Seconds;

void validate(const SuperPeerConfig& config) {
  if (config.volunteer_threshold < 0.0 || config.volunteer_threshold > 1.0)
    throw ConfigError("super_peer: volunteer_threshold must be in [0, 1]");
  if (config.target_availability < 0.0 || config.target_availability > 1.0)
    throw ConfigError("super_peer: target_availability must be in [0, 1]");
  if (config.max_storekeepers > 64)
    throw ConfigError("super_peer: max_storekeepers must be <= 64");
}

SuperPeerDirectory::SuperPeerDirectory(
    std::span<const interval::DaySchedule> schedules,
    const SuperPeerConfig& config)
    : config_(config), schedules_(schedules) {
  validate(config);
  // Volunteers in id order: coverage() >= threshold. Integer-exact test
  // (threshold scaled to seconds, rounded up) so the set cannot depend
  // on floating-point associativity anywhere.
  const auto threshold_secs = static_cast<Seconds>(
      std::ceil(config_.volunteer_threshold *
                static_cast<double>(interval::kDaySeconds)));
  for (std::size_t u = 0; u < schedules.size(); ++u)
    if (schedules[u].online_seconds() >= threshold_secs)
      volunteers_.push_back(static_cast<UserId>(u));
}

bool SuperPeerDirectory::is_volunteer(UserId user) const {
  return std::binary_search(volunteers_.begin(), volunteers_.end(), user);
}

std::vector<UserId> SuperPeerDirectory::assign_storekeepers(
    UserId user, std::span<const UserId> group, std::uint64_t seed,
    const std::function<bool(UserId)>& crashed) const {
  std::vector<UserId> picks;
  if (volunteers_.empty() || config_.max_storekeepers == 0) return picks;

  const auto target_secs = static_cast<Seconds>(
      std::ceil(config_.target_availability *
                static_cast<double>(interval::kDaySeconds)));
  IntervalSet cover;
  std::vector<Interval> scratch;
  for (const UserId m : group) {
    DOSN_CHECK(m < schedules_.size(), "super_peer: group member out of range");
    cover.unite_with(schedules_[m].set(), &scratch);
  }
  // The tier only steps in for under-covered groups; a group already at
  // the target consumes no draws (so the walk for a lower target is a
  // prefix of the walk for a higher one — see the header).
  if (cover.measure() >= target_secs) return picks;

  util::Rng stream(util::mix64(util::mix64(seed, kStorekeeperTag), user));
  // The attempt bound makes termination unconditional even when every
  // volunteer is crashed or already a group member.
  std::size_t attempts = config_.max_storekeepers * 8 + 16;
  while (picks.size() < config_.max_storekeepers && attempts-- > 0) {
    const UserId v = volunteers_[stream.below(volunteers_.size())];
    if (v == user) continue;
    if (std::find(group.begin(), group.end(), v) != group.end()) continue;
    if (std::find(picks.begin(), picks.end(), v) != picks.end()) continue;
    if (crashed && crashed(v)) continue;
    picks.push_back(v);
    cover.unite_with(schedules_[v].set(), &scratch);
    if (cover.measure() >= target_secs) break;
  }
  return picks;
}

namespace {

/// Line-parsing scaffolding, net/scenario.cpp's grammar discipline.
struct Fields {
  std::size_t line_no;
  std::vector<std::pair<std::string_view, std::string_view>> kv;
  std::vector<bool> used;

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("super_peer line " + std::to_string(line_no) + ": " +
                     why);
  }

  std::optional<std::string_view> find(std::string_view key) {
    for (std::size_t i = 0; i < kv.size(); ++i)
      if (kv[i].first == key) {
        used[i] = true;
        return kv[i].second;
      }
    return std::nullopt;
  }

  void finish() const {
    for (std::size_t i = 0; i < kv.size(); ++i)
      if (!used[i]) fail("unknown field '" + std::string(kv[i].first) + "'");
  }
};

}  // namespace

SuperPeerConfig parse_super_peer(std::string_view text) {
  SuperPeerConfig config;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = util::trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;

    const auto tokens = util::split_ws(line);
    Fields f{line_no, {}, {}};
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string_view::npos || eq == 0)
        f.fail("expected key=value, got '" + std::string(tokens[i]) + "'");
      f.kv.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
    }
    f.used.assign(f.kv.size(), false);

    if (tokens[0] != "super_peer")
      f.fail("unknown record '" + std::string(tokens[0]) + "'");
    // Every field is optional; later lines override earlier ones.
    if (const auto v = f.find("volunteer_threshold"))
      config.volunteer_threshold = util::parse_f64(*v);
    if (const auto v = f.find("target_availability"))
      config.target_availability = util::parse_f64(*v);
    if (const auto v = f.find("max_storekeepers"))
      config.max_storekeepers = static_cast<std::size_t>(util::parse_i64(*v));
    f.finish();
  }
  validate(config);
  return config;
}

std::string to_text(const SuperPeerConfig& config) {
  return util::format(
      "super_peer volunteer_threshold=%s target_availability=%s "
      "max_storekeepers=%zu\n",
      util::format_double(config.volunteer_threshold).c_str(),
      util::format_double(config.target_availability).c_str(),
      config.max_storekeepers);
}

}  // namespace dosn::placement
