// Hybrid: activity-rank x coverage-gain replica selection (extension).
//
// The paper praises MostActive for being "computationally simpler and not
// requiring knowledge of the user online times" yet notes MaxAv's coverage
// wins. Hybrid explores the continuum: each step scores every (connected)
// candidate as
//
//   score = alpha * activity_score + (1 - alpha) * coverage_score
//
// with both components normalized to [0, 1] over the current candidate
// pool. alpha = 1 degenerates to MostActive's ranking, alpha = 0 to MaxAv.
#pragma once

#include "placement/policy.hpp"

namespace dosn::placement {

class HybridPolicy final : public ReplicaPolicy {
 public:
  explicit HybridPolicy(double alpha = 0.5);

  std::string name() const override;
  std::vector<UserId> select_impl(const PlacementContext& context,
                             util::Rng& rng) const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
};

}  // namespace dosn::placement
