#include "placement/core_group.hpp"

#include <limits>

#include "interval/delay_graph.hpp"

namespace dosn::placement {

std::vector<UserId> CoreGroupPolicy::select_impl(const PlacementContext& context,
                                            util::Rng&) const {
  const bool conrep = context.connectivity == Connectivity::kConRep;
  const auto mode = conrep ? interval::RendezvousMode::kDirect
                           : interval::RendezvousMode::kRelay;
  const DaySchedule& owner = context.schedule_of(context.user);

  interval::IntervalSet covered = owner.set();
  DaySchedule connectivity_union = owner;
  std::vector<DaySchedule> group{owner};

  std::vector<UserId> chosen;
  std::vector<bool> used(context.candidates.size(), false);

  while (chosen.size() < context.max_replicas) {
    std::ptrdiff_t best = -1;
    Seconds best_diameter = 0;
    Seconds best_gain = 0;
    for (std::size_t i = 0; i < context.candidates.size(); ++i) {
      if (used[i]) continue;
      const DaySchedule& cand = context.schedule_of(context.candidates[i]);
      if (conrep &&
          !detail::is_connected(cand, connectivity_union, !chosen.empty()))
        continue;
      const Seconds gain = cand.set().subtract(covered).measure();
      if (gain <= 0) continue;  // only replicas that add availability

      group.push_back(cand);
      const auto delay = interval::group_delay(group, mode);
      group.pop_back();
      // Candidates that would split the group are never preferable.
      const Seconds diameter =
          delay.fully_connected ? delay.diameter
                                : std::numeric_limits<Seconds>::max() / 2;

      const bool better = best < 0 || diameter < best_diameter ||
                          (diameter == best_diameter && gain > best_gain);
      if (better) {
        best = static_cast<std::ptrdiff_t>(i);
        best_diameter = diameter;
        best_gain = gain;
      }
    }
    if (best < 0) break;
    used[static_cast<std::size_t>(best)] = true;
    const UserId f = context.candidates[static_cast<std::size_t>(best)];
    chosen.push_back(f);
    const DaySchedule& sched = context.schedule_of(f);
    covered = covered.unite(sched.set());
    connectivity_union = connectivity_union.unite(sched);
    group.push_back(sched);
  }
  return chosen;
}

}  // namespace dosn::placement
