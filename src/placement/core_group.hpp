// CoreGroup: delay-aware replica selection (extension).
//
// The paper's discussion (Sec V-C) observes that to cut the propagation
// delay "the non-overlapping times among profile replicas have to be
// reduced; this could be achieved with longer online times of a certain
// core group of friends". This policy operationalizes that: a greedy that,
// among candidates still adding coverage, picks the one whose addition
// keeps the group's worst-case delay diameter smallest (tie-break: larger
// coverage gain). It trades a little availability for much fresher data —
// the ablation harness quantifies the trade.
#pragma once

#include "placement/policy.hpp"

namespace dosn::placement {

class CoreGroupPolicy final : public ReplicaPolicy {
 public:
  std::string name() const override { return "CoreGroup"; }
  std::vector<UserId> select_impl(const PlacementContext& context,
                             util::Rng& rng) const override;
};

}  // namespace dosn::placement
