// MostActive: replicate on the friends who interact with the profile most
// (Sec III-B of the paper).
#pragma once

#include "placement/policy.hpp"

namespace dosn::placement {

/// Ranks candidates by the number of activities they created on the user's
/// profile (descending, id ascending for determinism). Candidates with zero
/// recorded activity follow in random order, per the paper ("in case there
/// are no sufficient number of friends with non-zero activity, random
/// friends are chosen"). Under ConRep each step takes the best-ranked
/// *time-connected* remaining candidate.
class MostActivePolicy final : public ReplicaPolicy {
 public:
  std::string name() const override { return "MostActive"; }
  bool randomized() const override { return true; }  // zero-activity filler
  std::vector<UserId> select_impl(const PlacementContext& context,
                             util::Rng& rng) const override;
};

}  // namespace dosn::placement
