#include "placement/most_active.hpp"

#include <algorithm>

namespace dosn::placement {

std::vector<UserId> MostActivePolicy::select_impl(const PlacementContext& context,
                                             util::Rng& rng) const {
  DOSN_REQUIRE(context.trace != nullptr,
               "MostActive needs the activity trace");
  const bool conrep = context.connectivity == Connectivity::kConRep;

  // Rank: activity count descending; zero-activity candidates shuffled.
  struct Ranked {
    UserId id;
    std::size_t count;
  };
  std::vector<Ranked> active;
  std::vector<UserId> idle;
  for (UserId f : context.candidates) {
    const std::size_t c = context.trace->interaction_count(context.user, f);
    if (c > 0)
      active.push_back({f, c});
    else
      idle.push_back(f);
  }
  std::sort(active.begin(), active.end(), [](const Ranked& a, const Ranked& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.id < b.id;
  });
  rng.shuffle(idle);

  std::vector<UserId> order;
  order.reserve(context.candidates.size());
  for (const auto& r : active) order.push_back(r.id);
  order.insert(order.end(), idle.begin(), idle.end());

  std::vector<UserId> chosen;
  if (!conrep) {
    const std::size_t take = std::min(order.size(), context.max_replicas);
    chosen.assign(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(take));
    return chosen;
  }

  DaySchedule connectivity_union = context.schedule_of(context.user);
  std::vector<bool> used(order.size(), false);
  while (chosen.size() < context.max_replicas) {
    std::ptrdiff_t pick = -1;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (used[i]) continue;
      if (detail::is_connected(context.schedule_of(order[i]),
                               connectivity_union, !chosen.empty())) {
        pick = static_cast<std::ptrdiff_t>(i);
        break;  // order is the rank order: first hit is best-ranked
      }
    }
    if (pick < 0) break;
    used[static_cast<std::size_t>(pick)] = true;
    const UserId f = order[static_cast<std::size_t>(pick)];
    chosen.push_back(f);
    connectivity_union = connectivity_union.unite(context.schedule_of(f));
  }
  return chosen;
}

}  // namespace dosn::placement
