#include "trace/dataset.hpp"

#include <algorithm>

namespace dosn::trace {

DatasetStats stats_of(const Dataset& dataset) {
  DatasetStats s;
  s.users = dataset.graph.num_users();
  s.edges = dataset.graph.num_edges();
  s.activities = dataset.trace.size();
  s.average_degree = dataset.graph.average_degree();
  s.average_activities = dataset.trace.average_activities_per_user();
  return s;
}

Dataset filter_users(const Dataset& dataset, const std::vector<bool>& keep,
                     std::vector<graph::UserId>* old_of_new) {
  DOSN_REQUIRE(keep.size() == dataset.num_users(),
               "filter_users: mask size mismatch");
  std::vector<graph::UserId> old_ids;
  graph::SocialGraph new_graph = dataset.graph.induced(keep, &old_ids);

  std::vector<graph::UserId> new_of_old(dataset.num_users(), 0);
  for (std::size_t i = 0; i < old_ids.size(); ++i)
    new_of_old[old_ids[i]] = static_cast<graph::UserId>(i);

  std::vector<Activity> kept;
  for (const auto& a : dataset.trace.all()) {
    if (!keep[a.creator] || !keep[a.receiver]) continue;
    kept.push_back(
        {new_of_old[a.creator], new_of_old[a.receiver], a.timestamp});
  }

  Dataset out;
  out.name = dataset.name;
  out.graph = std::move(new_graph);
  out.trace = ActivityTrace(out.graph.num_users(), std::move(kept));
  if (old_of_new) *old_of_new = std::move(old_ids);
  return out;
}

Dataset filter_min_activity(const Dataset& dataset, std::size_t min_created,
                            std::vector<graph::UserId>* old_of_new) {
  std::vector<bool> keep(dataset.num_users());
  for (graph::UserId u = 0; u < dataset.num_users(); ++u)
    keep[u] = dataset.trace.activities_created(u) >= min_created;
  return filter_users(dataset, keep, old_of_new);
}

Dataset filter_isolated(const Dataset& dataset,
                        std::vector<graph::UserId>* old_of_new) {
  std::vector<bool> keep(dataset.num_users());
  for (graph::UserId u = 0; u < dataset.num_users(); ++u)
    keep[u] = dataset.graph.degree(u) > 0;
  return filter_users(dataset, keep, old_of_new);
}

TemporalSplit split_by_time(const Dataset& dataset, double fraction) {
  DOSN_REQUIRE(fraction > 0.0 && fraction < 1.0,
               "split_by_time: fraction must be in (0, 1)");
  std::vector<Seconds> times;
  times.reserve(dataset.trace.size());
  for (const auto& a : dataset.trace.all()) times.push_back(a.timestamp);
  std::sort(times.begin(), times.end());

  TemporalSplit out;
  if (times.empty()) {
    out.past.name = dataset.name + "-past";
    out.past.graph = dataset.graph;
    out.future.name = dataset.name + "-future";
    out.future.graph = dataset.graph;
    return out;
  }
  const auto cut_index = static_cast<std::size_t>(
      fraction * static_cast<double>(times.size()));
  out.split_at = times[std::min(cut_index, times.size() - 1)];

  std::vector<Activity> past, future;
  for (const auto& a : dataset.trace.all())
    (a.timestamp < out.split_at ? past : future).push_back(a);

  out.past.name = dataset.name + "-past";
  out.past.graph = dataset.graph;
  out.past.trace = ActivityTrace(dataset.num_users(), std::move(past));
  out.future.name = dataset.name + "-future";
  out.future.graph = dataset.graph;
  out.future.trace = ActivityTrace(dataset.num_users(), std::move(future));
  return out;
}

}  // namespace dosn::trace
