#include "trace/parsers.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>

#include "util/strings.hpp"

namespace dosn::trace {
namespace {

bool is_comment_or_blank(std::string_view line) {
  const auto t = util::trim(line);
  return t.empty() || t.front() == '#' || t.front() == '%';
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return in;
}

/// The offending line, printable and bounded, for error messages: control
/// bytes (including embedded NULs) are escaped and long lines truncated so
/// a corrupt input cannot corrupt the diagnostic.
std::string snippet_of(std::string_view line) {
  constexpr std::size_t kMaxSnippet = 60;
  std::string out;
  for (const char c : line.substr(0, kMaxSnippet)) {
    if (std::isprint(static_cast<unsigned char>(c)))
      out.push_back(c);
    else
      out += util::format("\\x%02x", static_cast<unsigned char>(c));
  }
  if (line.size() > kMaxSnippet) out += "...";
  return out;
}

[[noreturn]] void bad_line(const std::string& path, std::size_t line_no,
                           std::string_view line, const std::string& why) {
  throw ParseError(path + ":" + std::to_string(line_no) + ": " + why +
                   " in '" + snippet_of(line) + "'");
}

/// getline loops stop on both EOF and stream failure; only the former is a
/// complete read. A device error mid-file must not pass for a short file.
void require_clean_eof(const std::ifstream& in, const std::string& path,
                       std::size_t line_no) {
  if (in.bad())
    throw IoError(path + ": I/O error while reading near line " +
                  std::to_string(line_no + 1));
}

}  // namespace

UserId IdMap::intern(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  if (names_.size() >= std::numeric_limits<UserId>::max())
    throw ParseError("IdMap: user id space exhausted at " +
                     std::to_string(names_.size()) + " distinct ids");
  const auto id = static_cast<UserId>(names_.size());
  names_.emplace_back(token);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<UserId> IdMap::find(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::vector<RawEdge> load_edge_list(const std::string& path, IdMap& ids) {
  auto in = open_or_throw(path);
  std::vector<RawEdge> edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    const auto fields = util::split_ws(line);
    if (fields.size() < 2)
      bad_line(path, line_no, line, "edge line needs at least two fields");
    // Intern in field order (argument evaluation order is unspecified).
    const UserId a = ids.intern(fields[0]);
    const UserId b = ids.intern(fields[1]);
    edges.emplace_back(a, b);
  }
  require_clean_eof(in, path, line_no);
  return edges;
}

std::vector<Activity> load_activities(const std::string& path, IdMap& ids) {
  auto in = open_or_throw(path);
  std::vector<Activity> activities;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_comment_or_blank(line)) continue;
    const auto fields = util::split_ws(line);
    if (fields.size() < 3)
      bad_line(path, line_no, line,
               "activity line needs `receiver creator timestamp`");
    Activity a;
    a.receiver = ids.intern(fields[0]);
    a.creator = ids.intern(fields[1]);
    try {
      a.timestamp = util::parse_i64(fields[2]);
    } catch (const ParseError&) {
      bad_line(path, line_no, line,
               "bad timestamp '" + std::string(fields[2]) + "'");
    }
    activities.push_back(a);
  }
  require_clean_eof(in, path, line_no);
  return activities;
}

Dataset load_dataset(const std::string& name, const std::string& edges_path,
                     const std::string& activities_path,
                     graph::GraphKind kind) {
  IdMap ids;
  auto edges = load_edge_list(edges_path, ids);
  auto activities = load_activities(activities_path, ids);

  graph::SocialGraphBuilder builder(kind, ids.size());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);

  Dataset out;
  out.name = name;
  out.graph = std::move(builder).build();
  out.trace = ActivityTrace(ids.size(), std::move(activities));
  return out;
}

namespace {

std::ofstream create_or_throw(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) throw IoError("cannot create directory " + parent.string());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + path);
  return out;
}

}  // namespace

void save_edge_list(const std::string& path, const graph::SocialGraph& g) {
  auto out = create_or_throw(path);
  out << "# edge list (" << (g.kind() == graph::GraphKind::kUndirected
                                 ? "undirected"
                                 : "directed: a follows b")
      << ")\n";
  for (UserId u = 0; u < g.num_users(); ++u) {
    for (UserId v : g.out_neighbors(u)) {
      if (g.kind() == graph::GraphKind::kUndirected && v < u) continue;
      out << u << '\t' << v << '\n';
    }
  }
  if (!out) throw IoError("write failure on " + path);
}

void save_activities(const std::string& path, const ActivityTrace& trace) {
  auto out = create_or_throw(path);
  out << "# receiver\tcreator\ttimestamp\n";
  for (const auto& a : trace.all())
    out << a.receiver << '\t' << a.creator << '\t' << a.timestamp << '\n';
  if (!out) throw IoError("write failure on " + path);
}

void save_dataset(const std::string& prefix, const Dataset& dataset) {
  save_edge_list(prefix + ".edges", dataset.graph);
  save_activities(prefix + ".activities", dataset.trace);
}

}  // namespace dosn::trace
