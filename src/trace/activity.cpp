#include "trace/activity.hpp"

#include <algorithm>

namespace dosn::trace {

ActivityTrace::ActivityTrace(std::size_t num_users,
                             std::vector<Activity> activities)
    : by_receiver_(std::move(activities)) {
  for (const auto& a : by_receiver_)
    DOSN_REQUIRE(a.creator < num_users && a.receiver < num_users,
                 "ActivityTrace: user id out of range");

  std::sort(by_receiver_.begin(), by_receiver_.end(),
            [](const Activity& a, const Activity& b) {
              if (a.receiver != b.receiver) return a.receiver < b.receiver;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.creator < b.creator;
            });

  received_offsets_.assign(num_users + 1, 0);
  for (const auto& a : by_receiver_) ++received_offsets_[a.receiver + 1];
  for (std::size_t i = 1; i <= num_users; ++i)
    received_offsets_[i] += received_offsets_[i - 1];

  created_.resize(by_receiver_.size());
  for (std::uint32_t i = 0; i < created_.size(); ++i) created_[i] = i;
  std::sort(created_.begin(), created_.end(),
            [this](std::uint32_t x, std::uint32_t y) {
              const Activity& a = by_receiver_[x];
              const Activity& b = by_receiver_[y];
              if (a.creator != b.creator) return a.creator < b.creator;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return x < y;
            });
  created_offsets_.assign(num_users + 1, 0);
  for (std::uint32_t idx : created_)
    ++created_offsets_[by_receiver_[idx].creator + 1];
  for (std::size_t i = 1; i <= num_users; ++i)
    created_offsets_[i] += created_offsets_[i - 1];

  if (!by_receiver_.empty()) {
    auto [lo, hi] = std::minmax_element(
        by_receiver_.begin(), by_receiver_.end(),
        [](const Activity& a, const Activity& b) {
          return a.timestamp < b.timestamp;
        });
    min_ts_ = lo->timestamp;
    max_ts_ = hi->timestamp;
  }
}

std::span<const Activity> ActivityTrace::received_by(UserId u) const {
  DOSN_ASSERT(static_cast<std::size_t>(u) + 1 < received_offsets_.size());
  return {by_receiver_.data() + received_offsets_[u],
          received_offsets_[u + 1] - received_offsets_[u]};
}

std::span<const std::uint32_t> ActivityTrace::created_index(UserId u) const {
  DOSN_ASSERT(static_cast<std::size_t>(u) + 1 < created_offsets_.size());
  return {created_.data() + created_offsets_[u],
          created_offsets_[u + 1] - created_offsets_[u]};
}

std::size_t ActivityTrace::interaction_count(UserId u, UserId f) const {
  std::size_t count = 0;
  for (const auto& a : received_by(u))
    if (a.creator == f) ++count;
  return count;
}

double ActivityTrace::average_activities_per_user() const {
  const std::size_t n = num_users();
  if (n == 0) return 0.0;
  return static_cast<double>(size()) / static_cast<double>(n);
}

}  // namespace dosn::trace
