// A Dataset bundles the social graph with its activity trace and implements
// the paper's filtering pipeline (Sec IV-A): drop users with fewer than a
// minimum number of created activities, then take the induced subgraph and
// the restricted trace.
#pragma once

#include <string>
#include <vector>

#include "graph/social_graph.hpp"
#include "trace/activity.hpp"

namespace dosn::trace {

struct Dataset {
  std::string name;
  graph::SocialGraph graph;
  ActivityTrace trace;

  std::size_t num_users() const { return graph.num_users(); }
};

struct DatasetStats {
  std::size_t users = 0;
  std::size_t edges = 0;
  std::size_t activities = 0;
  double average_degree = 0.0;
  double average_activities = 0.0;
};

DatasetStats stats_of(const Dataset& dataset);

/// Keeps only users with keep[u] == true; the graph becomes the induced
/// subgraph, activities whose creator or receiver was dropped disappear,
/// and ids are renumbered densely. `old_of_new` (optional) receives the
/// surviving users' original ids.
Dataset filter_users(const Dataset& dataset, const std::vector<bool>& keep,
                     std::vector<graph::UserId>* old_of_new = nullptr);

/// The paper's activity filter: keep users who created at least
/// `min_created` activities (wall posts / tweets). Note that activities
/// whose partner is dropped disappear with him, so counts *within the
/// filtered trace* can be lower (single-pass filter, as in the paper).
Dataset filter_min_activity(const Dataset& dataset, std::size_t min_created,
                            std::vector<graph::UserId>* old_of_new = nullptr);

/// The paper's Twitter pre-filter: keep users that have at least one
/// contact (follower / friend) present in the dataset.
Dataset filter_isolated(const Dataset& dataset,
                        std::vector<graph::UserId>* old_of_new = nullptr);

/// Splits the trace at the timestamp below which `fraction` of the
/// activities fall: the "past" (used to estimate online times and friend
/// activity) and the "future" (used to evaluate). Both keep the full
/// graph and user ids.
struct TemporalSplit {
  Dataset past;
  Dataset future;
  Seconds split_at = 0;
};

TemporalSplit split_by_time(const Dataset& dataset, double fraction);

}  // namespace dosn::trace
