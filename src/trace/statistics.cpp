#include "trace/statistics.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "interval/day_schedule.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace dosn::trace {

TraceStatistics trace_statistics(const Dataset& dataset) {
  TraceStatistics stats;
  const auto& trace = dataset.trace;
  if (trace.empty()) return stats;

  // Diurnal profile.
  std::array<double, 24> counts{};
  std::size_t self_posts = 0;
  for (const auto& a : trace.all()) {
    ++counts[static_cast<std::size_t>(
        interval::time_of_day(a.timestamp) / 3600)];
    if (a.creator == a.receiver) ++self_posts;
  }
  const auto total = static_cast<double>(trace.size());
  int peak = 0;
  for (int h = 0; h < 24; ++h) {
    stats.hourly_profile[static_cast<std::size_t>(h)] =
        counts[static_cast<std::size_t>(h)] / total;
    if (counts[static_cast<std::size_t>(h)] >
        counts[static_cast<std::size_t>(peak)])
      peak = h;
  }
  stats.peak_hour = peak;
  stats.self_post_fraction = static_cast<double>(self_posts) / total;

  // Inter-arrival gaps per creator (created_index is time-ordered).
  std::vector<double> gaps;
  for (graph::UserId u = 0; u < dataset.num_users(); ++u) {
    const auto idx = trace.created_index(u);
    for (std::size_t i = 1; i < idx.size(); ++i)
      gaps.push_back(static_cast<double>(trace.activity(idx[i]).timestamp -
                                         trace.activity(idx[i - 1]).timestamp));
  }
  if (!gaps.empty()) {
    stats.median_interarrival =
        static_cast<Seconds>(util::percentile(gaps, 0.5));
    stats.p90_interarrival =
        static_cast<Seconds>(util::percentile(gaps, 0.9));
  }

  // Interaction concentration: per creator, the share of his non-self
  // activities going to his most-contacted partner.
  util::RunningStats concentration;
  std::map<graph::UserId, std::size_t> partner_counts;
  for (graph::UserId u = 0; u < dataset.num_users(); ++u) {
    partner_counts.clear();
    std::size_t outgoing = 0;
    for (std::uint32_t i : trace.created_index(u)) {
      const auto& a = trace.activity(i);
      if (a.receiver == u) continue;
      ++partner_counts[a.receiver];
      ++outgoing;
    }
    if (outgoing == 0) continue;
    std::size_t top = 0;
    for (const auto& [partner, count] : partner_counts)
      top = std::max(top, count);
    concentration.add(static_cast<double>(top) /
                      static_cast<double>(outgoing));
  }
  stats.top_partner_share = concentration.mean();

  stats.span_days = static_cast<double>(trace.max_timestamp() -
                                        trace.min_timestamp()) /
                    86400.0;
  return stats;
}

std::string to_string(const TraceStatistics& stats) {
  std::ostringstream os;
  os << util::format("trace span: %.1f days; peak hour: %02d:00; "
                     "self posts: %.1f%%\n",
                     stats.span_days, stats.peak_hour,
                     100.0 * stats.self_post_fraction);
  os << util::format(
      "inter-arrival per creator: median %s, p90 %s\n",
      util::format_duration_s(static_cast<double>(stats.median_interarrival))
          .c_str(),
      util::format_duration_s(static_cast<double>(stats.p90_interarrival))
          .c_str());
  os << util::format("top-partner share of outgoing activity: %.1f%%\n",
                     100.0 * stats.top_partner_share);
  os << "hourly profile:";
  for (int h = 0; h < 24; ++h)
    os << util::format(" %02d:%.1f%%", h,
                       100.0 * stats.hourly_profile[static_cast<std::size_t>(
                           h)]);
  os << '\n';
  return os.str();
}

}  // namespace dosn::trace
