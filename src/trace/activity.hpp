// Activity traces: timestamped interactions between users.
//
// One Activity models a Facebook wall post or a tweet: it has a creator, a
// receiver (whose profile/wall it lands on) and an absolute timestamp in
// seconds. The trace is the ground truth from which the study derives user
// online times, friend-activity ranks (MostActive placement) and the
// availability-on-demand-activity metric.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/social_graph.hpp"
#include "interval/interval_set.hpp"

namespace dosn::trace {

using graph::UserId;
using interval::Seconds;

struct Activity {
  UserId creator = 0;   ///< who performed the action
  UserId receiver = 0;  ///< whose profile received it
  Seconds timestamp = 0;  ///< absolute seconds (e.g. unix time)

  friend bool operator==(const Activity&, const Activity&) = default;
};

/// Immutable activity trace with per-user indexes.
class ActivityTrace {
 public:
  ActivityTrace() = default;

  /// Takes an arbitrary activity list; user ids must be < num_users.
  ActivityTrace(std::size_t num_users, std::vector<Activity> activities);

  std::size_t num_users() const {
    return received_offsets_.empty() ? 0 : received_offsets_.size() - 1;
  }
  std::size_t size() const { return by_receiver_.size(); }
  bool empty() const { return by_receiver_.empty(); }

  /// All activities, ordered by (receiver, timestamp).
  std::span<const Activity> all() const { return by_receiver_; }

  /// Activities that landed on u's profile, ordered by timestamp.
  std::span<const Activity> received_by(UserId u) const;

  /// Indices (into creator_order()) of activities created by u, ordered by
  /// timestamp; resolve through `activity(i)`.
  std::span<const std::uint32_t> created_index(UserId u) const;

  /// Activity by index into the (receiver, timestamp) ordering.
  const Activity& activity(std::uint32_t index) const {
    DOSN_ASSERT(index < by_receiver_.size());
    return by_receiver_[index];
  }

  std::size_t activities_created(UserId u) const {
    return created_index(u).size();
  }
  std::size_t activities_received(UserId u) const {
    return received_by(u).size();
  }

  /// Number of activities f created on u's profile — the paper's friend
  /// "activity" used by MostActive placement.
  std::size_t interaction_count(UserId u, UserId f) const;

  /// Earliest and one-past-latest timestamp in the trace; {0, 0} if empty.
  Seconds min_timestamp() const { return min_ts_; }
  Seconds max_timestamp() const { return max_ts_; }

  /// Average number of activities created per user.
  double average_activities_per_user() const;

 private:
  std::vector<Activity> by_receiver_;             // sorted (receiver, ts)
  std::vector<std::size_t> received_offsets_;     // CSR over by_receiver_
  std::vector<std::uint32_t> created_;            // indices, sorted (creator, ts)
  std::vector<std::size_t> created_offsets_;      // CSR over created_
  Seconds min_ts_ = 0;
  Seconds max_ts_ = 0;
};

}  // namespace dosn::trace
