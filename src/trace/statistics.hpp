// Descriptive statistics of an activity trace — the characterization a
// measurement paper reports about its dataset (Sec IV-A style).
#pragma once

#include <array>

#include "trace/dataset.hpp"

namespace dosn::trace {

struct TraceStatistics {
  /// Activities per hour-of-day (diurnal profile), fractions summing to 1
  /// (all zeros for an empty trace).
  std::array<double, 24> hourly_profile{};
  /// The hour with the most activity.
  int peak_hour = 0;
  /// Median / P90 gap between consecutive activities of the same creator,
  /// in seconds (0 when no user has two activities).
  Seconds median_interarrival = 0;
  Seconds p90_interarrival = 0;
  /// Fraction of activities whose receiver is the creator (self posts).
  double self_post_fraction = 0.0;
  /// Fraction of (creator -> receiver) activity mass carried by each
  /// creator's single most-contacted partner, averaged over creators with
  /// partners — the interaction concentration MostActive exploits.
  double top_partner_share = 0.0;
  /// Trace span in days.
  double span_days = 0.0;
};

TraceStatistics trace_statistics(const Dataset& dataset);

/// Renders the statistics as an aligned text block.
std::string to_string(const TraceStatistics& stats);

}  // namespace dosn::trace
