// Parsers for on-disk dataset formats.
//
// The paper evaluates on the Facebook New Orleans trace (Viswanath et al.,
// WOSN'09) and a Twitter trace (Galuba et al., WOSN'10). Those files are
// simple whitespace-separated text:
//
//   * edge list   — one edge per line: `<userA> <userB>` (plus an optional
//     trailing field such as the link-creation timestamp or `\N`, which is
//     ignored). For a directed graph the line means "<userA> follows
//     <userB>".
//   * activities  — one activity per line: `<receiver> <creator>
//     <unix-timestamp>`: for Facebook, <creator> posted on <receiver>'s
//     wall; for Twitter, <creator> tweeted and <receiver> is the account
//     whose timeline records it (the creator himself for plain tweets).
//
// Lines starting with '#' or '%' are comments. User ids are arbitrary
// tokens, interned into dense UserIds shared between the two files.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "trace/dataset.hpp"

namespace dosn::trace {

/// Dense interning of external user id tokens.
class IdMap {
 public:
  /// Returns the dense id for a token, creating one on first sight.
  UserId intern(std::string_view token);

  /// Dense id if known; nullopt otherwise.
  std::optional<UserId> find(std::string_view token) const;

  std::size_t size() const { return names_.size(); }
  const std::string& name_of(UserId id) const {
    DOSN_ASSERT(id < names_.size());
    return names_[id];
  }

 private:
  // lint:ordered-ok — lookup-only interning table; dense ids are handed out
  // in first-sight order and all iteration happens over names_ instead.
  std::unordered_map<std::string, UserId> ids_;
  std::vector<std::string> names_;
};

/// Raw edge read from an edge-list file (dense ids).
using RawEdge = std::pair<UserId, UserId>;

/// Parses an edge-list file, interning ids into `ids`.
std::vector<RawEdge> load_edge_list(const std::string& path, IdMap& ids);

/// Parses an activity file (`receiver creator timestamp`), interning ids.
std::vector<Activity> load_activities(const std::string& path, IdMap& ids);

/// Loads a complete dataset from an edge-list file and an activity file
/// sharing a user-id namespace.
Dataset load_dataset(const std::string& name, const std::string& edges_path,
                     const std::string& activities_path,
                     graph::GraphKind kind);

/// Writes an edge list readable by load_edge_list (ids written as numbers).
void save_edge_list(const std::string& path, const graph::SocialGraph& g);

/// Writes an activity file readable by load_activities.
void save_activities(const std::string& path, const ActivityTrace& trace);

/// Saves both files of a dataset: `<prefix>.edges` and `<prefix>.activities`.
void save_dataset(const std::string& prefix, const Dataset& dataset);

}  // namespace dosn::trace
