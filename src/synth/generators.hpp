// Synthetic social-network dataset generation.
//
// The paper's raw traces (Facebook New Orleans wall posts, the WOSN'10
// Twitter trace) are not redistributable, so the study ships with generators
// that reproduce the three properties every metric in the paper depends on:
//
//   1. a heavy-tailed degree distribution (Fig 2) — users get power-law
//      weights and edges are drawn with endpoint probability proportional
//      to weight (Chung–Lu style stub sampling via an alias table);
//   2. heavy-tailed, degree-correlated activity volume — so that the
//      "filter users with < 10 activities" pipeline reshapes the dataset
//      the way it reshaped the real traces;
//   3. diurnal, per-user-clustered activity timestamps — each user has a
//      persistent "home" hour around which most of his actions happen, so
//      the FixedLength online-time model (window centred on the activity
//      mode) and the Sporadic model both behave as they would on real data.
#pragma once

#include <functional>
#include <span>

#include "graph/social_graph.hpp"
#include "trace/activity.hpp"
#include "util/rng.hpp"

namespace dosn::synth {

struct GraphGenConfig {
  std::size_t users = 1000;
  /// Expected mean of the contacts view (friends resp. followers).
  double avg_degree = 20.0;
  /// Pareto shape of user popularity weights; smaller = heavier tail.
  double weight_alpha = 1.8;
  double min_weight = 1.0;
  /// Expected triadic-closure attempts per node (undirected graphs only):
  /// each attempt links two random neighbours of a node, raising the
  /// clustering coefficient towards real social-graph levels. The study's
  /// metrics are triangle-insensitive (placement happens inside each ego
  /// neighbourhood), so the default is off.
  double triadic_closure = 0.0;
};

/// Generates an undirected friendship graph or a directed follow graph with
/// a power-law degree distribution. For directed graphs the *followee* is
/// drawn proportionally to weight (popular accounts attract followers) and
/// the follower with a damped weight bias.
graph::SocialGraph generate_power_law_graph(const GraphGenConfig& config,
                                            graph::GraphKind kind,
                                            util::Rng& rng);

struct ActivityGenConfig {
  /// Expected activities per user before filtering.
  double mean_activities = 14.0;
  /// Pareto shape of per-user volume noise; smaller = heavier tail.
  double volume_alpha = 1.6;
  /// Exponent coupling volume to (degree + 1): sociable users post more.
  double degree_coupling = 0.8;
  /// Trace length in days.
  int num_days = 14;
  /// Absolute timestamp of day 0, 00:00.
  trace::Seconds start_timestamp = 1'250'000'000;
  /// Zipf exponent for choosing interaction partners among neighbours:
  /// larger = interactions concentrate on few friends (drives MostActive).
  double partner_zipf = 1.0;
  /// Strength of the preference for high-degree partners (0 = partner
  /// order fully random). Real interactions skew towards sociable users —
  /// and such partners survive the activity filter, like in the traces.
  double partner_degree_bias = 0.75;
  /// Probability an activity targets the creator's own profile (own wall
  /// post / plain tweet) rather than a neighbour's.
  double self_post_prob = 0.3;
  /// Probability an activity happens near the user's home hour.
  double home_concentration = 0.7;
  /// Spread (hours) around the home hour.
  double home_stddev_h = 1.5;
  /// Hard cap on one user's activity count (keeps the tail sane).
  std::size_t max_per_user = 2000;
};

/// Generates a timestamped activity trace over `graph`. Partners are the
/// creator's out-neighbours (friends resp. followees), picked with a Zipf
/// bias over a per-user random preference order.
trace::ActivityTrace generate_activities(const graph::SocialGraph& graph,
                                         const ActivityGenConfig& config,
                                         util::Rng& rng);

/// Receives one creator chunk of the activity stream: every activity
/// created by users in [first_user, end_user), grouped by creator in
/// ascending order. The span aliases an internal buffer that is reused
/// after the sink returns — copy out what must be kept.
using ActivityChunkSink =
    std::function<void(graph::UserId first_user, graph::UserId end_user,
                       std::span<const trace::Activity>)>;

/// Streaming form of generate_activities: emits the trace creator-chunk by
/// creator-chunk (`chunk_users` creators at a time) without ever holding
/// the full activity set. Consumes `rng` in exactly the order
/// generate_activities does, so the concatenation of all chunks equals the
/// materialized trace bit for bit — generate_activities is implemented on
/// top of this function, and tests/test_synth.cpp asserts the equivalence.
/// Peak memory is O(users) for the volume-normalization pass plus one
/// chunk of activities.
void generate_activities_chunked(const graph::SocialGraph& graph,
                                 const ActivityGenConfig& config,
                                 util::Rng& rng, std::size_t chunk_users,
                                 const ActivityChunkSink& sink);

}  // namespace dosn::synth
