#include "synth/scale.hpp"

#include <algorithm>

#include "graph/degree_stats.hpp"
#include "onlinetime/sporadic.hpp"

namespace dosn::synth {

using graph::UserId;
using interval::DaySchedule;
using interval::Seconds;
using trace::Activity;

ScaleStudyInput build_scale_study_input(const ScaleInputConfig& config,
                                        std::uint64_t seed) {
  DOSN_REQUIRE(config.chunk_users >= 1,
               "build_scale_study_input: chunk_users must be >= 1");
  const onlinetime::SporadicModel model(config.session_length);

  ScaleStudyInput out;
  out.model_name = model.name();

  // Graph and activities draw from one sequential stream, exactly as
  // generate_raw() does (graph first, then activities).
  util::Rng gen_rng(seed);
  graph::SocialGraph g =
      generate_power_law_graph(config.preset.graph, config.preset.kind,
                               gen_rng);

  out.cohort_degree = config.cohort_degree != 0
                          ? config.cohort_degree
                          : graph::most_populated_degree(g, 5, 15);
  out.cohort = graph::users_with_degree(g, out.cohort_degree);
  std::vector<bool> in_cohort(g.num_users(), false);
  for (const UserId u : out.cohort) in_cohort[u] = true;

  // Session offsets draw from the seed engine's rep-0 schedule stream
  // (sim::detail::schedule_stream(seed, 0) = mix64(seed, 0x5ced0000)), so
  // the schedules equal what Study/StreamingStudy would generate from the
  // materialized dataset.
  util::Rng sched_rng(util::mix64(seed, 0x5ced0000));
  const Seconds session = config.session_length;

  std::vector<DaySchedule> schedules(g.num_users());
  std::vector<Activity> retained;
  std::vector<Activity> mine;                 // one creator, sorted
  std::vector<interval::Interval> sessions;   // one creator's sessions

  generate_activities_chunked(
      g, config.preset.activity, gen_rng, config.chunk_users,
      [&](UserId first, UserId end, std::span<const Activity> chunk) {
        out.total_activities += chunk.size();
        // The chunk is grouped by creator in ascending order; walk the
        // runs (creators without activities have empty runs).
        std::size_t i = 0;
        for (UserId u = first; u < end; ++u) {
          const std::size_t begin = i;
          while (i < chunk.size() && chunk[i].creator == u) ++i;
          if (i == begin) continue;  // no activities: empty schedule

          // SporadicModel draws one session offset per created activity
          // in created_index order, which within one creator is
          // (timestamp, then by_receiver rank) = (timestamp, receiver).
          // Sorting the run by that key reproduces the draw order, so
          // the schedule union is bit-identical to the model's.
          mine.assign(chunk.begin() + static_cast<std::ptrdiff_t>(begin),
                      chunk.begin() + static_cast<std::ptrdiff_t>(i));
          std::sort(mine.begin(), mine.end(),
                    [](const Activity& a, const Activity& b) {
                      if (a.timestamp != b.timestamp)
                        return a.timestamp < b.timestamp;
                      return a.receiver < b.receiver;
                    });
          sessions.clear();
          for (const Activity& a : mine) {
            const auto offset = static_cast<Seconds>(
                sched_rng.below(static_cast<std::uint64_t>(session)));
            sessions.push_back(
                {a.timestamp - offset, a.timestamp - offset + session});
          }
          schedules[u] = DaySchedule::project(sessions);

          for (std::size_t j = begin; j < i; ++j)
            if (in_cohort[chunk[j].receiver]) retained.push_back(chunk[j]);
        }
        DOSN_ASSERT(i == chunk.size());
      });

  out.dataset.name = config.preset.name;
  out.dataset.graph = std::move(g);
  out.dataset.trace = trace::ActivityTrace(out.dataset.graph.num_users(),
                                           std::move(retained));
  out.schedules = std::move(schedules);
  return out;
}

}  // namespace dosn::synth
