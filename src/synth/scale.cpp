#include "synth/scale.hpp"

#include <algorithm>
#include <thread>

#include "graph/degree_stats.hpp"
#include "obs/obs.hpp"
#include "onlinetime/sporadic.hpp"
#include "util/spsc_queue.hpp"

namespace dosn::synth {

using graph::UserId;
using interval::DaySchedule;
using interval::Seconds;
using trace::Activity;

namespace {

// Pipeline metrics (DESIGN.md §12). Chunk counts are deterministic for a
// fixed preset; the queue high-water gauge depends on producer/consumer
// timing (scheduling-dependent, like span durations and steal counts).
struct ScalePipelineMetrics {
  obs::Counter& chunks =
      obs::Registry::global().counter("synth.scale.chunks");
  obs::Gauge& queue_high_water =
      obs::Registry::global().gauge("synth.scale.queue_high_water");
};

ScalePipelineMetrics& pipeline_metrics() {
  static ScalePipelineMetrics m;
  return m;
}

/// Everything build_scale_study_input derives before the activity stream
/// starts, shared by the serial and pipelined folds.
struct FoldState {
  graph::SocialGraph graph;
  std::vector<bool> in_cohort;
  util::Rng sched_rng;
  Seconds session = 0;
  std::vector<DaySchedule> schedules;
  std::vector<Activity> retained;
  std::uint64_t total_activities = 0;

  FoldState(graph::SocialGraph g, const std::vector<UserId>& cohort,
            std::uint64_t seed, Seconds session_length)
      // Session offsets draw from the seed engine's rep-0 schedule stream
      // (sim::detail::schedule_stream(seed, 0) = mix64(seed, 0x5ced0000)),
      // so the schedules equal what Study/StreamingStudy would generate
      // from the materialized dataset.
      : graph(std::move(g)),
        in_cohort(graph.num_users(), false),
        sched_rng(util::mix64(seed, 0x5ced0000)),
        session(session_length),
        schedules(graph.num_users()) {
    for (const UserId u : cohort) in_cohort[u] = true;
  }
};

/// The reference fold: one chunk at a time on the calling thread, in
/// exactly the order generate_activities_chunked emits it.
void fold_chunks_serial(FoldState& state, const ScaleInputConfig& config,
                        util::Rng& gen_rng) {
  std::vector<Activity> mine;                // one creator, sorted
  std::vector<interval::Interval> sessions;  // one creator's sessions

  generate_activities_chunked(
      state.graph, config.preset.activity, gen_rng, config.chunk_users,
      [&](UserId first, UserId end, std::span<const Activity> chunk) {
        state.total_activities += chunk.size();
        pipeline_metrics().chunks.add(1);
        // The chunk is grouped by creator in ascending order; walk the
        // runs (creators without activities have empty runs).
        std::size_t i = 0;
        for (UserId u = first; u < end; ++u) {
          const std::size_t begin = i;
          while (i < chunk.size() && chunk[i].creator == u) ++i;
          if (i == begin) continue;  // no activities: empty schedule

          // SporadicModel draws one session offset per created activity
          // in created_index order, which within one creator is
          // (timestamp, then by_receiver rank) = (timestamp, receiver).
          // Sorting the run by that key reproduces the draw order, so
          // the schedule union is bit-identical to the model's.
          mine.assign(chunk.begin() + static_cast<std::ptrdiff_t>(begin),
                      chunk.begin() + static_cast<std::ptrdiff_t>(i));
          std::sort(mine.begin(), mine.end(),
                    [](const Activity& a, const Activity& b) {
                      if (a.timestamp != b.timestamp)
                        return a.timestamp < b.timestamp;
                      return a.receiver < b.receiver;
                    });
          sessions.clear();
          for (const Activity& a : mine) {
            const auto offset = static_cast<Seconds>(state.sched_rng.below(
                static_cast<std::uint64_t>(state.session)));
            sessions.push_back(
                {a.timestamp - offset, a.timestamp - offset + state.session});
          }
          state.schedules[u] = DaySchedule::project(sessions);

          for (std::size_t j = begin; j < i; ++j)
            if (state.in_cohort[chunk[j].receiver])
              state.retained.push_back(chunk[j]);
        }
        DOSN_ASSERT(i == chunk.size());
      });
}

/// One generator chunk in flight between the producer thread and the
/// folding stages. Buffers cycle through a recycle queue so steady-state
/// pipelining does not allocate.
struct GenChunk {
  UserId first = 0;
  UserId end = 0;
  std::vector<Activity> acts;
};

/// The pipelined fold: the activity generator runs on a producer thread
/// feeding a bounded SPSC queue; each popped chunk is folded in four
/// stages — (A) parallel argsort of every creator run by (timestamp,
/// receiver), (B) serial session-offset draws walking runs in creator
/// order and activities in sorted order (the exact sched_rng draw order
/// of the serial fold), (C) parallel DaySchedule projection per run, and
/// (D) the serial cohort-restricted append in original chunk order. The
/// RNG streams and every order-sensitive append are untouched, so the
/// result is bit-identical to fold_chunks_serial.
void fold_chunks_pipelined(FoldState& state, const ScaleInputConfig& config,
                           util::Rng& gen_rng,
                           util::PipelineRuntime& runtime) {
  const std::size_t queue_capacity =
      std::max<std::size_t>(1, config.pipeline_queue_capacity);
  util::SpscQueue<GenChunk> chunks(queue_capacity);
  util::SpscQueue<GenChunk> recycle(queue_capacity + 1);

  std::exception_ptr producer_error;
  // lint:atomics-ok — the pipeline's one serial producer stage (DESIGN.md
  // §12): joined before return, and every shared handoff goes through the
  // SPSC queues' release/acquire protocol, never ad-hoc shared state.
  std::thread producer([&] {
    try {
      generate_activities_chunked(
          state.graph, config.preset.activity, gen_rng, config.chunk_users,
          [&](UserId first, UserId end, std::span<const Activity> chunk) {
            GenChunk buffer;
            recycle.try_pop(buffer);  // reuse a drained buffer if one is back
            buffer.first = first;
            buffer.end = end;
            buffer.acts.assign(chunk.begin(), chunk.end());
            pipeline_metrics().queue_high_water.record_max(
                static_cast<std::int64_t>(chunks.size() + 1));
            chunks.push(std::move(buffer));
          });
    } catch (...) {
      producer_error = std::current_exception();
    }
    chunks.close();
  });

  struct Run {
    UserId creator = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<Run> runs;
  std::vector<std::uint32_t> order;          // per-chunk argsort, flat
  std::vector<interval::Interval> sessions;  // flat; run r owns its slice

  try {
    GenChunk buffer;
    while (chunks.pop(buffer)) {
      const std::vector<Activity>& acts = buffer.acts;
      state.total_activities += acts.size();
      pipeline_metrics().chunks.add(1);

      // Runs of consecutive equal creators (ascending by construction).
      runs.clear();
      for (std::size_t i = 0; i < acts.size();) {
        const UserId u = acts[i].creator;
        const std::size_t begin = i;
        while (i < acts.size() && acts[i].creator == u) ++i;
        runs.push_back({u, begin, i});
      }
      order.resize(acts.size());
      sessions.resize(acts.size());

      // Stage A (parallel): argsort each run by (timestamp, receiver) —
      // the SporadicModel draw order. Ties are fully identical activities
      // (same creator/receiver/timestamp), so any tie order yields the
      // same sessions.
      runtime.parallel_for_index(runs.size(), [&](std::size_t r) {
        const Run& run = runs[r];
        for (std::size_t j = run.begin; j < run.end; ++j)
          order[j] = static_cast<std::uint32_t>(j);
        std::sort(order.begin() + static_cast<std::ptrdiff_t>(run.begin),
                  order.begin() + static_cast<std::ptrdiff_t>(run.end),
                  [&acts](std::uint32_t a, std::uint32_t b) {
                    if (acts[a].timestamp != acts[b].timestamp)
                      return acts[a].timestamp < acts[b].timestamp;
                    return acts[a].receiver < acts[b].receiver;
                  });
      });

      // Stage B (serial): one offset per activity, runs in creator order,
      // sorted order within a run — the serial fold's exact draw order.
      for (const Run& run : runs) {
        for (std::size_t j = run.begin; j < run.end; ++j) {
          const Activity& a = acts[order[j]];
          const auto offset = static_cast<Seconds>(state.sched_rng.below(
              static_cast<std::uint64_t>(state.session)));
          sessions[j] = {a.timestamp - offset,
                         a.timestamp - offset + state.session};
        }
      }

      // Stage C (parallel): project each creator's sessions onto the day.
      runtime.parallel_for_index(runs.size(), [&](std::size_t r) {
        const Run& run = runs[r];
        state.schedules[run.creator] = DaySchedule::project(
            std::span<const interval::Interval>(sessions).subspan(
                run.begin, run.end - run.begin));
      });

      // Stage D (serial): cohort-restricted trace in original chunk order
      // (chunks are creator-grouped, so this equals the serial fold's
      // per-run append sequence).
      for (const Activity& a : acts)
        if (state.in_cohort[a.receiver]) state.retained.push_back(a);

      buffer.acts.clear();
      recycle.try_push(std::move(buffer));
    }
  } catch (...) {
    // Drain so the producer's blocking push can finish, then rethrow.
    GenChunk drained;
    while (chunks.pop(drained)) {
    }
    producer.join();
    throw;
  }
  producer.join();
  if (producer_error) std::rethrow_exception(producer_error);
}

}  // namespace

ScaleStudyInput build_scale_study_input(const ScaleInputConfig& config,
                                        std::uint64_t seed) {
  return build_scale_study_input(config, seed, nullptr);
}

ScaleStudyInput build_scale_study_input(const ScaleInputConfig& config,
                                        std::uint64_t seed,
                                        util::PipelineRuntime* runtime) {
  DOSN_REQUIRE(config.chunk_users >= 1,
               "build_scale_study_input: chunk_users must be >= 1");
  const onlinetime::SporadicModel model(config.session_length);

  ScaleStudyInput out;
  out.model_name = model.name();

  // Graph and activities draw from one sequential stream, exactly as
  // generate_raw() does (graph first, then activities).
  util::Rng gen_rng(seed);
  graph::SocialGraph g =
      generate_power_law_graph(config.preset.graph, config.preset.kind,
                               gen_rng);

  out.cohort_degree = config.cohort_degree != 0
                          ? config.cohort_degree
                          : graph::most_populated_degree(g, 5, 15);
  out.cohort = graph::users_with_degree(g, out.cohort_degree);

  FoldState state(std::move(g), out.cohort, seed, config.session_length);
  if (runtime != nullptr && runtime->thread_count() > 1)
    fold_chunks_pipelined(state, config, gen_rng, *runtime);
  else
    fold_chunks_serial(state, config, gen_rng);

  out.total_activities = state.total_activities;
  out.dataset.name = config.preset.name;
  out.dataset.graph = std::move(state.graph);
  out.dataset.trace = trace::ActivityTrace(out.dataset.graph.num_users(),
                                           std::move(state.retained));
  out.schedules = std::move(state.schedules);
  return out;
}

}  // namespace dosn::synth
