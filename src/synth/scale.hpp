// The million-user input path: chunked generation of everything a
// replication sweep needs, without ever materializing the full trace.
//
// A study at scale N needs three things: the social graph (compact CSR),
// one DaySchedule per user (the online-time model), and the activities
// *received by cohort users* (for MostActive ranking and the
// AoD-activity metric — no other sweep component reads the trace).
// build_scale_study_input therefore streams the activity generator
// chunk-by-chunk: each chunk builds its creators' Sporadic schedules
// in place and retains only the cohort-received activities, so peak
// memory is graph + schedules + restricted trace + one chunk, instead of
// the O(mean_activities · N) full trace.
//
// Determinism contract (asserted by tests/test_streaming_equivalence.cpp
// at small N): with the same preset and seed, the dataset equals the
// materialized generate_raw() trace restricted to cohort receivers, and
// the schedules equal SporadicModel::schedules on the materialized
// dataset under the seed engine's rep-0 schedule stream — so a
// StreamingStudy sweep over this input is bit-identical to the seed
// Study path on the materialized dataset.
#pragma once

#include "interval/day_schedule.hpp"
#include "synth/presets.hpp"

namespace dosn::synth {

struct ScaleInputConfig {
  /// Typically scale_preset(...) / million_user(); any preset works.
  DatasetPreset preset;
  /// Creators per generation chunk: the memory/throughput knob.
  std::size_t chunk_users = 65'536;
  /// Evaluation-cohort degree; 0 picks the most populated degree in
  /// [5, 15] (the paper's methodology around degree 10).
  std::size_t cohort_degree = 0;
  /// Sporadic online-time model session length.
  interval::Seconds session_length = 20 * 60;
};

struct ScaleStudyInput {
  /// Full graph plus the cohort-restricted activity trace.
  trace::Dataset dataset;
  /// Sporadic schedule of every user (cohort evaluation needs contacts'
  /// and creators' schedules, so all N are materialized — ~100 bytes per
  /// active user, the dominant but bounded term of the envelope).
  std::vector<interval::DaySchedule> schedules;
  std::vector<graph::UserId> cohort;
  std::size_t cohort_degree = 0;
  /// Activities generated (pre-restriction); the restricted count is
  /// dataset.trace.size().
  std::uint64_t total_activities = 0;
  /// Name of the online-time model realized in `schedules`.
  std::string model_name;
};

/// Builds the streaming-study input for `config.preset` from one seed.
ScaleStudyInput build_scale_study_input(const ScaleInputConfig& config,
                                        std::uint64_t seed);

}  // namespace dosn::synth
