// The million-user input path: chunked generation of everything a
// replication sweep needs, without ever materializing the full trace.
//
// A study at scale N needs three things: the social graph (compact CSR),
// one DaySchedule per user (the online-time model), and the activities
// *received by cohort users* (for MostActive ranking and the
// AoD-activity metric — no other sweep component reads the trace).
// build_scale_study_input therefore streams the activity generator
// chunk-by-chunk: each chunk builds its creators' Sporadic schedules
// in place and retains only the cohort-received activities, so peak
// memory is graph + schedules + restricted trace + one chunk, instead of
// the O(mean_activities · N) full trace.
//
// Determinism contract (asserted by tests/test_streaming_equivalence.cpp
// at small N): with the same preset and seed, the dataset equals the
// materialized generate_raw() trace restricted to cohort receivers, and
// the schedules equal SporadicModel::schedules on the materialized
// dataset under the seed engine's rep-0 schedule stream — so a
// StreamingStudy sweep over this input is bit-identical to the seed
// Study path on the materialized dataset.
// Pipelined construction (DESIGN.md §12): the overload taking a
// util::PipelineRuntime runs the activity generator on a dedicated
// producer thread, hands chunks to the caller through a bounded
// util::SpscQueue, and folds each chunk on the runtime's workers — the
// per-creator argsort and DaySchedule projection parallelize, while the
// two RNG streams and the retained-trace append stay serial in their
// original draw/append order. The pipelined result is bit-identical to
// the serial path (same test as above pins it), so generation stops being
// a serial prefix of a scale study without weakening the contract.
#pragma once

#include "interval/day_schedule.hpp"
#include "synth/presets.hpp"
#include "util/pipeline_runtime.hpp"

namespace dosn::synth {

struct ScaleInputConfig {
  /// Typically scale_preset(...) / million_user(); any preset works.
  DatasetPreset preset;
  /// Creators per generation chunk: the memory/throughput knob.
  std::size_t chunk_users = 65'536;
  /// Evaluation-cohort degree; 0 picks the most populated degree in
  /// [5, 15] (the paper's methodology around degree 10).
  std::size_t cohort_degree = 0;
  /// Sporadic online-time model session length.
  interval::Seconds session_length = 20 * 60;
  /// Generator→folder SPSC queue capacity (chunks in flight) for the
  /// pipelined overload; bounds pipeline memory at roughly
  /// `pipeline_queue_capacity · chunk_users · mean_activities` activities.
  std::size_t pipeline_queue_capacity = 2;
};

struct ScaleStudyInput {
  /// Full graph plus the cohort-restricted activity trace.
  trace::Dataset dataset;
  /// Sporadic schedule of every user (cohort evaluation needs contacts'
  /// and creators' schedules, so all N are materialized — ~100 bytes per
  /// active user, the dominant but bounded term of the envelope).
  std::vector<interval::DaySchedule> schedules;
  std::vector<graph::UserId> cohort;
  std::size_t cohort_degree = 0;
  /// Activities generated (pre-restriction); the restricted count is
  /// dataset.trace.size().
  std::uint64_t total_activities = 0;
  /// Name of the online-time model realized in `schedules`.
  std::string model_name;
};

/// Builds the streaming-study input for `config.preset` from one seed.
ScaleStudyInput build_scale_study_input(const ScaleInputConfig& config,
                                        std::uint64_t seed);

/// Same result, built as a pipeline on `runtime`: generation overlaps
/// chunk folding, and the per-chunk sort/projection stages fan out over
/// the runtime's workers. A null or single-threaded runtime falls back to
/// the serial path; every configuration is bit-identical.
ScaleStudyInput build_scale_study_input(const ScaleInputConfig& config,
                                        std::uint64_t seed,
                                        util::PipelineRuntime* runtime);

}  // namespace dosn::synth
