// Calibrated dataset presets standing in for the paper's two traces, plus
// the paper's filtering pipeline composed end to end.
//
// The presets are calibrated against the *post-filter* statistics the paper
// reports (Sec IV-A): Facebook — 13 884 users, average degree 41, ~50
// activities per user, a ≥300-user degree-10 cohort; Twitter — 14 933
// users, average follower count 76, ≥550-user degree-10 cohort. Exact
// numbers differ run to run (the generator is random), but remain in the
// same regime; trend shapes of all figures are insensitive to the residual
// difference.
#pragma once

#include "synth/generators.hpp"
#include "trace/dataset.hpp"

namespace dosn::synth {

struct DatasetPreset {
  std::string name;
  graph::GraphKind kind = graph::GraphKind::kUndirected;
  GraphGenConfig graph;
  ActivityGenConfig activity;
  /// Paper filter: minimum activities a user must have created.
  std::size_t min_created_activities = 10;
};

/// Facebook New Orleans stand-in (full scale, ~60k users pre-filter).
DatasetPreset facebook_preset();

/// Twitter WOSN'10 stand-in (full scale, ~23k users pre-filter).
DatasetPreset twitter_preset();

/// Returns a copy of `preset` with user count (and nothing else) scaled by
/// `factor` — used by tests and the quickstart to run in milliseconds.
DatasetPreset scaled(DatasetPreset preset, double factor);

/// Knobs of the production-scale synthetic populations (the ROADMAP north
/// star): user count, power-law degree tail and activity mix.
struct ScaleOptions {
  std::size_t users = 1'000'000;
  double avg_degree = 14.0;
  /// Pareto shape of the popularity weights feeding the degree
  /// distribution; smaller = heavier tail.
  double weight_alpha = 1.6;
  /// Expected activities per user.
  double mean_activities = 8.0;
  /// Pareto shape of the per-user activity-volume noise.
  double volume_alpha = 1.5;
  /// Activity mix: probability of an own-wall post vs a partner post.
  double self_post_prob = 0.3;
  int num_days = 14;
};

/// Production-scale preset. Unlike the paper presets, scale presets run
/// unfiltered (min_created_activities = 0): the ≥10-activity filter would
/// need a second full pass over the trace, and the generator already
/// couples activity volume to degree, which is what the filter modeled.
DatasetPreset scale_preset(const ScaleOptions& options);

/// scale_preset at one million users — the headline scale target.
DatasetPreset million_user();

/// Generates the raw dataset for a preset (no filtering).
trace::Dataset generate_raw(const DatasetPreset& preset, util::Rng& rng);

/// Full pipeline of the paper: generate, drop users with fewer than
/// `min_created_activities` created activities, drop users left without
/// contacts. This is the dataset all experiments run on.
trace::Dataset generate_study_dataset(const DatasetPreset& preset,
                                      util::Rng& rng);

}  // namespace dosn::synth
