#include "synth/presets.hpp"

#include <algorithm>
#include <cmath>

namespace dosn::synth {

DatasetPreset facebook_preset() {
  DatasetPreset p;
  p.name = "facebook";
  p.kind = graph::GraphKind::kUndirected;
  p.graph.users = 60'000;
  p.graph.avg_degree = 46.0;
  p.graph.weight_alpha = 1.7;
  p.graph.min_weight = 2.0;
  p.activity.mean_activities = 26.0;  // calibrated: filtered mean ~50 (paper)
  p.activity.volume_alpha = 1.12;     // heavy tail concentrates post-filter volume
  p.activity.degree_coupling = 0.8;
  p.activity.num_days = 28;
  p.activity.partner_zipf = 1.1;
  p.activity.self_post_prob = 0.25;
  p.min_created_activities = 10;
  return p;
}

DatasetPreset twitter_preset() {
  DatasetPreset p;
  p.name = "twitter";
  p.kind = graph::GraphKind::kDirected;
  p.graph.users = 23'000;
  p.graph.avg_degree = 72.0;  // follower mean; induced-subgraph loss ~1/3
  // Very heavy tail with a low floor: typical accounts keep ~10 followers
  // while celebrity hubs take thousands, as in the real follow graph.
  p.graph.weight_alpha = 1.15;
  p.graph.min_weight = 1.0;
  p.activity.mean_activities = 15.0;  // calibrated: ~2/3 of users pass the filter
  p.activity.volume_alpha = 2.2;
  p.activity.degree_coupling = 0.5;
  p.activity.num_days = 14;  // the trace covers 10–24 Sep 2009
  p.activity.partner_zipf = 1.2;
  p.activity.self_post_prob = 0.55;  // most tweets are plain, not mentions
  p.min_created_activities = 10;
  return p;
}

DatasetPreset scaled(DatasetPreset preset, double factor) {
  DOSN_REQUIRE(factor > 0.0, "scaled: factor must be positive");
  const auto users = static_cast<std::size_t>(
      std::llround(static_cast<double>(preset.graph.users) * factor));
  preset.graph.users = std::max<std::size_t>(users, 16);
  return preset;
}

DatasetPreset scale_preset(const ScaleOptions& options) {
  DOSN_REQUIRE(options.users >= 16, "scale_preset: users must be >= 16");
  DatasetPreset p;
  p.name = "scale-" + std::to_string(options.users);
  p.kind = graph::GraphKind::kUndirected;
  p.graph.users = options.users;
  p.graph.avg_degree = options.avg_degree;
  p.graph.weight_alpha = options.weight_alpha;
  p.graph.min_weight = 1.0;
  p.activity.mean_activities = options.mean_activities;
  p.activity.volume_alpha = options.volume_alpha;
  p.activity.degree_coupling = 0.6;
  p.activity.num_days = options.num_days;
  p.activity.self_post_prob = options.self_post_prob;
  // Tighter per-user cap than the paper presets: bounds any single
  // creator's contribution to a generation chunk.
  p.activity.max_per_user = 500;
  p.min_created_activities = 0;
  return p;
}

DatasetPreset million_user() { return scale_preset(ScaleOptions{}); }

trace::Dataset generate_raw(const DatasetPreset& preset, util::Rng& rng) {
  trace::Dataset d;
  d.name = preset.name;
  d.graph = generate_power_law_graph(preset.graph, preset.kind, rng);
  d.trace = generate_activities(d.graph, preset.activity, rng);
  return d;
}

trace::Dataset generate_study_dataset(const DatasetPreset& preset,
                                      util::Rng& rng) {
  auto raw = generate_raw(preset, rng);
  auto filtered = trace::filter_min_activity(raw, preset.min_created_activities);
  return trace::filter_isolated(filtered);
}

}  // namespace dosn::synth
