#include "synth/generators.hpp"

#include <algorithm>
#include <cmath>

#include "interval/day_schedule.hpp"
#include "util/alias.hpp"

namespace dosn::synth {

using graph::GraphKind;
using graph::SocialGraph;
using graph::SocialGraphBuilder;
using graph::UserId;
using interval::kDaySeconds;
using trace::Activity;
using trace::Seconds;

namespace {

std::vector<double> draw_weights(const GraphGenConfig& config,
                                 util::Rng& rng) {
  std::vector<double> w(config.users);
  for (auto& x : w) x = rng.pareto(config.min_weight, config.weight_alpha);
  // Clamp the extreme tail so no single hub absorbs a constant fraction of
  // all stubs (that would distort the whole degree distribution).
  const double cap =
      config.min_weight * std::pow(static_cast<double>(config.users), 0.6);
  for (auto& x : w) x = std::min(x, cap);
  return w;
}

/// Wrapped-normal time-of-day sample around `mean_h` hours.
Seconds diurnal_sample(double mean_h, double stddev_h, util::Rng& rng) {
  const double h = rng.normal(mean_h, stddev_h);
  const double wrapped = h - 24.0 * std::floor(h / 24.0);
  return std::min<Seconds>(kDaySeconds - 1,
                           static_cast<Seconds>(wrapped * 3600.0));
}

/// Global two-peak diurnal mixture: lunchtime and evening, as observed in
/// OSN traffic studies, plus a uniform floor.
Seconds global_diurnal_sample(util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.20) return static_cast<Seconds>(rng.below(kDaySeconds));
  if (u < 0.55) return diurnal_sample(13.0, 2.0, rng);
  return diurnal_sample(21.0, 2.5, rng);
}

}  // namespace

SocialGraph generate_power_law_graph(const GraphGenConfig& config,
                                     GraphKind kind, util::Rng& rng) {
  DOSN_REQUIRE(config.users >= 2, "graph gen: need at least two users");
  DOSN_REQUIRE(config.avg_degree > 0, "graph gen: avg_degree must be > 0");
  DOSN_REQUIRE(config.weight_alpha > 1.0,
               "graph gen: weight_alpha must exceed 1 (finite mean)");

  const auto weights = draw_weights(config, rng);
  util::DiscreteSampler popular(weights);

  const double n = static_cast<double>(config.users);
  // Contacts view: undirected edges contribute to two users' degrees,
  // directed (follow) edges only to the followee's follower count.
  const double target_edges = kind == GraphKind::kUndirected
                                  ? config.avg_degree * n / 2.0
                                  : config.avg_degree * n;
  // Oversample slightly: duplicates and self-loops are dropped downstream.
  const auto draws = static_cast<std::size_t>(target_edges * 1.04);

  SocialGraphBuilder builder(kind, config.users);
  if (kind == GraphKind::kUndirected) {
    std::vector<std::pair<UserId, UserId>> base;
    base.reserve(draws);
    for (std::size_t i = 0; i < draws; ++i) {
      const auto a = static_cast<UserId>(popular.draw(rng));
      const auto b = static_cast<UserId>(popular.draw(rng));
      if (a != b) base.emplace_back(a, b);
    }
    for (const auto& [a, b] : base) builder.add_edge(a, b);

    if (config.triadic_closure > 0.0) {
      // Close triangles: for each node, link random neighbour pairs.
      std::vector<std::vector<UserId>> adjacency(config.users);
      for (const auto& [a, b] : base) {
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
      }
      for (UserId u = 0; u < config.users; ++u) {
        const auto& nbrs = adjacency[u];
        if (nbrs.size() < 2) continue;
        const double want = config.triadic_closure;
        auto attempts = static_cast<std::size_t>(want);
        if (rng.uniform() < want - std::floor(want)) ++attempts;
        for (std::size_t t = 0; t < attempts; ++t) {
          const UserId x = nbrs[rng.below(nbrs.size())];
          const UserId y = nbrs[rng.below(nbrs.size())];
          if (x != y) builder.add_edge(x, y);
        }
      }
    }
  } else {
    // Followers have a damped popularity bias: being popular makes you
    // followed much more than it makes you follow.
    std::vector<double> damped(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
      damped[i] = std::sqrt(weights[i]);
    util::DiscreteSampler follower(damped);
    for (std::size_t i = 0; i < draws; ++i) {
      const auto src = static_cast<UserId>(follower.draw(rng));  // follower
      const auto dst = static_cast<UserId>(popular.draw(rng));   // followee
      if (src != dst) builder.add_edge(src, dst);
    }
  }
  return std::move(builder).build();
}

namespace {

/// One creator's activities, appended to `out`. Consumes the RNG in the
/// fixed per-user order the bit-identity of chunked generation relies on:
/// home hour, preference shuffle, degree-bias keys, then per-activity
/// (self-post chance, partner zipf, day, time-of-day) draws.
void generate_user_activities(const SocialGraph& graph,
                              const ActivityGenConfig& config, UserId u,
                              std::size_t count, util::Rng& rng,
                              std::vector<Activity>& out) {
  // Persistent per-user diurnal habit.
  const double home_h =
      static_cast<double>(global_diurnal_sample(rng)) / 3600.0;

  // Per-user preference order over partners with Zipf weights: the first
  // few neighbours receive most interactions, skewed towards sociable
  // (high-degree) partners.
  const auto partners = graph.out_neighbors(u);
  std::vector<UserId> pref(partners.begin(), partners.end());
  rng.shuffle(pref);
  if (config.partner_degree_bias > 0.0 && pref.size() > 1) {
    std::vector<std::pair<double, UserId>> keyed;
    keyed.reserve(pref.size());
    for (UserId v : pref) {
      const double key =
          config.partner_degree_bias *
              std::log(static_cast<double>(graph.degree(v) + 1)) +
          rng.normal();
      keyed.emplace_back(-key, v);
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t i = 0; i < keyed.size(); ++i) pref[i] = keyed[i].second;
  }
  std::optional<util::ZipfTable> zipf;
  if (!pref.empty()) zipf.emplace(pref.size(), config.partner_zipf);

  for (std::size_t k = 0; k < count; ++k) {
    Activity a;
    a.creator = u;
    if (pref.empty() || rng.chance(config.self_post_prob)) {
      a.receiver = u;
    } else {
      a.receiver = pref[zipf->draw(rng) - 1];
    }
    const auto day = static_cast<Seconds>(
        rng.below(static_cast<std::uint64_t>(config.num_days)));
    const Seconds tod =
        rng.chance(config.home_concentration)
            ? diurnal_sample(home_h, config.home_stddev_h, rng)
            : global_diurnal_sample(rng);
    a.timestamp = config.start_timestamp + day * kDaySeconds + tod;
    out.push_back(a);
  }
}

}  // namespace

void generate_activities_chunked(const SocialGraph& graph,
                                 const ActivityGenConfig& config,
                                 util::Rng& rng, std::size_t chunk_users,
                                 const ActivityChunkSink& sink) {
  DOSN_REQUIRE(config.num_days > 0, "activity gen: num_days must be > 0");
  DOSN_REQUIRE(config.mean_activities > 0,
               "activity gen: mean_activities must be > 0");
  DOSN_REQUIRE(config.volume_alpha > 1.0,
               "activity gen: volume_alpha must exceed 1");
  DOSN_REQUIRE(chunk_users >= 1, "activity gen: chunk_users must be >= 1");
  DOSN_REQUIRE(sink != nullptr, "activity gen: sink must be callable");

  const std::size_t n = graph.num_users();

  // Normalize volumes so the realized mean tracks mean_activities: compute
  // raw volume factors first, then scale. This full pass is O(users)
  // memory — the only whole-population state the generator keeps.
  std::vector<double> raw(n);
  double raw_sum = 0.0;
  // Pareto noise with unit mean: x_min = (alpha - 1) / alpha.
  const double x_min = (config.volume_alpha - 1.0) / config.volume_alpha;
  for (std::size_t u = 0; u < n; ++u) {
    const double sociability = std::pow(
        static_cast<double>(graph.degree(static_cast<UserId>(u)) + 1),
        config.degree_coupling);
    raw[u] = sociability * rng.pareto(x_min, config.volume_alpha);
    raw_sum += raw[u];
  }
  const double scale =
      config.mean_activities * static_cast<double>(n) / raw_sum;

  std::vector<Activity> chunk;
  for (std::size_t first = 0; first < n; first += chunk_users) {
    const std::size_t end = std::min(n, first + chunk_users);
    chunk.clear();
    for (std::size_t u = first; u < end; ++u) {
      auto count = static_cast<std::size_t>(std::llround(raw[u] * scale));
      count = std::min(count, config.max_per_user);
      generate_user_activities(graph, config, static_cast<UserId>(u), count,
                               rng, chunk);
    }
    sink(static_cast<UserId>(first), static_cast<UserId>(end), chunk);
  }
}

trace::ActivityTrace generate_activities(const SocialGraph& graph,
                                         const ActivityGenConfig& config,
                                         util::Rng& rng) {
  const std::size_t n = graph.num_users();
  std::vector<Activity> activities;
  activities.reserve(static_cast<std::size_t>(
      config.mean_activities * static_cast<double>(n)));
  // One chunk spanning every creator: the chunked generator consumes the
  // RNG in exactly this order, so this is the same trace it streams.
  generate_activities_chunked(
      graph, config, rng, std::max<std::size_t>(n, 1),
      [&activities](UserId, UserId, std::span<const Activity> chunk) {
        activities.insert(activities.end(), chunk.begin(), chunk.end());
      });
  return trace::ActivityTrace(n, std::move(activities));
}

}  // namespace dosn::synth
