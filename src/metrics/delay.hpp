// Update-propagation delay (Sec II-C3 of the paper).
//
// Replicas of one profile form a weighted "replica time-connectivity
// graph": vertices are the owner plus the replica holders; under ConRep an
// edge joins two vertices whose daily schedules overlap and its weight is
// the worst case, over update times t in the source's online time, of the
// wait until the next instant both are online (for single daily intervals
// this is the paper's `24h − overlap`). Updates travel along multi-hop
// shortest paths; the user's Update Propagation Delay is the weight of the
// longest of the all-pairs shortest paths (the graph's weighted diameter),
// i.e. the worst-case time for an update to reach every replica.
//
// Under UnconRep replicas exchange updates through third-party storage, so
// every ordered pair (i, j) has a direct edge weighing the worst case, over
// t in OT_i, of the wait until j is next online (upload is immediate — the
// creator is online when updating).
//
// The *observed* delay excludes the reader's offline time: of an actual
// delay D ending at a replica j, only the part of D during which j was
// online is experienced by j. We report the worst case over alignments of
// a window of length D ending at an online instant of j.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "interval/day_schedule.hpp"
#include "interval/delay_graph.hpp"
#include "placement/policy.hpp"

namespace dosn::metrics {

using interval::DaySchedule;
using interval::Seconds;
using placement::Connectivity;

struct DelayResult {
  /// Weighted diameter in seconds: worst-case end-to-end (actual) delay.
  Seconds actual = 0;
  /// Worst-case observed delay (seconds of reader online time) for the
  /// diameter pair.
  Seconds observed = 0;
  /// False when some replica pair cannot exchange updates at all (then the
  /// delays cover only the reachable pairs).
  bool fully_connected = true;
  /// Number of vertices that participated (owner + non-empty replicas).
  std::size_t nodes = 0;

  double actual_hours() const { return static_cast<double>(actual) / 3600.0; }
  double observed_hours() const {
    return static_cast<double>(observed) / 3600.0;
  }
};

/// Worst-case delay of one direct exchange from `source` to `target`
/// (ConRep: via their rendezvous overlap; UnconRep: via the relay).
/// nullopt when no exchange is ever possible.
std::optional<Seconds> edge_delay(const DaySchedule& source,
                                  const DaySchedule& target,
                                  Connectivity connectivity);

/// Update propagation delay for one user's replica configuration. Replicas
/// with empty schedules can never exchange updates and are excluded (they
/// also cannot be selected by ConRep placement). With fewer than two
/// participating vertices the delay is zero.
DelayResult update_propagation_delay(const DaySchedule& owner,
                                     std::span<const DaySchedule> replicas,
                                     Connectivity connectivity);

/// Worst observed (reader-online) delay at `reader` for an actual delay of
/// `actual` seconds: max over windows of that length ending at an online
/// instant of the reader. Exposed for testing.
Seconds worst_observed_delay(const DaySchedule& reader, Seconds actual);

/// update_propagation_delay over growing replica prefixes. After pushing
/// replicas r_0..r_{i-1}, result() is identical (bit for bit) to
/// update_propagation_delay(owner, {r_0..r_{i-1}}, connectivity), but the
/// whole prefix sequence costs one pair_delay per ordered node pair instead
/// of one per pair per prefix.
class DelayPrefixEvaluator {
 public:
  DelayPrefixEvaluator(const DaySchedule& owner, Connectivity connectivity);

  /// Appends the next replica of the selection order.
  void push(const DaySchedule& replica);

  /// Restarts the evaluator for a new owner (as freshly constructed) while
  /// keeping buffer capacity — lets one instance serve a whole user shard.
  void reset(const DaySchedule& owner, Connectivity connectivity);

  /// Delay metrics for the owner plus every replica pushed so far.
  DelayResult result() const;

 private:
  std::vector<DaySchedule> nodes_;  ///< owner first, then pushed replicas
  interval::IncrementalGroupDelay group_;
};

}  // namespace dosn::metrics
