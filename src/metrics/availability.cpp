#include "metrics/availability.hpp"

namespace dosn::metrics {

DaySchedule profile_schedule(const DaySchedule& owner,
                             std::span<const DaySchedule> replicas) {
  DaySchedule out = owner;
  for (const auto& r : replicas) out = out.unite(r);
  return out;
}

double availability(const DaySchedule& owner,
                    std::span<const DaySchedule> replicas) {
  return profile_schedule(owner, replicas).coverage();
}

double max_achievable_availability(const DaySchedule& owner,
                                   std::span<const DaySchedule> contacts) {
  return profile_schedule(owner, contacts).coverage();
}

double aod_time(std::span<const DaySchedule> friends,
                const DaySchedule& profile) {
  DaySchedule demand;
  for (const auto& f : friends) demand = demand.unite(f);
  const Seconds demand_s = demand.online_seconds();
  if (demand_s == 0) return 1.0;
  const Seconds served = demand.overlap_seconds(profile);
  return static_cast<double>(served) / static_cast<double>(demand_s);
}

AodActivity aod_activity(const trace::ActivityTrace& trace, UserId user,
                         const DaySchedule& profile,
                         std::span<const DaySchedule> schedules) {
  std::size_t expected = 0, expected_served = 0;
  std::size_t unexpected = 0, unexpected_served = 0;
  for (const auto& a : trace.received_by(user)) {
    const Seconds tod = interval::time_of_day(a.timestamp);
    const bool served = profile.set().contains(tod);
    DOSN_ASSERT(a.creator < schedules.size());
    const bool is_expected = schedules[a.creator].set().contains(tod);
    if (is_expected) {
      ++expected;
      expected_served += served ? 1 : 0;
    } else {
      ++unexpected;
      unexpected_served += served ? 1 : 0;
    }
  }

  AodActivity out;
  out.total_count = expected + unexpected;
  out.expected_count = expected;
  if (out.total_count > 0)
    out.overall = static_cast<double>(expected_served + unexpected_served) /
                  static_cast<double>(out.total_count);
  if (expected > 0)
    out.expected =
        static_cast<double>(expected_served) / static_cast<double>(expected);
  if (unexpected > 0)
    out.unexpected = static_cast<double>(unexpected_served) /
                     static_cast<double>(unexpected);
  return out;
}

}  // namespace dosn::metrics
