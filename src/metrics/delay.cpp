#include "metrics/delay.hpp"

#include <algorithm>
#include <vector>

#include "interval/delay_graph.hpp"
#include "util/error.hpp"

namespace dosn::metrics {
namespace {

interval::RendezvousMode mode_of(Connectivity connectivity) {
  return connectivity == Connectivity::kConRep
             ? interval::RendezvousMode::kDirect
             : interval::RendezvousMode::kRelay;
}

}  // namespace

std::optional<Seconds> edge_delay(const DaySchedule& source,
                                  const DaySchedule& target,
                                  Connectivity connectivity) {
  return interval::pair_delay(source, target, mode_of(connectivity));
}

Seconds worst_observed_delay(const DaySchedule& reader, Seconds actual) {
  if (actual <= 0 || reader.empty()) return 0;
  // The window of length `actual` ends at the delivery instant, which is an
  // instant the reader is online. Sliding the window end across one of the
  // reader's online intervals, the covered online time is maximal at the
  // interval's right edge, so interval ends are sufficient candidates.
  Seconds worst = 0;
  for (const auto& iv : reader.set().pieces())
    worst = std::max(worst,
                     reader.online_within_window(iv.end - actual, actual));
  return worst;
}

DelayPrefixEvaluator::DelayPrefixEvaluator(const DaySchedule& owner,
                                           Connectivity connectivity)
    : group_(mode_of(connectivity)) {
  nodes_.push_back(owner);
  group_.push(owner);
}

void DelayPrefixEvaluator::push(const DaySchedule& replica) {
  nodes_.push_back(replica);
  group_.push(replica);
}

void DelayPrefixEvaluator::reset(const DaySchedule& owner,
                                 Connectivity connectivity) {
  nodes_.clear();
  group_.reset(mode_of(connectivity));
  nodes_.push_back(owner);
  group_.push(owner);
}

DelayResult DelayPrefixEvaluator::result() const {
  const auto group = group_.result();

  DelayResult result;
  result.nodes = group.participants;
  result.fully_connected = group.fully_connected;
  result.actual = group.diameter;
  if (group.participants >= 2)
    result.observed =
        worst_observed_delay(nodes_[group.worst_target], group.diameter);
  return result;
}

DelayResult update_propagation_delay(const DaySchedule& owner,
                                     std::span<const DaySchedule> replicas,
                                     Connectivity connectivity) {
  std::vector<DaySchedule> nodes;
  nodes.reserve(replicas.size() + 1);
  nodes.push_back(owner);
  nodes.insert(nodes.end(), replicas.begin(), replicas.end());

  const auto group = interval::group_delay(nodes, mode_of(connectivity));

  DelayResult result;
  result.nodes = group.participants;
  result.fully_connected = group.fully_connected;
  result.actual = group.diameter;
  if (group.participants >= 2)
    result.observed =
        worst_observed_delay(nodes[group.worst_target], group.diameter);
  return result;
}

}  // namespace dosn::metrics
