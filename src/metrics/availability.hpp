// Availability metrics (Sec II-C of the paper).
//
// All metrics take the owner's schedule plus the schedules of the selected
// replica holders; the owner always stores his own profile, so his online
// time counts towards availability (replication degree 0 = owner only).
#pragma once

#include <span>

#include "interval/day_schedule.hpp"
#include "trace/activity.hpp"

namespace dosn::metrics {

using graph::UserId;
using interval::DaySchedule;
using interval::Seconds;

/// Union of the owner's schedule and the replicas' schedules: the times the
/// profile is reachable.
DaySchedule profile_schedule(const DaySchedule& owner,
                             std::span<const DaySchedule> replicas);

/// Availability: fraction of the day the profile is reachable.
double availability(const DaySchedule& owner,
                    std::span<const DaySchedule> replicas);

/// Upper bound on availability in the F2F model: union of the owner's and
/// *all* contacts' online times over the day.
double max_achievable_availability(const DaySchedule& owner,
                                   std::span<const DaySchedule> contacts);

/// Availability-on-Demand-Time: the fraction of the union of the friends'
/// online times during which the profile is reachable. Vacuously 1 when the
/// friends are never online (there is no demand to serve).
double aod_time(std::span<const DaySchedule> friends,
                const DaySchedule& profile);

/// Availability-on-Demand-Activity with the expected/unexpected breakdown.
/// An activity on the user's profile is *expected* when its (time-of-day)
/// instant falls inside its creator's modeled online time, *unexpected*
/// otherwise (Sec IV-B); the headline metric counts both.
struct AodActivity {
  double overall = 1.0;      ///< fraction of all received activities served
  double expected = 1.0;     ///< fraction of expected activities served
  double unexpected = 1.0;   ///< fraction of unexpected activities served
  std::size_t total_count = 0;
  std::size_t expected_count = 0;
};

/// `schedules` indexes every user's schedule (for the expected/unexpected
/// classification of each activity's creator).
AodActivity aod_activity(const trace::ActivityTrace& trace, UserId user,
                         const DaySchedule& profile,
                         std::span<const DaySchedule> schedules);

}  // namespace dosn::metrics
