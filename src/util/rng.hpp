// Deterministic, seedable random number generation.
//
// Every randomized component of the library (synthetic datasets, Random
// placement, RandomLength online times, repetition loops) draws from an
// explicitly passed Rng so that experiments are exactly reproducible from a
// single seed. The engine is xoshiro256** seeded through splitmix64, which is
// fast, high quality, and — unlike std::mt19937 plus std distributions —
// produces identical streams on every platform and standard library.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace dosn::util {

/// splitmix64 step; used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values into one; handy for deriving
/// per-entity sub-seeds (e.g. seed ^ user id) without correlation.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// Nested three-way mix: collision-free stream ids for (entity, index,
/// repetition) triples. Unlike additive schemes such as `a*P + b*Q + c`,
/// distinct triples cannot alias for small coordinate values.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b,
                              std::uint64_t c) {
  return mix64(mix64(a, b), c);
}

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator, so it
/// can also feed std::shuffle etc., but the member helpers below are the
/// portable way to draw values.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's unbiased bounded generation.
  std::uint64_t below(std::uint64_t n) {
    DOSN_ASSERT(n > 0);
    // Rejection sampling on the top bits: unbiased and portable.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    DOSN_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (no caching: keeps the stream simple).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Pareto (power-law tail) with scale x_min > 0 and shape alpha > 0.
  double pareto(double x_min, double alpha);

  /// Zipf-like integer in [1, n]: P(k) proportional to k^-s, drawn by
  /// inversion on the precomputed CDF supplied by ZipfTable (see below) —
  /// this overload is for small n and builds the table on the fly.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) in selection order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator; the child stream does not
  /// overlap with this one for any practical output volume.
  Rng fork() { return Rng(mix64((*this)(), (*this)())); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Precomputed CDF for repeated Zipf draws over a fixed support size.
class ZipfTable {
 public:
  ZipfTable(std::size_t n, double exponent);

  /// Draws a value in [1, n].
  std::size_t draw(Rng& rng) const;

  std::size_t support() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dosn::util
