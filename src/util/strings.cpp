#include "util/strings.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "util/error.hpp"

namespace dosn::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::int64_t parse_i64(std::string_view s) {
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last)
    throw ParseError("not an integer: '" + std::string(s) + "'");
  return value;
}

double parse_f64(std::string_view s) {
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last)
    throw ParseError("not a number: '" + std::string(s) + "'");
  return value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  DOSN_ASSERT(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::string format_double(double v) {
  std::array<char, 32> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  DOSN_ASSERT(ec == std::errc{});
  return std::string(buf.data(), ptr);
}

std::string format_duration_s(double seconds) {
  if (seconds >= 3600.0) return format("%.1f h", seconds / 3600.0);
  if (seconds >= 60.0) return format("%.1f min", seconds / 60.0);
  return format("%.0f s", seconds);
}

}  // namespace dosn::util
