#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dosn::util {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

double transform_x(double x, bool log_x) {
  if (!log_x) return x;
  DOSN_REQUIRE(x > 0.0, "log_x chart requires positive x values");
  return std::log10(x);
}

}  // namespace

std::string render_chart(std::span<const Series> series,
                         const ChartOptions& options) {
  DOSN_REQUIRE(!series.empty(), "render_chart: no series");
  const int w = std::max(options.width, 8);
  const int h = std::max(options.height, 4);

  double x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
  bool first = true;
  for (const auto& s : series) {
    DOSN_REQUIRE(s.x.size() == s.y.size(), "render_chart: ragged series");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform_x(s.x[i], options.log_x);
      if (first) {
        x_lo = x_hi = tx;
        y_lo = y_hi = s.y[i];
        first = false;
      } else {
        x_lo = std::min(x_lo, tx);
        x_hi = std::max(x_hi, tx);
        y_lo = std::min(y_lo, s.y[i]);
        y_hi = std::max(y_hi, s.y[i]);
      }
    }
  }
  DOSN_REQUIRE(!first, "render_chart: all series empty");

  if (options.y_max >= options.y_min) {
    y_lo = options.y_min;
    y_hi = options.y_max;
  } else {
    y_lo = std::min(y_lo, 0.0);
  }
  if (y_hi <= y_lo) y_hi = y_lo + 1.0;
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  auto plot = [&](double tx, double y, char glyph) {
    int cx = static_cast<int>(std::lround((tx - x_lo) / (x_hi - x_lo) *
                                          static_cast<double>(w - 1)));
    int cy = static_cast<int>(std::lround((y - y_lo) / (y_hi - y_lo) *
                                          static_cast<double>(h - 1)));
    cx = std::clamp(cx, 0, w - 1);
    cy = std::clamp(cy, 0, h - 1);
    grid[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] =
        glyph;
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& s = series[si];
    // Interpolated trace between data points keeps trends readable.
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      const double tx0 = transform_x(s.x[i], options.log_x);
      const double tx1 = transform_x(s.x[i + 1], options.log_x);
      const int steps = w;
      for (int t = 0; t <= steps; ++t) {
        const double f = static_cast<double>(t) / steps;
        plot(tx0 + f * (tx1 - tx0), s.y[i] + f * (s.y[i + 1] - s.y[i]), glyph);
      }
    }
    if (s.x.size() == 1) plot(transform_x(s.x[0], options.log_x), s.y[0], glyph);
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  for (int r = 0; r < h; ++r) {
    const double y_at =
        y_hi - (y_hi - y_lo) * static_cast<double>(r) / (h - 1);
    if (r % 4 == 0 || r == h - 1)
      os << format("%8.2f |", y_at);
    else
      os << "         |";
    os << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << "         +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  const double x_display_lo = options.log_x ? std::pow(10.0, x_lo) : x_lo;
  const double x_display_hi = options.log_x ? std::pow(10.0, x_hi) : x_hi;
  os << "          " << format("%-10.4g", x_display_lo);
  const int pad = w - 20;
  if (pad > 0) os << std::string(static_cast<std::size_t>(pad), ' ');
  os << format("%10.4g", x_display_hi) << '\n';
  if (!options.x_label.empty())
    os << "          x: " << options.x_label
       << (options.log_x ? " (log scale)" : "") << '\n';
  if (!options.y_label.empty()) os << "          y: " << options.y_label << '\n';
  os << "          legend:";
  for (std::size_t si = 0; si < series.size(); ++si)
    os << "  " << kGlyphs[si % sizeof(kGlyphs)] << " " << series[si].name;
  os << '\n';
  return os.str();
}

}  // namespace dosn::util
