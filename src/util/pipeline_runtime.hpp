// Work-stealing pipeline runtime (DESIGN.md §12).
//
// PipelineRuntime replaces the static fork-join partition that made the
// million-user sweep effectively serial under load imbalance: worker w no
// longer owns exactly [w·n/T, (w+1)·n/T) — that range is only its *seed*
// slab, split into steal-granularity blocks in a per-worker Chase-Lev
// deque (util/steal_deque.hpp). Workers drain their own slab LIFO, then
// steal straggling blocks FIFO from the heaviest-loaded peers, so a shard
// of heavy-degree cohort users delays the loop by at most one block
// instead of a whole static chunk.
//
// Determinism contract (unchanged from DESIGN.md §7): stealing reorders
// only *execution*. Every index runs exactly once; callers write results
// into per-index slots and reduce serially in index order, so neither the
// steal schedule nor the thread count can reach an output bit. The
// `util.runtime.steals` counter and queue-depth gauges are the one class
// of scheduling-dependent metrics (like span durations) — they never feed
// back into results.
//
// Serial stages (an RNG-consuming generator, an order-sensitive reduce)
// connect to parallel stages through util::SpscQueue rather than through
// the runtime: one producer thread, one consumer thread, FIFO chunks (see
// synth::build_scale_study_input for the canonical pipeline).
//
// Locking map (DESIGN.md §13): `mutex_` is the rendezvous capability —
// it guards the published job pointer, the generation ticket, the
// running-worker count, the first captured error, and the stop flag.
// `client_mutex_` serializes external callers and is always acquired
// before `mutex_`. Workers read the job pointer *under* `mutex_` when
// they observe a new generation and then run lock-free on their deques;
// the two atomics below the mutexes carry the lock-free completion
// protocol (see the `protocol:` comments in the .cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/steal_deque.hpp"
#include "util/thread_annotations.hpp"

namespace dosn::util {

/// Worker count used when a runtime/pool is built with `threads == 0`:
/// the DOSN_THREADS environment variable if set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
std::size_t default_thread_count();

struct RuntimeOptions {
  /// Worker threads (the caller participates as worker 0);
  /// 0 = default_thread_count().
  std::size_t threads = 0;
  /// Indices per steal block. 0 = the DOSN_STEAL_GRAIN environment
  /// variable if set, else auto: max(1, n / (threads · 8)) per job —
  /// small enough to rebalance stragglers, large enough to amortize
  /// deque traffic.
  std::size_t steal_grain = 0;
  /// Default capacity (elements in flight) for SPSC stage queues built
  /// for this runtime's pipelines; bounds pipeline memory.
  std::size_t queue_capacity = 4;
};

class PipelineRuntime {
 public:
  explicit PipelineRuntime(RuntimeOptions options = {});
  ~PipelineRuntime();

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  std::size_t thread_count() const { return threads_; }
  std::size_t queue_capacity() const { return options_.queue_capacity; }

  /// Per-job execution stats (also accumulated into obs counters).
  struct JobStats {
    std::size_t blocks = 0;  ///< non-empty steal blocks executed
    std::size_t steals = 0;  ///< blocks run by a worker other than their
                             ///< seed owner (0 on a balanced run)
  };

  /// Runs fn(i) for every i in [0, n) with work stealing; indices within
  /// one block run in ascending order. Blocks until every index
  /// completed; the first exception thrown by fn is rethrown on the
  /// calling thread after the job drains. Serial (and steal-free) when
  /// thread_count() == 1 or when called from inside one of this
  /// runtime's own workers (nested jobs never deadlock — they inline).
  JobStats parallel_for_index(std::size_t n,
                              const std::function<void(std::size_t)>& fn)
      DOSN_EXCLUDES(client_mutex_, mutex_);

 private:
  using Job = std::function<void(std::size_t)>;

  void worker_loop(std::size_t worker) DOSN_EXCLUDES(mutex_);
  void drain(std::size_t worker, const Job& job) noexcept;
  void run_block(IndexBlock block, const Job& job) noexcept
      DOSN_EXCLUDES(mutex_);
  std::size_t effective_grain(std::size_t n) const;

  RuntimeOptions options_;
  std::size_t threads_;
  std::vector<StealDeque> deques_;
  std::vector<std::thread> helpers_;

  // Serializes external callers: one job owns the workers at a time.
  // Always acquired before mutex_ (the rendezvous lock below).
  Mutex client_mutex_ DOSN_ACQUIRED_BEFORE(mutex_);

  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;
  const Job* job_ DOSN_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ DOSN_GUARDED_BY(mutex_) = 0;
  std::size_t running_ DOSN_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ DOSN_GUARDED_BY(mutex_);
  bool stop_ DOSN_GUARDED_BY(mutex_) = false;

  alignas(64) std::atomic<std::size_t> blocks_left_{0};
  alignas(64) std::atomic<std::size_t> job_steals_{0};
};

}  // namespace dosn::util
