#include "util/pipeline_runtime.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/obs.hpp"

namespace dosn::util {
namespace {

// Runtime metrics (DESIGN.md §12). jobs/blocks/indices are deterministic
// for a fixed seed and configuration; steals depend on the scheduler (like
// span durations) and are reported for tuning, never compared bit-wise.
struct RuntimeMetrics {
  obs::Counter& jobs = obs::Registry::global().counter("util.runtime.jobs");
  obs::Counter& nested_jobs =
      obs::Registry::global().counter("util.runtime.nested_jobs");
  obs::Counter& blocks =
      obs::Registry::global().counter("util.runtime.blocks");
  obs::Counter& steals =
      obs::Registry::global().counter("util.runtime.steals");
};

RuntimeMetrics& metrics() {
  static RuntimeMetrics m;
  return m;
}

/// The runtime a thread is currently executing a block for, if any.
/// Nested parallel_for_index calls from job code inline serially instead
/// of re-entering the rendezvous (which would deadlock worker 0 against
/// its own helpers).
thread_local PipelineRuntime* tl_active_runtime = nullptr;

std::size_t env_steal_grain() {
  static const std::size_t cached = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once, before any
    // runtime worker exists; nothing in the process calls setenv.
    if (const char* env = std::getenv("DOSN_STEAL_GRAIN")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1)
        return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(0);
  }();
  return cached;
}

}  // namespace

std::size_t default_thread_count() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — env read at pool/runtime
  // construction, before its workers exist; nothing calls setenv.
  if (const char* env = std::getenv("DOSN_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

PipelineRuntime::PipelineRuntime(RuntimeOptions options)
    : options_(options),
      threads_(options.threads > 0 ? options.threads
                                   : default_thread_count()),
      deques_(threads_) {
  helpers_.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w)
    helpers_.emplace_back([this, w] { worker_loop(w); });
}

PipelineRuntime::~PipelineRuntime() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& helper : helpers_) helper.join();
}

std::size_t PipelineRuntime::effective_grain(std::size_t n) const {
  std::size_t grain = options_.steal_grain;
  if (grain == 0) grain = env_steal_grain();
  if (grain == 0) grain = std::max<std::size_t>(1, n / (threads_ * 8));
  return grain;
}

void PipelineRuntime::run_block(IndexBlock block, const Job& job) noexcept {
  try {
    for (std::size_t i = block.begin; i < block.end; ++i) job(i);
  } catch (...) {
    MutexLock lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  // protocol: acq_rel — the release half publishes this block's side
  // effects to whoever observes the count hit zero; the acquire half
  // makes each decrement a synchronization point so the final
  // decrementer (and the acquire load in drain()) sees every block.
  blocks_left_.fetch_sub(1, std::memory_order_acq_rel);
}

void PipelineRuntime::drain(std::size_t worker, const Job& job) noexcept {
  PipelineRuntime* const prev = tl_active_runtime;
  tl_active_runtime = this;
  IndexBlock block;
  for (;;) {
    if (deques_[worker].take(block)) {
      run_block(block, job);
      continue;
    }
    bool progressed = false;
    for (std::size_t offset = 1; offset < threads_; ++offset) {
      if (deques_[(worker + offset) % threads_].steal(block)) {
        // protocol: relaxed — scheduling telemetry only (util.runtime.
        // steals); read after the job's mutex rendezvous, never racing.
        job_steals_.fetch_add(1, std::memory_order_relaxed);
        run_block(block, job);
        progressed = true;
        break;
      }
    }
    if (progressed) continue;
    // Nothing to take or steal: either the job is done, or its last
    // blocks are in flight on other workers — spin politely until the
    // remaining-block count settles.
    // protocol: acquire — pairs with the acq_rel fetch_sub in
    // run_block(); observing zero here means every block's effects
    // happened-before this worker leaves the job.
    if (blocks_left_.load(std::memory_order_acquire) == 0) break;
    std::this_thread::yield();
  }
  tl_active_runtime = prev;
}

void PipelineRuntime::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const Job* job = nullptr;
    {
      MutexLock lock(mutex_);
      // Plain while loop, not a wait predicate: the guarded reads stay
      // inside this annotated scope where the analysis can see the lock.
      while (!stop_ && generation_ == seen) start_cv_.wait(lock);
      if (stop_) return;
      seen = generation_;
      job = job_;  // published under mutex_ by parallel_for_index
    }
    drain(worker, *job);
    {
      MutexLock lock(mutex_);
      --running_;
      if (running_ == 0) done_cv_.notify_all();
    }
  }
}

PipelineRuntime::JobStats PipelineRuntime::parallel_for_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return {};
  if (threads_ == 1 || tl_active_runtime == this) {
    // Single-threaded runtime, or a nested job issued from inside one of
    // this runtime's blocks: inline serially (same index order, no
    // rendezvous). Nested jobs count separately so schedulers misusing
    // nesting show up in reports.
    if (tl_active_runtime == this) metrics().nested_jobs.add(1);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return {.blocks = 1, .steals = 0};
  }

  MutexLock client(client_mutex_);
  // Seed each worker's deque with its static slab [w·n/T, (w+1)·n/T)
  // split into grain blocks: a steal-free run executes exactly the old
  // static partition (same locality), and stealing only redistributes
  // stragglers. All pushes happen while the workers are quiescent; the
  // generation bump below publishes them.
  const std::size_t grain = effective_grain(n);
  std::size_t total_blocks = 0;
  for (std::size_t w = 0; w < threads_; ++w) {
    const std::size_t begin = w * n / threads_;
    const std::size_t end = (w + 1) * n / threads_;
    for (std::size_t b = begin; b < end; b += grain) {
      deques_[w].push({b, std::min(end, b + grain)});
      ++total_blocks;
    }
  }
  // protocol: relaxed — workers are quiescent here; the release
  // publication is the mutex_-guarded generation bump below, whose
  // unlock orders these stores before any worker's wake-up load.
  blocks_left_.store(total_blocks, std::memory_order_relaxed);
  job_steals_.store(0, std::memory_order_relaxed);  // protocol: relaxed ^
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    running_ = threads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  drain(0, fn);  // the calling thread is worker 0

  JobStats stats;
  stats.blocks = total_blocks;
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (running_ != 0) done_cv_.wait(lock);
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  // protocol: relaxed — every worker has left the job (mutex rendezvous
  // above), so this is a quiescent read of telemetry.
  stats.steals = job_steals_.load(std::memory_order_relaxed);
  metrics().jobs.add(1);
  metrics().blocks.add(stats.blocks);
  metrics().steals.add(stats.steals);

  if (error) std::rethrow_exception(error);
  return stats;
}

}  // namespace dosn::util
