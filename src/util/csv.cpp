#include "util/csv.hpp"

#include <cmath>
#include <filesystem>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dosn::util {
namespace {

bool needs_quoting(const std::string& f) {
  return f.find_first_of(",\"\n") != std::string::npos;
}

std::string quoted(const std::string& f) {
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_value(double v) {
  if (std::isnan(v)) return "nan";
  if (v == std::floor(v) && std::abs(v) < 1e15)
    return format("%lld", static_cast<long long>(v));
  return format("%.6g", v);
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : path_(path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) throw IoError("cannot create directory " + parent.string());
  }
  out_.open(path, std::ios::trunc);
  if (!out_) throw IoError("cannot open for writing: " + path);
}

void CsvWriter::header(std::span<const std::string> names) {
  write_fields(names);
}

void CsvWriter::row(std::span<const double> values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_value(v));
  write_fields(fields);
}

void CsvWriter::raw_row(std::span<const std::string> fields) {
  write_fields(fields);
}

void CsvWriter::write_fields(std::span<const std::string> fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << (needs_quoting(fields[i]) ? quoted(fields[i]) : fields[i]);
  }
  out_ << '\n';
  if (!out_) throw IoError("write failure on " + path_);
}

void write_series_csv(const std::string& path, const std::string& x_name,
                      std::span<const Series> series) {
  DOSN_REQUIRE(!series.empty(), "write_series_csv: no series");
  const auto& x = series.front().x;
  for (const auto& s : series)
    DOSN_REQUIRE(s.x == x, "write_series_csv: series share one x-axis");

  CsvWriter csv(path);
  std::vector<std::string> names{x_name};
  for (const auto& s : series) names.push_back(s.name);
  csv.header(names);
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<double> row{x[i]};
    for (const auto& s : series) {
      DOSN_REQUIRE(s.y.size() == x.size(),
                   "write_series_csv: y length mismatch in " + s.name);
      row.push_back(s.y[i]);
    }
    csv.row(row);
  }
}

}  // namespace dosn::util
