// Chase-Lev-style work-stealing deque of index blocks.
//
// One deque per runtime worker: the owner pushes its job's blocks before
// the job is published and pops them LIFO from the bottom; idle workers
// steal FIFO from the top. The memory-order discipline follows Lê,
// Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for
// Weak Memory Models" (PPoPP'13), with one simplification the runtime's
// job protocol makes safe: push() only runs while the runtime is
// quiescent (between jobs, before the generation counter publishes the
// work, with happens-before established by the pool mutex), so the
// buffer never grows or gets written concurrently with take()/steal().
//
// Determinism: the deque reorders only *execution*. Every block is run
// exactly once by exactly one worker; callers write results into
// per-index slots and reduce in index order, so which worker ran a block
// can never reach the output (DESIGN.md §7 rules, unchanged).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace dosn::util {

/// A contiguous index range [begin, end) — the unit of stealing.
struct IndexBlock {
  std::size_t begin = 0;
  std::size_t end = 0;
};

class StealDeque {
 public:
  StealDeque() : buffer_(64) {}

  /// Owner only, and only while the runtime is quiescent (no concurrent
  /// take/steal): appends a block at the bottom.
  void push(IndexBlock block) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    if (static_cast<std::size_t>(b - t) >= buffer_.size()) grow();
    buffer_[static_cast<std::size_t>(b) & (buffer_.size() - 1)] = block;
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pops the most recently pushed remaining block (LIFO —
  /// the owner works through its slab in the order it was seeded).
  bool take(IndexBlock& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      out = buffer_[static_cast<std::size_t>(b) & (buffer_.size() - 1)];
      if (t == b) {
        // Last element: race the thieves for it.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Any other worker: steals the oldest block (FIFO — thieves take from
  /// the far end of the victim's slab, minimizing contention with the
  /// owner's LIFO end).
  bool steal(IndexBlock& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    // Safe to read before the CAS: the buffer is immutable while any
    // take/steal runs (push happens only between jobs).
    out = buffer_[static_cast<std::size_t>(t) & (buffer_.size() - 1)];
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  /// Either side while quiescent: true when every block was claimed.
  bool empty() const {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  // Quiescent-only (called from push): double the power-of-two buffer,
  // repacking live elements at the same logical positions.
  void grow() {
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::vector<IndexBlock> bigger(buffer_.size() * 2);
    for (std::int64_t i = t; i < b; ++i)
      bigger[static_cast<std::size_t>(i) & (bigger.size() - 1)] =
          buffer_[static_cast<std::size_t>(i) & (buffer_.size() - 1)];
    buffer_ = std::move(bigger);
  }

  std::vector<IndexBlock> buffer_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace dosn::util
