// Chase-Lev-style work-stealing deque of index blocks.
//
// One deque per runtime worker: the owner pushes its job's blocks before
// the job is published and pops them LIFO from the bottom; idle workers
// steal FIFO from the top. The memory-order discipline follows Lê,
// Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing for
// Weak Memory Models" (PPoPP'13), with one simplification the runtime's
// job protocol makes safe: push() only runs while the runtime is
// quiescent (between jobs, before the generation counter publishes the
// work, with happens-before established by the pool mutex), so the
// buffer never grows or gets written concurrently with take()/steal().
//
// Determinism: the deque reorders only *execution*. Every block is run
// exactly once by exactly one worker; callers write results into
// per-index slots and reduce in index order, so which worker ran a block
// can never reach the output (DESIGN.md §7 rules, unchanged).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace dosn::util {

/// A contiguous index range [begin, end) — the unit of stealing.
struct IndexBlock {
  std::size_t begin = 0;
  std::size_t end = 0;
};

class StealDeque {
 public:
  StealDeque() : buffer_(64) {}

  /// Owner only, and only while the runtime is quiescent (no concurrent
  /// take/steal): appends a block at the bottom.
  void push(IndexBlock block) {
    // protocol: relaxed — quiescent phase: no concurrent take/steal by
    // contract, and the runtime's mutex-guarded generation bump is the
    // release edge that publishes these writes to the workers.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);  // protocol: relaxed ^
    if (static_cast<std::size_t>(b - t) >= buffer_.size()) grow();
    buffer_[static_cast<std::size_t>(b) & (buffer_.size() - 1)] = block;
    // protocol: relaxed ^ (same quiescent-phase publication contract)
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pops the most recently pushed remaining block (LIFO —
  /// the owner works through its slab in the order it was seeded).
  bool take(IndexBlock& out) {
    // protocol: relaxed — bottom_ is owner-written; the seq_cst fence
    // below is what orders this reservation against thieves' top_ reads
    // (Lê et al. PPoPP'13, fig. 1 'take').
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);  // protocol: relaxed ^
    // protocol: seq_cst fence — pairs with the fence in steal(): either
    // the thief sees the decremented bottom_ or the owner sees the
    // thief's top_ CAS; both can never claim the same (last) block.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // protocol: relaxed — ordered by the fence above, not by the load.
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      out = buffer_[static_cast<std::size_t>(b) & (buffer_.size() - 1)];
      if (t == b) {
        // Last element: race the thieves for it.
        // protocol: seq_cst CAS — totally ordered with steal()'s CAS on
        // the same slot, so exactly one side wins the last block;
        // relaxed on failure (the loser only abandons).
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        // protocol: relaxed — owner-only restore of the empty state.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    // protocol: relaxed — owner-only restore (deque was already empty).
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Any other worker: steals the oldest block (FIFO — thieves take from
  /// the far end of the victim's slab, minimizing contention with the
  /// owner's LIFO end).
  bool steal(IndexBlock& out) {
    // protocol: acquire — observe other thieves' top_ advances before
    // judging emptiness (never re-steal a claimed slot).
    std::int64_t t = top_.load(std::memory_order_acquire);
    // protocol: seq_cst fence — pairs with the fence in take(); see the
    // last-block race note there.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // protocol: acquire — pairs with the owner's bottom_ publication;
    // seeing b > t guarantees the slot content at t is initialized.
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    // Safe to read before the CAS: the buffer is immutable while any
    // take/steal runs (push happens only between jobs).
    out = buffer_[static_cast<std::size_t>(t) & (buffer_.size() - 1)];
    // protocol: seq_cst CAS — totally ordered with take()'s CAS, exactly
    // one claimant per slot; relaxed on failure (retry from scratch).
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  /// Either side while quiescent: true when every block was claimed.
  bool empty() const {
    // protocol: acquire — quiescent-phase check; acquire pairs with the
    // last claimant's CAS so a true result means all claims are visible.
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  // Quiescent-only (called from push): double the power-of-two buffer,
  // repacking live elements at the same logical positions.
  void grow() {
    // protocol: relaxed — quiescent phase only (called from push), no
    // concurrent access by contract.
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);  // protocol: relaxed ^
    std::vector<IndexBlock> bigger(buffer_.size() * 2);
    for (std::int64_t i = t; i < b; ++i)
      bigger[static_cast<std::size_t>(i) & (bigger.size() - 1)] =
          buffer_[static_cast<std::size_t>(i) & (buffer_.size() - 1)];
    buffer_ = std::move(bigger);
  }

  std::vector<IndexBlock> buffer_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace dosn::util
