#include "util/json.hpp"

#include <cmath>
#include <fstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace dosn::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::begin_value() {
  if (stack_.empty()) {
    DOSN_CHECK(out_.empty(), "JsonWriter: only one top-level value allowed");
    return;
  }
  if (stack_.back() == Frame::kObject) {
    DOSN_CHECK(key_pending_, "JsonWriter: value inside an object needs key()");
    key_pending_ = false;
    return;  // key() already placed the separator and "key": prefix
  }
  if (!first_in_frame_) out_ += ',';
  first_in_frame_ = false;
  indent();
}

void JsonWriter::key(std::string_view k) {
  DOSN_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
             "JsonWriter: key() outside an object");
  DOSN_CHECK(!key_pending_, "JsonWriter: two key() calls in a row");
  if (!first_in_frame_) out_ += ',';
  first_in_frame_ = false;
  indent();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_ = true;
}

void JsonWriter::end_object() {
  DOSN_CHECK(!stack_.empty() && stack_.back() == Frame::kObject &&
                 !key_pending_,
             "JsonWriter: unbalanced end_object()");
  const bool empty = first_in_frame_;
  stack_.pop_back();
  if (!empty) indent();
  out_ += '}';
  first_in_frame_ = false;
}

void JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_ = true;
}

void JsonWriter::end_array() {
  DOSN_CHECK(!stack_.empty() && stack_.back() == Frame::kArray,
             "JsonWriter: unbalanced end_array()");
  const bool empty = first_in_frame_;
  stack_.pop_back();
  if (!empty) indent();
  out_ += ']';
  first_in_frame_ = false;
}

void JsonWriter::value(double v) {
  begin_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  out_ += format_double(v);
}

void JsonWriter::value(std::int64_t v) {
  begin_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  begin_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(std::string_view v) {
  begin_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::null() {
  begin_value();
  out_ += "null";
}

std::string JsonWriter::str() const {
  DOSN_CHECK(stack_.empty() && !key_pending_,
             "JsonWriter: str() before the document was closed");
  return out_ + "\n";
}

void write_text_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) throw IoError("cannot write " + path);
}

}  // namespace dosn::util
