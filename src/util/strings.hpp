// String utilities for the trace parsers and report writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dosn::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Strict integer parse of the whole field; throws ParseError on junk.
std::int64_t parse_i64(std::string_view s);

/// Strict double parse of the whole field; throws ParseError on junk.
double parse_f64(std::string_view s);

/// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Shortest decimal form that parses back to exactly `v`, via
/// std::to_chars — locale-independent and byte-stable across platforms,
/// unlike default ostream formatting (which truncates to 6 significant
/// digits and honors the imbued locale's decimal point). Infinities and
/// NaN render as "inf"/"-inf"/"nan"; JSON writers must map them out.
std::string format_double(double v);

/// Human-readable duration, e.g. "17.3 h", "42 min", "980 s".
std::string format_duration_s(double seconds);

}  // namespace dosn::util
