// Deterministic fork-join parallelism for the study engine.
//
// A ThreadPool owns a fixed set of worker threads and runs index-space
// loops over contiguous, statically partitioned chunks — no work stealing,
// no dynamic scheduling. The chunk layout depends only on (n, thread
// count), and callers that need bit-identical results across thread counts
// write into per-index slots and reduce serially in index order, so the
// same seed produces the same output for every DOSN_THREADS value.
//
// `parallel_for_each` is the convenience entry point: with a null pool or
// a single-thread pool it degenerates to a plain serial loop on the
// calling thread (zero synchronization), which is also the reference
// execution order for determinism tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dosn::util {

/// Worker count used when a ThreadPool is built with `threads == 0`:
/// the DOSN_THREADS environment variable if set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
std::size_t default_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads - 1` helper threads (the calling thread participates
  /// in every loop as worker 0). `threads == 0` means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  /// Runs fn(i) for every i in [0, n). [0, n) is split into thread_count()
  /// contiguous chunks, worker w owning [w*n/T, (w+1)*n/T); indices within
  /// a chunk run in ascending order. Blocks until every index completed.
  /// The first exception thrown by fn is rethrown on the calling thread
  /// (after all workers finished their chunks).
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker);
  void run_chunk(std::size_t worker) noexcept;

  std::size_t threads_;
  std::vector<std::thread> helpers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t running_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// fn(i) for every i in [0, n): serial on the calling thread when `pool`
/// is null or single-threaded, fanned out over the pool otherwise.
void parallel_for_each(ThreadPool* pool, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

}  // namespace dosn::util
