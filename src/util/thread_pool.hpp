// Deterministic parallelism for the study engine.
//
// ThreadPool is the fork-join façade over util::PipelineRuntime (DESIGN.md
// §12): `for_each_index(n, fn)` runs fn over [0, n) on the runtime's
// work-stealing workers. Worker w's *seed* slab is still the contiguous
// chunk [w·n/T, (w+1)·n/T) — a steal-free run executes exactly the old
// static partition — but the slab is split into steal-granularity blocks,
// and idle workers steal straggling blocks from loaded peers, so
// heavy-degree shards no longer serialize the loop.
//
// The determinism contract is unchanged: callers that need bit-identical
// results across thread counts write into per-index slots and reduce
// serially in index order; stealing reorders only execution, which such
// callers cannot observe. The same seed produces the same output for
// every DOSN_THREADS / DOSN_STEAL_GRAIN value.
//
// `parallel_for_each` is the convenience entry point: with a null pool or
// a single-thread pool it degenerates to a plain serial loop on the
// calling thread (zero synchronization), which is also the reference
// execution order for determinism tests.
#pragma once

#include <cstddef>
#include <functional>

#include "util/pipeline_runtime.hpp"

namespace dosn::util {

class ThreadPool {
 public:
  /// Spawns `threads - 1` helper threads (the calling thread participates
  /// in every loop as worker 0). `threads == 0` means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0)
      : runtime_(RuntimeOptions{.threads = threads}) {}

  /// Full runtime configuration (steal granularity, stage-queue capacity).
  explicit ThreadPool(RuntimeOptions options) : runtime_(options) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return runtime_.thread_count(); }

  /// The underlying work-stealing runtime, for callers that share one
  /// warm worker set across pipeline stages (e.g. chunked generation
  /// followed by shard evaluation — no teardown/re-fork between phases).
  PipelineRuntime& runtime() { return runtime_; }

  /// Runs fn(i) for every i in [0, n); indices within one steal block run
  /// in ascending order. Blocks until every index completed. The first
  /// exception thrown by fn is rethrown on the calling thread (after all
  /// in-flight blocks finished; the throwing block's remaining indices
  /// are skipped). Nested calls from inside fn run serially inline.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  PipelineRuntime runtime_;
};

/// fn(i) for every i in [0, n): serial on the calling thread when `pool`
/// is null or single-threaded, fanned out over the pool otherwise.
void parallel_for_each(ThreadPool* pool, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

}  // namespace dosn::util
