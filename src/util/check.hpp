// Runtime-contract macros: the enforcement half of the library's invariants.
//
// The analytic metrics rest on structural properties that no type can
// express (IntervalSets are sorted and disjoint, CSR offsets are monotone,
// placements respect the replication budget, ...). These macros turn those
// properties into executable contracts:
//
//   * DOSN_CHECK(cond, ctx...)  — always-on invariant. Violations throw
//     util::ContractError with the failed expression, source location and
//     a streamed context message. Used at module boundaries where the cost
//     is amortized (construction, build(), select() return).
//   * DOSN_DCHECK(cond, ctx...) — same contract, compiled out under NDEBUG.
//     Used inside hot loops (per-interval postconditions, per-edge scans)
//     where an always-on check would tax the paper-scale sweeps.
//   * DOSN_UNREACHABLE(ctx...)  — marks code paths that are impossible by
//     construction (exhaustive switches, exhausted fallbacks); throws when
//     reached so a broken caller fails loudly instead of corrupting state.
//
// Context arguments are streamed with operator<<, so checks read like
//
//   DOSN_CHECK(u < n, "user ", u, " out of range [0, ", n, ")");
//
// and failures carry the concrete values that violated the contract.
#pragma once

#include <sstream>
#include <string>

#include "util/error.hpp"

namespace dosn::util {

/// A violated internal contract (DOSN_CHECK / DOSN_DCHECK /
/// DOSN_UNREACHABLE). Indicates a bug in this library or a caller breaking
/// a documented precondition — not a recoverable input error.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] void throw_contract_failure(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const std::string& context);

/// Streams the parts into one string; empty for zero parts so that checks
/// without context pay no formatting cost on the failure path either.
template <typename... Parts>
std::string format_context(const Parts&... parts) {
  if constexpr (sizeof...(Parts) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  }
}

}  // namespace detail

}  // namespace dosn::util

/// Always-on contract: throws util::ContractError when `cond` is false.
#define DOSN_CHECK(cond, ...)                                          \
  do {                                                                 \
    if (!(cond)) [[unlikely]]                                          \
      ::dosn::util::detail::throw_contract_failure(                    \
          "DOSN_CHECK", #cond, __FILE__, __LINE__,                     \
          ::dosn::util::detail::format_context(__VA_ARGS__));          \
  } while (false)

/// Debug-only contract: identical to DOSN_CHECK without NDEBUG, compiled
/// to nothing (the condition is not evaluated) under NDEBUG.
#ifndef NDEBUG
#define DOSN_DCHECK(cond, ...)                                         \
  do {                                                                 \
    if (!(cond)) [[unlikely]]                                          \
      ::dosn::util::detail::throw_contract_failure(                    \
          "DOSN_DCHECK", #cond, __FILE__, __LINE__,                    \
          ::dosn::util::detail::format_context(__VA_ARGS__));          \
  } while (false)
#else
// The dead branch keeps the condition and context type-checked (and the
// variables "used") in Release builds without evaluating anything.
#define DOSN_DCHECK(cond, ...)                                           \
  do {                                                                   \
    if (false) {                                                         \
      static_cast<void>(cond);                                           \
      static_cast<void>(                                                 \
          ::dosn::util::detail::format_context(__VA_ARGS__));            \
    }                                                                    \
  } while (false)
#endif

/// Marks a code path that must never execute; throws util::ContractError.
#define DOSN_UNREACHABLE(...)                                          \
  ::dosn::util::detail::throw_contract_failure(                        \
      "DOSN_UNREACHABLE", "unreachable code reached", __FILE__,        \
      __LINE__, ::dosn::util::detail::format_context(__VA_ARGS__))
