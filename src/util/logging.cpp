#include "util/logging.hpp"

#include <cstdio>

namespace dosn::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  // protocol: relaxed — a standalone filter level; pairs with the
  // relaxed loads below. No data is published under it, so no release.
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  // protocol: relaxed — see set_log_level().
  return g_level.load(std::memory_order_relaxed);
}

void log(LogLevel level, const std::string& message) {
  // protocol: relaxed — a stale level at worst drops/emits one line.
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace dosn::util
