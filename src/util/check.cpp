#include "util/check.hpp"

namespace dosn::util::detail {

void throw_contract_failure(const char* kind, const char* expr,
                            const char* file, int line,
                            const std::string& context) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!context.empty()) os << " — " << context;
  throw ContractError(os.str());
}

}  // namespace dosn::util::detail
