// Terminal line charts so figure harnesses can show the paper's plot shapes
// directly in the console (the CSV next to it holds exact values).
#pragma once

#include <span>
#include <string>

#include "util/stats.hpp"

namespace dosn::util {

struct ChartOptions {
  int width = 72;        ///< plot area columns
  int height = 18;       ///< plot area rows
  bool log_x = false;    ///< logarithmic x axis (Fig 8 session-length sweep)
  double y_min = 0.0;    ///< fixed lower y bound
  double y_max = -1.0;   ///< fixed upper y bound; < y_min means auto-scale
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders the series overlaid in one plot; each series uses its own glyph
/// and is listed in a legend below the axes.
std::string render_chart(std::span<const Series> series,
                         const ChartOptions& options);

}  // namespace dosn::util
