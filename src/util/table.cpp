#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace dosn::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, const char* fmt) {
  std::vector<std::string> cells{label};
  for (double v : values) cells.push_back(format(fmt, v));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << c << std::string(widths[i] - c.size(), ' ');
      if (i + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace dosn::util
