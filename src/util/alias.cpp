#include "util/alias.hpp"

#include <numeric>

#include "util/check.hpp"
#include "util/error.hpp"

namespace dosn::util {

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  DOSN_REQUIRE(!weights.empty(), "DiscreteSampler: empty weights");
  double total = 0.0;
  for (double w : weights) {
    DOSN_REQUIRE(w >= 0.0, "DiscreteSampler: negative weight");
    total += w;
  }
  DOSN_REQUIRE(total > 0.0, "DiscreteSampler: all weights zero");

  const std::size_t n = weights.size();
  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] / total * static_cast<double>(n);

  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (std::uint32_t i : small) {  // numerical leftovers
    prob_[i] = 1.0;
    alias_[i] = i;
  }

  // The construction above must leave a normalized table — an out-of-range
  // alias or probability would turn draw() into silent sampling bias.
  detail::check_alias_table(prob_, alias_);
}

std::size_t DiscreteSampler::draw(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.below(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

namespace detail {

void check_alias_table(std::span<const double> prob,
                       std::span<const std::uint32_t> alias) {
  const std::size_t n = prob.size();
  DOSN_CHECK(n > 0 && alias.size() == n,
             "alias table: prob/alias size mismatch (", n, " vs ",
             alias.size(), ")");
  for (std::size_t i = 0; i < n; ++i) {
    DOSN_CHECK(prob[i] >= 0.0 && prob[i] <= 1.0,
               "alias table: acceptance probability ", prob[i], " of slot ",
               i, " outside [0, 1]");
    DOSN_CHECK(alias[i] < n, "alias table: alias ", alias[i], " of slot ", i,
               " out of range [0, ", n, ")");
  }
}

}  // namespace detail

}  // namespace dosn::util
