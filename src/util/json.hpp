// Minimal streaming JSON writer for machine-readable report files
// (BENCH_*.json, obs snapshots).
//
// The writer produces pretty-printed JSON with the keys in exactly the
// order the caller emits them, and renders doubles with format_double
// (std::to_chars shortest round-trip) — so a file's bytes depend only on
// the values written, never on locale or platform formatting defaults.
// Non-finite doubles, which JSON cannot represent, are emitted as null.
//
// Usage mirrors the JSON structure:
//
//   JsonWriter w;
//   w.begin_object();
//   w.field("benchmark", "study_engine");
//   w.key("scenarios");
//   w.begin_array();
//   ...
//   w.end_array();
//   w.end_object();
//   write_text_file(path, w.str());
//
// Mis-nesting (a value without a pending key inside an object, unbalanced
// end_*) is a programming error and fails a contract check.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dosn::util {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next value; only valid directly inside an object.
  void key(std::string_view k);

  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void null();

  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// The finished document; every begin_* must have been closed.
  std::string str() const;

 private:
  enum class Frame { kObject, kArray };

  void begin_value();  // separator + indentation bookkeeping
  void indent();

  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;    // key() emitted, value must follow
  bool first_in_frame_ = true;  // no comma before the next entry
};

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Writes `text` to `path`, throwing util::IoError on failure.
void write_text_file(const std::string& path, std::string_view text);

}  // namespace dosn::util
