#include "util/thread_pool.hpp"

#include "obs/obs.hpp"

namespace dosn::util {
namespace {

// Pool metrics (DESIGN.md §9/§12). `chunks` counts steal blocks actually
// executed — non-empty by construction, so a loop with n < threads no
// longer inflates the count with empty chunks. Steal traffic itself is
// reported by the runtime (`util.runtime.steals`).
struct PoolMetrics {
  obs::Counter& jobs =
      obs::Registry::global().counter("util.thread_pool.jobs");
  obs::Counter& serial_jobs =
      obs::Registry::global().counter("util.thread_pool.serial_jobs");
  obs::Counter& indices =
      obs::Registry::global().counter("util.thread_pool.indices");
  obs::Counter& chunks =
      obs::Registry::global().counter("util.thread_pool.chunks");
};

PoolMetrics& metrics() {
  static PoolMetrics m;
  return m;
}

/// The single bookkeeping path for loops that run serially on the calling
/// thread (single-thread pool, null pool, nested call): one serial job,
/// n indices, one chunk. Shared by for_each_index and parallel_for_each
/// so the two entry points cannot drift.
void record_serial_job(std::size_t n) {
  metrics().serial_jobs.add(1);
  metrics().indices.add(n);
  metrics().chunks.add(1);
}

}  // namespace

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (thread_count() == 1) {
    record_serial_job(n);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const auto stats = runtime_.parallel_for_index(n, fn);
  metrics().jobs.add(1);
  metrics().indices.add(n);
  metrics().chunks.add(stats.blocks);
}

void parallel_for_each(ThreadPool* pool, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->thread_count() == 1) {
    if (n > 0) {
      record_serial_job(n);
      for (std::size_t i = 0; i < n; ++i) fn(i);
    }
    return;
  }
  pool->for_each_index(n, fn);
}

}  // namespace dosn::util
