#include "util/thread_pool.hpp"

#include <cstdlib>

#include "obs/obs.hpp"

namespace dosn::util {
namespace {

// Pool metrics (DESIGN.md §9). There is no work stealing to count — the
// partition is static by design — so the interesting quantities are how
// many fork-joins ran, how much index space they covered, and how many
// worker chunks that fanned into (serial loops count as one chunk).
struct PoolMetrics {
  obs::Counter& jobs =
      obs::Registry::global().counter("util.thread_pool.jobs");
  obs::Counter& serial_jobs =
      obs::Registry::global().counter("util.thread_pool.serial_jobs");
  obs::Counter& indices =
      obs::Registry::global().counter("util.thread_pool.indices");
  obs::Counter& chunks =
      obs::Registry::global().counter("util.thread_pool.chunks");
};

PoolMetrics& metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("DOSN_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads > 0 ? threads : default_thread_count()) {
  helpers_.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w)
    helpers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& helper : helpers_) helper.join();
}

void ThreadPool::run_chunk(std::size_t worker) noexcept {
  // Static partition: worker w owns [w*n/T, (w+1)*n/T).
  const std::size_t begin = worker * job_n_ / threads_;
  const std::size_t end = (worker + 1) * job_n_ / threads_;
  try {
    for (std::size_t i = begin; i < end; ++i) (*job_)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_chunk(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (running_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    metrics().serial_jobs.add(1);
    metrics().indices.add(n);
    metrics().chunks.add(1);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  metrics().jobs.add(1);
  metrics().indices.add(n);
  metrics().chunks.add(threads_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    running_ = threads_ - 1;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0);  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void parallel_for_each(ThreadPool* pool, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->thread_count() == 1) {
    if (n > 0) {
      metrics().serial_jobs.add(1);
      metrics().indices.add(n);
      metrics().chunks.add(1);
    }
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->for_each_index(n, fn);
}

}  // namespace dosn::util
