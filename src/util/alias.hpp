// Walker alias method: O(1) sampling from a fixed discrete distribution.
// Used by the synthetic generators to draw edge endpoints and interaction
// partners proportionally to power-law weights.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace dosn::util {

class DiscreteSampler {
 public:
  /// Builds the alias table from non-negative weights (not all zero).
  explicit DiscreteSampler(std::span<const double> weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  std::size_t draw(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

namespace detail {

/// Alias-table contract, DOSN_CHECKed after construction: equal-length
/// non-empty arrays, every acceptance probability in [0, 1], every alias
/// index in range. Exposed so tests can prove the contract fires on
/// malformed tables.
void check_alias_table(std::span<const double> prob,
                       std::span<const std::uint32_t> alias);

}  // namespace detail

}  // namespace dosn::util
