// Clang Thread Safety Analysis capabilities (DESIGN.md §13).
//
// The determinism wall (§7) and the work-stealing runtime (§12) put the
// hot path on hand-ordered atomics and a small set of mutexes. TSan can
// only validate the interleavings a given run happens to explore; this
// header moves locking discipline to *compile time*: every mutex becomes
// a named capability, every member it guards is declared `DOSN_GUARDED_BY`,
// and every function that needs the lock says so with `DOSN_REQUIRES`.
// Under Clang (`-Wthread-safety`, on by default for Clang builds and
// enforced with -Werror by the `thread-safety` CI job) an unguarded
// access or a missing-lock call is a compile error; under GCC the macros
// expand to nothing and the annotated wrapper is exactly a std::mutex.
//
// Discipline rules:
//   - Every `std::mutex`-like member in src/ is a `util::Mutex`, and every
//     member it protects carries `DOSN_GUARDED_BY(that_mutex_)`.
//   - Lock scopes use `util::MutexLock` (annotated RAII, behaviorally
//     identical to std::lock_guard — asserted by tests/test_util.cpp).
//   - Condition-variable waits use `util::CondVar`
//     (std::condition_variable_any) over a `MutexLock`, with the
//     wait predicate re-checked in a plain while loop in the *annotated*
//     caller — predicate lambdas are analyzed as lock-free contexts and
//     would defeat the analysis.
//   - Lock-free state (std::atomic members) is not guarded by a
//     capability; its protocol is documented per-site with `// protocol:`
//     comments enforced by tools/lint_atomics.py.
//
// The negative-compile probes (tests/thread_annotations_probes/) assert
// that violations of these annotations actually fail to compile.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DOSN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DOSN_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// A type that acts as a lock/capability (class-level attribute).
#define DOSN_CAPABILITY(x) DOSN_THREAD_ANNOTATION_(capability(x))

/// An RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define DOSN_SCOPED_CAPABILITY DOSN_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define DOSN_GUARDED_BY(x) DOSN_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define DOSN_PT_GUARDED_BY(x) DOSN_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// does not release them).
#define DOSN_REQUIRES(...) \
  DOSN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define DOSN_ACQUIRE(...) \
  DOSN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (which must be held).
#define DOSN_RELEASE(...) \
  DOSN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define DOSN_TRY_ACQUIRE(...) \
  DOSN_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define DOSN_EXCLUDES(...) DOSN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (deadlock prevention between capabilities).
#define DOSN_ACQUIRED_BEFORE(...) \
  DOSN_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DOSN_ACQUIRED_AFTER(...) \
  DOSN_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define DOSN_RETURN_CAPABILITY(x) DOSN_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// explain why in an adjacent comment.
#define DOSN_NO_THREAD_SAFETY_ANALYSIS \
  DOSN_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dosn::util {

/// std::mutex as a named Clang capability. Drop-in: same operations,
/// same cost (the wrapper is a plain member call), but members it guards
/// can be declared DOSN_GUARDED_BY(mutex_) and misuse becomes a compile
/// error under -Wthread-safety.
class DOSN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DOSN_ACQUIRE() { m_.lock(); }
  void unlock() DOSN_RELEASE() { m_.unlock(); }
  bool try_lock() DOSN_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Annotated RAII lock scope over util::Mutex — std::lock_guard with a
/// scoped-capability attribute, plus explicit unlock()/lock() so a
/// util::CondVar (std::condition_variable_any) can wait on it. The
/// common construct-to-destruct path performs exactly one lock() and one
/// unlock(), identical to std::lock_guard (tests/test_util.cpp asserts
/// the behavioral equivalence).
class DOSN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DOSN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() DOSN_RELEASE() {
    if (held_) mutex_.unlock();
  }

  /// For CondVar::wait (which unlocks around the block) and early-release
  /// scopes. Must be held.
  void unlock() DOSN_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }

  /// Re-acquire after unlock() (CondVar::wait relocks before returning).
  void lock() DOSN_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;  // single-owner bookkeeping; never shared
};

/// Condition variable usable with the annotated MutexLock.
/// std::condition_variable_any calls MutexLock::unlock()/lock() around
/// the block; TSA treats wait() as capability-neutral (held before, held
/// after), which matches its actual contract. Re-check wait predicates
/// in a plain `while` loop in the annotated caller — never a lambda
/// passed into wait(), which the analysis would treat as lock-free code.
using CondVar = std::condition_variable_any;

}  // namespace dosn::util
