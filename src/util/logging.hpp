// Minimal leveled logger for the experiment drivers. Not thread-global
// mutable state beyond an atomic level; output goes to stderr so that
// harness stdout stays machine-parsable.
#pragma once

#include <atomic>
#include <string>

namespace dosn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits "[level] message" to stderr when `level` is enabled.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace dosn::util
