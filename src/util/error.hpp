// Error hierarchy and checking macros used across the library.
//
// Library errors are reported with exceptions (never error codes): a
// dosn::Error for environment/usage failures a caller can reasonably handle
// (bad input files, invalid configurations), and std::logic_error via
// DOSN_ASSERT for broken internal invariants that indicate a bug.
#pragma once

#include <stdexcept>
#include <string>

namespace dosn {

/// Base class of all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or unusable input data (trace files, graph files, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Invalid experiment / model / policy configuration supplied by the caller.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// I/O failure (file not found, write failure, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
[[noreturn]] void throw_config_failure(const std::string& msg);
}  // namespace detail

}  // namespace dosn

/// Internal invariant check: throws std::logic_error when violated.
/// Active in all build types; the checked conditions are cheap.
#define DOSN_ASSERT(expr)                                                \
  do {                                                                   \
    if (!(expr))                                                         \
      ::dosn::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DOSN_ASSERT_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::dosn::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Precondition on caller-supplied configuration: throws dosn::ConfigError.
#define DOSN_REQUIRE(expr, msg)                    \
  do {                                             \
    if (!(expr)) ::dosn::detail::throw_config_failure((msg)); \
  } while (false)
