#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dosn::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  DOSN_ASSERT_MSG(n_ > 0, "min() of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  DOSN_ASSERT_MSG(n_ > 0, "max() of empty RunningStats");
  return max_;
}

double percentile(std::span<const double> values, double q) {
  DOSN_REQUIRE(!values.empty(), "percentile of empty sample");
  DOSN_REQUIRE(q >= 0.0 && q <= 1.0, "percentile rank must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  DOSN_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  DOSN_REQUIRE(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x, double weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long long>(std::floor((x - lo_) / width));
  raw = std::clamp<long long>(raw, 0,
                              static_cast<long long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(raw)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

std::vector<double> average_series(
    const std::vector<std::vector<double>>& runs) {
  DOSN_REQUIRE(!runs.empty(), "average_series: no runs");
  const std::size_t n = runs.front().size();
  for (const auto& run : runs)
    DOSN_REQUIRE(run.size() == n, "average_series: run length mismatch");
  std::vector<double> out(n, 0.0);
  for (const auto& run : runs)
    for (std::size_t i = 0; i < n; ++i) out[i] += run[i];
  for (auto& v : out) v /= static_cast<double>(runs.size());
  return out;
}

}  // namespace dosn::util
