#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace dosn::util {

double Rng::normal() {
  // Box–Muller; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double rate) {
  DOSN_ASSERT(rate > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::pareto(double x_min, double alpha) {
  DOSN_ASSERT(x_min > 0.0 && alpha > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_min / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  ZipfTable table(static_cast<std::size_t>(n), s);
  return table.draw(*this);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  DOSN_ASSERT(k <= n);
  if (k == 0) return {};
  // For dense requests a partial Fisher–Yates over an index array is both
  // simple and O(n); for sparse requests rejection sampling avoids the
  // allocation of the full index range.
  if (k * 3 >= n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  // lint:ordered-ok — membership-only rejection filter; `out` is appended
  // in draw order, so the set's iteration order is never observed.
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    std::size_t v = static_cast<std::size_t>(below(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

ZipfTable::ZipfTable(std::size_t n, double exponent) {
  DOSN_REQUIRE(n > 0, "ZipfTable: support size must be positive");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding drift
}

std::size_t ZipfTable::draw(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

}  // namespace dosn::util
