#include "util/error.hpp"

#include <sstream>

namespace dosn::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "DOSN_ASSERT failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

void throw_config_failure(const std::string& msg) { throw ConfigError(msg); }

}  // namespace dosn::detail
