// CSV output for experiment results. Every figure harness writes its series
// to results/<figure>.csv so plots can be regenerated outside the binary.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace dosn::util {

/// Streams rows to a CSV file; quotes fields only when needed.
class CsvWriter {
 public:
  /// Creates/overwrites `path`, creating parent directories as needed.
  explicit CsvWriter(const std::string& path);

  void header(std::span<const std::string> names);
  void row(std::span<const double> values);
  void raw_row(std::span<const std::string> fields);

  const std::string& path() const { return path_; }

 private:
  void write_fields(std::span<const std::string> fields);

  std::string path_;
  std::ofstream out_;
};

/// Writes a set of series sharing one x-axis as columns:
/// x,<name1>,<name2>,... Each series must have the same x vector.
void write_series_csv(const std::string& path, const std::string& x_name,
                      std::span<const Series> series);

}  // namespace dosn::util
