// Bounded lock-free single-producer/single-consumer queue.
//
// The pipeline runtime (DESIGN.md §12) connects serial stages — the
// activity generator producing chunks, the folding stage consuming them —
// with exactly one producer thread and one consumer thread per queue, so
// the classic Lamport ring buffer applies: `head_` is written only by the
// consumer, `tail_` only by the producer, and each side re-reads the other
// side's index with acquire ordering only when its cached copy says the
// queue looks full resp. empty. Slots are plain (non-atomic) storage;
// the release store on the index publishes the slot contents.
//
// close() is the end-of-stream signal: pop() drains every element pushed
// before the close and only then starts returning false. Determinism note:
// the queue carries *data*, never scheduling decisions — element order is
// FIFO by construction, so a pipeline built on it processes chunks in
// exactly the order the producer emitted them.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace dosn::util {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` elements can be in flight (>= 1); one extra slot
  /// distinguishes full from empty.
  explicit SpscQueue(std::size_t capacity)
      : slots_(round_up_pow2(capacity + 1)), mask_(slots_.size() - 1) {
    DOSN_REQUIRE(capacity >= 1, "SpscQueue: capacity must be >= 1");
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the queue is full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side: blocks (spin + yield) until there is room.
  void push(T value) {
    while (!try_push(std::move(value))) std::this_thread::yield();
  }

  /// Consumer side. Returns false when the queue is currently empty
  /// (which is not end-of-stream — see pop()).
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side: blocks until an element arrives or the producer
  /// closed the queue *and* every pushed element was drained. Returns
  /// false only at end-of-stream.
  bool pop(T& out) {
    for (;;) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: the producer may have pushed between the failed
        // try_pop and the close flag becoming visible.
        return try_pop(out);
      }
      std::this_thread::yield();
    }
  }

  /// Producer side: declares end-of-stream. Elements already queued stay
  /// poppable.
  void close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  std::size_t capacity() const { return slots_.size() - 1; }

  /// Instantaneous element count (either side; approximate under
  /// concurrency, exact when the other side is quiescent).
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::vector<T> slots_;
  std::size_t mask_;

  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
  alignas(64) std::atomic<bool> closed_{false};

  // Each side's cached copy of the other side's index (avoids cache-line
  // ping-pong on the common path). Only touched by the owning side.
  alignas(64) std::size_t head_cache_ = 0;  // producer-owned
  alignas(64) std::size_t tail_cache_ = 0;  // consumer-owned
};

}  // namespace dosn::util
