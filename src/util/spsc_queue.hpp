// Bounded lock-free single-producer/single-consumer queue.
//
// The pipeline runtime (DESIGN.md §12) connects serial stages — the
// activity generator producing chunks, the folding stage consuming them —
// with exactly one producer thread and one consumer thread per queue, so
// the classic Lamport ring buffer applies: `head_` is written only by the
// consumer, `tail_` only by the producer, and each side re-reads the other
// side's index with acquire ordering only when its cached copy says the
// queue looks full resp. empty. Slots are plain (non-atomic) storage;
// the release store on the index publishes the slot contents.
//
// close() is the end-of-stream signal: pop() drains every element pushed
// before the close and only then starts returning false. Determinism note:
// the queue carries *data*, never scheduling decisions — element order is
// FIFO by construction, so a pipeline built on it processes chunks in
// exactly the order the producer emitted them.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace dosn::util {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` elements can be in flight (>= 1); one extra slot
  /// distinguishes full from empty.
  explicit SpscQueue(std::size_t capacity)
      : slots_(round_up_pow2(capacity + 1)), mask_(slots_.size() - 1) {
    DOSN_REQUIRE(capacity >= 1, "SpscQueue: capacity must be >= 1");
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the queue is full.
  bool try_push(T&& value) {
    // protocol: relaxed — tail_ is producer-owned; only the producer
    // writes it, so its own last value needs no ordering.
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      // protocol: acquire — pairs with the consumer's release store of
      // head_ in try_pop(); seeing the freed slot index means the
      // consumer's move-out of that slot happened-before this push.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(value);
    // protocol: release — publishes the slot write above; pairs with the
    // consumer's acquire load of tail_ in try_pop().
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side: blocks (spin + yield) until there is room.
  void push(T value) {
    while (!try_push(std::move(value))) std::this_thread::yield();
  }

  /// Consumer side. Returns false when the queue is currently empty
  /// (which is not end-of-stream — see pop()).
  bool try_pop(T& out) {
    // protocol: relaxed — head_ is consumer-owned (mirror of tail_ in
    // try_push).
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      // protocol: acquire — pairs with the producer's release store of
      // tail_; seeing the new tail means the slot contents are visible.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head]);
    // protocol: release — publishes the moved-out (reusable) slot;
    // pairs with the producer's acquire load of head_ in try_push().
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side: blocks until an element arrives or the producer
  /// closed the queue *and* every pushed element was drained. Returns
  /// false only at end-of-stream.
  bool pop(T& out) {
    for (;;) {
      if (try_pop(out)) return true;
      // protocol: acquire — pairs with close()'s release store; seeing
      // the flag means every pre-close push is visible to the re-check.
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: the producer may have pushed between the failed
        // try_pop and the close flag becoming visible.
        return try_pop(out);
      }
      std::this_thread::yield();
    }
  }

  /// Producer side: declares end-of-stream. Elements already queued stay
  /// poppable.
  void close() {
    // protocol: release — orders every prior push before the flag;
    // pairs with the acquire loads in pop()/closed().
    closed_.store(true, std::memory_order_release);
  }

  bool closed() const {
    // protocol: acquire — see close().
    return closed_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return slots_.size() - 1; }

  /// Instantaneous element count (either side; approximate under
  /// concurrency, exact when the other side is quiescent).
  std::size_t size() const {
    // protocol: acquire — a monitoring snapshot of both indices; pairs
    // with the release stores in try_push/try_pop. Approximate by
    // nature (the two loads are not one atomic read).
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);  // protocol: acquire ^
    return (tail - head) & mask_;
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::vector<T> slots_;
  std::size_t mask_;

  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
  alignas(64) std::atomic<bool> closed_{false};

  // Each side's cached copy of the other side's index (avoids cache-line
  // ping-pong on the common path). Only touched by the owning side.
  alignas(64) std::size_t head_cache_ = 0;  // producer-owned
  alignas(64) std::size_t tail_cache_ = 0;  // consumer-owned
};

}  // namespace dosn::util
