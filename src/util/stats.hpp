// Small statistics toolkit used by the experiment drivers: running moments,
// percentiles, fixed-bin histograms and series averaging across repetitions.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dosn::util {

/// Single-pass accumulator for mean / variance / min / max (Welford).
class RunningStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel Welford combination).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics; `q` in [0, 1]. The input span is copied and sorted.
double percentile(std::span<const double> values, double q);

double mean_of(std::span<const double> values);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin so that totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Element-wise mean of equally sized series; used for "repeat 5 times and
/// average" experiment repetitions. Throws ConfigError on shape mismatch.
std::vector<double> average_series(
    const std::vector<std::vector<double>>& runs);

/// A named (x, y) series, the unit all experiment harnesses report in.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

}  // namespace dosn::util
