// Aligned plain-text tables for console reports.
#pragma once

#include <string>
#include <vector>

namespace dosn::util {

/// Collects rows of string cells and renders them column-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest are formatted numbers.
  void add_row(const std::string& label, const std::vector<double>& values,
               const char* fmt = "%.3f");

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dosn::util
