// Unit tests for the util toolkit: rng, stats, strings, csv, alias, tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "util/alias.hpp"
#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_annotations.hpp"

namespace dosn::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Mix64, ThreeWayMixIsNestedAndCollisionResistant) {
  EXPECT_EQ(mix64(1, 2, 3), mix64(mix64(1, 2), 3));
  // Argument order matters (no commutative aliasing).
  EXPECT_NE(mix64(1, 2, 3), mix64(3, 2, 1));
  EXPECT_NE(mix64(1, 2, 3), mix64(2, 1, 3));
  // Small-coordinate triples that alias under additive schemes do not.
  EXPECT_NE(mix64(0, 1, 0), mix64(0, 0, 131));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(3);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.below(10)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
}

TEST(Rng, ParetoMeanMatchesTheory) {
  Rng rng(17);
  RunningStats s;
  // alpha=3 keeps the variance finite so the empirical mean converges.
  for (int i = 0; i < 200000; ++i) s.add(rng.pareto(1.0, 3.0));
  EXPECT_NEAR(s.mean(), 1.5, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(23);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto s = rng.sample_indices(100, k);
    EXPECT_EQ(s.size(), k);
    std::sort(s.begin(), s.end());
    EXPECT_EQ(std::unique(s.begin(), s.end()), s.end());
    for (auto i : s) EXPECT_LT(i, 100u);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // Child stream differs from the parent continuation.
  Rng b(5);
  b.fork();
  EXPECT_NE(child(), a());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(ZipfTable, FirstRankMostLikely) {
  Rng rng(31);
  ZipfTable table(10, 1.0);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) ++counts[table.draw(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], 0);
}

TEST(ZipfTable, SingleElement) {
  Rng rng(37);
  ZipfTable table(1, 1.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.draw(rng), 1u);
}

TEST(Mix64, SensitiveToBothArguments) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), mix64(0, 1));
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(41);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.5);
}

TEST(Percentile, RejectsEmptyAndBadRank) {
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile({}, 0.5), ConfigError);
  EXPECT_THROW(percentile(v, 1.5), ConfigError);
}

TEST(Histogram, ClampsOutliers) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(3.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(AverageSeries, ElementwiseMean) {
  const auto avg = average_series({{1, 2, 3}, {3, 4, 5}});
  EXPECT_EQ(avg, (std::vector<double>{2, 3, 4}));
}

TEST(AverageSeries, RejectsShapeMismatch) {
  EXPECT_THROW(average_series({{1, 2}, {1, 2, 3}}), ConfigError);
  EXPECT_THROW(average_series({}), ConfigError);
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto f = split("a,,b,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(Strings, SplitWsDropsRuns) {
  const auto f = split_ws("  a \t b\t\tc  ");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, ParseI64Strict) {
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_THROW(parse_i64("42x"), ParseError);
  EXPECT_THROW(parse_i64(""), ParseError);
  EXPECT_THROW(parse_i64("4 2"), ParseError);
}

TEST(Strings, ParseF64Strict) {
  EXPECT_DOUBLE_EQ(parse_f64("2.5"), 2.5);
  EXPECT_THROW(parse_f64("abc"), ParseError);
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format_duration_s(7200.0), "2.0 h");
  EXPECT_EQ(format_duration_s(120.0), "2.0 min");
  EXPECT_EQ(format_duration_s(30.0), "30 s");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/dosn_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header(std::vector<std::string>{"a", "b"});
    csv.row(std::vector<double>{1.0, 2.5});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::filesystem::remove(path);
}

TEST(Csv, QuotesSpecialFields) {
  const std::string path = testing::TempDir() + "/dosn_csv_quote.csv";
  {
    CsvWriter csv(path);
    csv.raw_row(std::vector<std::string>{"plain", "a,b", "say \"hi\""});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"a,b\",\"say \"\"hi\"\"\"");
  std::filesystem::remove(path);
}

TEST(Csv, SeriesSharedAxis) {
  const std::string path = testing::TempDir() + "/dosn_csv_series.csv";
  std::vector<Series> series{{"s1", {0, 1}, {5, 6}}, {"s2", {0, 1}, {7, 8}}};
  write_series_csv(path, "k", series);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,s1,s2");
  std::getline(in, line);
  EXPECT_EQ(line, "0,5,7");
  std::filesystem::remove(path);
}

TEST(Csv, SeriesRejectsMismatchedAxes) {
  std::vector<Series> series{{"s1", {0, 1}, {5, 6}}, {"s2", {0, 2}, {7, 8}}};
  EXPECT_THROW(write_series_csv(testing::TempDir() + "/x.csv", "k", series),
               ConfigError);
}

TEST(DiscreteSampler, RespectsWeights) {
  Rng rng(43);
  std::vector<double> w{1.0, 0.0, 3.0};
  DiscreteSampler sampler(w);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[sampler.draw(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(DiscreteSampler, RejectsDegenerateInput) {
  std::vector<double> zero{0.0, 0.0};
  std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(DiscreteSampler(std::span<const double>{}), ConfigError);
  EXPECT_THROW(DiscreteSampler{zero}, ConfigError);
  EXPECT_THROW(DiscreteSampler{negative}, ConfigError);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row("long-label", {2.5});
  const auto s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-label"), std::string::npos);
  EXPECT_NE(s.find("2.500"), std::string::npos);
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  std::vector<Series> series{{"up", {0, 1, 2}, {0.0, 0.5, 1.0}}};
  ChartOptions opt;
  opt.title = "test-chart";
  opt.y_max = 1.0;
  const auto s = render_chart(series, opt);
  EXPECT_NE(s.find("test-chart"), std::string::npos);
  EXPECT_NE(s.find("legend:"), std::string::npos);
  EXPECT_NE(s.find("up"), std::string::npos);
}

TEST(AsciiChart, LogXRequiresPositive) {
  std::vector<Series> series{{"s", {0, 1}, {0, 1}}};
  ChartOptions opt;
  opt.log_x = true;
  EXPECT_THROW(render_chart(series, opt), ConfigError);
}

TEST(Logging, LevelGateAndRestore) {
  const auto previous = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Below-threshold calls are no-ops; above-threshold calls must not
  // throw. (Output goes to stderr; we only check control flow.)
  EXPECT_NO_THROW(log_debug("suppressed"));
  EXPECT_NO_THROW(log_error("emitted"));
  set_log_level(LogLevel::kOff);
  EXPECT_NO_THROW(log_error("suppressed too"));
  set_log_level(previous);
}

TEST(Error, AssertMacroThrowsLogicError) {
  EXPECT_THROW(DOSN_ASSERT(1 == 2), std::logic_error);
  EXPECT_NO_THROW(DOSN_ASSERT(1 == 1));
}

TEST(Error, RequireThrowsConfigError) {
  EXPECT_THROW(DOSN_REQUIRE(false, "bad config"), ConfigError);
}

// MutexLock must behave exactly like std::lock_guard over util::Mutex —
// the annotation layer changes what Clang can prove, never the locking.

TEST(MutexLock, MutualExclusionUnderContention) {
  Mutex mutex;
  long value = 0;
  auto worker = [&] {
    for (int i = 0; i < 20000; ++i) {
      MutexLock lock(mutex);
      ++value;
    }
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  EXPECT_EQ(value, 40000);
}

TEST(MutexLock, EarlyUnlockReleasesAndRelockReacquires) {
  Mutex mutex;
  MutexLock lock(mutex);
  lock.unlock();
  {
    // Another thread can now take the mutex (same thread would deadlock
    // on std::mutex, so probe from a helper).
    bool acquired = false;
    std::thread probe([&] {
      acquired = mutex.try_lock();
      if (acquired) mutex.unlock();
    });
    probe.join();
    EXPECT_TRUE(acquired);
  }
  lock.lock();  // re-acquire so the destructor's release is balanced
  bool acquired_while_held = true;
  std::thread probe([&] {
    acquired_while_held = mutex.try_lock();
    if (acquired_while_held) mutex.unlock();
  });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
}

TEST(MutexLock, DestructorReleases) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
  }
  bool acquired = false;
  std::thread probe([&] {
    acquired = mutex.try_lock();
    if (acquired) mutex.unlock();
  });
  probe.join();
  EXPECT_TRUE(acquired);
}

TEST(CondVar, WaitsDirectlyOnMutexLock) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mutex);
    while (!ready) cv.wait(lock);
  }
  signaller.join();
  EXPECT_TRUE(ready);
}

}  // namespace
}  // namespace dosn::util
