// Golden-figure regression tests: byte-exact CSV comparison.
//
// Two committed CSVs under tests/golden/ pin the fig03-style ConRep
// availability curves and the fig07-style update-delay curves on a small
// fixed synthetic preset (scale_preset at 2000 users, seed 20120618). The
// test regenerates the sweep, renders it through the same
// util::write_series_csv path the figure harnesses use, and diffs the
// bytes. Any drift — an engine change, an RNG stream change, a CSV
// formatting change — fails loudly; nothing about these curves is allowed
// to move silently.
//
// To refresh after an intentional change:
//   DOSN_UPDATE_GOLDEN=1 ./tests-build/test_golden_figures
// rewrites the files under the source tree; re-run without the variable to
// confirm, and commit the diff with the change that caused it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "graph/degree_stats.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/csv.hpp"

namespace dosn {
namespace {

constexpr std::uint64_t kSeed = 20120618;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const sim::SweepResult& golden_sweep() {
  static const sim::SweepResult sweep = [] {
    synth::ScaleOptions opts;
    opts.users = 2000;
    util::Rng rng(kSeed);
    const auto dataset =
        synth::generate_raw(synth::scale_preset(opts), rng);
    sim::Study study(dataset, kSeed);
    sim::StudyOptions options;
    options.cohort_degree =
        graph::most_populated_degree(dataset.graph, 5, 15);
    options.k_max = 5;
    options.repetitions = 2;
    return study.replication_sweep(onlinetime::ModelKind::kSporadic, {},
                                   placement::Connectivity::kConRep,
                                   options);
  }();
  return sweep;
}

void check_golden(const std::string& name, sim::Metric metric) {
  const auto& sweep = golden_sweep();
  const std::string golden_path =
      std::string(DOSN_TEST_SOURCE_DIR) + "/golden/" + name + ".csv";

  // NOLINTNEXTLINE(concurrency-mt-unsafe) — single-threaded test body.
  if (const char* update = std::getenv("DOSN_UPDATE_GOLDEN");
      update && *update) {
    util::write_series_csv(golden_path, sweep.x_label, sweep.series(metric));
    GTEST_SKIP() << "rewrote " << golden_path;
  }

  const std::string regen_path = "results/golden_" + name + ".csv";
  util::write_series_csv(regen_path, sweep.x_label, sweep.series(metric));

  const std::string expected = read_file(golden_path);
  const std::string actual = read_file(regen_path);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << golden_path;
  ASSERT_FALSE(actual.empty()) << "regeneration wrote nothing";
  EXPECT_EQ(expected, actual)
      << "golden figure drifted from " << golden_path
      << "\nIf the change is intentional, refresh with "
         "DOSN_UPDATE_GOLDEN=1 and commit the new CSV.";
}

TEST(GoldenFigures, Fig03ConRepAvailability) {
  check_golden("fig03_conrep_availability", sim::Metric::kAvailability);
}

TEST(GoldenFigures, Fig07UpdateDelay) {
  check_golden("fig07_update_delay", sim::Metric::kDelayActualH);
}

}  // namespace
}  // namespace dosn
