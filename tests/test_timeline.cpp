// Tests for the temporal split and the absolute-timeline evaluation.
#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"
#include "sim/evaluate.hpp"
#include "onlinetime/sporadic.hpp"
#include "sim/timeline.hpp"
#include "synth/presets.hpp"
#include "util/error.hpp"

namespace dosn {
namespace {

using interval::kDaySeconds;
using interval::Seconds;
using trace::Activity;

constexpr Seconds kH = 3600;

trace::Dataset pair_dataset(std::vector<Activity> acts) {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  trace::Dataset d;
  d.name = "pair";
  d.graph = std::move(b).build();
  d.trace = trace::ActivityTrace(3, std::move(acts));
  return d;
}

TEST(TemporalSplit, PartitionsByTimestamp) {
  auto d = pair_dataset({{1, 0, 100}, {1, 0, 200}, {2, 0, 300}, {2, 0, 400},
                         {1, 0, 500}});
  const auto split = trace::split_by_time(d, 0.6);
  EXPECT_EQ(split.past.trace.size() + split.future.trace.size(), 5u);
  for (const auto& a : split.past.trace.all())
    EXPECT_LT(a.timestamp, split.split_at);
  for (const auto& a : split.future.trace.all())
    EXPECT_GE(a.timestamp, split.split_at);
  EXPECT_GE(split.future.trace.size(), 1u);
  EXPECT_GE(split.past.trace.size(), 1u);
  // Graph and ids unchanged on both sides.
  EXPECT_EQ(split.past.graph.num_edges(), d.graph.num_edges());
  EXPECT_EQ(split.future.num_users(), d.num_users());
}

TEST(TemporalSplit, RejectsBadFraction) {
  auto d = pair_dataset({{1, 0, 100}});
  EXPECT_THROW(trace::split_by_time(d, 0.0), ConfigError);
  EXPECT_THROW(trace::split_by_time(d, 1.0), ConfigError);
}

TEST(TemporalSplit, EmptyTraceYieldsEmptySides) {
  auto d = pair_dataset({});
  const auto split = trace::split_by_time(d, 0.5);
  EXPECT_TRUE(split.past.trace.empty());
  EXPECT_TRUE(split.future.trace.empty());
  EXPECT_EQ(split.past.graph.num_users(), 3u);
}

TEST(Timeline, SessionsAtAbsoluteTimes) {
  // User 1 active on day 0 and day 5: both sessions exist separately.
  auto d = pair_dataset({{1, 0, 10 * kH}, {1, 0, 5 * kDaySeconds + 10 * kH}});
  util::Rng rng(1);
  const auto t = sim::timeline_sporadic(d, 1200, rng);
  EXPECT_EQ(t.online[1].measure(), 2 * 1200);
  EXPECT_TRUE(t.online[1].contains(10 * kH));
  EXPECT_TRUE(t.online[1].contains(5 * kDaySeconds + 10 * kH));
  EXPECT_FALSE(t.online[1].contains(2 * kDaySeconds + 10 * kH));
  EXPECT_GT(t.span(), 5 * kDaySeconds);
}

TEST(Timeline, ProjectionInflatesAvailability) {
  // Two activities at the same time-of-day on different days: the daily
  // projection merges them into one covered stretch and divides by one
  // day, while the timeline keeps them apart across a 6-day span.
  auto d = pair_dataset({{1, 0, 10 * kH}, {1, 0, 5 * kDaySeconds + 10 * kH}});
  util::Rng r1(7);
  const auto timeline = sim::timeline_sporadic(d, 1200, r1);

  const std::vector<graph::UserId> replicas{1};
  const auto real = sim::evaluate_on_timeline(d, timeline, 0, replicas);

  // Projected view: the same two sessions overlap on the daily cycle.
  const double projected = 1200.0 / 86400.0;  // at most one session's worth
  EXPECT_LE(real.availability, projected + 1e-12);
  EXPECT_GT(real.availability, 0.0);
}

TEST(Timeline, ActivityCoverageUsesAbsoluteInstants) {
  // Post at day 5 arrives while replica 1 is online (its session contains
  // that instant); a post on day 2 finds nobody.
  auto d = pair_dataset({{1, 0, 10 * kH},
                         {1, 0, 5 * kDaySeconds + 10 * kH},
                         {2, 0, 2 * kDaySeconds + 10 * kH}});
  util::Rng rng(3);
  const auto timeline = sim::timeline_sporadic(d, 1200, rng);
  const std::vector<graph::UserId> replicas{1};
  const auto m = sim::evaluate_on_timeline(d, timeline, 0, replicas);
  // Of the three received activities, the two made by user 1 are inside
  // user 1's own sessions; user 2's post (day 2) is not covered by 1.
  // (user 2's own session covers it only if 2 were a replica.)
  EXPECT_NEAR(m.aod_activity, 2.0 / 3.0, 1e-12);
}

TEST(Timeline, AodTimeAgainstFriendsUnion) {
  auto d = pair_dataset({{1, 0, 10 * kH}, {2, 0, 20 * kH}});
  util::Rng rng(4);
  const auto timeline = sim::timeline_sporadic(d, 1200, rng);
  // Replicating on both friends covers the whole demand.
  const std::vector<graph::UserId> both{1, 2};
  EXPECT_DOUBLE_EQ(
      sim::evaluate_on_timeline(d, timeline, 0, both).aod_time, 1.0);
  // Owner-only covers none of it (user 0 has no sessions).
  EXPECT_DOUBLE_EQ(
      sim::evaluate_on_timeline(d, timeline, 0, {}).aod_time, 0.0);
}

TEST(Timeline, EmptyTraceSafe) {
  auto d = pair_dataset({});
  util::Rng rng(5);
  const auto timeline = sim::timeline_sporadic(d, 1200, rng);
  EXPECT_EQ(timeline.span(), 0);
  const auto m = sim::evaluate_on_timeline(d, timeline, 0, {});
  EXPECT_DOUBLE_EQ(m.availability, 0.0);
  EXPECT_DOUBLE_EQ(m.aod_time, 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(m.aod_activity, 1.0);
}

TEST(Timeline, ProjectionGapOnSyntheticCohort) {
  // End-to-end sanity of the A8 effect: projected availability strictly
  // exceeds timeline availability on a real synthetic cohort.
  auto preset = synth::scaled(synth::facebook_preset(), 0.02);
  util::Rng rng(6);
  const auto dataset = synth::generate_study_dataset(preset, rng);
  util::Rng r1(9);
  const auto timeline = sim::timeline_sporadic(dataset, 1200, r1);

  const auto degree = graph::most_populated_degree(dataset.graph, 4, 12);
  auto cohort = graph::users_with_degree(dataset.graph, degree);
  cohort.resize(std::min<std::size_t>(cohort.size(), 10));

  util::Rng r2(9);  // same offsets as the timeline construction
  onlinetime::SporadicModel model(1200);
  const auto projected = model.schedules(dataset, r2);

  double proj_sum = 0, real_sum = 0;
  for (graph::UserId u : cohort) {
    const auto contacts = dataset.graph.contacts(u);
    const std::vector<graph::UserId> replicas(contacts.begin(),
                                              contacts.end());
    proj_sum +=
        sim::evaluate_user(dataset, projected, u, replicas,
                           placement::Connectivity::kConRep)
            .availability;
    real_sum +=
        sim::evaluate_on_timeline(dataset, timeline, u, replicas)
            .availability;
  }
  EXPECT_GT(proj_sum, real_sum * 1.5);
}

}  // namespace
}  // namespace dosn
