// Tests for the trace-statistics module.
#include <gtest/gtest.h>

#include "trace/statistics.hpp"
#include "util/error.hpp"

namespace dosn::trace {
namespace {

using graph::GraphKind;
using graph::SocialGraphBuilder;

constexpr Seconds kH = 3600;

Dataset dataset_with(std::vector<Activity> acts) {
  SocialGraphBuilder b(GraphKind::kUndirected, 4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  Dataset d;
  d.name = "t";
  d.graph = std::move(b).build();
  d.trace = ActivityTrace(4, std::move(acts));
  return d;
}

TEST(TraceStatistics, EmptyTraceIsAllZero) {
  const auto s = trace_statistics(dataset_with({}));
  EXPECT_EQ(s.peak_hour, 0);
  EXPECT_DOUBLE_EQ(s.span_days, 0.0);
  EXPECT_DOUBLE_EQ(s.self_post_fraction, 0.0);
  for (double f : s.hourly_profile) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(TraceStatistics, HourlyProfileAndPeak) {
  // Three activities at 21:xx, one at 09:xx.
  const auto s = trace_statistics(dataset_with({{0, 1, 21 * kH},
                                                {0, 1, 21 * kH + 60},
                                                {0, 2, 21 * kH + 120},
                                                {0, 3, 9 * kH}}));
  EXPECT_EQ(s.peak_hour, 21);
  EXPECT_DOUBLE_EQ(s.hourly_profile[21], 0.75);
  EXPECT_DOUBLE_EQ(s.hourly_profile[9], 0.25);
  double sum = 0;
  for (double f : s.hourly_profile) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(TraceStatistics, SelfPostFraction) {
  const auto s = trace_statistics(
      dataset_with({{0, 0, 100}, {0, 1, 200}, {1, 1, 300}, {1, 0, 400}}));
  EXPECT_DOUBLE_EQ(s.self_post_fraction, 0.5);
}

TEST(TraceStatistics, InterarrivalGaps) {
  // Creator 0 posts at t=0, 100, 400 -> gaps 100 and 300.
  const auto s = trace_statistics(
      dataset_with({{0, 1, 0}, {0, 2, 100}, {0, 1, 400}}));
  EXPECT_EQ(s.median_interarrival, 200);  // interpolated median of {100,300}
  EXPECT_GE(s.p90_interarrival, s.median_interarrival);
}

TEST(TraceStatistics, TopPartnerShare) {
  // Creator 0: three posts to 1, one to 2 -> top share 0.75. Creator 1:
  // all posts to 0 -> share 1.0. Mean = 0.875.
  const auto s = trace_statistics(dataset_with({{0, 1, 1},
                                                {0, 1, 2},
                                                {0, 1, 3},
                                                {0, 2, 4},
                                                {1, 0, 5},
                                                {1, 0, 6}}));
  EXPECT_NEAR(s.top_partner_share, 0.875, 1e-12);
}

TEST(TraceStatistics, SelfPostsExcludedFromConcentration) {
  // A user who only self-posts contributes nothing to the concentration.
  const auto s =
      trace_statistics(dataset_with({{3, 3, 1}, {3, 3, 2}, {0, 1, 3}}));
  EXPECT_DOUBLE_EQ(s.top_partner_share, 1.0);  // only creator 0 counts
}

TEST(TraceStatistics, SpanDays) {
  const auto s = trace_statistics(
      dataset_with({{0, 1, 0}, {0, 1, 3 * 86400}}));
  EXPECT_DOUBLE_EQ(s.span_days, 3.0);
}

TEST(TraceStatistics, ToStringContainsHeadlines) {
  const auto s = trace_statistics(dataset_with({{0, 1, 21 * kH}}));
  const auto text = to_string(s);
  EXPECT_NE(text.find("peak hour: 21:00"), std::string::npos);
  EXPECT_NE(text.find("hourly profile:"), std::string::npos);
}

}  // namespace
}  // namespace dosn::trace
