// Unit tests for the deterministic fork-join thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace dosn::util {
namespace {

TEST(ThreadPool, DefaultThreadCountAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    for (std::size_t n : {0u, 1u, 3u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.for_each_index(n, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
    }
  }
}

TEST(ThreadPool, SlotResultsIndependentOfThreadCount) {
  // The determinism contract: per-index slots filled under any thread
  // count reduce to the same result.
  const std::size_t n = 257;
  std::vector<double> reference(n);
  for (std::size_t i = 0; i < n; ++i)
    reference[i] = static_cast<double>(i * i) * 0.5;

  for (std::size_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<double> slots(n, -1.0);
    pool.for_each_index(
        n, [&](std::size_t i) { slots[i] = static_cast<double>(i * i) * 0.5; });
    EXPECT_EQ(slots, reference) << "threads=" << threads;
  }
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.for_each_index(100,
                                   [](std::size_t i) {
                                     if (i == 63)
                                       throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // The pool stays usable after a failed loop.
  std::atomic<int> count{0};
  pool.for_each_index(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.for_each_index(20, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
  EXPECT_EQ(total.load(), 50 * (19 * 20 / 2));
}

// Stress test written for the ThreadSanitizer CI job: many short loops on
// one pool from a churn of callers, concurrent per-index writes plus an
// atomic reduction, and exception propagation under load. A data race in
// the pool's handoff (job pointer, generation counter, completion wait)
// surfaces here under TSan even when the functional expectations pass.
TEST(ThreadPool, StressManyShortLoopsWithSharedState) {
  ThreadPool pool(4);
  const std::size_t n = 512;
  std::vector<std::uint64_t> slots(n);
  std::atomic<std::uint64_t> checksum{0};
  for (int round = 0; round < 200; ++round) {
    pool.for_each_index(n, [&](std::size_t i) {
      slots[i] = static_cast<std::uint64_t>(round) * n + i;
      checksum.fetch_add(slots[i], std::memory_order_relaxed);
    });
    // The serial reduction must observe every per-index write of the
    // round that just completed (for_each_index is a full barrier).
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(slots[i], static_cast<std::uint64_t>(round) * n + i);
  }
  std::uint64_t expected = 0;
  for (int round = 0; round < 200; ++round)
    for (std::size_t i = 0; i < n; ++i)
      expected += static_cast<std::uint64_t>(round) * n + i;
  EXPECT_EQ(checksum.load(), expected);
}

TEST(ThreadPool, StressExceptionChurn) {
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_THROW(pool.for_each_index(64,
                                     [&](std::size_t i) {
                                       if (i % 17 == static_cast<std::size_t>(
                                                          round % 17))
                                         throw std::runtime_error("churn");
                                     }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.for_each_index(64, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ParallelForEach, NullPoolRunsSerial) {
  std::vector<std::size_t> order;
  parallel_for_each(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForEach, SingleThreadPoolRunsInAscendingOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  parallel_for_each(&pool, 6, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace dosn::util
