// Unit tests for the update-propagation-delay metric, including the paper's
// worked example (Fig 1: 48h - d1 - d2 across a three-replica chain).
#include <gtest/gtest.h>

#include <vector>

#include "metrics/delay.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dosn::metrics {
namespace {

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(interval::IntervalSet::single(start_h * kH, end_h * kH));
}

TEST(EdgeDelay, ConRepSingleIntervalIsDayMinusOverlap) {
  const auto a = window(8, 14);
  const auto b = window(12, 18);  // overlap d = 2h
  EXPECT_EQ(edge_delay(a, b, Connectivity::kConRep), 22 * kH);
  EXPECT_EQ(edge_delay(b, a, Connectivity::kConRep), 22 * kH);
}

TEST(EdgeDelay, ConRepNoOverlapNoEdge) {
  EXPECT_EQ(edge_delay(window(8, 10), window(12, 14), Connectivity::kConRep),
            std::nullopt);
}

TEST(EdgeDelay, UnconRepBridgesDisjointSchedules) {
  // Via the relay: post at 08:00 (worst), receiver online at 12:00 -> 4h...
  // worst over the source window [8,10): posting at 08:00 waits 4h.
  EXPECT_EQ(edge_delay(window(8, 10), window(12, 14), Connectivity::kUnconRep),
            4 * kH);
}

TEST(EdgeDelay, EmptyScheduleNoEdge) {
  EXPECT_EQ(edge_delay(DaySchedule{}, window(0, 1), Connectivity::kConRep),
            std::nullopt);
  EXPECT_EQ(edge_delay(window(0, 1), DaySchedule{}, Connectivity::kUnconRep),
            std::nullopt);
}

TEST(EdgeDelay, AlwaysOnlinePairIsInstant) {
  EXPECT_EQ(edge_delay(DaySchedule::always(), DaySchedule::always(),
                       Connectivity::kConRep),
            0);
}

TEST(Delay, PaperFigureOneChain) {
  // v1: 06-12, v2: 10-14, v3: 13-17.
  // d1 = overlap(v1,v2) = 2h  -> edge 22h.
  // d2(paper) = gap concept; edge(v2,v3) = 24 - overlap(v2,v3) = 23h.
  // Worst pair v1->v3 has no direct edge (06-12 vs 13-17 disjoint):
  // shortest path 22 + 23 = 45h = "48 - d1 - d2" with d1=2h, d2=1h.
  const auto v1 = window(6, 12);
  const auto v2 = window(10, 14);
  const auto v3 = window(13, 17);
  // Owner participates too in general; make the owner's schedule v1's to
  // model the paper's pure three-replica example.
  const auto r = update_propagation_delay(
      v1, std::vector<DaySchedule>{v2, v3}, Connectivity::kConRep);
  EXPECT_TRUE(r.fully_connected);
  EXPECT_EQ(r.nodes, 3u);
  EXPECT_EQ(r.actual, 45 * kH);
}

TEST(Delay, SingleNodeIsZero) {
  const auto r =
      update_propagation_delay(window(8, 10), {}, Connectivity::kConRep);
  EXPECT_EQ(r.actual, 0);
  EXPECT_EQ(r.nodes, 1u);
  EXPECT_TRUE(r.fully_connected);
}

TEST(Delay, EmptyOwnerWithReplicas) {
  std::vector<DaySchedule> reps{window(8, 12), window(10, 14)};
  const auto r =
      update_propagation_delay(DaySchedule{}, reps, Connectivity::kConRep);
  EXPECT_EQ(r.nodes, 2u);
  EXPECT_EQ(r.actual, 22 * kH);  // overlap 2h
}

TEST(Delay, EmptyReplicasExcluded) {
  std::vector<DaySchedule> reps{DaySchedule{}, DaySchedule{}};
  const auto r =
      update_propagation_delay(window(8, 10), reps, Connectivity::kConRep);
  EXPECT_EQ(r.nodes, 1u);
  EXPECT_EQ(r.actual, 0);
}

TEST(Delay, DisconnectedPairsFlagged) {
  // Two replicas that never overlap and no multi-hop route.
  std::vector<DaySchedule> reps{window(20, 22)};
  const auto r =
      update_propagation_delay(window(8, 10), reps, Connectivity::kConRep);
  EXPECT_FALSE(r.fully_connected);
}

TEST(Delay, MultiHopShorterThanDirect) {
  // a: 00-02, b: 01-13, c: 12-14. Direct a-c never overlaps; via b the
  // path costs (24-1) + (24-1) = 46h. UnconRep relay direct: worst wait
  // from a (post at 02:00 closure) to c (next online 12:00) = 10h.
  const auto a = window(0, 2);
  const auto b = window(1, 13);
  const auto c = window(12, 14);
  const auto conrep = update_propagation_delay(
      a, std::vector<DaySchedule>{b, c}, Connectivity::kConRep);
  const auto unconrep = update_propagation_delay(
      a, std::vector<DaySchedule>{b, c}, Connectivity::kUnconRep);
  EXPECT_TRUE(conrep.fully_connected);
  EXPECT_GT(conrep.actual, unconrep.actual);
}

TEST(Delay, UnconRepNeverExceedsConRep) {
  // On identical configurations the relay can only help: check a few
  // hand-built cases.
  const std::vector<std::vector<DaySchedule>> cases{
      {window(8, 12), window(11, 15), window(14, 18)},
      {window(0, 3), window(6, 9), window(12, 15)},
      {window(5, 6), window(5, 7), window(22, 23)},
  };
  for (const auto& reps : cases) {
    const auto owner = window(7, 9);
    const auto con =
        update_propagation_delay(owner, reps, Connectivity::kConRep);
    const auto uncon =
        update_propagation_delay(owner, reps, Connectivity::kUnconRep);
    if (con.fully_connected) {
      EXPECT_LE(uncon.actual, con.actual);
    }
  }
}

TEST(Delay, MoreReplicasCannotReduceWorstCase) {
  // The paper's non-intuitive finding: the delay metric grows (or stays)
  // as replicas are added, since the diameter is a maximum.
  const auto owner = window(8, 12);
  std::vector<DaySchedule> reps;
  Seconds prev = 0;
  for (const auto& add :
       {window(11, 15), window(14, 18), window(17, 21)}) {
    reps.push_back(add);
    const auto r =
        update_propagation_delay(owner, reps, Connectivity::kConRep);
    EXPECT_GE(r.actual, prev);
    prev = r.actual;
  }
}

TEST(WorstObservedDelay, BoundedByActualAndOnlineTime) {
  const auto reader = window(10, 12);
  // Actual delay 30h: reader online at most 2h/day => observed <= 4h
  // (two partial days) and <= actual.
  const Seconds actual = 30 * kH;
  const Seconds obs = worst_observed_delay(reader, actual);
  EXPECT_LE(obs, actual);
  EXPECT_LE(obs, 2 * 2 * kH);
  EXPECT_GT(obs, 0);
}

TEST(WorstObservedDelay, ZeroCases) {
  EXPECT_EQ(worst_observed_delay(DaySchedule{}, 10 * kH), 0);
  EXPECT_EQ(worst_observed_delay(window(1, 2), 0), 0);
}

TEST(WorstObservedDelay, FullWindowWhenDelaySpansIt) {
  // Reader online 10-12; delay of exactly 24h covers the whole window once.
  EXPECT_EQ(worst_observed_delay(window(10, 12), 24 * kH), 2 * kH);
}

TEST(Delay, ObservedNeverExceedsActual) {
  const auto owner = window(6, 10);
  std::vector<DaySchedule> reps{window(9, 11), window(10, 12)};
  const auto r =
      update_propagation_delay(owner, reps, Connectivity::kConRep);
  EXPECT_LE(r.observed, r.actual);
  EXPECT_GT(r.observed, 0);
}

// --- incremental prefix evaluation -------------------------------------

DaySchedule random_schedule(util::Rng& rng) {
  // 0..3 pieces; zero pieces = an empty (never-online) schedule, which must
  // be recorded but skipped as a participant.
  interval::IntervalSet s;
  const auto pieces = rng.range(0, 3);
  for (Seconds p = 0; p < pieces; ++p) {
    const Seconds start = rng.range(0, interval::kDaySeconds - 7200);
    const Seconds len = rng.range(600, 6 * kH);
    s.add(start, std::min(start + len, interval::kDaySeconds));
  }
  return DaySchedule(std::move(s));
}

TEST(IncrementalGroupDelay, MatchesBatchGroupDelayOnRandomSequences) {
  util::Rng rng(0xd31a);
  for (int trial = 0; trial < 60; ++trial) {
    const auto mode = trial % 2 == 0 ? interval::RendezvousMode::kDirect
                                     : interval::RendezvousMode::kRelay;
    interval::IncrementalGroupDelay inc(mode);
    std::vector<DaySchedule> nodes;
    const auto n = rng.range(1, 8);
    for (Seconds i = 0; i < n; ++i) {
      nodes.push_back(random_schedule(rng));
      inc.push(nodes.back());
      const auto ref = interval::group_delay(nodes, mode);
      const auto got = inc.result();
      EXPECT_EQ(got.diameter, ref.diameter);
      EXPECT_EQ(got.worst_target, ref.worst_target);
      EXPECT_EQ(got.fully_connected, ref.fully_connected);
      EXPECT_EQ(got.participants, ref.participants);
    }
  }
}

TEST(IncrementalGroupDelay, EmptyAndSingleNodeResults) {
  interval::IncrementalGroupDelay inc(interval::RendezvousMode::kDirect);
  EXPECT_EQ(inc.result().participants, 0u);
  inc.push(DaySchedule{});  // empty: keeps its slot, never participates
  EXPECT_EQ(inc.result().participants, 0u);
  inc.push(window(8, 10));
  const auto one = inc.result();
  EXPECT_EQ(one.participants, 1u);
  EXPECT_EQ(one.diameter, 0);
  EXPECT_TRUE(one.fully_connected);
}

TEST(DelayPrefixEvaluator, MatchesBatchEvaluationAtEveryPrefix) {
  util::Rng rng(0x9e3f);
  for (const auto connectivity :
       {Connectivity::kConRep, Connectivity::kUnconRep}) {
    for (int trial = 0; trial < 40; ++trial) {
      const auto owner = random_schedule(rng);
      DelayPrefixEvaluator inc(owner, connectivity);
      std::vector<DaySchedule> replicas;
      const auto n = rng.range(0, 7);
      for (Seconds i = 0; i <= n; ++i) {
        const auto ref =
            update_propagation_delay(owner, replicas, connectivity);
        const auto got = inc.result();
        EXPECT_EQ(got.actual, ref.actual);
        EXPECT_EQ(got.observed, ref.observed);
        EXPECT_EQ(got.fully_connected, ref.fully_connected);
        EXPECT_EQ(got.nodes, ref.nodes);
        if (i == n) break;
        replicas.push_back(random_schedule(rng));
        inc.push(replicas.back());
      }
    }
  }
}

}  // namespace
}  // namespace dosn::metrics
