// Unit tests for the discrete-event kernel and the replica-group simulator,
// including cross-validation against the analytic delay metric.
#include <gtest/gtest.h>

#include "metrics/delay.hpp"
#include "net/event_queue.hpp"
#include "net/replica_sim.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace dosn::net {
namespace {

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(interval::IntervalSet::single(start_h * kH, end_h * kH));
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, EqualTimesFifoByInsertion) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) q.schedule(7, [&, i] { fired.push_back(i); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.schedule(1, [&] {
    fired.push_back(q.now());
    q.schedule_in(5, [&] { fired.push_back(q.now()); });
  });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<SimTime>{1, 6}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int count = 0;
  q.schedule(5, [&] { ++count; });
  q.schedule(15, [&] { ++count; });
  q.run_until(10);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.now(), 10);
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, RejectsSchedulingIntoPast) {
  EventQueue q;
  q.schedule(10, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule(5, [] {}), util::ContractError);
}

TEST(ReplicaSim, ImmediateDeliveryWhenBothOnline) {
  std::vector<DaySchedule> nodes{window(8, 12), window(8, 12)};
  std::vector<UpdateSpec> updates{{9 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 2;
  const auto r = simulate_replica_group(nodes, updates, cfg);
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].arrival[1], 9 * kH);
  EXPECT_EQ(r.max_delay, 0);
  EXPECT_TRUE(r.all_delivered);
}

TEST(ReplicaSim, DelayedDeliveryAcrossRendezvous) {
  // a online 08-10, b online 09-11. Update at a at 08:00 day0 reaches b
  // at 09:00 day0 (1h).
  std::vector<DaySchedule> nodes{window(8, 10), window(9, 11)};
  std::vector<UpdateSpec> updates{{8 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 2;
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_EQ(r.deliveries[0].arrival[1], 9 * kH);
  EXPECT_EQ(r.max_delay, kH);
}

TEST(ReplicaSim, OfflineOriginHoldsUpdate) {
  // Origin online 08-10; update injected at 14:00 day0 is shared at 08:00
  // day1 when the peer is also online.
  std::vector<DaySchedule> nodes{window(8, 10), window(8, 10)};
  std::vector<UpdateSpec> updates{{14 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 3;
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_EQ(r.deliveries[0].arrival[1],
            interval::kDaySeconds + 8 * kH);
}

TEST(ReplicaSim, MultiHopPropagation) {
  // Chain: a(06-12) -> b(10-14) -> c(13-17); update at a at 06:00.
  // Reaches b at 10:00, c at 13:00 same day.
  std::vector<DaySchedule> nodes{window(6, 12), window(10, 14),
                                 window(13, 17)};
  std::vector<UpdateSpec> updates{{6 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 3;
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_EQ(r.deliveries[0].arrival[1], 10 * kH);
  EXPECT_EQ(r.deliveries[0].arrival[2], 13 * kH);
}

TEST(ReplicaSim, DisconnectedNodeNeverReceives) {
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<UpdateSpec> updates{{8 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 5;
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_FALSE(r.deliveries[0].arrival[1].has_value());
  EXPECT_FALSE(r.all_delivered);
}

TEST(ReplicaSim, UnconRepRelayBridgesDisjointNodes) {
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<UpdateSpec> updates{{8 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.connectivity = placement::Connectivity::kUnconRep;
  cfg.horizon_days = 5;
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_EQ(r.deliveries[0].arrival[1], 20 * kH);
  EXPECT_TRUE(r.all_delivered);
}

TEST(ReplicaSim, EmpiricalAvailabilityMatchesUnionCoverage) {
  std::vector<DaySchedule> nodes{window(8, 12), window(10, 16),
                                 window(20, 22)};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 4;
  const auto r = simulate_replica_group(nodes, {}, cfg);
  // Union coverage: 08-16 and 20-22 = 10h / 24h.
  EXPECT_NEAR(r.empirical_availability, 10.0 / 24.0, 1e-9);
}

TEST(ReplicaSim, MidnightSpanningScheduleStaysConsistent) {
  // Node online 22:00-02:00 (wraps), peer online 01:00-03:00.
  const interval::Interval wrap{22 * kH, 26 * kH};
  std::vector<DaySchedule> nodes{DaySchedule::project({&wrap, 1}),
                                 window(1, 3)};
  std::vector<UpdateSpec> updates{{23 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 3;
  const auto r = simulate_replica_group(nodes, updates, cfg);
  // Rendezvous at 01:00 next day.
  EXPECT_EQ(r.deliveries[0].arrival[1], interval::kDaySeconds + 1 * kH);
}

TEST(ReplicaSim, RejectsBadInputs) {
  std::vector<DaySchedule> nodes{window(8, 10)};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 0;
  EXPECT_THROW(simulate_replica_group(nodes, {}, cfg), ConfigError);
  cfg.horizon_days = 1;
  std::vector<UpdateSpec> bad_origin{{0, 5}};
  EXPECT_THROW(simulate_replica_group(nodes, bad_origin, cfg), ConfigError);
  std::vector<UpdateSpec> bad_time{{5 * interval::kDaySeconds, 0}};
  EXPECT_THROW(simulate_replica_group(nodes, bad_time, cfg), ConfigError);
}

TEST(ReplicaSim, UpdatesWithinSchedulesRespectsOnlineTime) {
  std::vector<DaySchedule> nodes{window(8, 10), window(12, 14),
                                 DaySchedule{}};
  util::Rng rng(5);
  const auto updates = updates_within_schedules(nodes, 40, 7, rng);
  ASSERT_EQ(updates.size(), 40u);
  for (std::size_t i = 1; i < updates.size(); ++i)
    EXPECT_LE(updates[i - 1].time, updates[i].time);
  for (const auto& u : updates) {
    EXPECT_NE(u.origin, 2u);  // never-online node is not an origin
    EXPECT_TRUE(nodes[u.origin].online_at(u.time));
  }
}

TEST(ReplicaSimFailures, CrashedNodeStopsReceiving) {
  // Both online 08-10 daily; node 1 crashes mid-day-1.
  std::vector<DaySchedule> nodes{window(8, 10), window(8, 10)};
  std::vector<UpdateSpec> updates{
      {9 * kH, 0},                            // day 0: delivered
      {2 * interval::kDaySeconds + 9 * kH, 0}  // day 2: node 1 is dead
  };
  ReplicaSimConfig cfg;
  cfg.horizon_days = 4;
  cfg.failures = {{1, interval::kDaySeconds + 12 * kH, {}}};
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_EQ(r.deliveries[0].arrival[1], 9 * kH);
  EXPECT_FALSE(r.deliveries[1].arrival[1].has_value());
  EXPECT_FALSE(r.all_delivered);
}

TEST(ReplicaSimFailures, CrashCutsSessionShort) {
  // Node 1 crashes at 09:00 during its 08-10 session; an update at 09:30
  // no longer reaches it that day (or ever).
  std::vector<DaySchedule> nodes{window(8, 12), window(8, 10)};
  std::vector<UpdateSpec> updates{{9 * kH + 1800, 0}};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 3;
  cfg.failures = {{1, 9 * kH, {}}};
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_FALSE(r.deliveries[0].arrival[1].has_value());
}

TEST(ReplicaSimFailures, SurvivorsKeepSyncing) {
  std::vector<DaySchedule> nodes{window(8, 12), window(10, 14),
                                 window(11, 15)};
  std::vector<UpdateSpec> updates{{interval::kDaySeconds + 9 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 3;
  cfg.failures = {{2, 6 * kH, {}}};  // node 2 dies before ever syncing
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_TRUE(r.deliveries[0].arrival[1].has_value());
  EXPECT_FALSE(r.deliveries[0].arrival[2].has_value());
}

TEST(ReplicaSimFailures, AvailabilityAccountsForCrash) {
  // One node online 12h/day; crashing at the end of day 1 halves the
  // 4-day availability.
  std::vector<DaySchedule> nodes{window(0, 12)};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 4;
  cfg.failures = {{0, 2 * interval::kDaySeconds, {}}};
  const auto r = simulate_replica_group(nodes, {}, cfg);
  EXPECT_NEAR(r.empirical_availability, 0.25, 1e-9);
}

TEST(ReplicaSimFailures, ValidatesFailureInput) {
  std::vector<DaySchedule> nodes{window(8, 10)};
  ReplicaSimConfig cfg;
  cfg.horizon_days = 1;
  cfg.failures = {{5, 0, {}}};
  EXPECT_THROW(simulate_replica_group(nodes, {}, cfg), ConfigError);
  cfg.failures = {{0, 100, 50}};  // recovery before the failure
  EXPECT_THROW(simulate_replica_group(nodes, {}, cfg), ConfigError);
}

TEST(ReplicaSimFailures, TransientFailureResumesAndRemerges) {
  // Node 1 fails day-1 noon and recovers day-2 noon, missing its day-2
  // morning session. The update written meanwhile reaches it at its next
  // session after recovery — the held-state re-merge at rejoin.
  std::vector<DaySchedule> nodes{window(8, 10), window(8, 10)};
  std::vector<UpdateSpec> updates{
      {9 * kH, 0},                              // day 0: instant delivery
      {2 * interval::kDaySeconds + 9 * kH, 0},  // day 2: node 1 still down
  };
  ReplicaSimConfig cfg;
  cfg.horizon_days = 4;
  cfg.failures = {{1, interval::kDaySeconds + 12 * kH,
                   2 * interval::kDaySeconds + 12 * kH}};
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_EQ(r.deliveries[0].arrival[1], 9 * kH);
  EXPECT_EQ(r.deliveries[1].arrival[1],
            3 * interval::kDaySeconds + 8 * kH);
  EXPECT_TRUE(r.all_delivered);
}

TEST(ReplicaSimFailures, RecoveredNodeSharesWhatItHeld) {
  // Node 1 takes an update with it into a failure window that covers its
  // overlap with node 2; after recovery the held state re-merges at node
  // 1's next join and reaches node 2 through their shared window.
  std::vector<DaySchedule> nodes{window(8, 10), window(12, 16),
                                 window(14, 18)};
  std::vector<UpdateSpec> updates{{13 * kH, 1}};  // before 1 and 2 overlap
  ReplicaSimConfig cfg;
  cfg.horizon_days = 4;
  cfg.failures = {{1, 13 * kH + 1800, 2 * interval::kDaySeconds}};
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_EQ(r.deliveries[0].arrival[1], 13 * kH);
  // Day 1 node 1 is still down; day 2 it rejoins at 12:00 and meets node
  // 2 at 14:00.
  EXPECT_EQ(r.deliveries[0].arrival[2],
            2 * interval::kDaySeconds + 14 * kH);
}

TEST(ReplicaSimFailures, CrashStopViaFaultPlanMatchesLegacyFailures) {
  // The same crash expressed as a legacy NodeFailure and as a fault-plan
  // node outage must yield identical reports — NodeFailure is now just
  // sugar for a crash-stop outage.
  std::vector<DaySchedule> nodes{window(8, 12), window(9, 11)};
  std::vector<UpdateSpec> updates{{9 * kH + 600, 0},
                                  {interval::kDaySeconds + 10 * kH, 1}};
  ReplicaSimConfig legacy;
  legacy.horizon_days = 4;
  legacy.failures = {{1, interval::kDaySeconds + 10 * kH + 300, {}}};

  ReplicaSimConfig via_plan;
  via_plan.horizon_days = 4;
  via_plan.faults.node_outages.push_back(
      {1, interval::kDaySeconds + 10 * kH + 300, std::nullopt});

  const auto a = simulate_replica_group(nodes, updates, legacy);
  const auto b = simulate_replica_group(nodes, updates, via_plan);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t u = 0; u < a.deliveries.size(); ++u)
    EXPECT_EQ(a.deliveries[u].arrival, b.deliveries[u].arrival);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.max_delay, b.max_delay);
  EXPECT_EQ(a.mean_delay, b.mean_delay);
  EXPECT_EQ(a.empirical_availability, b.empirical_availability);
}

TEST(ReplicaSimFaults, ZeroFaultPlanBitIdentical) {
  std::vector<DaySchedule> nodes{window(8, 12), window(10, 16),
                                 window(20, 22)};
  std::vector<UpdateSpec> updates{{9 * kH, 0},
                                  {interval::kDaySeconds + 11 * kH, 1}};
  ReplicaSimConfig plain;
  plain.horizon_days = 5;
  ReplicaSimConfig seeded;
  seeded.horizon_days = 5;
  seeded.faults.seed = 0xfeedface;  // a seed alone changes nothing

  const auto a = simulate_replica_group(nodes, updates, plain);
  const auto b = simulate_replica_group(nodes, updates, seeded);
  for (std::size_t u = 0; u < a.deliveries.size(); ++u)
    EXPECT_EQ(a.deliveries[u].arrival, b.deliveries[u].arrival);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.mean_delay, b.mean_delay);
  EXPECT_EQ(a.empirical_availability, b.empirical_availability);
}

TEST(ReplicaSimFaults, RelayOutageDefersBridging) {
  // Disjoint nodes bridged by the UnconRep relay; an outage over node 1's
  // day-0 session defers delivery to day 1 (relay recovers in between and
  // re-merges the live group's state).
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<UpdateSpec> updates{{8 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.connectivity = placement::Connectivity::kUnconRep;
  cfg.horizon_days = 5;
  cfg.faults.relay_outages.push_back({19 * kH, 23 * kH});
  const auto r = simulate_replica_group(nodes, updates, cfg);
  // Day 0 at 20:00 the relay is down; node 1 first syncs day 1 at 20:00.
  EXPECT_EQ(r.deliveries[0].arrival[1],
            interval::kDaySeconds + 20 * kH);
  EXPECT_TRUE(r.all_delivered);
}

TEST(ReplicaSimFaults, RelayOutageDuringWriteLosesNothingHeld) {
  // The relay goes down *while the writer is online*: the write still
  // reaches the group live state and the relay re-merges on recovery.
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<UpdateSpec> updates{{9 * kH, 0}};
  ReplicaSimConfig cfg;
  cfg.connectivity = placement::Connectivity::kUnconRep;
  cfg.horizon_days = 3;
  cfg.faults.relay_outages.push_back({8 * kH + 1800, 12 * kH});
  const auto r = simulate_replica_group(nodes, updates, cfg);
  // Relay back at 12:00 with nobody online: only durable content
  // survives... but node 0 was online when it recovered? No — node 0
  // left at 10:00 holding the update; the relay recovered empty of it.
  // The update re-enters the shared state at node 0's next join (day 1,
  // 08:00), reaches the relay then, and node 1 at 20:00 that day.
  EXPECT_EQ(r.deliveries[0].arrival[1],
            interval::kDaySeconds + 20 * kH);
}

TEST(ReplicaSimFaults, ChurnedSessionsLowerAvailability) {
  std::vector<DaySchedule> nodes{window(0, 12)};
  ReplicaSimConfig plain;
  plain.horizon_days = 30;
  const auto clean = simulate_replica_group(nodes, {}, plain);
  EXPECT_NEAR(clean.empirical_availability, 0.5, 1e-9);

  ReplicaSimConfig flaky = plain;
  flaky.faults.seed = 77;
  flaky.faults.session_no_show = 0.4;
  const auto faulty = simulate_replica_group(nodes, {}, flaky);
  EXPECT_LT(faulty.empirical_availability, clean.empirical_availability);
  EXPECT_GT(faulty.empirical_availability, 0.0);
}

// Cross-validation: the realized delay in the executed system never
// exceeds the analytic worst case, and with many updates it gets close.
class AnalyticValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyticValidation, EmpiricalBoundedByAnalyticWorstCase) {
  util::Rng rng(GetParam());
  // Random connected configurations of 3-5 single-window nodes.
  const std::size_t n = 3 + rng.below(3);
  std::vector<DaySchedule> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    const Seconds start = rng.range(0, 20) * kH;
    const Seconds len = rng.range(2, 6) * kH;
    const interval::Interval iv{start, start + len};
    nodes.push_back(DaySchedule::project({&iv, 1}));
  }
  const auto analytic = metrics::update_propagation_delay(
      nodes.front(), std::span<const DaySchedule>(nodes).subspan(1),
      placement::Connectivity::kConRep);
  if (!analytic.fully_connected) return;  // only meaningful when connected

  const int horizon = 30;
  const auto updates = updates_within_schedules(nodes, 200, horizon - 10, rng);
  ReplicaSimConfig cfg;
  cfg.horizon_days = horizon;
  const auto r = simulate_replica_group(nodes, updates, cfg);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_LE(r.max_delay, analytic.actual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(AnalyticValidationTargeted, RealizedApproachesWorstCase) {
  // a online 08-14, b online 12-13 (1h rendezvous): analytic worst is an
  // update at 13:00 waiting 23h. Updates injected every 30 minutes of a's
  // window include 13:30, realizing a 22.5h delay.
  std::vector<DaySchedule> nodes{window(8, 14), window(12, 13)};
  std::vector<UpdateSpec> updates;
  for (Seconds t = 8 * kH; t < 14 * kH; t += 1800) updates.push_back({t, 0});
  ReplicaSimConfig cfg;
  cfg.horizon_days = 3;
  const auto r = simulate_replica_group(nodes, updates, cfg);

  const auto analytic = metrics::update_propagation_delay(
      nodes.front(), std::span<const DaySchedule>(nodes).subspan(1),
      placement::Connectivity::kConRep);
  EXPECT_EQ(analytic.actual, 23 * kH);
  EXPECT_LE(r.max_delay, analytic.actual);
  // The 13:00 update lands the instant the rendezvous closes (half-open:
  // b is already gone) and waits until 12:00 next day — the exact worst
  // case the analytic metric predicts.
  EXPECT_EQ(r.max_delay, 23 * kH);
}

}  // namespace
}  // namespace dosn::net
