// Negative probe: calling a DOSN_REQUIRES function without holding the
// named mutex must be rejected by -Wthread-safety -Werror. The driver
// asserts this file FAILS to compile with a "requires holding mutex"
// diagnostic.
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  void touch() DOSN_REQUIRES(mutex_) { ++value_; }

  // BAD: calls touch() without acquiring mutex_ first.
  void call_without_lock() { touch(); }

 private:
  dosn::util::Mutex mutex_;
  int value_ DOSN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.call_without_lock();
  return 0;
}
