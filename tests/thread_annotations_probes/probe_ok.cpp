// Positive probe: correct capability usage must compile cleanly under
// -Wthread-safety -Werror. If this file fails, the harness's flags (or
// the annotation macros themselves) are broken, and the negative probes'
// failures would be meaningless — so the driver checks this one first.
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  void touch_locked() DOSN_EXCLUDES(mutex_) {
    dosn::util::MutexLock lock(mutex_);
    ++value_;
  }

  void touch() DOSN_REQUIRES(mutex_) { ++value_; }

  int read() DOSN_EXCLUDES(mutex_) {
    dosn::util::MutexLock lock(mutex_);
    return value_;
  }

  dosn::util::Mutex mutex_;

 private:
  int value_ DOSN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.touch_locked();
  g.mutex_.lock();
  g.touch();
  g.mutex_.unlock();
  return g.read() == 2 ? 0 : 1;
}
