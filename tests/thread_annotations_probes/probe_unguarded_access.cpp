// Negative probe: reading a DOSN_GUARDED_BY member without holding its
// mutex must be rejected by -Wthread-safety -Werror. The driver asserts
// this file FAILS to compile with a "requires holding mutex" diagnostic.
#include "util/thread_annotations.hpp"

namespace {

class Guarded {
 public:
  // BAD: touches value_ with mutex_ not held.
  int unguarded_read() { return value_; }

 private:
  dosn::util::Mutex mutex_;
  int value_ DOSN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.unguarded_read();
}
