// Unit tests for the replica-selection policies (Sec III semantics).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/social_graph.hpp"
#include "placement/max_av.hpp"
#include "placement/most_active.hpp"
#include "placement/policy.hpp"
#include "placement/random.hpp"
#include "util/error.hpp"

namespace dosn::placement {
namespace {

constexpr interval::Seconds kH = 3600;

DaySchedule window(interval::Seconds start_h, interval::Seconds end_h) {
  return DaySchedule(
      interval::IntervalSet::single(start_h * kH, end_h * kH));
}

struct Fixture {
  std::vector<UserId> candidates;
  std::vector<DaySchedule> schedules;
  trace::ActivityTrace trace;

  PlacementContext context(UserId user, Connectivity conn,
                           std::size_t k) const {
    PlacementContext c;
    c.user = user;
    c.candidates = candidates;
    c.schedules = schedules;
    c.trace = &trace;
    c.connectivity = conn;
    c.max_replicas = k;
    return c;
  }
};

// User 0 online 08-10. Friends: 1 online 09-13 (overlaps owner), 2 online
// 12-20 (overlaps 1 only), 3 online 22-24 (overlaps nobody), 4 never online.
Fixture fixture() {
  Fixture f;
  f.candidates = {1, 2, 3, 4};
  f.schedules = {window(8, 10), window(9, 13), window(12, 20), window(22, 24),
                 DaySchedule{}};
  f.trace = trace::ActivityTrace(5, {});
  return f;
}

TEST(MaxAv, UnconRepPicksGreedyCover) {
  auto f = fixture();
  MaxAvPolicy policy;
  util::Rng rng(1);
  const auto r =
      policy.select(f.context(0, Connectivity::kUnconRep, 4), rng);
  // Gains (owner covers 08-10): friend2 adds 8h, friend1 adds 3h (09-13
  // minus owner minus friend2), friend3 adds 2h, friend4 adds 0.
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[1], 1u);
  EXPECT_EQ(r[2], 3u);
}

TEST(MaxAv, StopsWhenNoImprovement) {
  auto f = fixture();
  MaxAvPolicy policy;
  util::Rng rng(1);
  const auto r =
      policy.select(f.context(0, Connectivity::kUnconRep, 10), rng);
  EXPECT_EQ(r.size(), 3u);  // friend 4 never adds coverage
}

TEST(MaxAv, ConRepRespectsConnectivity) {
  auto f = fixture();
  MaxAvPolicy policy;
  util::Rng rng(1);
  const auto r = policy.select(f.context(0, Connectivity::kConRep, 4), rng);
  // First pick must overlap the owner (08-10): only friend 1 qualifies
  // (friend 2's 12-20 does not touch 08-10). Then friend 2 connects via 1;
  // friend 3 (22-24) never connects and is excluded.
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], 1u);
  EXPECT_EQ(r[1], 2u);
}

TEST(MaxAv, ConRepExcludesDisconnected) {
  // Friend 3 (22-24) overlaps nothing selected; it must not be chosen.
  auto f = fixture();
  f.candidates = {1, 3};
  MaxAvPolicy policy;
  util::Rng rng(1);
  const auto r = policy.select(f.context(0, Connectivity::kConRep, 2), rng);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 1u);
}

TEST(MaxAv, RespectsMaxReplicas) {
  auto f = fixture();
  MaxAvPolicy policy;
  util::Rng rng(1);
  EXPECT_EQ(policy.select(f.context(0, Connectivity::kUnconRep, 1), rng).size(),
            1u);
  EXPECT_TRUE(
      policy.select(f.context(0, Connectivity::kUnconRep, 0), rng).empty());
}

TEST(MaxAv, OwnerOfflineSeedsFromFirstReplica) {
  auto f = fixture();
  f.schedules[0] = DaySchedule{};  // owner never online
  MaxAvPolicy policy;
  util::Rng rng(1);
  const auto r = policy.select(f.context(0, Connectivity::kConRep, 4), rng);
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(r[0], 2u);  // biggest coverage seeds the set
}

TEST(MaxAv, AoDTimeObjectiveIgnoresOwnerSeed) {
  // Owner covers 08-10; a friend exactly covering 08-10 adds nothing to
  // availability but everything to AoD-time.
  Fixture f;
  f.candidates = {1};
  f.schedules = {window(8, 10), window(8, 10)};
  f.trace = trace::ActivityTrace(2, {});
  util::Rng rng(1);

  MaxAvPolicy availability_objective(MaxAvObjective::kAvailability);
  EXPECT_TRUE(availability_objective
                  .select(f.context(0, Connectivity::kUnconRep, 1), rng)
                  .empty());

  MaxAvPolicy aod_objective(MaxAvObjective::kAoDTime);
  EXPECT_EQ(
      aod_objective.select(f.context(0, Connectivity::kUnconRep, 1), rng)
          .size(),
      1u);
}

TEST(MaxAv, ActivityObjectiveCoversReceivedActivity) {
  // Activities on user 0's profile at 12:30 and 15:00 (times-of-day).
  Fixture f;
  f.candidates = {1, 2};
  f.schedules = {window(8, 10), window(12, 13), window(14, 16)};
  f.trace = trace::ActivityTrace(
      3, {{1, 0, 12 * kH + 1800}, {2, 0, 15 * kH}, {2, 0, 15 * kH + 60}});
  util::Rng rng(1);
  MaxAvPolicy policy(MaxAvObjective::kAoDActivity);
  const auto r = policy.select(f.context(0, Connectivity::kUnconRep, 2), rng);
  // Friend 2 covers two activity instants, friend 1 covers one.
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[1], 1u);
}

TEST(MaxAv, ActivityObjectiveRequiresTrace) {
  auto f = fixture();
  auto ctx = f.context(0, Connectivity::kUnconRep, 2);
  ctx.trace = nullptr;
  MaxAvPolicy policy(MaxAvObjective::kAoDActivity);
  util::Rng rng(1);
  EXPECT_THROW(policy.select(ctx, rng), ConfigError);
}

TEST(MaxAv, LeastOverlapVariantPrefersSmallOverlap) {
  // Connected candidates: 1 (09-13, big gain) and 5 (09:00-09:30 tiny
  // overlap with covered, small gain). The literal paper tie-break picks
  // the least-overlapping one first.
  Fixture f;
  f.candidates = {1, 2};
  f.schedules = {window(8, 10), window(9, 13),
                 DaySchedule(interval::IntervalSet::single(
                     9 * kH + 1800, 11 * kH))};
  f.trace = trace::ActivityTrace(3, {});
  util::Rng rng(1);
  MaxAvPolicy least(MaxAvObjective::kAvailability,
                    /*conrep_least_overlap=*/true);
  const auto r = least.select(f.context(0, Connectivity::kConRep, 1), rng);
  ASSERT_EQ(r.size(), 1u);
  // Candidate 2 overlaps covered (08-10) by 30 min vs candidate 1's 1h.
  EXPECT_EQ(r[0], 2u);
}

TEST(MaxAv, ActivityLeastOverlapMatchesScheduleRule) {
  // Regression: select_activity_cover used to ignore conrep_least_overlap_,
  // so the two objectives implemented different ConRep policies. Both
  // must now apply the least-overlap rule (overlap counted over covered
  // activity instants for the activity objective).
  //
  // Owner 08-10. Activities on the profile: 09:00 (covered by the owner),
  // 12:00 and 15:00. Candidate 1 (08:30-16:00) is connected, gains two
  // instants but overlaps the covered 09:00 instant; candidate 2
  // (09:30-12:30) is connected, gains one instant with zero overlap.
  Fixture f;
  f.candidates = {1, 2};
  f.schedules = {window(8, 10),
                 DaySchedule(interval::IntervalSet::single(
                     8 * kH + 1800, 16 * kH)),
                 DaySchedule(interval::IntervalSet::single(
                     9 * kH + 1800, 12 * kH + 1800))};
  f.trace = trace::ActivityTrace(
      3, {{1, 0, 9 * kH}, {1, 0, 12 * kH}, {2, 0, 15 * kH}});
  util::Rng rng(1);

  MaxAvPolicy max_gain(MaxAvObjective::kAoDActivity);
  const auto greedy =
      max_gain.select(f.context(0, Connectivity::kConRep, 1), rng);
  ASSERT_EQ(greedy.size(), 1u);
  EXPECT_EQ(greedy[0], 1u);  // default rule: biggest gain

  MaxAvPolicy least(MaxAvObjective::kAoDActivity,
                    /*conrep_least_overlap=*/true);
  const auto r = least.select(f.context(0, Connectivity::kConRep, 1), rng);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 2u);  // least-overlap rule: zero covered instants
}

TEST(MaxAv, KMaxBeyondDegreeStopsAtCandidatePool) {
  auto f = fixture();
  MaxAvPolicy policy;
  util::Rng rng(1);
  const auto r =
      policy.select(f.context(0, Connectivity::kUnconRep, 100), rng);
  EXPECT_LE(r.size(), f.candidates.size());
  EXPECT_EQ(r.size(), 3u);  // friend 4 never contributes coverage
}

TEST(MaxAv, EmptyCandidateListSelectsNothing) {
  auto f = fixture();
  f.candidates.clear();
  MaxAvPolicy policy;
  util::Rng rng(1);
  EXPECT_TRUE(
      policy.select(f.context(0, Connectivity::kConRep, 5), rng).empty());
  EXPECT_TRUE(
      policy.select(f.context(0, Connectivity::kUnconRep, 5), rng).empty());
}

TEST(MaxAv, ConRepNoConnectedCandidateSelectsNothing) {
  // Owner 08-10; every candidate 22-24: none ever connects, so the
  // `best < 0` early break must fire on the very first round.
  Fixture f;
  f.candidates = {1, 2};
  f.schedules = {window(8, 10), window(22, 24), window(22, 23)};
  f.trace = trace::ActivityTrace(3, {});
  util::Rng rng(1);
  MaxAvPolicy policy;
  EXPECT_TRUE(
      policy.select(f.context(0, Connectivity::kConRep, 2), rng).empty());
  MaxAvPolicy eager(MaxAvObjective::kAvailability, false, /*lazy=*/false);
  EXPECT_TRUE(
      eager.select(f.context(0, Connectivity::kConRep, 2), rng).empty());
}

// The CELF lazy greedy must select exactly what the reference full-rescan
// greedy selects, for every objective and connectivity regime, on random
// instances (including empty schedules, duplicates, and activity traces).
class LazyEagerEquivalence
    : public ::testing::TestWithParam<
          std::tuple<MaxAvObjective, Connectivity>> {};

TEST_P(LazyEagerEquivalence, SelectionsAreIdentical) {
  const auto [objective, conn] = GetParam();
  constexpr interval::Seconds kDay = 24 * kH;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    util::Rng rng(seed * 7919 + 13);
    const std::size_t n = 3 + rng.below(40);
    Fixture f;
    std::vector<trace::Activity> acts;
    f.schedules.reserve(n + 1);
    for (std::size_t u = 0; u <= n; ++u) {
      interval::IntervalSet s;
      const std::size_t pieces = rng.below(4);  // 0 pieces = never online
      for (std::size_t j = 0; j < pieces; ++j) {
        const auto start = static_cast<interval::Seconds>(
            rng.below(static_cast<std::uint64_t>(kDay - kH)));
        const auto len =
            static_cast<interval::Seconds>(600 + rng.below(6 * kH));
        s.add(start, std::min(start + len, kDay));
      }
      f.schedules.emplace_back(std::move(s));
      if (u > 0) {
        f.candidates.push_back(static_cast<UserId>(u));
        const std::size_t posts = rng.below(5);
        for (std::size_t a = 0; a < posts; ++a)
          acts.push_back({static_cast<UserId>(u), 0,
                          static_cast<interval::Seconds>(
                              rng.below(static_cast<std::uint64_t>(kDay)))});
      }
    }
    f.trace = trace::ActivityTrace(n + 1, acts);

    const MaxAvPolicy lazy(objective, false, /*lazy=*/true);
    const MaxAvPolicy eager(objective, false, /*lazy=*/false);
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, n / 2, n + 5}) {
      util::Rng unused(1);
      EXPECT_EQ(lazy.select(f.context(0, conn, k), unused),
                eager.select(f.context(0, conn, k), unused))
          << "seed=" << seed << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllObjectives, LazyEagerEquivalence,
    ::testing::Combine(::testing::Values(MaxAvObjective::kAvailability,
                                         MaxAvObjective::kAoDTime,
                                         MaxAvObjective::kAoDActivity),
                       ::testing::Values(Connectivity::kConRep,
                                         Connectivity::kUnconRep)));

TEST(MostActive, RanksByInteractionCount) {
  Fixture f;
  f.candidates = {1, 2, 3};
  f.schedules = {window(0, 24), window(0, 24), window(0, 24), window(0, 24)};
  // Friend 2 posted twice on 0's wall, friend 1 once, friend 3 never.
  f.trace = trace::ActivityTrace(
      4, {{2, 0, 100}, {2, 0, 200}, {1, 0, 300}});
  MostActivePolicy policy;
  util::Rng rng(1);
  const auto r = policy.select(f.context(0, Connectivity::kUnconRep, 3), rng);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[1], 1u);
  EXPECT_EQ(r[2], 3u);  // zero-activity filler
}

TEST(MostActive, FillsWithRandomWhenNoActivity) {
  Fixture f;
  f.candidates = {1, 2, 3};
  f.schedules = {window(0, 24), window(0, 24), window(0, 24), window(0, 24)};
  f.trace = trace::ActivityTrace(4, {});
  MostActivePolicy policy;
  util::Rng rng(7);
  const auto r = policy.select(f.context(0, Connectivity::kUnconRep, 2), rng);
  EXPECT_EQ(r.size(), 2u);
  for (UserId u : r) EXPECT_TRUE(u >= 1 && u <= 3);
}

TEST(MostActive, ConRepSkipsDisconnected) {
  Fixture f;
  f.candidates = {1, 3};
  // Friend 3 most active but never overlaps anyone; friend 1 overlaps owner.
  f.schedules = {window(8, 10), window(9, 13), DaySchedule{},
                 window(22, 24)};
  f.candidates = {1, 3};
  f.trace = trace::ActivityTrace(4, {{3, 0, 100}, {3, 0, 200}, {1, 0, 300}});
  MostActivePolicy policy;
  util::Rng rng(1);
  const auto r = policy.select(f.context(0, Connectivity::kConRep, 2), rng);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 1u);
}

TEST(MostActive, RequiresTrace) {
  auto f = fixture();
  auto ctx = f.context(0, Connectivity::kUnconRep, 2);
  ctx.trace = nullptr;
  MostActivePolicy policy;
  util::Rng rng(1);
  EXPECT_THROW(policy.select(ctx, rng), ConfigError);
}

TEST(Random, UnconRepUniformSubset) {
  auto f = fixture();
  RandomPolicy policy;
  util::Rng rng(11);
  const auto r = policy.select(f.context(0, Connectivity::kUnconRep, 2), rng);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_NE(r[0], r[1]);
  for (UserId u : r)
    EXPECT_NE(std::find(f.candidates.begin(), f.candidates.end(), u),
              f.candidates.end());
}

TEST(Random, ConRepOnlyConnectedChoices) {
  auto f = fixture();
  RandomPolicy policy;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const auto r = policy.select(f.context(0, Connectivity::kConRep, 4), rng);
    // Friend 4 (never online) must never appear; friend 3 (22-24) never
    // connects to {owner, 1, 2}.
    for (UserId u : r) {
      EXPECT_NE(u, 4u);
      EXPECT_NE(u, 3u);
    }
    // First choice must connect to the owner: only friend 1 does.
    if (!r.empty()) {
      EXPECT_EQ(r[0], 1u);
    }
  }
}

TEST(Random, CoversWholePoolOverSeeds) {
  auto f = fixture();
  RandomPolicy policy;
  std::vector<int> first_counts(5, 0);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed);
    const auto r =
        policy.select(f.context(0, Connectivity::kUnconRep, 1), rng);
    ASSERT_EQ(r.size(), 1u);
    ++first_counts[r[0]];
  }
  for (UserId u : f.candidates) EXPECT_GT(first_counts[u], 10);
}

TEST(Factory, CreatesEveryPolicy) {
  EXPECT_EQ(make_policy(PolicyKind::kMaxAv)->name(), "MaxAv");
  EXPECT_EQ(make_policy(PolicyKind::kMostActive)->name(), "MostActive");
  EXPECT_EQ(make_policy(PolicyKind::kRandom)->name(), "Random");
  EXPECT_FALSE(make_policy(PolicyKind::kMaxAv)->randomized());
  EXPECT_TRUE(make_policy(PolicyKind::kRandom)->randomized());
  EXPECT_EQ(to_string(PolicyKind::kMaxAv), "MaxAv");
  EXPECT_EQ(to_string(Connectivity::kConRep), "ConRep");
  EXPECT_EQ(to_string(Connectivity::kUnconRep), "UnconRep");
}

// Prefix property: the selection for k replicas is a prefix of the
// selection for k+1 under every policy (the sweep relies on this).
class PrefixProperty
    : public ::testing::TestWithParam<std::tuple<PolicyKind, Connectivity>> {};

TEST_P(PrefixProperty, SelectionOrderIsStable) {
  const auto [kind, conn] = GetParam();
  auto f = fixture();
  const auto policy = make_policy(kind);
  for (std::size_t k = 0; k + 1 <= 4; ++k) {
    util::Rng rng_a(99), rng_b(99);  // identical streams
    const auto small = policy->select(f.context(0, conn, k), rng_a);
    const auto big = policy->select(f.context(0, conn, k + 1), rng_b);
    ASSERT_LE(small.size(), big.size());
    for (std::size_t i = 0; i < small.size(); ++i)
      EXPECT_EQ(small[i], big[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PrefixProperty,
    ::testing::Combine(::testing::Values(PolicyKind::kMaxAv,
                                         PolicyKind::kMostActive,
                                         PolicyKind::kRandom),
                       ::testing::Values(Connectivity::kConRep,
                                         Connectivity::kUnconRep)));

}  // namespace
}  // namespace dosn::placement
