// Differential tests of the streaming scale path against the seed engine.
//
// The StreamingStudy contract is bit-identity: for every shard size and
// thread count, its sweeps must equal Study's on the same dataset, seed and
// options — not approximately, but double for double. Likewise the chunked
// million-user input builder (synth::build_scale_study_input) must
// reproduce the materialized generate_raw + SporadicModel pipeline exactly
// (schedules equal, trace equal restricted to cohort receivers, sweeps
// equal). These tests pin both contracts at small N where the materialized
// path is cheap.
#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"
#include "onlinetime/sporadic.hpp"
#include "sim/streaming.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "synth/scale.hpp"

namespace dosn {
namespace {

using placement::Connectivity;
using sim::StreamingStudy;
using sim::Study;
using sim::SweepResult;

constexpr std::uint64_t kSeed = 20120618;

void expect_sweeps_identical(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.dataset_name, b.dataset_name);
  EXPECT_EQ(a.model_name, b.model_name);
  EXPECT_EQ(a.connectivity_name, b.connectivity_name);
  EXPECT_EQ(a.xs, b.xs);
  ASSERT_EQ(a.policies.size(), b.policies.size());
  for (std::size_t p = 0; p < a.policies.size(); ++p) {
    EXPECT_EQ(a.policies[p].policy_name, b.policies[p].policy_name);
    ASSERT_EQ(a.policies[p].points.size(), b.policies[p].points.size());
    for (std::size_t k = 0; k < a.policies[p].points.size(); ++k) {
      const auto& x = a.policies[p].points[k];
      const auto& y = b.policies[p].points[k];
      // Field-wise EXPECT_EQ (not the aggregate operator==) so a mismatch
      // reports which metric and which bit pattern diverged.
      EXPECT_EQ(x.availability, y.availability) << "p=" << p << " k=" << k;
      EXPECT_EQ(x.max_availability, y.max_availability)
          << "p=" << p << " k=" << k;
      EXPECT_EQ(x.aod_time, y.aod_time) << "p=" << p << " k=" << k;
      EXPECT_EQ(x.aod_activity, y.aod_activity) << "p=" << p << " k=" << k;
      EXPECT_EQ(x.aod_activity_expected, y.aod_activity_expected)
          << "p=" << p << " k=" << k;
      EXPECT_EQ(x.aod_activity_unexpected, y.aod_activity_unexpected)
          << "p=" << p << " k=" << k;
      EXPECT_EQ(x.delay_actual_h, y.delay_actual_h)
          << "p=" << p << " k=" << k;
      EXPECT_EQ(x.delay_observed_h, y.delay_observed_h)
          << "p=" << p << " k=" << k;
      EXPECT_EQ(x.replicas_used, y.replicas_used) << "p=" << p << " k=" << k;
      EXPECT_EQ(x.cohort_size, y.cohort_size) << "p=" << p << " k=" << k;
    }
  }
  // Checksum consistency rides along: identical sweeps must digest
  // identically (the scale bench relies on the checksum as the comparator).
  EXPECT_EQ(sim::sweep_checksum(a), sim::sweep_checksum(b));
}

trace::Dataset make_dataset(std::size_t users) {
  synth::ScaleOptions opts;
  opts.users = users;
  util::Rng rng(kSeed);
  return synth::generate_raw(synth::scale_preset(opts), rng);
}

sim::StudyOptions base_options() {
  sim::StudyOptions o;
  o.cohort_degree = 0;  // set per dataset below
  o.k_max = 5;
  o.repetitions = 2;
  return o;
}

class StreamingEquivalence : public ::testing::TestWithParam<std::size_t> {};

// The tentpole contract: StreamingStudy == Study for every shard size and
// thread count, across all policies, at N = 1k and 10k.
TEST_P(StreamingEquivalence, MatchesStudyAcrossShardSizesAndThreadCounts) {
  const auto dataset = make_dataset(GetParam());
  const std::size_t degree =
      graph::most_populated_degree(dataset.graph, 5, 15);

  Study study(dataset, kSeed);
  StreamingStudy streaming(dataset, kSeed);

  auto options = base_options();
  options.cohort_degree = degree;
  options.k_max = std::min<std::size_t>(options.k_max, degree);
  const auto baseline = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {}, Connectivity::kConRep, options);

  for (const std::size_t shard_size : {1, 7, 64}) {
    for (const std::size_t threads : {1, 4}) {
      StreamingStudy::Options streaming_options;
      static_cast<sim::StudyOptions&>(streaming_options) = options;
      streaming_options.shard_size = shard_size;
      streaming_options.threads = threads;
      const auto sweep = streaming.replication_sweep(
          onlinetime::ModelKind::kSporadic, {}, Connectivity::kConRep,
          streaming_options);
      SCOPED_TRACE("shard_size=" + std::to_string(shard_size) +
                   " threads=" + std::to_string(threads));
      expect_sweeps_identical(baseline, sweep);
    }
  }

  // UnconRep spot check at one non-trivial configuration.
  const auto uncon_baseline = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {}, Connectivity::kUnconRep, options);
  StreamingStudy::Options streaming_options;
  static_cast<sim::StudyOptions&>(streaming_options) = options;
  streaming_options.shard_size = 7;
  streaming_options.threads = 4;
  expect_sweeps_identical(
      uncon_baseline,
      streaming.replication_sweep(onlinetime::ModelKind::kSporadic, {},
                                  Connectivity::kUnconRep,
                                  streaming_options));
}

INSTANTIATE_TEST_SUITE_P(Populations, StreamingEquivalence,
                         ::testing::Values(1000, 10000));

// The chunked scale-input builder reproduces the materialized pipeline:
// same schedules, the same trace restricted to cohort receivers, and a
// bit-identical sweep through the precomputed-schedules overload.
TEST(ScaleInput, MatchesMaterializedPipeline) {
  constexpr std::size_t kUsers = 1000;

  synth::ScaleInputConfig config;
  synth::ScaleOptions opts;
  opts.users = kUsers;
  config.preset = synth::scale_preset(opts);
  config.chunk_users = 97;  // force many chunks
  const auto input = synth::build_scale_study_input(config, kSeed);

  // Materialized reference: same generation stream, full trace.
  util::Rng gen_rng(kSeed);
  const auto full = synth::generate_raw(config.preset, gen_rng);
  ASSERT_EQ(full.num_users(), kUsers);
  ASSERT_EQ(input.dataset.num_users(), kUsers);

  // Schedules: SporadicModel over the full dataset under the seed engine's
  // rep-0 schedule stream.
  util::Rng sched_rng(util::mix64(kSeed, 0x5ced0000));
  const onlinetime::SporadicModel model(config.session_length);
  const auto expected_schedules = model.schedules(full, sched_rng);
  ASSERT_EQ(input.schedules.size(), expected_schedules.size());
  for (std::size_t u = 0; u < expected_schedules.size(); ++u)
    EXPECT_EQ(input.schedules[u], expected_schedules[u]) << "user " << u;

  // Cohort: same degree, same members.
  EXPECT_EQ(input.cohort_degree,
            graph::most_populated_degree(full.graph, 5, 15));
  EXPECT_EQ(input.cohort,
            graph::users_with_degree(full.graph, input.cohort_degree));

  // Trace: everything a cohort member receives is retained, byte for byte.
  EXPECT_EQ(input.total_activities,
            static_cast<std::uint64_t>(full.trace.size()));
  EXPECT_LT(input.dataset.trace.size(), full.trace.size());
  for (const graph::UserId u : input.cohort) {
    const auto got = input.dataset.trace.received_by(u);
    const auto want = full.trace.received_by(u);
    ASSERT_EQ(got.size(), want.size()) << "user " << u;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].creator, want[i].creator);
      EXPECT_EQ(got[i].receiver, want[i].receiver);
      EXPECT_EQ(got[i].timestamp, want[i].timestamp);
    }
  }

  // End to end: the precomputed-schedules sweep over the restricted input
  // equals the seed Study sweep over the materialized dataset.
  auto options = base_options();
  options.cohort_degree = input.cohort_degree;
  options.k_max = std::min<std::size_t>(options.k_max, input.cohort_degree);
  Study study(full, kSeed);
  const auto baseline = study.replication_sweep(
      onlinetime::ModelKind::kSporadic,
      {.session_length = config.session_length}, Connectivity::kConRep,
      options);

  StreamingStudy streaming(input.dataset, kSeed);
  StreamingStudy::Options streaming_options;
  static_cast<sim::StudyOptions&>(streaming_options) = options;
  streaming_options.shard_size = 64;
  streaming_options.threads = 4;
  expect_sweeps_identical(
      baseline,
      streaming.replication_sweep(input.schedules, input.model_name,
                                  Connectivity::kConRep, streaming_options));
}

// The pipelined scale-input builder (producer thread + SPSC chunk queue +
// parallel fold stages on the work-stealing runtime) reproduces the
// serial builder bit for bit: same schedules, same restricted trace, same
// cohort — for several queue capacities and chunk sizes, repeated so
// different producer/consumer interleavings are actually exercised.
TEST(ScalePipeline, PipelinedInputMatchesSerialBuilder) {
  constexpr std::size_t kUsers = 1000;
  synth::ScaleOptions opts;
  opts.users = kUsers;

  synth::ScaleInputConfig config;
  config.preset = synth::scale_preset(opts);
  config.chunk_users = 97;  // force many chunks
  const auto serial = synth::build_scale_study_input(config, kSeed);

  for (const std::size_t queue_capacity : {1, 2, 4}) {
    for (const std::size_t chunk_users : {31, 97, 2048}) {
      auto pipelined_config = config;
      pipelined_config.chunk_users = chunk_users;
      pipelined_config.pipeline_queue_capacity = queue_capacity;
      util::PipelineRuntime runtime({.threads = 4});
      const auto pipelined =
          synth::build_scale_study_input(pipelined_config, kSeed, &runtime);
      SCOPED_TRACE("queue_capacity=" + std::to_string(queue_capacity) +
                   " chunk_users=" + std::to_string(chunk_users));

      EXPECT_EQ(pipelined.total_activities, serial.total_activities);
      EXPECT_EQ(pipelined.cohort_degree, serial.cohort_degree);
      EXPECT_EQ(pipelined.cohort, serial.cohort);
      ASSERT_EQ(pipelined.schedules.size(), serial.schedules.size());
      for (std::size_t u = 0; u < serial.schedules.size(); ++u)
        ASSERT_EQ(pipelined.schedules[u], serial.schedules[u])
            << "user " << u;
      const auto got = pipelined.dataset.trace.all();
      const auto want = serial.dataset.trace.all();
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], want[i]) << "activity " << i;
    }
  }
}

// The ISSUE acceptance matrix, pinned as a test: sweep_checksum is
// bit-identical across thread counts {1, 2, 4, 8} × shard sizes
// {1, 64, 1024} under the work-stealing runtime, with steal granularity
// forced to 1 so steal traffic is maximal. Runs under the TSan CI job
// (suite name carries "ScalePipeline").
TEST(ScalePipeline, SweepChecksumIdenticalAcrossThreadsAndShards) {
  const auto dataset = make_dataset(1000);
  const std::size_t degree =
      graph::most_populated_degree(dataset.graph, 5, 15);
  StreamingStudy streaming(dataset, kSeed);

  auto options = base_options();
  options.cohort_degree = degree;
  options.k_max = std::min<std::size_t>(options.k_max, degree);

  std::uint64_t reference = 0;
  bool have_reference = false;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(
        util::RuntimeOptions{.threads = threads, .steal_grain = 1});
    for (const std::size_t shard_size : {1, 64, 1024}) {
      StreamingStudy::Options streaming_options;
      static_cast<sim::StudyOptions&>(streaming_options) = options;
      streaming_options.shard_size = shard_size;
      streaming_options.pool = &pool;
      const auto sweep = streaming.replication_sweep(
          onlinetime::ModelKind::kSporadic, {}, Connectivity::kConRep,
          streaming_options);
      const std::uint64_t checksum = sim::sweep_checksum(sweep);
      if (!have_reference) {
        reference = checksum;
        have_reference = true;
      }
      EXPECT_EQ(checksum, reference)
          << "threads=" << threads << " shard_size=" << shard_size;
    }
  }
}

}  // namespace
}  // namespace dosn
