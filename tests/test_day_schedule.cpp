// Unit tests for DaySchedule: daily projection, circular waits, and the
// worst-case wait analysis the delay metric builds on.
#include <gtest/gtest.h>

#include "interval/day_schedule.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dosn::interval {
namespace {

constexpr Seconds kH = 3600;

DaySchedule sched(std::initializer_list<Interval> list) {
  return DaySchedule(IntervalSet(std::vector<Interval>(list)));
}

TEST(TimeOfDay, NormalizesIntoDay) {
  EXPECT_EQ(time_of_day(0), 0);
  EXPECT_EQ(time_of_day(kDaySeconds), 0);
  EXPECT_EQ(time_of_day(kDaySeconds + 5), 5);
  EXPECT_EQ(time_of_day(-1), kDaySeconds - 1);
  EXPECT_EQ(time_of_day(-kDaySeconds), 0);
}

TEST(DaySchedule, EmptyAndAlways) {
  DaySchedule never;
  EXPECT_TRUE(never.empty());
  EXPECT_EQ(never.coverage(), 0.0);
  EXPECT_FALSE(never.online_at(100));

  auto always = DaySchedule::always();
  EXPECT_DOUBLE_EQ(always.coverage(), 1.0);
  EXPECT_TRUE(always.online_at(0));
  EXPECT_TRUE(always.online_at(kDaySeconds - 1));
}

TEST(DaySchedule, RejectsOutOfDaySet) {
  EXPECT_THROW(DaySchedule(IntervalSet::single(-5, 10)), util::ContractError);
  EXPECT_THROW(DaySchedule(IntervalSet::single(10, kDaySeconds + 1)),
               util::ContractError);
}

TEST(DaySchedule, ProjectSimpleInterval) {
  const Interval iv{3 * kH, 5 * kH};
  auto s = DaySchedule::project({&iv, 1});
  EXPECT_EQ(s.online_seconds(), 2 * kH);
  EXPECT_TRUE(s.online_at(4 * kH));
}

TEST(DaySchedule, ProjectAbsoluteTimestampFromLaterDay) {
  // Day 3, 10:00-11:00 projects onto 10:00-11:00.
  const Interval iv{3 * kDaySeconds + 10 * kH, 3 * kDaySeconds + 11 * kH};
  auto s = DaySchedule::project({&iv, 1});
  EXPECT_TRUE(s.online_at(10 * kH + 30 * 60));
  EXPECT_FALSE(s.online_at(9 * kH));
}

TEST(DaySchedule, ProjectWrapsMidnight) {
  // 23:00-01:00 splits into [23:00,24:00) and [00:00,01:00).
  const Interval iv{23 * kH, 25 * kH};
  auto s = DaySchedule::project({&iv, 1});
  EXPECT_EQ(s.online_seconds(), 2 * kH);
  EXPECT_TRUE(s.online_at(23 * kH + 1));
  EXPECT_TRUE(s.online_at(30 * 60));
  EXPECT_FALSE(s.online_at(2 * kH));
  EXPECT_EQ(s.set().piece_count(), 2u);
}

TEST(DaySchedule, ProjectFullDayInterval) {
  const Interval iv{5, 5 + kDaySeconds};
  auto s = DaySchedule::project({&iv, 1});
  EXPECT_DOUBLE_EQ(s.coverage(), 1.0);
}

TEST(DaySchedule, ProjectManySessionsUnion) {
  std::vector<Interval> sessions{{10 * kH, 11 * kH},
                                 {kDaySeconds + 10 * kH + 1800,
                                  kDaySeconds + 12 * kH}};
  auto s = DaySchedule::project(sessions);
  EXPECT_EQ(s.online_seconds(), 2 * kH);  // [10:00,12:00) merged
}

TEST(DaySchedule, WaitUntilOnlineInsideIsZero) {
  auto s = sched({{10 * kH, 12 * kH}});
  EXPECT_EQ(s.wait_until_online(11 * kH), 0);
  EXPECT_EQ(s.wait_until_online(10 * kH), 0);
}

TEST(DaySchedule, WaitUntilOnlineForward) {
  auto s = sched({{10 * kH, 12 * kH}});
  EXPECT_EQ(s.wait_until_online(8 * kH), 2 * kH);
  // Half-open: at 12:00 the node just went offline; next slot is tomorrow.
  EXPECT_EQ(s.wait_until_online(12 * kH), 22 * kH);
}

TEST(DaySchedule, WaitUntilOnlineWrapsToTomorrow) {
  auto s = sched({{2 * kH, 3 * kH}});
  EXPECT_EQ(s.wait_until_online(20 * kH), 6 * kH);
}

TEST(DaySchedule, WaitUntilOnlineEmptyIsNull) {
  DaySchedule never;
  EXPECT_EQ(never.wait_until_online(0), std::nullopt);
}

TEST(DaySchedule, WaitHandlesAbsoluteTimes) {
  auto s = sched({{10 * kH, 12 * kH}});
  EXPECT_EQ(s.wait_until_online(5 * kDaySeconds + 8 * kH), 2 * kH);
}

TEST(DaySchedule, OnlineWithinWindowSimple) {
  auto s = sched({{10 * kH, 12 * kH}});
  EXPECT_EQ(s.online_within_window(9 * kH, 2 * kH), kH);
  EXPECT_EQ(s.online_within_window(10 * kH, kH), kH);
  EXPECT_EQ(s.online_within_window(13 * kH, kH), 0);
}

TEST(DaySchedule, OnlineWithinWindowWrapsMidnight) {
  auto s = sched({{1 * kH, 2 * kH}});
  // Window 23:00 -> 02:00 next day covers the 01:00-02:00 piece.
  EXPECT_EQ(s.online_within_window(23 * kH, 3 * kH), kH);
}

TEST(DaySchedule, OnlineWithinWindowMultiDay) {
  auto s = sched({{1 * kH, 2 * kH}});
  // 2.5 days starting at 00:00 covers two full pieces and one more.
  EXPECT_EQ(s.online_within_window(0, 2 * kDaySeconds + 12 * kH), 3 * kH);
}

TEST(DaySchedule, UniteIntersectOverlap) {
  auto a = sched({{10 * kH, 12 * kH}});
  auto b = sched({{11 * kH, 13 * kH}});
  EXPECT_EQ(a.unite(b).online_seconds(), 3 * kH);
  EXPECT_EQ(a.intersect(b).online_seconds(), kH);
  EXPECT_EQ(a.overlap_seconds(b), kH);
  EXPECT_TRUE(a.intersects(b));
}

// --- worst_case_wait: the paper's per-edge delay ----------------------

TEST(WorstCaseWait, PaperSingleIntervalFormula) {
  // Two single daily windows overlapping d hours: worst wait = 24h - d.
  auto v1 = sched({{8 * kH, 14 * kH}});
  auto v2 = sched({{12 * kH, 18 * kH}});
  const auto overlap = v1.intersect(v2);  // 12:00-14:00, d = 2h
  const auto worst = worst_case_wait(v1, overlap);
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(worst->wait, kDaySeconds - 2 * kH);
  // Worst case: the update lands exactly when the rendezvous closes.
  EXPECT_EQ(worst->at, 14 * kH);
}

TEST(WorstCaseWait, SourceEqualsTargetStillPaysFullGap) {
  // Identical 6h windows: the paper's 24h - d still applies — an update at
  // the instant both go offline waits 18h for the next rendezvous.
  auto s = sched({{8 * kH, 14 * kH}});
  const auto worst = worst_case_wait(s, s);
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(worst->wait, 18 * kH);
  EXPECT_EQ(worst->at, 14 * kH);
}

TEST(WorstCaseWait, EmptyEitherSideIsNull) {
  auto s = sched({{8 * kH, 14 * kH}});
  DaySchedule never;
  EXPECT_EQ(worst_case_wait(never, s), std::nullopt);
  EXPECT_EQ(worst_case_wait(s, never), std::nullopt);
}

TEST(WorstCaseWait, TargetNotSubsetOfSource) {
  // UnconRep-style: target is the receiver's whole schedule.
  auto src = sched({{8 * kH, 10 * kH}});
  auto dst = sched({{20 * kH, 21 * kH}});
  const auto worst = worst_case_wait(src, dst);
  ASSERT_TRUE(worst.has_value());
  // Posting at 08:00 waits 12h; posting just before 10:00 waits 10h.
  EXPECT_EQ(worst->wait, 12 * kH);
  EXPECT_EQ(worst->at, 8 * kH);
}

TEST(WorstCaseWait, MultiIntervalWorstAtOverlapEnd) {
  // Source online 08-16; target online 09-10 and 13-14.
  auto src = sched({{8 * kH, 16 * kH}});
  auto dst = sched({{9 * kH, 10 * kH}, {13 * kH, 14 * kH}});
  const auto worst = worst_case_wait(src, dst);
  ASSERT_TRUE(worst.has_value());
  // Worst: post at 14:00 (end of the late rendezvous, still online),
  // wait until 09:00 tomorrow = 19h.
  EXPECT_EQ(worst->wait, 19 * kH);
  EXPECT_EQ(worst->at, 14 * kH);
}

TEST(WorstCaseWait, BruteForceAgreement) {
  // Exhaustive check on coarse random schedules: the analytic worst case
  // equals a brute-force maximum over every second in the source.
  util::Rng rng(1234);
  for (int round = 0; round < 30; ++round) {
    // Build small random schedules on a coarse grid (minutes as "seconds").
    auto random_sched = [&](int max_pieces) {
      IntervalSet s;
      const int pieces = 1 + static_cast<int>(rng.below(
          static_cast<std::uint64_t>(max_pieces)));
      for (int i = 0; i < pieces; ++i) {
        const Seconds start = rng.range(0, kDaySeconds - 7200);
        const Seconds len = 60 * rng.range(1, 90);
        s.add(start / 60 * 60, std::min(start / 60 * 60 + len, kDaySeconds));
      }
      return DaySchedule(std::move(s));
    };
    const auto src = random_sched(3);
    const auto dst = random_sched(3);
    const auto overlap = src.intersect(dst);
    if (overlap.empty()) continue;

    const auto analytic = worst_case_wait(src, overlap);
    ASSERT_TRUE(analytic.has_value());

    // Brute force over the closure of the source at minute granularity
    // (all schedule boundaries are minute-aligned by construction).
    Seconds brute = 0;
    for (const auto& piece : src.set().pieces())
      for (Seconds t = piece.start; t <= piece.end; t += 60)
        brute = std::max(brute, *overlap.wait_until_online(t));
    EXPECT_EQ(analytic->wait, brute);
  }
}

}  // namespace
}  // namespace dosn::interval
