// Integration tests: full pipeline from synthetic generation through
// filtering, online-time modeling, placement, analytic metrics, and the
// event-driven simulator — plus dataset save/load round trips.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/replica_manager.hpp"
#include "graph/degree_stats.hpp"
#include "metrics/delay.hpp"
#include "net/replica_sim.hpp"
#include "onlinetime/model.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "trace/parsers.hpp"

namespace dosn {
namespace {

using placement::Connectivity;
using placement::PolicyKind;

class Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::scaled(synth::facebook_preset(), 0.02);
    util::Rng rng(2024);
    dataset_ =
        new trace::Dataset(synth::generate_study_dataset(preset, rng));
  }
  static void TearDownTestSuite() { delete dataset_; }
  static trace::Dataset* dataset_;
};

trace::Dataset* Pipeline::dataset_ = nullptr;

TEST_F(Pipeline, DatasetSurvivesDiskRoundTrip) {
  const auto dir =
      std::filesystem::path(testing::TempDir()) / "dosn_integration";
  std::filesystem::create_directories(dir);
  const auto prefix = (dir / "fb").string();
  trace::save_dataset(prefix, *dataset_);
  const auto loaded =
      trace::load_dataset("fb", prefix + ".edges", prefix + ".activities",
                          dataset_->graph.kind());
  EXPECT_EQ(loaded.num_users(), dataset_->num_users());
  EXPECT_EQ(loaded.graph.num_edges(), dataset_->graph.num_edges());
  EXPECT_EQ(loaded.trace.size(), dataset_->trace.size());
  std::filesystem::remove_all(dir);
}

TEST_F(Pipeline, AssignmentFeedsEventSimulatorConsistently) {
  // Place replicas with MaxAv/ConRep, then execute the replica group in
  // the event simulator and check the realized delays respect the
  // analytic worst case for a handful of cohort users.
  const auto model = onlinetime::make_model(onlinetime::ModelKind::kSporadic);
  util::Rng rng(1);
  const auto schedules = model->schedules(*dataset_, rng);

  const auto degree =
      graph::most_populated_degree(dataset_->graph, 4, 12);
  auto cohort = graph::users_with_degree(dataset_->graph, degree);
  cohort.resize(std::min<std::size_t>(cohort.size(), 5));

  core::AssignmentConfig cfg;
  cfg.policy = PolicyKind::kMaxAv;
  cfg.connectivity = Connectivity::kConRep;
  cfg.max_replicas = 3;
  const auto assignment =
      core::assign_replicas(*dataset_, schedules, cfg, rng, cohort);

  for (std::size_t i = 0; i < assignment.users.size(); ++i) {
    const auto u = assignment.users[i];
    std::vector<interval::DaySchedule> nodes{schedules[u]};
    for (auto host : assignment.replicas[i]) nodes.push_back(schedules[host]);
    if (nodes.size() < 2) continue;

    const auto analytic = metrics::update_propagation_delay(
        nodes.front(),
        std::span<const interval::DaySchedule>(nodes).subspan(1),
        Connectivity::kConRep);
    if (!analytic.fully_connected) continue;

    util::Rng urng(100 + i);
    const auto updates = net::updates_within_schedules(nodes, 50, 10, urng);
    net::ReplicaSimConfig sim_cfg;
    sim_cfg.horizon_days = 20;
    const auto report = net::simulate_replica_group(nodes, updates, sim_cfg);
    EXPECT_TRUE(report.all_delivered);
    EXPECT_LE(report.max_delay, analytic.actual);
  }
}

TEST_F(Pipeline, ConRepSelectionsAreTimeConnected) {
  // Structural invariant of every ConRep selection: the replica
  // connectivity graph including the owner is connected.
  const auto model = onlinetime::make_model(onlinetime::ModelKind::kSporadic);
  util::Rng rng(3);
  const auto schedules = model->schedules(*dataset_, rng);
  const auto degree =
      graph::most_populated_degree(dataset_->graph, 4, 12);
  auto cohort = graph::users_with_degree(dataset_->graph, degree);
  cohort.resize(std::min<std::size_t>(cohort.size(), 20));

  for (PolicyKind kind :
       {PolicyKind::kMaxAv, PolicyKind::kMostActive, PolicyKind::kRandom}) {
    core::AssignmentConfig cfg;
    cfg.policy = kind;
    cfg.connectivity = Connectivity::kConRep;
    cfg.max_replicas = 5;
    util::Rng prng(4);
    const auto assignment =
        core::assign_replicas(*dataset_, schedules, cfg, prng, cohort);
    for (std::size_t i = 0; i < assignment.users.size(); ++i) {
      const auto& replicas = assignment.replicas[i];
      interval::DaySchedule grown = schedules[assignment.users[i]];
      for (auto host : replicas) {
        // Each replica, in selection order, connects to the set so far
        // (or seeds it when the owner is never online).
        if (!grown.empty()) {
          EXPECT_TRUE(schedules[host].intersects(grown))
              << "policy " << placement::to_string(kind);
        }
        grown = grown.unite(schedules[host]);
      }
    }
  }
}

TEST_F(Pipeline, EndToEndStudyProducesPlottableFigure) {
  sim::Study study(*dataset_, 5);
  sim::Study::Options opts;
  opts.cohort_degree = graph::most_populated_degree(dataset_->graph, 4, 12);
  opts.k_max = 4;
  opts.repetitions = 2;
  const auto sweep = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {}, Connectivity::kConRep, opts);
  const auto series = sweep.series(sim::Metric::kAvailability);
  ASSERT_EQ(series.size(), 3u);
  // The figure harness renders these directly; verify they are sane.
  for (const auto& s : series) {
    ASSERT_EQ(s.x.size(), 5u);
    for (double y : s.y) {
      EXPECT_GE(y, 0.0);
      EXPECT_LE(y, 1.0);
    }
  }
}

TEST_F(Pipeline, HostLoadFairnessComparable) {
  // MaxAv concentrates load on well-positioned friends; Random spreads it.
  const auto model = onlinetime::make_model(onlinetime::ModelKind::kSporadic);
  util::Rng rng(6);
  const auto schedules = model->schedules(*dataset_, rng);

  auto run = [&](PolicyKind kind) {
    core::AssignmentConfig cfg;
    cfg.policy = kind;
    cfg.connectivity = Connectivity::kUnconRep;
    cfg.max_replicas = 3;
    util::Rng prng(7);
    const auto a = core::assign_replicas(*dataset_, schedules, cfg, prng);
    return core::load_stats(a.host_load);
  };
  const auto maxav = run(PolicyKind::kMaxAv);
  const auto random = run(PolicyKind::kRandom);
  EXPECT_GT(maxav.mean, 0.0);
  EXPECT_GT(random.mean, 0.0);
  // Both are valid Gini coefficients.
  EXPECT_GE(maxav.gini, 0.0);
  EXPECT_LE(maxav.gini, 1.0);
  EXPECT_GE(random.gini, 0.0);
  EXPECT_LE(random.gini, 1.0);
}

}  // namespace
}  // namespace dosn
