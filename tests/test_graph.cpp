// Unit tests for the CSR social graph and degree statistics.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/degree_stats.hpp"
#include "graph/social_graph.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace dosn::graph {
namespace {

SocialGraph undirected_triangle_plus_leaf() {
  SocialGraphBuilder b(GraphKind::kUndirected, 4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  return std::move(b).build();
}

TEST(SocialGraph, EmptyGraph) {
  SocialGraph g;
  EXPECT_EQ(g.num_users(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.average_degree(), 0.0);
}

TEST(SocialGraph, UndirectedBasics) {
  auto g = undirected_triangle_plus_leaf();
  EXPECT_EQ(g.num_users(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(SocialGraph, UndirectedNeighborsSorted) {
  auto g = undirected_triangle_plus_leaf();
  const auto n2 = g.contacts(2);
  EXPECT_TRUE(std::is_sorted(n2.begin(), n2.end()));
  EXPECT_EQ(std::vector<UserId>(n2.begin(), n2.end()),
            (std::vector<UserId>{0, 1, 3}));
}

TEST(SocialGraph, DuplicateAndSelfEdgesDropped) {
  SocialGraphBuilder b(GraphKind::kUndirected, 3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate in reverse
  b.add_edge(0, 1);  // duplicate
  b.add_edge(2, 2);  // self loop
  auto g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(SocialGraph, BuilderRejectsOutOfRange) {
  SocialGraphBuilder b(GraphKind::kUndirected, 2);
  EXPECT_THROW(b.add_edge(0, 2), util::ContractError);
}

TEST(SocialGraph, DirectedFollowSemantics) {
  // 0 follows 1, 2 follows 1, 1 follows 2.
  SocialGraphBuilder b(GraphKind::kDirected, 3);
  b.add_edge(0, 1);
  b.add_edge(2, 1);
  b.add_edge(1, 2);
  auto g = std::move(b).build();

  EXPECT_EQ(g.num_edges(), 3u);
  // out = followees, in = followers, contacts = followers.
  EXPECT_EQ(std::vector<UserId>(g.out_neighbors(0).begin(),
                                g.out_neighbors(0).end()),
            (std::vector<UserId>{1}));
  EXPECT_EQ(std::vector<UserId>(g.in_neighbors(1).begin(),
                                g.in_neighbors(1).end()),
            (std::vector<UserId>{0, 2}));
  EXPECT_EQ(g.degree(1), 2u);  // follower count
  EXPECT_EQ(g.degree(0), 0u);  // nobody follows 0
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));  // directed
}

TEST(SocialGraph, DirectedEdgesAreNotSymmetrized) {
  SocialGraphBuilder b(GraphKind::kDirected, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // both directions: two distinct edges
  auto g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(SocialGraph, AverageDegreeUndirected) {
  auto g = undirected_triangle_plus_leaf();
  // Degrees 2,2,3,1 -> mean 2.
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(SocialGraph, InducedSubgraphRenumbers) {
  auto g = undirected_triangle_plus_leaf();
  std::vector<bool> keep{true, false, true, true};
  std::vector<UserId> old_ids;
  auto sub = g.induced(keep, &old_ids);

  EXPECT_EQ(sub.num_users(), 3u);
  EXPECT_EQ(old_ids, (std::vector<UserId>{0, 2, 3}));
  // Surviving edges: {0,2} -> {0,1}, {2,3} -> {1,2}.
  EXPECT_EQ(sub.num_edges(), 2u);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
}

TEST(SocialGraph, InducedKeepsDirectedness) {
  SocialGraphBuilder b(GraphKind::kDirected, 3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  auto g = std::move(b).build();
  std::vector<bool> keep{true, true, false};
  auto sub = g.induced(keep);
  EXPECT_EQ(sub.kind(), GraphKind::kDirected);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_TRUE(sub.has_edge(0, 1));
}

TEST(SocialGraph, InducedRejectsBadMask) {
  auto g = undirected_triangle_plus_leaf();
  EXPECT_THROW(g.induced(std::vector<bool>{true}), ConfigError);
}

TEST(DegreeStats, Histogram) {
  auto g = undirected_triangle_plus_leaf();
  const auto h = degree_histogram(g);
  ASSERT_EQ(h.size(), 4u);  // max degree 3
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 2u);
  EXPECT_EQ(h[3], 1u);
}

TEST(DegreeStats, UsersWithDegree) {
  auto g = undirected_triangle_plus_leaf();
  EXPECT_EQ(users_with_degree(g, 2), (std::vector<UserId>{0, 1}));
  EXPECT_EQ(users_with_degree(g, 3), (std::vector<UserId>{2}));
  EXPECT_TRUE(users_with_degree(g, 7).empty());
}

TEST(DegreeStats, UsersWithDegreeBetween) {
  auto g = undirected_triangle_plus_leaf();
  EXPECT_EQ(users_with_degree_between(g, 1, 2).size(), 3u);
  EXPECT_THROW(users_with_degree_between(g, 3, 1), ConfigError);
}

TEST(DegreeStats, MostPopulatedDegree) {
  auto g = undirected_triangle_plus_leaf();
  EXPECT_EQ(most_populated_degree(g, 1, 3), 2u);
}

}  // namespace
}  // namespace dosn::graph
