// Unit tests for the online-time models (Sec IV-C semantics).
#include <gtest/gtest.h>

#include "graph/social_graph.hpp"
#include "onlinetime/continuous.hpp"
#include "onlinetime/model.hpp"
#include "onlinetime/sporadic.hpp"
#include "util/error.hpp"

namespace dosn::onlinetime {
namespace {

using graph::GraphKind;
using graph::SocialGraphBuilder;
using interval::kDaySeconds;
using interval::time_of_day;
using trace::Activity;

constexpr Seconds kH = 3600;

trace::Dataset dataset_with(std::vector<Activity> acts, std::size_t users) {
  SocialGraphBuilder b(GraphKind::kUndirected, users);
  for (graph::UserId u = 1; u < users; ++u) b.add_edge(0, u);
  trace::Dataset d;
  d.name = "t";
  d.graph = std::move(b).build();
  d.trace = trace::ActivityTrace(users, std::move(acts));
  return d;
}

TEST(Sporadic, SessionContainsActivityInstant) {
  // One activity at day 2, 10:00.
  const Seconds ts = 2 * kDaySeconds + 10 * kH;
  auto d = dataset_with({{0, 1, ts}}, 2);
  SporadicModel model(20 * 60);
  util::Rng rng(1);
  const auto scheds = model.schedules(d, rng);
  ASSERT_EQ(scheds.size(), 2u);
  EXPECT_TRUE(scheds[0].online_at(ts));
  EXPECT_EQ(scheds[0].online_seconds(), 20 * 60);
  // User 1 created nothing: never online.
  EXPECT_TRUE(scheds[1].empty());
}

TEST(Sporadic, MultipleSessionsUnion) {
  auto d = dataset_with({{0, 1, 10 * kH}, {0, 1, 20 * kH}}, 2);
  SporadicModel model(20 * 60);
  util::Rng rng(2);
  const auto scheds = model.schedules(d, rng);
  EXPECT_TRUE(scheds[0].online_at(10 * kH));
  EXPECT_TRUE(scheds[0].online_at(20 * kH));
  EXPECT_LE(scheds[0].online_seconds(), 40 * 60);
}

TEST(Sporadic, SessionLengthControlsCoverage) {
  std::vector<Activity> acts;
  for (int i = 0; i < 20; ++i)
    acts.push_back({0, 0, static_cast<Seconds>(i) * kH + 30 * 60});
  auto d = dataset_with(std::move(acts), 1);
  util::Rng rng(3);
  SporadicModel short_model(10 * 60);
  SporadicModel long_model(4 * kH);
  util::Rng rng2(3);
  const auto short_s = short_model.schedules(d, rng)[0].online_seconds();
  const auto long_s = long_model.schedules(d, rng2)[0].online_seconds();
  EXPECT_LT(short_s, long_s);
}

TEST(Sporadic, WrapsMidnightSessions) {
  // Activity at 00:05 with 20-minute sessions can start the prior evening.
  auto d = dataset_with({{0, 1, kDaySeconds + 5 * 60}}, 2);
  SporadicModel model(20 * 60);
  util::Rng rng(4);
  const auto scheds = model.schedules(d, rng);
  EXPECT_EQ(scheds[0].online_seconds(), 20 * 60);
  EXPECT_TRUE(scheds[0].online_at(5 * 60));
}

TEST(Sporadic, RejectsNonPositiveSession) {
  EXPECT_THROW(SporadicModel(0), ConfigError);
}

TEST(Sporadic, NameIncludesLength) {
  EXPECT_EQ(SporadicModel(1200).name(), "Sporadic(1200s)");
}

TEST(BestWindowStart, CoversActivityMode) {
  // Seven activities near 21:00, two near 09:00: a 2h window must cover
  // the evening cluster.
  std::vector<Seconds> times;
  for (int i = 0; i < 7; ++i) times.push_back(21 * kH + i * 60);
  times.push_back(9 * kH);
  times.push_back(9 * kH + 300);
  const Seconds start = best_window_start(times, 2 * kH);
  EXPECT_LE(start, 21 * kH);
  EXPECT_GT(start + 2 * kH, 21 * kH + 6 * 60);
}

TEST(BestWindowStart, HandlesWrapAroundCluster) {
  // Cluster straddling midnight: 23:30 and 00:10 (+ outlier at noon).
  std::vector<Seconds> times{23 * kH + 30 * 60, 10 * 60, 12 * kH};
  const Seconds start = best_window_start(times, 2 * kH);
  // The best 2h window covers both midnight-straddling points.
  const interval::Interval window{start, start + 2 * kH};
  auto sched = interval::DaySchedule::project({&window, 1});
  EXPECT_TRUE(sched.online_at(23 * kH + 30 * 60));
  EXPECT_TRUE(sched.online_at(10 * 60));
}

TEST(BestWindowStart, EmptyTimesGiveZero) {
  EXPECT_EQ(best_window_start({}, 2 * kH), 0);
}

TEST(FixedLength, WindowHasExactLength) {
  auto d = dataset_with({{0, 1, 13 * kH}, {0, 1, 14 * kH}}, 2);
  FixedLengthModel model(2.0);
  util::Rng rng(5);
  const auto scheds = model.schedules(d, rng);
  EXPECT_EQ(scheds[0].online_seconds(), 2 * kH);
  EXPECT_TRUE(scheds[0].online_at(13 * kH));
}

TEST(FixedLength, UserWithoutActivityGetsRandomWindow) {
  auto d = dataset_with({{0, 1, 13 * kH}}, 3);
  FixedLengthModel model(4.0);
  util::Rng rng(6);
  const auto scheds = model.schedules(d, rng);
  EXPECT_EQ(scheds[2].online_seconds(), 4 * kH);  // still a full window
}

TEST(FixedLength, FullDayWindow) {
  auto d = dataset_with({{0, 1, 13 * kH}}, 2);
  FixedLengthModel model(24.0);
  util::Rng rng(7);
  const auto scheds = model.schedules(d, rng);
  EXPECT_DOUBLE_EQ(scheds[0].coverage(), 1.0);
}

TEST(FixedLength, RejectsBadHours) {
  EXPECT_THROW(FixedLengthModel(0.0), ConfigError);
  EXPECT_THROW(FixedLengthModel(25.0), ConfigError);
}

TEST(RandomLength, WindowWithinRange) {
  auto d = dataset_with({{0, 1, 13 * kH}}, 2);
  RandomLengthModel model(2.0, 8.0);
  util::Rng rng(8);
  for (int round = 0; round < 10; ++round) {
    const auto scheds = model.schedules(d, rng);
    EXPECT_GE(scheds[0].online_seconds(), 2 * kH);
    EXPECT_LE(scheds[0].online_seconds(), 8 * kH);
  }
}

TEST(RandomLength, IsRandomized) {
  RandomLengthModel model;
  EXPECT_TRUE(model.randomized());
  SporadicModel sporadic;
  EXPECT_FALSE(sporadic.randomized());
  FixedLengthModel fixed;
  EXPECT_FALSE(fixed.randomized());
}

TEST(RandomLength, RejectsBadRange) {
  EXPECT_THROW(RandomLengthModel(5.0, 2.0), ConfigError);
  EXPECT_THROW(RandomLengthModel(0.0, 2.0), ConfigError);
}

TEST(ModelFactory, CreatesAllKinds) {
  ModelParams params;
  params.session_length = 600;
  params.window_hours = 2.0;
  EXPECT_EQ(make_model(ModelKind::kSporadic, params)->name(),
            "Sporadic(600s)");
  EXPECT_EQ(make_model(ModelKind::kFixedLength, params)->name(),
            "FixedLength(2h)");
  EXPECT_EQ(make_model(ModelKind::kRandomLength, params)->name(),
            "RandomLength(2-8h)");
  EXPECT_EQ(to_string(ModelKind::kSporadic), "Sporadic");
}

TEST(FixedLength, CentersOnActivityMajority) {
  // 10 activities at 20:00-20:30, 3 at 06:00: window must cover evening.
  std::vector<Activity> acts;
  for (int i = 0; i < 10; ++i)
    acts.push_back({0, 1, 20 * kH + i * 180});
  for (int i = 0; i < 3; ++i) acts.push_back({0, 1, 6 * kH + i * 60});
  auto d = dataset_with(std::move(acts), 2);
  FixedLengthModel model(2.0);
  util::Rng rng(9);
  const auto scheds = model.schedules(d, rng);
  EXPECT_TRUE(scheds[0].online_at(20 * kH + 15 * 60));
  EXPECT_FALSE(scheds[0].online_at(6 * kH));
}

}  // namespace
}  // namespace dosn::onlinetime
