// Unit tests for activity traces and the dataset filtering pipeline.
#include <gtest/gtest.h>

#include "trace/dataset.hpp"
#include "util/error.hpp"

namespace dosn::trace {
namespace {

using graph::GraphKind;
using graph::SocialGraphBuilder;
using graph::UserId;

ActivityTrace small_trace() {
  // Users 0..3. 1 and 2 post on 0's wall; 0 posts on 1's wall.
  std::vector<Activity> acts{
      {/*creator=*/1, /*receiver=*/0, /*timestamp=*/100},
      {1, 0, 300},
      {2, 0, 200},
      {0, 1, 150},
      {3, 3, 400},
  };
  return ActivityTrace(4, std::move(acts));
}

TEST(ActivityTrace, EmptyDefault) {
  ActivityTrace t;
  EXPECT_EQ(t.num_users(), 0u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(ActivityTrace, SizesAndBounds) {
  auto t = small_trace();
  EXPECT_EQ(t.num_users(), 4u);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.min_timestamp(), 100);
  EXPECT_EQ(t.max_timestamp(), 400);
}

TEST(ActivityTrace, ReceivedBySortedByTime) {
  auto t = small_trace();
  const auto r0 = t.received_by(0);
  ASSERT_EQ(r0.size(), 3u);
  EXPECT_EQ(r0[0].timestamp, 100);
  EXPECT_EQ(r0[1].timestamp, 200);
  EXPECT_EQ(r0[2].timestamp, 300);
  EXPECT_EQ(r0[1].creator, 2u);
  EXPECT_TRUE(t.received_by(2).empty());
}

TEST(ActivityTrace, CreatedIndexResolves) {
  auto t = small_trace();
  const auto c1 = t.created_index(1);
  ASSERT_EQ(c1.size(), 2u);
  EXPECT_EQ(t.activity(c1[0]).timestamp, 100);
  EXPECT_EQ(t.activity(c1[1]).timestamp, 300);
  EXPECT_EQ(t.activities_created(0), 1u);
  EXPECT_EQ(t.activities_created(3), 1u);
  EXPECT_EQ(t.activities_received(3), 1u);
}

TEST(ActivityTrace, InteractionCount) {
  auto t = small_trace();
  EXPECT_EQ(t.interaction_count(0, 1), 2u);
  EXPECT_EQ(t.interaction_count(0, 2), 1u);
  EXPECT_EQ(t.interaction_count(0, 3), 0u);
  EXPECT_EQ(t.interaction_count(1, 0), 1u);
}

TEST(ActivityTrace, AverageActivitiesPerUser) {
  auto t = small_trace();
  EXPECT_DOUBLE_EQ(t.average_activities_per_user(), 5.0 / 4.0);
}

TEST(ActivityTrace, RejectsOutOfRangeUser) {
  std::vector<Activity> acts{{5, 0, 100}};
  EXPECT_THROW(ActivityTrace(4, std::move(acts)), ConfigError);
}

Dataset small_dataset() {
  SocialGraphBuilder b(GraphKind::kUndirected, 4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  Dataset d;
  d.name = "test";
  d.graph = std::move(b).build();
  d.trace = small_trace();
  return d;
}

TEST(Dataset, Stats) {
  auto d = small_dataset();
  const auto s = stats_of(d);
  EXPECT_EQ(s.users, 4u);
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.activities, 5u);
  EXPECT_DOUBLE_EQ(s.average_degree, 2.0);
  EXPECT_DOUBLE_EQ(s.average_activities, 1.25);
}

TEST(Dataset, FilterUsersRenumbersGraphAndTrace) {
  auto d = small_dataset();
  std::vector<bool> keep{true, true, false, true};
  std::vector<UserId> old_ids;
  auto f = filter_users(d, keep, &old_ids);

  EXPECT_EQ(old_ids, (std::vector<UserId>{0, 1, 3}));
  EXPECT_EQ(f.num_users(), 3u);
  // Only edge {0,1} survives (others involved user 2).
  EXPECT_EQ(f.graph.num_edges(), 1u);
  // Activities: (1->0)x2, (0->1), (3->3 renamed 2->2) survive; (2->0) drops.
  EXPECT_EQ(f.trace.size(), 4u);
  EXPECT_EQ(f.trace.interaction_count(0, 1), 2u);
  EXPECT_EQ(f.trace.activities_created(2), 1u);
}

TEST(Dataset, FilterMinActivity) {
  auto d = small_dataset();
  // Created counts: u0=1, u1=2, u2=1, u3=1.
  auto f = filter_min_activity(d, 2);
  EXPECT_EQ(f.num_users(), 1u);
  EXPECT_EQ(f.trace.size(), 0u);  // partner was filtered out
}

TEST(Dataset, FilterMinActivityZeroKeepsAll) {
  auto d = small_dataset();
  auto f = filter_min_activity(d, 0);
  EXPECT_EQ(f.num_users(), 4u);
  EXPECT_EQ(f.trace.size(), 5u);
}

TEST(Dataset, FilterIsolated) {
  SocialGraphBuilder b(GraphKind::kUndirected, 3);
  b.add_edge(0, 1);  // user 2 isolated
  Dataset d;
  d.graph = std::move(b).build();
  d.trace = ActivityTrace(3, {{2, 2, 100}});
  auto f = filter_isolated(d);
  EXPECT_EQ(f.num_users(), 2u);
  EXPECT_EQ(f.trace.size(), 0u);
}

TEST(Dataset, FilterMaskSizeChecked) {
  auto d = small_dataset();
  EXPECT_THROW(filter_users(d, std::vector<bool>{true}), ConfigError);
}

}  // namespace
}  // namespace dosn::trace
