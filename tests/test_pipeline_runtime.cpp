// Unit and stress tests for the work-stealing pipeline runtime
// (util/pipeline_runtime.hpp, util/spsc_queue.hpp, util/steal_deque.hpp).
//
// The suite names carry "PipelineRuntime" / "SpscQueue" / "StealDeque" so
// the ThreadSanitizer CI job's -R filter picks every test up: the deque
// take/steal protocol and the SPSC index handoff are exactly the code
// whose bugs only surface as data races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/pipeline_runtime.hpp"
#include "util/spsc_queue.hpp"
#include "util/steal_deque.hpp"
#include "util/thread_pool.hpp"

namespace dosn::util {
namespace {

TEST(SpscQueue, FifoOrderAndCloseSemantics) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity() >= 4, true);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  q.close();
  // Elements pushed before close stay poppable, in order.
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(q.pop(v));  // end of stream only after draining
}

TEST(SpscQueue, TryPushFailsWhenFull) {
  SpscQueue<int> q(1);
  const std::size_t cap = q.capacity();
  for (std::size_t i = 0; i < cap; ++i)
    ASSERT_TRUE(q.try_push(static_cast<int>(i)));
  EXPECT_FALSE(q.try_push(99));
  int v = -1;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(99));  // room again after one pop
}

// Producer/consumer handoff across real threads: every element arrives
// exactly once, in order, through a deliberately tiny queue so both the
// full-spin (producer) and empty-spin (consumer) paths run constantly.
TEST(SpscQueue, CrossThreadStreamKeepsOrder) {
  constexpr int kItems = 20000;
  SpscQueue<int> q(2);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  int v = 0;
  while (q.pop(v)) {
    ASSERT_EQ(v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(StealDeque, OwnerTakesLifoThievesStealFifo) {
  StealDeque d;
  for (std::size_t i = 0; i < 4; ++i) d.push({i, i + 1});
  IndexBlock b;
  ASSERT_TRUE(d.steal(b));
  EXPECT_EQ(b.begin, 0u);  // FIFO from the top
  ASSERT_TRUE(d.take(b));
  EXPECT_EQ(b.begin, 3u);  // LIFO from the bottom
  ASSERT_TRUE(d.take(b));
  EXPECT_EQ(b.begin, 2u);
  ASSERT_TRUE(d.steal(b));
  EXPECT_EQ(b.begin, 1u);
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.take(b));
  EXPECT_FALSE(d.steal(b));
}

// The claim protocol under contention: one owner taking, several thieves
// stealing, every block claimed exactly once. Run under TSan this also
// checks the memory-order discipline of take/steal.
TEST(StealDeque, EveryBlockClaimedExactlyOnceUnderContention) {
  constexpr std::size_t kBlocks = 4096;
  constexpr std::size_t kThieves = 3;
  StealDeque d;
  for (std::size_t i = 0; i < kBlocks; ++i) d.push({i, i + 1});

  std::vector<std::atomic<int>> claims(kBlocks);
  std::atomic<bool> go{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      IndexBlock b;
      while (!d.empty())
        if (d.steal(b)) ++claims[b.begin];
    });
  }
  go.store(true, std::memory_order_release);
  IndexBlock b;
  while (d.take(b)) ++claims[b.begin];
  for (auto& thief : thieves) thief.join();

  for (std::size_t i = 0; i < kBlocks; ++i)
    ASSERT_EQ(claims[i].load(), 1) << "block " << i;
}

TEST(PipelineRuntime, CoversEveryIndexOnceAcrossThreadsAndGrains) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (const std::size_t grain : {0u, 1u, 3u, 64u}) {
      PipelineRuntime runtime({.threads = threads, .steal_grain = grain});
      for (const std::size_t n : {0u, 1u, 3u, 7u, 64u, 1000u}) {
        std::vector<std::atomic<int>> hits(n);
        runtime.parallel_for_index(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads
                                       << " grain=" << grain << " n=" << n
                                       << " i=" << i;
      }
    }
  }
}

// n < threads is the chunk-metrics edge case: only the non-empty seed
// slabs become blocks, and the thread-pool `chunks` counter must count
// those, not thread_count() (the pre-runtime overcount bug).
TEST(PipelineRuntime, SmallLoopsCountOnlyNonEmptyChunks) {
  obs::set_enabled(true);
  auto& chunks = obs::Registry::global().counter("util.thread_pool.chunks");
  ThreadPool pool(8);
  const std::uint64_t before = chunks.value();
  std::vector<std::atomic<int>> hits(3);
  pool.for_each_index(3, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
  // 3 indices over 8 workers: grain 1, three non-empty blocks.
  EXPECT_EQ(chunks.value() - before, 3u);
}

TEST(PipelineRuntime, ReportsBlockAndStealAccounting) {
  PipelineRuntime runtime({.threads = 4, .steal_grain = 8});
  const auto stats = runtime.parallel_for_index(64, [](std::size_t) {});
  EXPECT_EQ(stats.blocks, 8u);  // 64 indices / grain 8, evenly seeded
  EXPECT_LE(stats.steals, stats.blocks);
}

// Exceptions propagate identically whether the throwing index sits in
// worker 0's seed slab (index 0) or in the last helper's slab (index
// n-1), and the runtime stays usable afterwards.
TEST(PipelineRuntime, PropagatesExceptionsFromAnySeedSlab) {
  PipelineRuntime runtime({.threads = 4, .steal_grain = 1});
  const std::size_t n = 100;
  for (const std::size_t bad : {std::size_t{0}, n - 1}) {
    EXPECT_THROW(runtime.parallel_for_index(
                     n,
                     [&](std::size_t i) {
                       if (i == bad) throw std::runtime_error("boom");
                     }),
                 std::runtime_error)
        << "throwing index " << bad;
    std::atomic<int> count{0};
    runtime.parallel_for_index(10, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
  }
}

// A nested job issued from inside a block inlines serially instead of
// deadlocking the rendezvous; every inner index still runs exactly once.
TEST(PipelineRuntime, NestedJobsInlineSerially) {
  PipelineRuntime runtime({.threads = 4});
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  runtime.parallel_for_index(kOuter, [&](std::size_t o) {
    runtime.parallel_for_index(
        kInner, [&](std::size_t i) { ++hits[o * kInner + i]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
}

// Same nesting through the parallel_for_each convenience wrapper on a
// shared pool — the call pattern sim code would hit if an evaluation
// callback itself fans out.
TEST(PipelineRuntime, NestedParallelForEachOnOnePool) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for_each(&pool, kOuter, [&](std::size_t o) {
    parallel_for_each(&pool, kInner,
                      [&](std::size_t i) { ++hits[o * kInner + i]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
}

// Stress for the ThreadSanitizer job: many short jobs from a churn of
// callers on one runtime, tiny grain so stealing is constant, shared
// per-index slots plus an atomic reduction, and exception propagation
// under load. A race in the deque protocol, the SPSC-style completion
// counter, or the rendezvous surfaces here.
TEST(PipelineRuntime, StressManyShortJobsWithStealing) {
  PipelineRuntime runtime({.threads = 4, .steal_grain = 1});
  std::atomic<long> total{0};
  std::vector<int> slots(64, 0);
  for (int round = 0; round < 200; ++round) {
    runtime.parallel_for_index(slots.size(), [&](std::size_t i) {
      slots[i] = static_cast<int>(i);
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 200L * (63 * 64 / 2));
  for (std::size_t i = 0; i < slots.size(); ++i)
    EXPECT_EQ(slots[i], static_cast<int>(i));

  // Exception under churn: still propagates, runtime still drains fully.
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(runtime.parallel_for_index(
                     128,
                     [&](std::size_t i) {
                       if (i == 77) throw std::runtime_error("stress");
                     }),
                 std::runtime_error);
  }
  std::atomic<int> count{0};
  runtime.parallel_for_index(32, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

// Deterministic per-index slots under heavy stealing: the steal schedule
// varies run to run, the slot contents must not.
TEST(PipelineRuntime, SlotResultsIndependentOfStealSchedule) {
  const std::size_t n = 513;
  std::vector<double> reference(n);
  for (std::size_t i = 0; i < n; ++i)
    reference[i] = static_cast<double>(i * i) * 0.5;
  for (const std::size_t threads : {1u, 3u, 8u}) {
    PipelineRuntime runtime({.threads = threads, .steal_grain = 2});
    for (int repeat = 0; repeat < 5; ++repeat) {
      std::vector<double> slots(n, -1.0);
      runtime.parallel_for_index(n, [&](std::size_t i) {
        slots[i] = static_cast<double>(i * i) * 0.5;
      });
      ASSERT_EQ(slots, reference)
          << "threads=" << threads << " repeat=" << repeat;
    }
  }
}

}  // namespace
}  // namespace dosn::util
