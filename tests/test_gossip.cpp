// Tests for the message-level anti-entropy gossip protocol.
#include <gtest/gtest.h>

#include "metrics/delay.hpp"
#include "net/gossip.hpp"
#include "util/error.hpp"

namespace dosn::net {
namespace {

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(interval::IntervalSet::single(start_h * kH, end_h * kH));
}

GossipConfig fast_config(int days = 3) {
  GossipConfig cfg;
  cfg.sync_period = 120;
  cfg.link_latency = 1;
  cfg.horizon_days = days;
  return cfg;
}

TEST(Gossip, PropagatesWithinCoOnlineWindow) {
  std::vector<DaySchedule> nodes{window(8, 12), window(8, 12)};
  std::vector<GossipWrite> writes{{9 * kH, 0, /*author=*/7}};
  util::Rng rng(1);
  const auto r = simulate_gossip(nodes, writes, fast_config(), rng);
  ASSERT_TRUE(r.arrival[0][1].has_value());
  // Delivered within one sync period plus protocol latency.
  EXPECT_LE(*r.arrival[0][1] - 9 * kH, 120 + 3);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_GT(r.messages_sent, 0u);
  EXPECT_GT(r.sync_rounds, 0u);
}

TEST(Gossip, OriginHoldsWriteWhileOffline) {
  std::vector<DaySchedule> nodes{window(8, 10), window(8, 10)};
  std::vector<GossipWrite> writes{{14 * kH, 0, 7}};  // origin offline
  util::Rng rng(2);
  const auto r = simulate_gossip(nodes, writes, fast_config(), rng);
  EXPECT_EQ(r.deferred_writes, 1u);
  ASSERT_TRUE(r.arrival[0][1].has_value());
  // Shared during the next day's co-online window.
  EXPECT_GE(*r.arrival[0][1], interval::kDaySeconds + 8 * kH);
  EXPECT_LE(*r.arrival[0][1], interval::kDaySeconds + 8 * kH + 2 * 120 + 3);
}

TEST(Gossip, MultiHopChainPropagation) {
  // a(06-10), b(09-13), c(12-16): posts at a reach c via b the same day.
  std::vector<DaySchedule> nodes{window(6, 10), window(9, 13),
                                 window(12, 16)};
  std::vector<GossipWrite> writes{{7 * kH, 0, 3}};
  util::Rng rng(3);
  const auto r = simulate_gossip(nodes, writes, fast_config(), rng);
  ASSERT_TRUE(r.arrival[0][2].has_value());
  EXPECT_LT(*r.arrival[0][2], 16 * kH);
  EXPECT_TRUE(r.all_delivered);
}

TEST(Gossip, MissesRendezvousShorterThanPeriod) {
  // Overlap of 10 minutes, sync period of 2 hours: the pair usually never
  // completes a round inside the window (first tick is randomly offset,
  // so allow the lucky case but expect failure for most seeds).
  std::vector<DaySchedule> nodes{
      window(8, 10),
      DaySchedule(interval::IntervalSet::single(
          10 * kH - 600, 12 * kH))};
  std::vector<GossipWrite> writes{{8 * kH + 60, 0, 1}};
  GossipConfig cfg;
  cfg.sync_period = 2 * kH;
  cfg.link_latency = 1;
  cfg.horizon_days = 1;
  int delivered = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    const auto r = simulate_gossip(nodes, writes, cfg, rng);
    delivered += r.arrival[0][1].has_value() ? 1 : 0;
  }
  // A fine-grained protocol (period 60s) always delivers.
  cfg.sync_period = 60;
  int delivered_fine = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    const auto r = simulate_gossip(nodes, writes, cfg, rng);
    delivered_fine += r.arrival[0][1].has_value() ? 1 : 0;
  }
  EXPECT_EQ(delivered_fine, 10);
  EXPECT_LT(delivered, delivered_fine);
}

TEST(Gossip, RealizedDelayBoundedByAnalyticPlusProtocolSlack) {
  // With a period far smaller than every overlap, the realized delay can
  // exceed the analytic instant-exchange bound only by protocol slack
  // (one period per hop plus message latencies).
  std::vector<DaySchedule> nodes{window(8, 12), window(11, 15),
                                 window(14, 18)};
  util::Rng wrng(4);
  std::vector<GossipWrite> writes;
  for (int day = 0; day < 6; ++day)
    for (Seconds t = 8 * kH; t < 12 * kH; t += 30 * 60)
      writes.push_back({day * interval::kDaySeconds + t, 0, 9});
  std::sort(writes.begin(), writes.end(),
            [](const GossipWrite& a, const GossipWrite& b) {
              return a.time < b.time;
            });

  GossipConfig cfg;
  cfg.sync_period = 60;
  cfg.link_latency = 1;
  cfg.horizon_days = 10;
  util::Rng rng(5);
  const auto r = simulate_gossip(nodes, writes, cfg, rng);
  EXPECT_TRUE(r.all_delivered);

  const auto analytic = metrics::update_propagation_delay(
      nodes.front(), std::span<const DaySchedule>(nodes).subspan(1),
      placement::Connectivity::kConRep);
  const Seconds slack = 2 * (cfg.sync_period + 3 * cfg.link_latency);
  EXPECT_LE(r.max_delay, analytic.actual + slack);
}

TEST(Gossip, CountsPayloadAndLoss) {
  std::vector<DaySchedule> nodes{window(8, 12), window(8, 12)};
  std::vector<GossipWrite> writes{{9 * kH, 0, 7}, {9 * kH + 600, 1, 8}};
  util::Rng rng(6);
  const auto r = simulate_gossip(nodes, writes, fast_config(1), rng);
  EXPECT_GE(r.posts_shipped, 2u);  // each post crosses the wire at least once
  EXPECT_TRUE(r.all_delivered);
  // Anti-entropy is digest-guided: no unbounded re-shipping. Generous
  // bound: each of the 2 posts shipped at most once per round.
  EXPECT_LE(r.posts_shipped, r.sync_rounds * 2 + 4);
}

TEST(Gossip, NoPeersMeansNoMessages) {
  std::vector<DaySchedule> nodes{window(8, 12)};
  std::vector<GossipWrite> writes{{9 * kH, 0, 7}};
  util::Rng rng(7);
  const auto r = simulate_gossip(nodes, writes, fast_config(1), rng);
  EXPECT_EQ(r.messages_sent, 0u);
  EXPECT_GT(r.sync_rounds, 0u);
  EXPECT_TRUE(r.all_delivered);  // nobody else to deliver to
}

TEST(Gossip, DisjointSchedulesNeverDeliver) {
  std::vector<DaySchedule> nodes{window(8, 10), window(20, 22)};
  std::vector<GossipWrite> writes{{9 * kH, 0, 7}};
  util::Rng rng(8);
  const auto r = simulate_gossip(nodes, writes, fast_config(5), rng);
  EXPECT_FALSE(r.arrival[0][1].has_value());
  EXPECT_FALSE(r.all_delivered);
  EXPECT_EQ(r.posts_shipped, 0u);
}

TEST(Gossip, ValidatesInputs) {
  std::vector<DaySchedule> nodes{window(8, 10)};
  util::Rng rng(9);
  GossipConfig cfg;
  cfg.horizon_days = 0;
  EXPECT_THROW(simulate_gossip(nodes, {}, cfg, rng), ConfigError);
  cfg.horizon_days = 1;
  cfg.sync_period = 0;
  EXPECT_THROW(simulate_gossip(nodes, {}, cfg, rng), ConfigError);
  cfg.sync_period = 60;
  std::vector<GossipWrite> bad{{0, 9, 1}};
  EXPECT_THROW(simulate_gossip(nodes, bad, cfg, rng), ConfigError);
}

TEST(Gossip, AuthorSequencePreservedAcrossOrigins) {
  // Same author writes via two different nodes; both posts eventually
  // exist everywhere exactly once.
  std::vector<DaySchedule> nodes{window(8, 12), window(8, 12)};
  std::vector<GossipWrite> writes{{9 * kH, 0, 5}, {10 * kH, 1, 5}};
  util::Rng rng(10);
  const auto r = simulate_gossip(nodes, writes, fast_config(2), rng);
  EXPECT_TRUE(r.all_delivered);
  for (std::size_t w = 0; w < 2; ++w)
    for (std::size_t n = 0; n < 2; ++n)
      EXPECT_TRUE(r.arrival[w][n].has_value());
}

GossipReport run_pair_scenario(const GossipConfig& cfg,
                               std::uint64_t protocol_seed = 77) {
  std::vector<DaySchedule> nodes{window(8, 12), window(8, 12),
                                 window(9, 13)};
  std::vector<GossipWrite> writes;
  for (int i = 0; i < 8; ++i)
    writes.push_back({9 * kH + i * 600, static_cast<std::size_t>(i % 2),
                      static_cast<core::UserId>(100 + i)});
  util::Rng rng(protocol_seed);
  return simulate_gossip(nodes, writes, cfg, rng);
}

void expect_reports_identical(const GossipReport& a, const GossipReport& b) {
  EXPECT_EQ(a.arrival, b.arrival);
  EXPECT_EQ(a.max_delay, b.max_delay);
  EXPECT_EQ(a.mean_delay, b.mean_delay);
  EXPECT_EQ(a.all_delivered, b.all_delivered);
  EXPECT_EQ(a.deferred_writes, b.deferred_writes);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.posts_shipped, b.posts_shipped);
  EXPECT_EQ(a.sync_rounds, b.sync_rounds);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.retransmits, b.retransmits);
}

// The tentpole identity: a zero fault plan (even with a non-zero plan seed
// and retransmission enabled) must reproduce the unfaulted protocol's
// whole report bit for bit — the injector consumes nothing the unfaulted
// path would not.
TEST(GossipFaults, ZeroFaultPlanBitIdentical) {
  const auto baseline = run_pair_scenario(fast_config(3));

  GossipConfig cfg = fast_config(3);
  cfg.faults.seed = 0xdeadbeef;  // seed alone must not change anything
  cfg.max_retransmits = 4;       // never fires without wire drops
  const auto hardened = run_pair_scenario(cfg);
  expect_reports_identical(baseline, hardened);
  EXPECT_EQ(hardened.messages_dropped, 0u);
  EXPECT_EQ(hardened.retransmits, 0u);
}

TEST(GossipFaults, WireDropsLoseMessagesWithoutRetransmission) {
  GossipConfig cfg = fast_config(3);
  cfg.faults.seed = 5;
  cfg.faults.message_drop = 0.5;
  const auto r = run_pair_scenario(cfg);
  EXPECT_GT(r.messages_dropped, 0u);
  EXPECT_EQ(r.retransmits, 0u);  // fire-and-forget drops stay dropped
  const auto clean = run_pair_scenario(fast_config(3));
  // Losing half the wire slows realized propagation.
  EXPECT_GT(r.mean_delay, clean.mean_delay);
}

// The hardening claim from the issue: with message loss, the
// retransmission layer strictly beats fire-and-forget on realized delay
// (coarse threshold — same schedules, writes, protocol seed, and fault
// streams; only the retry budget differs).
TEST(GossipFaults, RetransmissionBeatsNoneUnderMessageLoss) {
  GossipConfig lossy = fast_config(3);
  lossy.faults.seed = 5;
  lossy.faults.message_drop = 0.5;
  const auto without = run_pair_scenario(lossy);

  GossipConfig hardened = lossy;
  hardened.max_retransmits = 6;
  hardened.retransmit_timeout = 30;
  hardened.retransmit_backoff_cap = 240;
  const auto with = run_pair_scenario(hardened);

  EXPECT_GT(with.retransmits, 0u);
  EXPECT_LT(with.mean_delay, without.mean_delay);
  // Retries recover deliveries fire-and-forget loses to earlier rounds,
  // so the hardened run also delivers everything here.
  EXPECT_TRUE(with.all_delivered);
}

TEST(GossipFaults, JitterDelaysButStillDelivers) {
  GossipConfig cfg = fast_config(3);
  cfg.faults.seed = 9;
  cfg.faults.latency_jitter_max = 120;
  const auto jittered = run_pair_scenario(cfg);
  const auto clean = run_pair_scenario(fast_config(3));
  EXPECT_TRUE(jittered.all_delivered);
  // Every message arrives no earlier than its unjittered counterpart.
  EXPECT_GE(jittered.mean_delay, clean.mean_delay);
}

TEST(GossipFaults, ChurnFaultsReduceRendezvous) {
  GossipConfig cfg = fast_config(5);
  cfg.faults.seed = 13;
  cfg.faults.session_no_show = 0.6;
  const auto flaky = run_pair_scenario(cfg);
  const auto clean = run_pair_scenario(fast_config(5));
  // Skipped sessions mean fewer anti-entropy rounds ever fire.
  EXPECT_LT(flaky.sync_rounds, clean.sync_rounds);
}

TEST(GossipFaults, ValidatesRetransmitConfig) {
  std::vector<DaySchedule> nodes{window(8, 10)};
  util::Rng rng(9);
  GossipConfig cfg = fast_config(1);
  cfg.max_retransmits = 3;
  cfg.retransmit_timeout = 0;
  EXPECT_THROW(simulate_gossip(nodes, {}, cfg, rng), ConfigError);
  cfg.retransmit_timeout = 60;
  cfg.retransmit_backoff_cap = 30;  // cap below the initial timeout
  EXPECT_THROW(simulate_gossip(nodes, {}, cfg, rng), ConfigError);
  cfg.faults.message_drop = 2.0;  // malformed plan rejected up front
  cfg.retransmit_backoff_cap = 960;
  EXPECT_THROW(simulate_gossip(nodes, {}, cfg, rng), ConfigError);
}

}  // namespace
}  // namespace dosn::net
