// Tests for the Chord-style DHT relay substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "net/dht.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace dosn::net {
namespace {

DhtRing ring_of(std::size_t n, std::size_t replication = 2) {
  DhtRing ring(replication);
  for (std::uint64_t id = 1; id <= n; ++id) ring.join(id);
  return ring;
}

TEST(Dht, RingHashDeterministicAndSpread) {
  EXPECT_EQ(ring_hash("a"), ring_hash("a"));
  EXPECT_NE(ring_hash("a"), ring_hash("b"));
  // Rough uniformity: bucket 1000 keys into 8 ranges.
  std::vector<int> buckets(8, 0);
  for (int i = 0; i < 1000; ++i)
    ++buckets[ring_hash("key" + std::to_string(i)) >> 61];
  for (int c : buckets) EXPECT_GT(c, 60);
}

TEST(Dht, JoinLeaveMembership) {
  DhtRing ring(1);
  EXPECT_EQ(ring.size(), 0u);
  ring.join(7);
  EXPECT_TRUE(ring.contains_node(7));
  EXPECT_EQ(ring.size(), 1u);
  ring.leave(7);
  EXPECT_FALSE(ring.contains_node(7));
  ring.leave(7);  // idempotent
  EXPECT_THROW(ring.put("k", "v"), ConfigError);
}

TEST(Dht, RejectsDuplicateJoin) {
  DhtRing ring(1);
  ring.join(3);
  EXPECT_THROW(ring.join(3), ConfigError);
}

TEST(Dht, PutGetRoundTrip) {
  auto ring = ring_of(10);
  ring.put("profile:1", "hello");
  ring.put("profile:2", "world");
  EXPECT_EQ(ring.get("profile:1"), "hello");
  EXPECT_EQ(ring.get("profile:2"), "world");
  EXPECT_EQ(ring.get("missing"), std::nullopt);
}

TEST(Dht, OverwriteReplacesValue) {
  auto ring = ring_of(5);
  ring.put("k", "v1");
  ring.put("k", "v2");
  EXPECT_EQ(ring.get("k"), "v2");
}

TEST(Dht, ReplicationStoresOnDistinctNodes) {
  auto ring = ring_of(10, 3);
  const auto owners = ring.responsible_nodes("some-key");
  ASSERT_EQ(owners.size(), 3u);
  const std::set<std::uint64_t> unique(owners.begin(), owners.end());
  EXPECT_EQ(unique.size(), 3u);
  ring.put("some-key", "v");
  EXPECT_EQ(ring.stored_entries(), 3u);
}

TEST(Dht, SurvivesSingleReplicaFailure) {
  auto ring = ring_of(10, 2);
  ring.put("k", "v");
  const auto owners = ring.responsible_nodes("k");
  EXPECT_EQ(ring.get("k", owners[0]), "v");  // owner down: replica serves
  EXPECT_EQ(ring.get("k", owners[1]), "v");
}

TEST(Dht, SingleReplicaLosesDataOnFailure) {
  auto ring = ring_of(10, 1);
  ring.put("k", "v");
  const auto owners = ring.responsible_nodes("k");
  EXPECT_EQ(ring.get("k", owners[0]), std::nullopt);
}

TEST(Dht, KeysMoveOnJoin) {
  DhtRing ring(1);
  for (std::uint64_t id = 1; id <= 4; ++id) ring.join(id);
  for (int i = 0; i < 60; ++i)
    ring.put("key" + std::to_string(i), "v" + std::to_string(i));
  for (std::uint64_t id = 100; id <= 130; ++id) ring.join(id);
  // Every key still resolves and lives on its current owner.
  util::Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    const auto key = "key" + std::to_string(i);
    EXPECT_EQ(ring.get(key), "v" + std::to_string(i));
    EXPECT_EQ(ring.lookup(key, rng).owner, ring.responsible_nodes(key)[0]);
  }
}

TEST(Dht, KeysSurviveLeave) {
  auto ring = ring_of(12, 2);
  for (int i = 0; i < 40; ++i)
    ring.put("key" + std::to_string(i), "v" + std::to_string(i));
  // Remove a third of the nodes one by one.
  for (std::uint64_t id = 1; id <= 4; ++id) ring.leave(id);
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(ring.get("key" + std::to_string(i)), "v" + std::to_string(i));
}

TEST(Dht, LookupFindsTrueOwner) {
  auto ring = ring_of(64);
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto key = "k" + std::to_string(i);
    const auto result = ring.lookup(key, rng);
    EXPECT_EQ(result.owner, ring.responsible_nodes(key)[0]);
  }
}

TEST(Dht, LookupHopsLogarithmic) {
  util::Rng rng(3);
  // Mean hops should grow ~log2(n)/2; verify it stays well below n.
  for (const std::size_t n : {16u, 256u}) {
    auto ring = ring_of(n);
    util::RunningStats hops;
    for (int i = 0; i < 300; ++i)
      hops.add(static_cast<double>(
          ring.lookup("k" + std::to_string(i), rng).hops));
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_LE(hops.mean(), log2n + 2.0) << "n=" << n;
    EXPECT_GE(hops.mean(), 0.5) << "n=" << n;
  }
}

TEST(Dht, SingleNodeOwnsEverything) {
  DhtRing ring(3);
  ring.join(42);
  util::Rng rng(4);
  const auto r = ring.lookup("anything", rng);
  EXPECT_EQ(r.owner, 42u);
  EXPECT_EQ(r.hops, 0u);
  ring.put("k", "v");
  EXPECT_EQ(ring.get("k"), "v");
  EXPECT_EQ(ring.stored_entries(), 1u);  // replication clamped to ring size
}

TEST(Dht, StorageRoughlyBalanced) {
  auto ring = ring_of(32, 1);
  for (int i = 0; i < 3200; ++i) ring.put("key" + std::to_string(i), "v");
  // Consistent hashing without virtual nodes is skewed but no node should
  // hold the majority.
  std::size_t max_at = 0;
  for (std::uint64_t id = 1; id <= 32; ++id)
    max_at = std::max(max_at, ring.entries_at(id));
  EXPECT_LT(max_at, 3200u / 2);
  EXPECT_EQ(ring.stored_entries(), 3200u);
}

TEST(DhtFailures, CrashMarksDeadWithoutStructuralHealing) {
  auto ring = ring_of(10);
  ring.put("k", "v");
  EXPECT_TRUE(ring.crash(3));
  EXPECT_FALSE(ring.crash(3));   // already dead
  EXPECT_FALSE(ring.crash(99));  // absent
  EXPECT_EQ(ring.size(), 10u);   // still in the routing structure
  EXPECT_EQ(ring.alive_count(), 9u);
  EXPECT_FALSE(ring.node_alive(3));
  EXPECT_EQ(ring.entries_at(3), 0u);  // a crash loses the node's replicas
}

TEST(DhtFailures, LookupRoutesAroundCrashedNodes) {
  // Crash a third of a 30-node ring: every lookup must still find the
  // correct owner (an alive node), paying failed probes on the way.
  auto ring = ring_of(30);
  for (std::uint64_t id = 1; id <= 30; id += 3) ring.crash(id);
  ASSERT_EQ(ring.alive_count(), 20u);

  util::Rng rng(17);
  std::size_t probes = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    const auto r = ring.lookup(key, rng);
    ASSERT_TRUE(r.ok) << key;
    EXPECT_TRUE(ring.node_alive(r.owner)) << key;
    // The owner a lookup routes to is the first *alive* successor of the
    // key — the head of responsible_nodes.
    EXPECT_EQ(r.owner, ring.responsible_nodes(key).front()) << key;
    probes += r.failed_probes;
  }
  EXPECT_GT(probes, 0u);  // dead entries were actually probed
}

TEST(DhtFailures, LookupWithoutCrashesPaysNoFailedProbes) {
  auto ring = ring_of(16);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto r = ring.lookup("key" + std::to_string(i), rng);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.failed_probes, 0u);
  }
}

TEST(DhtFailures, SuccessorListExhaustionFailsLookup) {
  // Kill every node but one: some node's entire successor list (length 4)
  // is dead, so lookups starting there must fail rather than loop.
  auto ring = ring_of(8);
  for (std::uint64_t id = 2; id <= 8; ++id) ring.crash(id);
  ASSERT_EQ(ring.alive_count(), 1u);
  util::Rng rng(23);
  std::size_t failures = 0;
  for (int i = 0; i < 100; ++i)
    if (!ring.lookup("key" + std::to_string(i), rng).ok) ++failures;
  EXPECT_GT(failures, 0u);

  // stabilize() drops the dead entries; every lookup succeeds again and
  // lands on the survivor.
  ring.stabilize();
  EXPECT_EQ(ring.size(), 1u);
  for (int i = 0; i < 20; ++i) {
    const auto r = ring.lookup("key" + std::to_string(i), rng);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.owner, 1u);
  }
}

TEST(DhtFailures, AllDeadLookupFailsCleanly) {
  auto ring = ring_of(4);
  for (std::uint64_t id = 1; id <= 4; ++id) ring.crash(id);
  util::Rng rng(3);
  const auto r = ring.lookup("k", rng);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failed_probes, 4u);  // every bootstrap candidate probed
  EXPECT_THROW(ring.put("k", "v"), ConfigError);  // nobody can store
}

TEST(DhtFailures, PutAndGetSkipDeadNodes) {
  auto ring = ring_of(10, /*replication=*/3);
  ring.put("k", "v");
  // Crash the primary owner; the surviving replicas still serve the key,
  // and fresh puts go to alive nodes only.
  const auto owners = ring.responsible_nodes("k");
  ASSERT_EQ(owners.size(), 3u);
  ring.crash(owners[0]);
  EXPECT_EQ(ring.get("k"), "v");
  ring.put("k2", "v2");
  for (const auto id : ring.responsible_nodes("k2"))
    EXPECT_TRUE(ring.node_alive(id));
}

TEST(DhtFailures, StabilizeReReplicatesAfterChurn) {
  auto ring = ring_of(12, /*replication=*/3);
  for (int i = 0; i < 40; ++i)
    ring.put("key" + std::to_string(i), "v" + std::to_string(i));
  ASSERT_EQ(ring.stored_entries(), 120u);

  // Crash two nodes: their replicas are gone until maintenance runs.
  ring.crash(4);
  ring.crash(9);
  EXPECT_LT(ring.stored_entries(), 120u);

  ring.stabilize();
  EXPECT_EQ(ring.size(), 10u);
  // Every surviving key is back at full replication on alive nodes.
  EXPECT_EQ(ring.stored_entries(), 120u);
  for (int i = 0; i < 40; ++i) {
    const auto key = "key" + std::to_string(i);
    EXPECT_EQ(ring.get(key), "v" + std::to_string(i));
    EXPECT_EQ(ring.responsible_nodes(key).size(), 3u);
  }
}

TEST(DhtFailures, KeyLostWhenEveryReplicaCrashes) {
  auto ring = ring_of(6, /*replication=*/2);
  ring.put("k", "v");
  for (const auto id : ring.responsible_nodes("k")) ring.crash(id);
  EXPECT_EQ(ring.get("k"), std::nullopt);
  ring.stabilize();  // gone for good — and stabilize must not resurrect it
  EXPECT_EQ(ring.get("k"), std::nullopt);
}

TEST(DhtFailures, CrashKeepsLookupDeterministic) {
  auto ring_a = ring_of(20);
  auto ring_b = ring_of(20);
  for (const std::uint64_t id : {3u, 7u, 15u}) {
    ring_a.crash(id);
    ring_b.crash(id);
  }
  util::Rng rng_a(9), rng_b(9);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    const auto a = ring_a.lookup(key, rng_a);
    const auto b = ring_b.lookup(key, rng_b);
    EXPECT_EQ(a.owner, b.owner);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.failed_probes, b.failed_probes);
    EXPECT_EQ(a.ok, b.ok);
  }
}

}  // namespace
}  // namespace dosn::net
