// Tests for the request-level serving layer: histogram quantile contract
// against a sorted-vector oracle, workload determinism, serving semantics
// against hand-computed waits, bit-identity across thread counts and
// observability settings, and exact SLO-miss monotonicity under nested
// fault intensities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "obs/obs.hpp"
#include "serve/serving.hpp"
#include "synth/scale.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace dosn::serve {
namespace {

using interval::DaySchedule;
using interval::Interval;
using interval::IntervalSet;
using interval::kDaySeconds;

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(IntervalSet::single(start_h * kH, end_h * kH));
}

/// Absolute (non-periodic) online set of a daily schedule over `days`.
IntervalSet absolute(const DaySchedule& s, int days) {
  IntervalSet out;
  for (int d = 0; d < days; ++d)
    for (const auto& iv : s.set().pieces())
      out.add(d * kDaySeconds + iv.start, d * kDaySeconds + iv.end);
  return out;
}

// ------------------------------------------------------ LatencyHistogram

TEST(LatencyHistogramTest, DefaultBoundsAreStrictlyIncreasing) {
  const auto& b = LatencyHistogram::default_bounds();
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b.front(), 0);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_GE(b.back(), 14 * kDaySeconds);
}

TEST(LatencyHistogramTest, QuantileMatchesSortedVectorOracle) {
  util::Rng rng(0xfeedULL);
  LatencyHistogram h;
  std::vector<Seconds> values;
  for (int i = 0; i < 5000; ++i) {
    // Mixed magnitudes: 0 s .. ~2M s, heavy at the low end.
    const auto magnitude = rng.below(22);
    const auto v = static_cast<Seconds>(rng.below(1ULL << magnitude));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(h.count(), values.size());
  EXPECT_EQ(h.max(), values.back());

  const auto bounds = h.bounds();
  for (const double q :
       {0.0, 0.001, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const auto rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(values.size()))));
    const Seconds exact = values[rank - 1];
    // The documented contract: smallest bound >= the exact order
    // statistic, or the exact maximum from the overflow bucket.
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), exact);
    const Seconds expected = it == bounds.end() ? values.back() : *it;
    EXPECT_EQ(h.quantile(q), expected) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, MergeEqualsRecordingEverythingInOne) {
  util::Rng rng(7);
  LatencyHistogram all, a, b, c;
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<Seconds>(rng.below(100'000));
    all.record(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a, all);
  EXPECT_EQ(a.sum(), all.sum());
}

TEST(LatencyHistogramTest, EmptyAndContracts) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.99), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_THROW(h.record(-1), util::ContractError);
  EXPECT_THROW(h.quantile(1.5), util::ContractError);
  // Bounds are caller-supplied configuration, not an internal invariant.
  EXPECT_THROW(LatencyHistogram(std::vector<Seconds>{}), ConfigError);
  EXPECT_THROW(LatencyHistogram(std::vector<Seconds>{3, 3}), ConfigError);
}

// ------------------------------------------------------------- workload

TEST(WorkloadTest, StreamIsAPureFunctionOfSeedAndUser) {
  WorkloadConfig config;
  const auto a = user_requests(config, 42, 7, 20);
  const auto b = user_requests(config, 42, 7, 20);
  EXPECT_EQ(a, b);
  // Different user or seed: a different stream.
  EXPECT_NE(a, user_requests(config, 42, 8, 20));
  EXPECT_NE(a, user_requests(config, 43, 7, 20));
}

TEST(WorkloadTest, RequestsSortedInHorizonWithValidTargets) {
  WorkloadConfig config;
  config.requests_per_user_per_day = 8.0;
  const std::size_t degree = 5;
  const auto requests = user_requests(config, 1, 3, degree);
  const Seconds horizon = config.horizon_days * kDaySeconds;
  // ~112 expected; a generous deterministic band.
  EXPECT_GT(requests.size(), 40u);
  EXPECT_LT(requests.size(), 250u);
  Seconds prev = 0;
  bool saw[3] = {false, false, false};
  for (const auto& r : requests) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
    EXPECT_LT(r.time, horizon);
    EXPECT_LT(r.target_index, degree);
    saw[static_cast<int>(r.kind)] = true;
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
}

TEST(WorkloadTest, ValidateRejectsBadKnobs) {
  WorkloadConfig config;
  config.requests_per_user_per_day = 0.0;
  EXPECT_THROW(user_requests(config, 1, 1, 1), ConfigError);
  config = {};
  config.read_fraction = 0.8;
  config.feed_fraction = 0.3;
  EXPECT_THROW(validate(config), ConfigError);
  config = {};
  config.horizon_days = 0;
  EXPECT_THROW(validate(config), ConfigError);
}

// ------------------------------------------------------ serving semantics

trace::Dataset pair_dataset() {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 2);
  b.add_edge(0, 1);
  trace::Dataset d;
  d.name = "pair";
  d.graph = std::move(b).build();
  d.trace = trace::ActivityTrace(2, {});
  return d;
}

/// Hand-computed report for the two-user, zero-replica, zero-fault case.
struct PairOracle {
  std::uint64_t requests = 0;
  std::uint64_t unserved = 0;
  std::uint64_t slo_misses = 0;
  Seconds latency_sum = 0;
};

PairOracle pair_conrep_oracle(const ServingConfig& config, std::uint64_t seed,
                              std::span<const DaySchedule> schedules) {
  PairOracle o;
  for (graph::UserId u : {0u, 1u}) {
    const auto friend_online =
        absolute(schedules[u == 0 ? 1 : 0], config.workload.horizon_days);
    for (const auto& r : user_requests(config.workload, seed, u, 1)) {
      ++o.requests;
      std::optional<Seconds> latency;
      if (r.kind == RequestKind::kPostWrite) {
        latency = 0;  // zero replicas: local durability
      } else {
        // Read and (single-contact) feed both wait for the one friend.
        if (const auto next = friend_online.next_at_or_after(r.time))
          latency = *next - r.time;
      }
      if (!latency) {
        ++o.unserved;
        ++o.slo_misses;
      } else {
        o.latency_sum += *latency;
        if (*latency > config.slo) ++o.slo_misses;
      }
    }
  }
  return o;
}

TEST(ServingTest, ConRepPairMatchesHandComputedWaits) {
  const auto d = pair_dataset();
  const std::vector<DaySchedule> schedules{window(8, 10), window(12, 16)};
  const std::vector<graph::UserId> cohort{0, 1};
  ServingConfig config;
  config.replicas = 0;
  config.workload.horizon_days = 3;

  std::uint64_t total_unserved = 0;
  for (const std::uint64_t seed : {99u, 5u, 17u, 23u, 42u}) {
    const auto report = run_serving_study(d, schedules, cohort, seed, config);
    const auto oracle = pair_conrep_oracle(config, seed, schedules);

    EXPECT_EQ(report.requests, oracle.requests) << "seed " << seed;
    EXPECT_GT(report.requests, 0u);
    EXPECT_EQ(report.unserved, oracle.unserved) << "seed " << seed;
    EXPECT_EQ(report.slo_misses, oracle.slo_misses) << "seed " << seed;
    EXPECT_EQ(report.latency.sum(), oracle.latency_sum) << "seed " << seed;
    EXPECT_EQ(report.served, report.requests - report.unserved);
    EXPECT_EQ(report.served_users, 2u);
    EXPECT_DOUBLE_EQ(report.slo_miss_fraction(),
                     static_cast<double>(oracle.slo_misses) /
                         static_cast<double>(oracle.requests));
    total_unserved += report.unserved;
  }
  // Some read of user 0's profile after its final session must have been
  // unserveable across these seeds.
  EXPECT_GT(total_unserved, 0u);
}

TEST(ServingTest, CryptoTaxShiftsEveryServedRequest) {
  const auto d = pair_dataset();
  const std::vector<DaySchedule> schedules{window(8, 10), window(12, 16)};
  const std::vector<graph::UserId> cohort{0, 1};
  ServingConfig config;
  config.replicas = 0;
  config.workload.horizon_days = 3;

  const auto base = run_serving_study(d, schedules, cohort, 5, config);
  config.crypto_op_cost = 7;
  const auto taxed = run_serving_study(d, schedules, cohort, 5, config);

  // Degree 1, zero replicas: read +7, feed +7, write +7 — every served
  // request shifts by exactly one op.
  EXPECT_EQ(taxed.requests, base.requests);
  EXPECT_EQ(taxed.unserved, base.unserved);
  EXPECT_EQ(taxed.latency.sum(),
            base.latency.sum() + 7 * static_cast<Seconds>(base.served));
  EXPECT_GE(taxed.slo_misses, base.slo_misses);
  EXPECT_NE(taxed.request_log_checksum, base.request_log_checksum);
}

TEST(ServingTest, UnconRepReadsHitTheRelayInstantly) {
  const auto d = pair_dataset();
  const std::vector<DaySchedule> schedules{window(8, 10), window(12, 16)};
  const std::vector<graph::UserId> cohort{0, 1};
  ServingConfig config;
  config.replicas = 0;
  config.connectivity = placement::Connectivity::kUnconRep;
  config.workload.horizon_days = 3;
  const std::uint64_t seed = 17;

  const auto report = run_serving_study(d, schedules, cohort, seed, config);

  // No relay outage: every read/feed is served from the store at once.
  EXPECT_EQ(report.read.latency.sum(), 0);
  EXPECT_EQ(report.feed.latency.sum(), 0);
  EXPECT_EQ(report.read.unserved + report.feed.unserved, 0u);

  // Writes wait for the owner's next session (upload to the store).
  Seconds expected_write_sum = 0;
  std::uint64_t expected_write_unserved = 0;
  for (graph::UserId u : {0u, 1u}) {
    const auto own = absolute(schedules[u], config.workload.horizon_days);
    for (const auto& r : user_requests(config.workload, seed, u, 1)) {
      if (r.kind != RequestKind::kPostWrite) continue;
      if (const auto next = own.next_at_or_after(r.time))
        expected_write_sum += *next - r.time;
      else
        ++expected_write_unserved;
    }
  }
  EXPECT_EQ(report.write.latency.sum(), expected_write_sum);
  EXPECT_EQ(report.write.unserved, expected_write_unserved);
}

TEST(ServingTest, RelayOutageDelaysUnconRepReads) {
  const auto d = pair_dataset();
  const std::vector<DaySchedule> schedules{window(8, 10), window(12, 16)};
  const std::vector<graph::UserId> cohort{0, 1};
  ServingConfig config;
  config.replicas = 0;
  config.connectivity = placement::Connectivity::kUnconRep;
  config.workload.horizon_days = 3;
  config.faults.relay_outages.push_back({0, 2 * kDaySeconds});

  const auto report = run_serving_study(d, schedules, cohort, 23, config);
  // During the outage a read still falls back to the friend's group wait;
  // some reads must now realize a positive latency.
  EXPECT_GT(report.read.latency.sum() + report.feed.latency.sum(), 0);
}

TEST(ServingTest, ValidateRejectsBadConfig) {
  const auto d = pair_dataset();
  const std::vector<DaySchedule> schedules{window(8, 10), window(12, 16)};
  const std::vector<graph::UserId> cohort{0};
  ServingConfig config;
  config.crypto_op_cost = -1;
  EXPECT_THROW(run_serving_study(d, schedules, cohort, 1, config), ConfigError);
  config = {};
  config.slo = -5;
  EXPECT_THROW(run_serving_study(d, schedules, cohort, 1, config), ConfigError);
  config = {};
  const std::vector<DaySchedule> wrong(1);
  EXPECT_THROW(run_serving_study(d, wrong, cohort, 1, config), ConfigError);
}

// --------------------------------------------- determinism at small scale

synth::ScaleStudyInput small_input() {
  synth::ScaleOptions options;
  options.users = 400;
  synth::ScaleInputConfig config;
  config.preset = synth::scale_preset(options);
  config.chunk_users = 128;
  return synth::build_scale_study_input(config, 20120618);
}

ServingConfig small_config() {
  ServingConfig config;
  config.replicas = 3;
  config.served_users = 24;
  config.workload.horizon_days = 7;
  config.faults.seed = 5;
  config.faults.session_no_show = 0.3;
  config.faults.session_truncate = 0.3;
  config.faults.truncate_max_fraction = 0.8;
  config.faults.relay_outages.push_back({kDaySeconds, 3 * kDaySeconds});
  return config;
}

TEST(ServingTest, BitIdenticalAcrossThreadCountsAndObservability) {
  const auto input = small_input();
  ASSERT_GE(input.cohort.size(), 24u);
  const auto config = small_config();

  const auto serial = run_serving_study(input.dataset, input.schedules,
                                        input.cohort, 11, config);
  EXPECT_GT(serial.requests, 0u);
  EXPECT_GT(serial.request_log_checksum, 0u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    const auto parallel = run_serving_study(input.dataset, input.schedules,
                                            input.cohort, 11, config, &pool);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }

  const bool was_enabled = obs::enabled();
  obs::set_enabled(false);
  const auto dark = run_serving_study(input.dataset, input.schedules,
                                      input.cohort, 11, config);
  obs::set_enabled(was_enabled);
  EXPECT_EQ(dark, serial);
}

TEST(ServingTest, SloMissesMonotoneUnderScaledFaults) {
  const auto input = small_input();
  auto config = small_config();
  const net::FaultPlan base = config.faults;

  std::uint64_t prev_misses = 0;
  std::uint64_t prev_unserved = 0;
  bool first = true;
  std::uint64_t requests = 0;
  for (const double f : {0.0, 0.3, 0.7, 1.0}) {
    config.faults = net::scaled(base, f);
    const auto report = run_serving_study(input.dataset, input.schedules,
                                          input.cohort, 11, config);
    if (first) {
      requests = report.requests;
      first = false;
    }
    // The workload is independent of the fault plan...
    EXPECT_EQ(report.requests, requests);
    // ...and nested realizations degrade exactly monotonically.
    EXPECT_GE(report.slo_misses, prev_misses) << "intensity " << f;
    EXPECT_GE(report.unserved, prev_unserved) << "intensity " << f;
    prev_misses = report.slo_misses;
    prev_unserved = report.unserved;
  }
  EXPECT_GT(prev_misses, 0u);
}

// ------------------------------------------------------------ resilience

ResiliencePolicy full_resilience() {
  ResiliencePolicy p;
  p.hedged_reads = true;
  p.stale_failover = true;
  p.degrade_feeds = true;
  return p;
}

/// The per-request outcomes two reports share when the resilience policy
/// never fires: the request log plus every latency/SLO aggregate (the
/// effort counters legitimately differ — hedges are launched and retries
/// scheduled even when they never win).
void expect_same_outcomes(const ServingReport& a, const ServingReport& b) {
  EXPECT_EQ(a.request_log_checksum, b.request_log_checksum);
  EXPECT_EQ(a.read, b.read);
  EXPECT_EQ(a.feed, b.feed);
  EXPECT_EQ(a.write, b.write);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.unserved, b.unserved);
  EXPECT_EQ(a.slo_misses, b.slo_misses);
}

TEST(ResilienceTest, ZeroPlanBitIdentityAcrossThreadCounts) {
  const auto input = small_input();
  // Zero fault plan under ConRep, and a relay outage under UnconRep: in
  // both regimes every resilience mechanism must be a no-op on the
  // request log (each alternative arrival is provably no earlier than
  // the primary when sessions are unfaulted).
  for (const bool unconrep : {false, true}) {
    ServingConfig config;
    config.replicas = 3;
    config.served_users = 24;
    config.workload.horizon_days = 7;
    if (unconrep) {
      config.connectivity = placement::Connectivity::kUnconRep;
      config.faults.relay_outages.push_back({kDaySeconds, 3 * kDaySeconds});
    }
    const auto naive = run_serving_study(input.dataset, input.schedules,
                                         input.cohort, 11, config);

    config.resilience = full_resilience();
    const auto resilient = run_serving_study(input.dataset, input.schedules,
                                             input.cohort, 11, config);
    expect_same_outcomes(resilient, naive);
    EXPECT_EQ(resilient.resilience.hedge_wins, 0u);
    EXPECT_EQ(resilient.resilience.stale_served, 0u);
    EXPECT_EQ(resilient.resilience.degraded_feeds, 0u);
    EXPECT_DOUBLE_EQ(resilient.resilience.feed_coverage_mean(), 1.0);

    for (const std::size_t threads : {2u, 4u, 8u}) {
      util::ThreadPool pool(threads);
      const auto parallel = run_serving_study(
          input.dataset, input.schedules, input.cohort, 11, config, &pool);
      EXPECT_EQ(parallel, resilient) << threads << " threads";
    }
  }
}

/// The composite scenario the metamorphic tests sweep: all three macro
/// event classes layered on the small_config churn base.
ServingConfig composite_config() {
  auto config = small_config();
  config.faults.scenario = net::parse_scenario(
      "regional_outage regions=2 region=0 start=86400 end=259200 "
      "participation=1\n"
      "flash_crowd start=172800 end=345600 load_multiplier=3\n"
      "churn_burst start=259200 end=432000 no_show=0.8 participation=0.9\n");
  return config;
}

TEST(ResilienceTest, SloMissesMonotoneInCompositeIntensity) {
  const auto input = small_input();
  const auto base = composite_config();

  for (const std::uint64_t seed : {5u, 11u, 23u}) {
    for (const bool resilient : {false, true}) {
      auto config = base;
      if (resilient) config.resilience = full_resilience();
      std::uint64_t prev_misses = 0, prev_requests = 0;
      bool first = true;
      for (const double f : {0.0, 0.4, 0.7, 1.0}) {
        config.faults = net::scaled(base.faults, f);
        if (resilient) config.resilience = full_resilience();
        const auto report = run_serving_study(input.dataset, input.schedules,
                                              input.cohort, seed, config);
        if (!first) {
          // Flash extras nest (prefix subsets), so the request count is
          // monotone; nested realizations make the misses monotone.
          EXPECT_GE(report.requests, prev_requests)
              << "seed " << seed << " f " << f;
          EXPECT_GE(report.slo_misses, prev_misses)
              << "seed " << seed << " f " << f << " resilient " << resilient;
        }
        prev_misses = report.slo_misses;
        prev_requests = report.requests;
        first = false;
      }
      EXPECT_GT(prev_misses, 0u);
    }
  }
}

TEST(ResilienceTest, ResilientNeverWorseThanNaiveAtAnyIntensity) {
  const auto input = small_input();
  const auto base = composite_config();

  for (const std::uint64_t seed : {5u, 11u, 23u}) {
    bool helped = false;
    for (const double f : {0.0, 0.5, 1.0}) {
      auto config = base;
      config.faults = net::scaled(base.faults, f);
      const auto naive = run_serving_study(input.dataset, input.schedules,
                                           input.cohort, seed, config);
      config.resilience = full_resilience();
      const auto resilient = run_serving_study(input.dataset, input.schedules,
                                               input.cohort, seed, config);
      // Same workload (the flash extras depend on the plan, not the
      // policy)...
      EXPECT_EQ(resilient.requests, naive.requests) << "seed " << seed;
      // ...and every mechanism only ever races *earlier* alternatives.
      EXPECT_LE(resilient.slo_misses, naive.slo_misses)
          << "seed " << seed << " f " << f;
      EXPECT_LE(resilient.unserved, naive.unserved)
          << "seed " << seed << " f " << f;
      if (f == 0.0) expect_same_outcomes(resilient, naive);
      if (resilient.slo_misses < naive.slo_misses) helped = true;
    }
    EXPECT_TRUE(helped) << "seed " << seed;
  }
}

TEST(ResilienceTest, DegradedFeedsReportPartialCoverage) {
  const auto input = small_input();
  auto config = composite_config();
  config.faults = net::scaled(config.faults, 1.0);
  config.resilience = full_resilience();
  const auto report = run_serving_study(input.dataset, input.schedules,
                                        input.cohort, 11, config);
  // Under the full composite scenario the policy actually fires.
  EXPECT_GT(report.resilience.hedges, 0u);
  EXPECT_GT(report.resilience.retries, 0u);
  EXPECT_GT(report.resilience.feed_coverage_count, 0u);
  EXPECT_LE(report.resilience.feed_coverage_mean(), 1.0);
  EXPECT_GT(report.resilience.feed_coverage_mean(), 0.0);
}

TEST(ServingTest, ServedUsersTruncatesTheCohort) {
  const auto input = small_input();
  ServingConfig config;
  config.replicas = 2;
  config.served_users = 5;
  config.workload.horizon_days = 3;
  const auto report = run_serving_study(input.dataset, input.schedules,
                                        input.cohort, 3, config);
  EXPECT_EQ(report.served_users, 5u);
  EXPECT_EQ(report.horizon, 3 * kDaySeconds);
  EXPECT_GT(report.goodput_rps(), 0.0);
}

}  // namespace
}  // namespace dosn::serve
