# Negative-compile harness for the thread-safety annotations
# (src/util/thread_annotations.hpp). Run in CMake script mode:
#
#   cmake -DCXX=<clang++> -DPROBE_DIR=<tests/thread_annotations_probes>
#         -DINCLUDE_DIR=<src> -P test_thread_annotations.cmake
#
# Registered from tests/CMakeLists.txt only when the configured compiler
# is Clang (GCC parses the probes but ignores the annotations, so the
# negative probes would "compile fine" and prove nothing).
#
# Three probes, three assertions:
#   probe_ok.cpp               — MUST compile (flags/macros sanity check)
#   probe_unguarded_access.cpp — MUST fail: guarded member touched lock-free
#   probe_missing_requires.cpp — MUST fail: REQUIRES callee called lock-free
#
# Failures must carry a thread-safety diagnostic ("requires holding
# mutex"): a probe that fails for any other reason (syntax error, missing
# header) is a broken probe, not a passing test.

cmake_minimum_required(VERSION 3.20)

foreach(var CXX PROBE_DIR INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "test_thread_annotations.cmake: -D${var}=... is required")
  endif()
endforeach()

set(probe_flags -std=c++20 -fsyntax-only -Wthread-safety -Werror
                "-I${INCLUDE_DIR}")

# compile(<source> <expect>) where <expect> is OK or THREAD_SAFETY_ERROR.
function(compile source expect)
  execute_process(
    COMMAND "${CXX}" ${probe_flags} "${PROBE_DIR}/${source}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(expect STREQUAL "OK")
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "${source}: expected clean compile, got exit ${rc}:\n${err}")
    endif()
    message(STATUS "${source}: compiles cleanly (as expected)")
  else()
    if(rc EQUAL 0)
      message(FATAL_ERROR
        "${source}: compiled cleanly, but -Wthread-safety -Werror was "
        "expected to reject it — the annotations are not being enforced")
    endif()
    if(NOT err MATCHES "requires holding mutex")
      message(FATAL_ERROR
        "${source}: failed to compile, but not with a thread-safety "
        "diagnostic — the probe itself is broken:\n${err}")
    endif()
    message(STATUS "${source}: rejected with a thread-safety error (as expected)")
  endif()
endfunction()

compile(probe_ok.cpp OK)
compile(probe_unguarded_access.cpp THREAD_SAFETY_ERROR)
compile(probe_missing_requires.cpp THREAD_SAFETY_ERROR)

message(STATUS "thread-annotation negative-compile probes: all assertions held")
