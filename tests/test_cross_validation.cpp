// Cross-validation between the three layers of the delay story on the
// same inputs: the analytic worst case, the instant-exchange simulator,
// and the message-level gossip protocol. Also fuzzes DHT churn.
#include <gtest/gtest.h>

#include <set>

#include "graph/degree_stats.hpp"
#include "metrics/availability.hpp"
#include "metrics/delay.hpp"
#include "net/dht.hpp"
#include "net/gossip.hpp"
#include "net/replica_sim.hpp"
#include "onlinetime/sporadic.hpp"
#include "placement/policy.hpp"
#include "synth/presets.hpp"
#include "util/rng.hpp"

namespace dosn {
namespace {

using interval::DaySchedule;
using interval::IntervalSet;
using interval::kDaySeconds;
using interval::Seconds;

DaySchedule random_schedule(util::Rng& rng, int pieces) {
  IntervalSet s;
  for (int i = 0; i < pieces; ++i) {
    const Seconds start = rng.range(0, kDaySeconds - 4 * 3600);
    const Seconds len = rng.range(1800, 3 * 3600);
    s.add(start, start + len);
  }
  return DaySchedule(std::move(s));
}

class GossipVsInstant : public ::testing::TestWithParam<std::uint64_t> {};

// For identical schedules and updates, the gossip protocol can never beat
// the instant-exchange model: every gossip delivery implies an instant-
// model delivery, no earlier than it.
TEST_P(GossipVsInstant, GossipNeverBeatsInstantExchange) {
  util::Rng rng(GetParam());
  const std::size_t n = 3 + rng.below(3);
  std::vector<DaySchedule> nodes;
  for (std::size_t i = 0; i < n; ++i)
    nodes.push_back(random_schedule(rng, 1 + static_cast<int>(rng.below(3))));

  const int horizon = 20;
  const auto specs = net::updates_within_schedules(nodes, 40, horizon - 8,
                                                   rng);

  net::ReplicaSimConfig instant_cfg;
  instant_cfg.horizon_days = horizon;
  const auto instant = net::simulate_replica_group(nodes, specs, instant_cfg);

  std::vector<net::GossipWrite> writes;
  for (const auto& s : specs)
    writes.push_back({s.time, s.origin, /*author=*/1});
  net::GossipConfig gossip_cfg;
  gossip_cfg.sync_period = 120;
  gossip_cfg.link_latency = 1;
  gossip_cfg.horizon_days = horizon;
  util::Rng grng = rng.fork();
  const auto gossip = net::simulate_gossip(nodes, writes, gossip_cfg, grng);

  for (std::size_t w = 0; w < specs.size(); ++w) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& g = gossip.arrival[w][i];
      const auto& ideal = instant.deliveries[w].arrival[i];
      if (g.has_value()) {
        // Anything gossip delivered, the instant model delivered too —
        // and no later.
        ASSERT_TRUE(ideal.has_value());
        EXPECT_LE(*ideal, *g);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GossipVsInstant,
                         ::testing::Values(3, 14, 159, 2653));

class DhtChurn : public ::testing::TestWithParam<std::uint64_t> {};

// Random join/leave/put/get sequences: the ring must always serve every
// key that has at least one surviving responsible holder, and lookups
// must always find the true owner.
TEST_P(DhtChurn, ConsistentUnderRandomChurn) {
  util::Rng rng(GetParam());
  net::DhtRing ring(2);
  std::set<std::uint64_t> members;
  std::set<std::string> keys;
  std::uint64_t next_id = 1;

  for (int step = 0; step < 150; ++step) {
    const double action = rng.uniform();
    if (action < 0.3 || members.size() < 3) {
      ring.join(next_id);
      members.insert(next_id);
      ++next_id;
    } else if (action < 0.45 && members.size() > 3) {
      const auto victim = *std::next(
          members.begin(),
          static_cast<std::ptrdiff_t>(rng.below(members.size())));
      ring.leave(victim);  // graceful leave: keys hand off
      members.erase(victim);
    } else if (action < 0.75) {
      const auto key = "k" + std::to_string(rng.below(60));
      ring.put(key, "v-" + key);
      keys.insert(key);
    } else if (!keys.empty()) {
      const auto key = *std::next(
          keys.begin(), static_cast<std::ptrdiff_t>(rng.below(keys.size())));
      // Graceful-leave model: every stored key stays retrievable.
      const auto value = ring.get(key);
      ASSERT_TRUE(value.has_value()) << key;
      EXPECT_EQ(*value, "v-" + key);
      // Lookup routes to the owner.
      EXPECT_EQ(ring.lookup(key, rng).owner, ring.responsible_nodes(key)[0]);
    }
  }
  EXPECT_EQ(ring.size(), members.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhtChurn, ::testing::Values(7, 77, 777));

// Analytic metrics vs the event-driven simulator at population scale: a
// 5000-user synthetic dataset with Sporadic schedules and real MaxAv
// placements (not hand-rolled toy groups). Tolerance bounds, explicitly:
//   * availability — the simulator executes the periodic schedules
//     verbatim, so its empirical any-online fraction must equal the
//     analytic union coverage to within 1e-9 (pure FP noise);
//   * delay — every realized propagation delay is bounded by the analytic
//     worst case exactly (tolerance 0): the analytic diameter maximizes
//     over all creation instants, the simulation samples some of them.
// The suite is registered in tests/CMakeLists.txt under an explicit ctest
// TIMEOUT so a scale regression fails rather than hangs CI.
TEST(AnalyticVsEventSim, LargeSyntheticPopulation) {
  constexpr std::uint64_t kSeed = 20120618;
  synth::ScaleOptions opts;
  opts.users = 5000;
  util::Rng rng(kSeed);
  const auto dataset = synth::generate_raw(synth::scale_preset(opts), rng);
  util::Rng sched_rng(util::mix64(kSeed, 0x5ced0000));
  const auto schedules =
      onlinetime::SporadicModel().schedules(dataset, sched_rng);

  const std::size_t degree =
      graph::most_populated_degree(dataset.graph, 5, 15);
  auto cohort = graph::users_with_degree(dataset.graph, degree);
  ASSERT_GE(cohort.size(), 25u);
  cohort.resize(25);

  const auto policy = placement::make_policy(placement::PolicyKind::kMaxAv);
  std::size_t availability_checked = 0, delay_checked = 0;
  for (const graph::UserId u : cohort) {
    placement::PlacementContext ctx;
    ctx.user = u;
    ctx.candidates = dataset.graph.contacts(u);
    ctx.schedules = schedules;
    ctx.trace = &dataset.trace;
    ctx.connectivity = placement::Connectivity::kConRep;
    ctx.max_replicas = 3;
    const auto selected = policy->select(ctx, rng);

    std::vector<DaySchedule> nodes{schedules[u]};
    std::vector<DaySchedule> replicas;
    for (const graph::UserId host : selected) {
      nodes.push_back(schedules[host]);
      replicas.push_back(schedules[host]);
    }
    bool any_online = false;
    for (const auto& s : nodes) any_online |= !s.empty();
    if (!any_online) continue;

    const double analytic_availability =
        metrics::availability(schedules[u], replicas);
    const auto analytic_delay = metrics::update_propagation_delay(
        schedules[u], replicas, placement::Connectivity::kConRep);

    const auto updates = net::updates_within_schedules(nodes, 30, 20, rng);
    if (updates.empty()) continue;
    net::ReplicaSimConfig cfg;
    cfg.horizon_days = 40;
    const auto report = net::simulate_replica_group(nodes, updates, cfg);

    EXPECT_NEAR(report.empirical_availability, analytic_availability, 1e-9)
        << "user " << u;
    ++availability_checked;
    if (analytic_delay.fully_connected) {
      EXPECT_LE(report.max_delay, analytic_delay.actual) << "user " << u;
      ++delay_checked;
    }
  }
  // The sample must actually exercise both bounds, not skip its way green.
  EXPECT_GE(availability_checked, 20u);
  EXPECT_GE(delay_checked, 10u);
}

}  // namespace
}  // namespace dosn
