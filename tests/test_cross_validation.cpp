// Cross-validation between the three layers of the delay story on the
// same inputs: the analytic worst case, the instant-exchange simulator,
// and the message-level gossip protocol. Also fuzzes DHT churn.
#include <gtest/gtest.h>

#include <set>

#include "metrics/delay.hpp"
#include "net/dht.hpp"
#include "net/gossip.hpp"
#include "net/replica_sim.hpp"
#include "util/rng.hpp"

namespace dosn {
namespace {

using interval::DaySchedule;
using interval::IntervalSet;
using interval::kDaySeconds;
using interval::Seconds;

DaySchedule random_schedule(util::Rng& rng, int pieces) {
  IntervalSet s;
  for (int i = 0; i < pieces; ++i) {
    const Seconds start = rng.range(0, kDaySeconds - 4 * 3600);
    const Seconds len = rng.range(1800, 3 * 3600);
    s.add(start, start + len);
  }
  return DaySchedule(std::move(s));
}

class GossipVsInstant : public ::testing::TestWithParam<std::uint64_t> {};

// For identical schedules and updates, the gossip protocol can never beat
// the instant-exchange model: every gossip delivery implies an instant-
// model delivery, no earlier than it.
TEST_P(GossipVsInstant, GossipNeverBeatsInstantExchange) {
  util::Rng rng(GetParam());
  const std::size_t n = 3 + rng.below(3);
  std::vector<DaySchedule> nodes;
  for (std::size_t i = 0; i < n; ++i)
    nodes.push_back(random_schedule(rng, 1 + static_cast<int>(rng.below(3))));

  const int horizon = 20;
  const auto specs = net::updates_within_schedules(nodes, 40, horizon - 8,
                                                   rng);

  net::ReplicaSimConfig instant_cfg;
  instant_cfg.horizon_days = horizon;
  const auto instant = net::simulate_replica_group(nodes, specs, instant_cfg);

  std::vector<net::GossipWrite> writes;
  for (const auto& s : specs)
    writes.push_back({s.time, s.origin, /*author=*/1});
  net::GossipConfig gossip_cfg;
  gossip_cfg.sync_period = 120;
  gossip_cfg.link_latency = 1;
  gossip_cfg.horizon_days = horizon;
  util::Rng grng = rng.fork();
  const auto gossip = net::simulate_gossip(nodes, writes, gossip_cfg, grng);

  for (std::size_t w = 0; w < specs.size(); ++w) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& g = gossip.arrival[w][i];
      const auto& ideal = instant.deliveries[w].arrival[i];
      if (g.has_value()) {
        // Anything gossip delivered, the instant model delivered too —
        // and no later.
        ASSERT_TRUE(ideal.has_value());
        EXPECT_LE(*ideal, *g);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GossipVsInstant,
                         ::testing::Values(3, 14, 159, 2653));

class DhtChurn : public ::testing::TestWithParam<std::uint64_t> {};

// Random join/leave/put/get sequences: the ring must always serve every
// key that has at least one surviving responsible holder, and lookups
// must always find the true owner.
TEST_P(DhtChurn, ConsistentUnderRandomChurn) {
  util::Rng rng(GetParam());
  net::DhtRing ring(2);
  std::set<std::uint64_t> members;
  std::set<std::string> keys;
  std::uint64_t next_id = 1;

  for (int step = 0; step < 150; ++step) {
    const double action = rng.uniform();
    if (action < 0.3 || members.size() < 3) {
      ring.join(next_id);
      members.insert(next_id);
      ++next_id;
    } else if (action < 0.45 && members.size() > 3) {
      const auto victim = *std::next(
          members.begin(),
          static_cast<std::ptrdiff_t>(rng.below(members.size())));
      ring.leave(victim);  // graceful leave: keys hand off
      members.erase(victim);
    } else if (action < 0.75) {
      const auto key = "k" + std::to_string(rng.below(60));
      ring.put(key, "v-" + key);
      keys.insert(key);
    } else if (!keys.empty()) {
      const auto key = *std::next(
          keys.begin(), static_cast<std::ptrdiff_t>(rng.below(keys.size())));
      // Graceful-leave model: every stored key stays retrievable.
      const auto value = ring.get(key);
      ASSERT_TRUE(value.has_value()) << key;
      EXPECT_EQ(*value, "v-" + key);
      // Lookup routes to the owner.
      EXPECT_EQ(ring.lookup(key, rng).owner, ring.responsible_nodes(key)[0]);
    }
  }
  EXPECT_EQ(ring.size(), members.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhtChurn, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace dosn
