// Tests for graph analytics, the triadic-closure generator option, the
// session-log loader, and the precomputed online-time model.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/analysis.hpp"
#include "graph/degree_stats.hpp"
#include "onlinetime/sessions.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/error.hpp"

namespace dosn {
namespace {

using graph::GraphKind;
using graph::SocialGraph;
using graph::SocialGraphBuilder;
using graph::UserId;
using onlinetime::load_session_schedules;

SocialGraph two_triangles_and_isolate() {
  // {0,1,2} triangle, {3,4,5} triangle, 6 isolated.
  SocialGraphBuilder b(GraphKind::kUndirected, 7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  return std::move(b).build();
}

TEST(Components, FindsAllComponents) {
  const auto g = two_triangles_and_isolate();
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[6], comp[0]);
  EXPECT_NE(comp[6], comp[3]);
  EXPECT_EQ(largest_component_size(g), 3u);
}

TEST(Components, DirectedTreatedWeakly) {
  SocialGraphBuilder b(GraphKind::kDirected, 3);
  b.add_edge(0, 1);
  b.add_edge(2, 1);  // 0 -> 1 <- 2: weakly one component
  const auto g = std::move(b).build();
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(largest_component_size(g), 3u);
}

TEST(Components, EmptyGraph) {
  SocialGraph g;
  EXPECT_TRUE(connected_components(g).empty());
  EXPECT_EQ(largest_component_size(g), 0u);
}

TEST(Clustering, TriangleIsOne) {
  const auto g = two_triangles_and_isolate();
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(sample_clustering_coefficient(g, 100, rng), 1.0);
}

TEST(Clustering, StarIsZero) {
  SocialGraphBuilder b(GraphKind::kUndirected, 5);
  for (UserId u = 1; u < 5; ++u) b.add_edge(0, u);
  const auto g = std::move(b).build();
  util::Rng rng(2);
  EXPECT_DOUBLE_EQ(sample_clustering_coefficient(g, 100, rng), 0.0);
}

TEST(Clustering, NoEligibleNodes) {
  SocialGraphBuilder b(GraphKind::kUndirected, 2);
  b.add_edge(0, 1);
  const auto g = std::move(b).build();
  util::Rng rng(3);
  EXPECT_DOUBLE_EQ(sample_clustering_coefficient(g, 100, rng), 0.0);
}

TEST(Assortativity, RegularGraphDegenerate) {
  const auto g = two_triangles_and_isolate();  // all degrees equal
  EXPECT_DOUBLE_EQ(degree_assortativity(g), 0.0);
}

TEST(Assortativity, StarIsNegative) {
  SocialGraphBuilder b(GraphKind::kUndirected, 6);
  for (UserId u = 1; u < 6; ++u) b.add_edge(0, u);
  const auto g = std::move(b).build();
  EXPECT_LT(degree_assortativity(g), -0.9);
}

TEST(TriadicClosure, RaisesClustering) {
  synth::GraphGenConfig cfg;
  cfg.users = 2000;
  cfg.avg_degree = 10.0;
  util::Rng r1(5), r2(5), cr(6);
  const auto plain =
      synth::generate_power_law_graph(cfg, GraphKind::kUndirected, r1);
  cfg.triadic_closure = 2.0;
  const auto closed =
      synth::generate_power_law_graph(cfg, GraphKind::kUndirected, r2);

  util::Rng s1(7), s2(7);
  const double c_plain = sample_clustering_coefficient(plain, 500, s1);
  const double c_closed = sample_clustering_coefficient(closed, 500, s2);
  EXPECT_GT(c_closed, c_plain * 2.0 + 0.01);
  (void)cr;
}

TEST(TriadicClosure, OnlyAddsEdgesBetweenNeighbors) {
  // Star: closure edges can only connect leaves (common neighbour 0).
  synth::GraphGenConfig cfg;
  cfg.users = 50;
  cfg.avg_degree = 3.0;
  cfg.triadic_closure = 1.0;
  util::Rng rng(8);
  const auto g =
      synth::generate_power_law_graph(cfg, GraphKind::kUndirected, rng);
  EXPECT_GT(g.num_edges(), 0u);  // smoke: generation succeeds with closure
}

class SessionFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(testing::TempDir()) / "dosn_sessions";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& body) {
    const auto path = (dir_ / "s.sessions").string();
    std::ofstream out(path);
    out << body;
    return path;
  }
  std::filesystem::path dir_;
};

TEST_F(SessionFiles, LoadsAndProjects) {
  trace::IdMap ids;
  ids.intern("alice");
  ids.intern("bob");
  const auto path = write_file(
      "# comment\n"
      "alice 28800 36000\n"       // 08:00-10:00
      "alice 115200 122400\n"     // day 1, 08:00-10:00 (same projection)
      "bob 72000 93600\n");       // 20:00-02:00 (wraps)
  const auto schedules = load_session_schedules(path, ids, 2);
  ASSERT_EQ(schedules.size(), 2u);
  EXPECT_EQ(schedules[0].online_seconds(), 2 * 3600);
  EXPECT_TRUE(schedules[0].online_at(9 * 3600));
  EXPECT_EQ(schedules[1].online_seconds(), 6 * 3600);
  EXPECT_TRUE(schedules[1].online_at(1 * 3600));  // wrapped past midnight
}

TEST_F(SessionFiles, RejectsMalformedLines) {
  trace::IdMap ids;
  ids.intern("a");
  EXPECT_THROW(
      load_session_schedules(write_file("a 100\n"), ids, 1), ParseError);
  EXPECT_THROW(
      load_session_schedules(write_file("a 200 100\n"), ids, 1), ParseError);
  EXPECT_THROW(
      load_session_schedules(write_file("stranger 1 2\n"), ids, 1),
      ParseError);
  EXPECT_THROW(load_session_schedules((dir_ / "none").string(), ids, 1),
               IoError);
}

TEST_F(SessionFiles, SaveLoadRoundTrip) {
  std::vector<interval::DaySchedule> schedules{
      interval::DaySchedule(interval::IntervalSet::single(3600, 7200)),
      interval::DaySchedule{},
      interval::DaySchedule(interval::IntervalSet(
          {{0, 600}, {80000, 86400}})),
  };
  const auto path = (dir_ / "rt.sessions").string();
  onlinetime::save_session_schedules(path, schedules);

  trace::IdMap ids;
  ids.intern("0");
  ids.intern("1");
  ids.intern("2");
  const auto loaded = onlinetime::load_session_schedules(path, ids, 3);
  EXPECT_EQ(loaded[0], schedules[0]);
  EXPECT_EQ(loaded[1], schedules[1]);
  EXPECT_EQ(loaded[2], schedules[2]);
}

TEST(PrecomputedModel, DrivesStudySweep) {
  auto preset = synth::scaled(synth::facebook_preset(), 0.02);
  util::Rng rng(21);
  const auto dataset = synth::generate_study_dataset(preset, rng);

  // Hand the study a fixed everyone-online-09-17 schedule set.
  std::vector<interval::DaySchedule> schedules(
      dataset.num_users(),
      interval::DaySchedule(interval::IntervalSet::single(9 * 3600,
                                                          17 * 3600)));
  onlinetime::PrecomputedModel model(schedules, "Office(9-17)");
  EXPECT_EQ(model.name(), "Office(9-17)");
  EXPECT_FALSE(model.randomized());

  sim::Study study(dataset, 31);
  sim::Study::Options opts;
  opts.cohort_degree = graph::most_populated_degree(dataset.graph, 4, 12);
  opts.k_max = 3;
  opts.repetitions = 1;
  const auto sweep = study.replication_sweep(
      model, placement::Connectivity::kConRep, opts);
  EXPECT_EQ(sweep.model_name, "Office(9-17)");
  // Identical schedules: availability is 8/24 at every k, for every policy.
  for (const auto& curve : sweep.policies)
    for (const auto& point : curve.points)
      EXPECT_NEAR(point.availability, 8.0 / 24.0, 1e-12);
}

TEST(PrecomputedModel, ValidatesSize) {
  auto preset = synth::scaled(synth::facebook_preset(), 0.02);
  util::Rng rng(22);
  const auto dataset = synth::generate_study_dataset(preset, rng);
  onlinetime::PrecomputedModel model(std::vector<interval::DaySchedule>(3));
  util::Rng r(1);
  EXPECT_THROW(model.schedules(dataset, r), ConfigError);
}

}  // namespace
}  // namespace dosn
