// Unit tests for IntervalSet algebra.
#include <gtest/gtest.h>

#include "interval/interval_set.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dosn::interval {
namespace {

IntervalSet make(std::initializer_list<Interval> list) {
  return IntervalSet(std::vector<Interval>(list));
}

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.measure(), 0);
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.first().has_value());
}

TEST(IntervalSet, SingleInterval) {
  auto s = IntervalSet::single(10, 20);
  EXPECT_EQ(s.measure(), 10);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(19));
  EXPECT_FALSE(s.contains(20));  // half-open
  EXPECT_FALSE(s.contains(9));
}

TEST(IntervalSet, RejectsEmptyInterval) {
  EXPECT_THROW(IntervalSet::single(5, 5), ConfigError);
  EXPECT_THROW(IntervalSet::single(6, 5), ConfigError);
  IntervalSet s;
  EXPECT_THROW(s.add(3, 3), ConfigError);
}

TEST(IntervalSet, NormalizesOverlapsAndAdjacency) {
  auto s = make({{10, 20}, {15, 30}, {30, 40}, {50, 60}});
  EXPECT_EQ(s.piece_count(), 2u);
  EXPECT_EQ(s.measure(), 40);
  EXPECT_EQ(s.pieces()[0], (Interval{10, 40}));
  EXPECT_EQ(s.pieces()[1], (Interval{50, 60}));
}

TEST(IntervalSet, AddMergesNeighbours) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  EXPECT_EQ(s.piece_count(), 2u);
  s.add(20, 30);  // bridges the gap
  EXPECT_EQ(s.piece_count(), 1u);
  EXPECT_EQ(s.measure(), 30);
}

TEST(IntervalSet, AddInsideExistingIsNoop) {
  auto s = IntervalSet::single(0, 100);
  s.add(20, 30);
  EXPECT_EQ(s.piece_count(), 1u);
  EXPECT_EQ(s.measure(), 100);
}

TEST(IntervalSet, UniteDisjointAndOverlapping) {
  auto a = make({{0, 10}, {20, 30}});
  auto b = make({{5, 25}, {40, 50}});
  auto u = a.unite(b);
  EXPECT_EQ(u.measure(), 40);
  EXPECT_EQ(u.piece_count(), 2u);
  EXPECT_EQ(u, b.unite(a));  // commutative
}

TEST(IntervalSet, IntersectBasics) {
  auto a = make({{0, 10}, {20, 30}});
  auto b = make({{5, 25}});
  auto i = a.intersect(b);
  EXPECT_EQ(i, make({{5, 10}, {20, 25}}));
  EXPECT_EQ(i.measure(), a.intersection_measure(b));
  EXPECT_EQ(i, b.intersect(a));
}

TEST(IntervalSet, IntersectEmptyWhenDisjoint) {
  auto a = IntervalSet::single(0, 10);
  auto b = IntervalSet::single(10, 20);  // touching, half-open: no overlap
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_FALSE(a.intersects(b));
}

TEST(IntervalSet, SubtractCarvesHoles) {
  auto a = IntervalSet::single(0, 100);
  auto b = make({{10, 20}, {30, 40}});
  auto d = a.subtract(b);
  EXPECT_EQ(d, make({{0, 10}, {20, 30}, {40, 100}}));
  EXPECT_EQ(d.measure(), 80);
}

TEST(IntervalSet, SubtractEverything) {
  auto a = make({{10, 20}, {30, 40}});
  EXPECT_TRUE(a.subtract(IntervalSet::single(0, 50)).empty());
}

TEST(IntervalSet, SubtractDisjointIsIdentity) {
  auto a = make({{10, 20}});
  auto b = make({{30, 40}});
  EXPECT_EQ(a.subtract(b), a);
}

TEST(IntervalSet, ComplementWithinWindow) {
  auto a = make({{10, 20}, {40, 50}});
  auto c = a.complement(0, 60);
  EXPECT_EQ(c, make({{0, 10}, {20, 40}, {50, 60}}));
  // Complement twice returns the clip of the original.
  EXPECT_EQ(c.complement(0, 60), a);
}

TEST(IntervalSet, NextAtOrAfter) {
  auto s = make({{10, 20}, {40, 50}});
  EXPECT_EQ(s.next_at_or_after(0), 10);
  EXPECT_EQ(s.next_at_or_after(10), 10);
  EXPECT_EQ(s.next_at_or_after(15), 15);
  EXPECT_EQ(s.next_at_or_after(20), 40);
  EXPECT_EQ(s.next_at_or_after(50), std::nullopt);
}

TEST(IntervalSet, MeasureWithin) {
  auto s = make({{10, 20}, {40, 50}});
  EXPECT_EQ(s.measure_within(0, 100), 20);
  EXPECT_EQ(s.measure_within(15, 45), 10);
  EXPECT_EQ(s.measure_within(20, 40), 0);
  EXPECT_EQ(s.measure_within(50, 10), 0);  // inverted window
}

TEST(IntervalSet, ClipAndShift) {
  auto s = make({{10, 20}, {40, 50}});
  EXPECT_EQ(s.clip(15, 45), make({{15, 20}, {40, 45}}));
  EXPECT_EQ(s.shift(100), make({{110, 120}, {140, 150}}));
  EXPECT_EQ(s.shift(-10), make({{0, 10}, {30, 40}}));
}

TEST(IntervalSet, LastEnd) {
  auto s = make({{10, 20}, {40, 50}});
  EXPECT_EQ(s.last_end(), 50);
}

TEST(IntervalSet, ToStringRendersPieces) {
  auto s = make({{10, 20}, {40, 50}});
  EXPECT_EQ(s.to_string(), "{[10,20) [40,50)}");
  EXPECT_EQ(IntervalSet{}.to_string(), "{}");
}

TEST(IntervalSet, OperatorsMatchMethods) {
  auto a = make({{0, 10}});
  auto b = make({{5, 15}});
  EXPECT_EQ(a | b, a.unite(b));
  EXPECT_EQ(a & b, a.intersect(b));
  EXPECT_EQ(a - b, a.subtract(b));
}

// Algebraic identities on randomized inputs.
class IntervalAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static IntervalSet random_set(util::Rng& rng) {
    IntervalSet s;
    const int pieces = static_cast<int>(rng.below(6));
    for (int i = 0; i < pieces; ++i) {
      const Seconds start = rng.range(0, 990);
      const Seconds len = rng.range(1, 60);
      s.add(start, start + len);
    }
    return s;
  }
};

TEST_P(IntervalAlgebra, DeMorganAndMeasureInvariants) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const auto a = random_set(rng);
    const auto b = random_set(rng);

    // |A| + |B| = |A∪B| + |A∩B|
    EXPECT_EQ(a.measure() + b.measure(),
              a.unite(b).measure() + a.intersect(b).measure());
    // A − B = A ∩ complement(B)
    const auto window_complement = b.complement(0, 2000);
    EXPECT_EQ(a.subtract(b), a.intersect(window_complement));
    // (A ∪ B) − B = A − B
    EXPECT_EQ(a.unite(b).subtract(b), a.subtract(b));
    // Union is idempotent, intersection too.
    EXPECT_EQ(a.unite(a), a);
    EXPECT_EQ(a.intersect(a), a);
    // intersects() agrees with non-empty intersection.
    EXPECT_EQ(a.intersects(b), !a.intersect(b).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalAlgebra,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Canonical-form invariant under random adds.
TEST(IntervalSet, CanonicalInvariantUnderRandomAdds) {
  util::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    IntervalSet s;
    Seconds expected_contains = -1;
    for (int i = 0; i < 40; ++i) {
      const Seconds start = rng.range(0, 500);
      const Seconds len = rng.range(1, 50);
      s.add(start, start + len);
      if (expected_contains < 0) expected_contains = start;
    }
    // Canonical: sorted, disjoint, non-adjacent, positive length.
    const auto pieces = s.pieces();
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      EXPECT_LT(pieces[i].start, pieces[i].end);
      if (i > 0) {
        EXPECT_LT(pieces[i - 1].end, pieces[i].start);
      }
    }
    EXPECT_TRUE(s.contains(expected_contains));
  }
}

}  // namespace
}  // namespace dosn::interval
