// Property-based suites over randomized inputs: invariants that must hold
// for every schedule configuration, placement, and profile history.
#include <gtest/gtest.h>

#include "core/profile.hpp"
#include "metrics/availability.hpp"
#include "metrics/delay.hpp"
#include "net/replica_sim.hpp"
#include "placement/policy.hpp"
#include "util/rng.hpp"

namespace dosn {
namespace {

using interval::DaySchedule;
using interval::IntervalSet;
using interval::kDaySeconds;
using interval::Seconds;
using placement::Connectivity;
using placement::PolicyKind;

DaySchedule random_schedule(util::Rng& rng, int max_pieces = 4) {
  IntervalSet s;
  const auto pieces = rng.below(static_cast<std::uint64_t>(max_pieces) + 1);
  for (std::uint64_t i = 0; i < pieces; ++i) {
    const Seconds start = rng.range(0, kDaySeconds - 7200);
    const Seconds len = rng.range(600, 4 * 3600);
    s.add(start, std::min(start + len, kDaySeconds));
  }
  return DaySchedule(std::move(s));
}

class ScheduleProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleProperties, AvailabilityBoundsAndMonotonicity) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const auto owner = random_schedule(rng);
    std::vector<DaySchedule> replicas;
    double prev = metrics::availability(owner, replicas);
    EXPECT_DOUBLE_EQ(prev, owner.coverage());
    for (int i = 0; i < 5; ++i) {
      replicas.push_back(random_schedule(rng));
      const double now = metrics::availability(owner, replicas);
      EXPECT_GE(now + 1e-12, prev);   // adding replicas never hurts
      EXPECT_LE(now, 1.0 + 1e-12);    // bounded
      prev = now;
    }
  }
}

TEST_P(ScheduleProperties, AodTimeBoundedByAvailabilityLogic) {
  util::Rng rng(GetParam() + 1000);
  for (int round = 0; round < 40; ++round) {
    std::vector<DaySchedule> friends;
    for (int i = 0; i < 4; ++i) friends.push_back(random_schedule(rng));
    const auto profile = random_schedule(rng);
    const double aod = metrics::aod_time(friends, profile);
    EXPECT_GE(aod, 0.0);
    EXPECT_LE(aod, 1.0 + 1e-12);
    // Covering profile with the friends' union always yields 1.
    DaySchedule demand;
    for (const auto& f : friends) demand = demand.unite(f);
    EXPECT_DOUBLE_EQ(metrics::aod_time(friends, demand), 1.0);
  }
}

TEST_P(ScheduleProperties, WorstCaseWaitBounds) {
  util::Rng rng(GetParam() + 2000);
  for (int round = 0; round < 60; ++round) {
    const auto a = random_schedule(rng);
    const auto b = random_schedule(rng);
    if (a.empty() || b.empty()) {
      EXPECT_EQ(interval::worst_case_wait(a, b), std::nullopt);
      continue;
    }
    const auto w = interval::worst_case_wait(a, b);
    ASSERT_TRUE(w.has_value());
    EXPECT_GE(w->wait, 0);
    EXPECT_LT(w->wait, kDaySeconds);  // target is daily periodic
  }
}

TEST_P(ScheduleProperties, DelayMetricInvariants) {
  util::Rng rng(GetParam() + 3000);
  for (int round = 0; round < 25; ++round) {
    const auto owner = random_schedule(rng);
    std::vector<DaySchedule> replicas;
    for (int i = 0; i < 4; ++i) replicas.push_back(random_schedule(rng));

    const auto con =
        metrics::update_propagation_delay(owner, replicas,
                                          Connectivity::kConRep);
    const auto uncon =
        metrics::update_propagation_delay(owner, replicas,
                                          Connectivity::kUnconRep);
    EXPECT_GE(con.actual, 0);
    EXPECT_GE(uncon.actual, 0);
    EXPECT_LE(con.observed, con.actual);
    EXPECT_LE(uncon.observed, uncon.actual);
    // A relay never makes the worst case worse.
    if (con.fully_connected) {
      EXPECT_LE(uncon.actual, con.actual);
    }
    // n nodes, periodic daily schedules: diameter < n days.
    EXPECT_LT(con.actual,
              static_cast<Seconds>(con.nodes + 1) * kDaySeconds);
  }
}

TEST_P(ScheduleProperties, PlacementInvariants) {
  util::Rng rng(GetParam() + 4000);
  for (int round = 0; round < 15; ++round) {
    const std::size_t n = 6;
    std::vector<DaySchedule> schedules;
    for (std::size_t i = 0; i < n; ++i)
      schedules.push_back(random_schedule(rng));
    std::vector<graph::UserId> candidates;
    for (graph::UserId c = 1; c < n; ++c) candidates.push_back(c);
    trace::ActivityTrace empty_trace(n, {});

    for (PolicyKind kind :
         {PolicyKind::kMaxAv, PolicyKind::kMostActive, PolicyKind::kRandom}) {
      for (Connectivity conn :
           {Connectivity::kConRep, Connectivity::kUnconRep}) {
        placement::PlacementContext ctx;
        ctx.user = 0;
        ctx.candidates = candidates;
        ctx.schedules = schedules;
        ctx.trace = &empty_trace;
        ctx.connectivity = conn;
        ctx.max_replicas = 3;
        const auto policy = placement::make_policy(kind);
        const auto r = policy->select(ctx, rng);

        // Never exceeds the budget, never repeats, only candidates.
        EXPECT_LE(r.size(), 3u);
        std::vector<graph::UserId> sorted(r);
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
        for (auto host : r) {
          EXPECT_GE(host, 1u);
          EXPECT_LT(host, n);
        }
        // ConRep: incremental time-connectivity.
        if (conn == Connectivity::kConRep) {
          DaySchedule grown = schedules[0];
          for (auto host : r) {
            if (!grown.empty()) {
              EXPECT_TRUE(schedules[host].intersects(grown));
            }
            grown = grown.unite(schedules[host]);
          }
        }
      }
    }
  }
}

TEST_P(ScheduleProperties, EventSimConservation) {
  util::Rng rng(GetParam() + 5000);
  for (int round = 0; round < 8; ++round) {
    std::vector<DaySchedule> nodes;
    for (int i = 0; i < 4; ++i) nodes.push_back(random_schedule(rng));
    bool any_online = false;
    for (const auto& s : nodes) any_online |= !s.empty();
    if (!any_online) continue;

    util::Rng urng = rng.fork();
    const auto updates = net::updates_within_schedules(nodes, 30, 5, urng);
    net::ReplicaSimConfig cfg;
    cfg.horizon_days = 12;
    const auto report = net::simulate_replica_group(nodes, updates, cfg);

    // Union coverage matches the empirical any-online fraction exactly
    // (schedules are periodic and the sim executes them verbatim).
    DaySchedule un;
    for (const auto& s : nodes) un = un.unite(s);
    EXPECT_NEAR(report.empirical_availability, un.coverage(), 1e-9);

    // Arrival ordering: nobody receives an update before it is created,
    // and the origin holds it from creation.
    for (const auto& d : report.deliveries) {
      ASSERT_TRUE(d.arrival[d.origin].has_value());
      EXPECT_EQ(*d.arrival[d.origin], d.creation);
      for (const auto& a : d.arrival)
        if (a) {
          EXPECT_GE(*a, d.creation);
        }
    }
  }
}

TEST_P(ScheduleProperties, ProfileMergeConvergesAnyOrder) {
  util::Rng rng(GetParam() + 6000);
  for (int round = 0; round < 10; ++round) {
    // Three authors append random histories; replicas merge in random
    // orders and must converge to identical state.
    std::vector<core::Profile> authors;
    for (graph::UserId a = 0; a < 3; ++a) {
      core::Profile p(0);
      const auto count = 1 + rng.below(5);
      for (std::uint64_t i = 0; i < count; ++i)
        p.append(a, rng.range(0, 100000), "post");
      authors.push_back(std::move(p));
    }

    core::Profile r1(0), r2(0);
    std::vector<std::size_t> order{0, 1, 2};
    for (std::size_t i : order) r1.merge(authors[i]);
    rng.shuffle(order);
    for (std::size_t i : order) r2.merge(authors[i]);
    // Merge repeated history fragments too (idempotence under re-sync).
    r2.merge(authors[static_cast<std::size_t>(rng.below(3))]);

    EXPECT_EQ(r1.posts(), r2.posts());
    EXPECT_EQ(r1.version(), r2.version());
    EXPECT_EQ(r1.version().compare(r2.version()), core::Ordering::kEqual);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace dosn
