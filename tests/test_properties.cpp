// Property-based suites over randomized inputs: invariants that must hold
// for every schedule configuration, placement, and profile history.
#include <gtest/gtest.h>

#include "core/profile.hpp"
#include "metrics/availability.hpp"
#include "metrics/delay.hpp"
#include "net/replica_sim.hpp"
#include "placement/policy.hpp"
#include "sim/evaluate.hpp"
#include "trace/dataset.hpp"
#include "util/rng.hpp"

namespace dosn {
namespace {

using interval::DaySchedule;
using interval::IntervalSet;
using interval::kDaySeconds;
using interval::Seconds;
using placement::Connectivity;
using placement::PolicyKind;

DaySchedule random_schedule(util::Rng& rng, int max_pieces = 4) {
  IntervalSet s;
  const auto pieces = rng.below(static_cast<std::uint64_t>(max_pieces) + 1);
  for (std::uint64_t i = 0; i < pieces; ++i) {
    const Seconds start = rng.range(0, kDaySeconds - 7200);
    const Seconds len = rng.range(600, 4 * 3600);
    s.add(start, std::min(start + len, kDaySeconds));
  }
  return DaySchedule(std::move(s));
}

class ScheduleProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleProperties, AvailabilityBoundsAndMonotonicity) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const auto owner = random_schedule(rng);
    std::vector<DaySchedule> replicas;
    double prev = metrics::availability(owner, replicas);
    EXPECT_DOUBLE_EQ(prev, owner.coverage());
    for (int i = 0; i < 5; ++i) {
      replicas.push_back(random_schedule(rng));
      const double now = metrics::availability(owner, replicas);
      EXPECT_GE(now + 1e-12, prev);   // adding replicas never hurts
      EXPECT_LE(now, 1.0 + 1e-12);    // bounded
      prev = now;
    }
  }
}

TEST_P(ScheduleProperties, AodTimeBoundedByAvailabilityLogic) {
  util::Rng rng(GetParam() + 1000);
  for (int round = 0; round < 40; ++round) {
    std::vector<DaySchedule> friends;
    for (int i = 0; i < 4; ++i) friends.push_back(random_schedule(rng));
    const auto profile = random_schedule(rng);
    const double aod = metrics::aod_time(friends, profile);
    EXPECT_GE(aod, 0.0);
    EXPECT_LE(aod, 1.0 + 1e-12);
    // Covering profile with the friends' union always yields 1.
    DaySchedule demand;
    for (const auto& f : friends) demand = demand.unite(f);
    EXPECT_DOUBLE_EQ(metrics::aod_time(friends, demand), 1.0);
  }
}

TEST_P(ScheduleProperties, WorstCaseWaitBounds) {
  util::Rng rng(GetParam() + 2000);
  for (int round = 0; round < 60; ++round) {
    const auto a = random_schedule(rng);
    const auto b = random_schedule(rng);
    if (a.empty() || b.empty()) {
      EXPECT_EQ(interval::worst_case_wait(a, b), std::nullopt);
      continue;
    }
    const auto w = interval::worst_case_wait(a, b);
    ASSERT_TRUE(w.has_value());
    EXPECT_GE(w->wait, 0);
    EXPECT_LT(w->wait, kDaySeconds);  // target is daily periodic
  }
}

TEST_P(ScheduleProperties, DelayMetricInvariants) {
  util::Rng rng(GetParam() + 3000);
  for (int round = 0; round < 25; ++round) {
    const auto owner = random_schedule(rng);
    std::vector<DaySchedule> replicas;
    for (int i = 0; i < 4; ++i) replicas.push_back(random_schedule(rng));

    const auto con =
        metrics::update_propagation_delay(owner, replicas,
                                          Connectivity::kConRep);
    const auto uncon =
        metrics::update_propagation_delay(owner, replicas,
                                          Connectivity::kUnconRep);
    EXPECT_GE(con.actual, 0);
    EXPECT_GE(uncon.actual, 0);
    EXPECT_LE(con.observed, con.actual);
    EXPECT_LE(uncon.observed, uncon.actual);
    // A relay never makes the worst case worse.
    if (con.fully_connected) {
      EXPECT_LE(uncon.actual, con.actual);
    }
    // n nodes, periodic daily schedules: diameter < n days.
    EXPECT_LT(con.actual,
              static_cast<Seconds>(con.nodes + 1) * kDaySeconds);
  }
}

TEST_P(ScheduleProperties, PlacementInvariants) {
  util::Rng rng(GetParam() + 4000);
  for (int round = 0; round < 15; ++round) {
    const std::size_t n = 6;
    std::vector<DaySchedule> schedules;
    for (std::size_t i = 0; i < n; ++i)
      schedules.push_back(random_schedule(rng));
    std::vector<graph::UserId> candidates;
    for (graph::UserId c = 1; c < n; ++c) candidates.push_back(c);
    trace::ActivityTrace empty_trace(n, {});

    for (PolicyKind kind :
         {PolicyKind::kMaxAv, PolicyKind::kMostActive, PolicyKind::kRandom}) {
      for (Connectivity conn :
           {Connectivity::kConRep, Connectivity::kUnconRep}) {
        placement::PlacementContext ctx;
        ctx.user = 0;
        ctx.candidates = candidates;
        ctx.schedules = schedules;
        ctx.trace = &empty_trace;
        ctx.connectivity = conn;
        ctx.max_replicas = 3;
        const auto policy = placement::make_policy(kind);
        const auto r = policy->select(ctx, rng);

        // Never exceeds the budget, never repeats, only candidates.
        EXPECT_LE(r.size(), 3u);
        std::vector<graph::UserId> sorted(r);
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
        for (auto host : r) {
          EXPECT_GE(host, 1u);
          EXPECT_LT(host, n);
        }
        // ConRep: incremental time-connectivity.
        if (conn == Connectivity::kConRep) {
          DaySchedule grown = schedules[0];
          for (auto host : r) {
            if (!grown.empty()) {
              EXPECT_TRUE(schedules[host].intersects(grown));
            }
            grown = grown.unite(schedules[host]);
          }
        }
      }
    }
  }
}

TEST_P(ScheduleProperties, EventSimConservation) {
  util::Rng rng(GetParam() + 5000);
  for (int round = 0; round < 8; ++round) {
    std::vector<DaySchedule> nodes;
    for (int i = 0; i < 4; ++i) nodes.push_back(random_schedule(rng));
    bool any_online = false;
    for (const auto& s : nodes) any_online |= !s.empty();
    if (!any_online) continue;

    util::Rng urng = rng.fork();
    const auto updates = net::updates_within_schedules(nodes, 30, 5, urng);
    net::ReplicaSimConfig cfg;
    cfg.horizon_days = 12;
    const auto report = net::simulate_replica_group(nodes, updates, cfg);

    // Union coverage matches the empirical any-online fraction exactly
    // (schedules are periodic and the sim executes them verbatim).
    DaySchedule un;
    for (const auto& s : nodes) un = un.unite(s);
    EXPECT_NEAR(report.empirical_availability, un.coverage(), 1e-9);

    // Arrival ordering: nobody receives an update before it is created,
    // and the origin holds it from creation.
    for (const auto& d : report.deliveries) {
      ASSERT_TRUE(d.arrival[d.origin].has_value());
      EXPECT_EQ(*d.arrival[d.origin], d.creation);
      for (const auto& a : d.arrival)
        if (a) {
          EXPECT_GE(*a, d.creation);
        }
    }
  }
}

TEST_P(ScheduleProperties, ProfileMergeConvergesAnyOrder) {
  util::Rng rng(GetParam() + 6000);
  for (int round = 0; round < 10; ++round) {
    // Three authors append random histories; replicas merge in random
    // orders and must converge to identical state.
    std::vector<core::Profile> authors;
    for (graph::UserId a = 0; a < 3; ++a) {
      core::Profile p(0);
      const auto count = 1 + rng.below(5);
      for (std::uint64_t i = 0; i < count; ++i)
        p.append(a, rng.range(0, 100000), "post");
      authors.push_back(std::move(p));
    }

    core::Profile r1(0), r2(0);
    std::vector<std::size_t> order{0, 1, 2};
    for (std::size_t i : order) r1.merge(authors[i]);
    rng.shuffle(order);
    for (std::size_t i : order) r2.merge(authors[i]);
    // Merge repeated history fragments too (idempotence under re-sync).
    r2.merge(authors[static_cast<std::size_t>(rng.below(3))]);

    EXPECT_EQ(r1.posts(), r2.posts());
    EXPECT_EQ(r1.version(), r2.version());
    EXPECT_EQ(r1.version().compare(r2.version()), core::Ordering::kEqual);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

/// A small random dataset (graph + activity trace) for policy-level
/// metamorphic invariants: the per-user evaluation kernel and every
/// placement policy must satisfy them for any input.
trace::Dataset random_dataset(util::Rng& rng, std::size_t n) {
  graph::SocialGraphBuilder builder(graph::GraphKind::kUndirected, n);
  for (std::size_t e = 0; e < 2 * n; ++e) {
    const auto a = static_cast<graph::UserId>(rng.below(n));
    const auto b = static_cast<graph::UserId>(rng.below(n));
    if (a != b) builder.add_edge(a, b);
  }
  std::vector<trace::Activity> activities;
  for (std::size_t i = 0; i < 5 * n; ++i) {
    trace::Activity a;
    a.creator = static_cast<graph::UserId>(rng.below(n));
    a.receiver = static_cast<graph::UserId>(rng.below(n));
    a.timestamp = static_cast<Seconds>(rng.below(14 * kDaySeconds));
    activities.push_back(a);
  }
  trace::Dataset d;
  d.name = "property";
  d.graph = std::move(builder).build();
  d.trace = trace::ActivityTrace(n, std::move(activities));
  return d;
}

std::vector<DaySchedule> random_schedules(util::Rng& rng, std::size_t n) {
  std::vector<DaySchedule> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(random_schedule(rng));
  return out;
}

placement::PlacementContext make_context(const trace::Dataset& dataset,
                                         std::span<const DaySchedule> schedules,
                                         graph::UserId u,
                                         Connectivity connectivity,
                                         std::size_t max_replicas) {
  placement::PlacementContext ctx;
  ctx.user = u;
  ctx.candidates = dataset.graph.contacts(u);
  ctx.schedules = schedules;
  ctx.trace = &dataset.trace;
  ctx.connectivity = connectivity;
  ctx.max_replicas = max_replicas;
  return ctx;
}

class PolicySweepProperties : public ::testing::TestWithParam<std::uint64_t> {
};

// Growing the replication degree along any single selection's prefix never
// decreases availability — for every policy and connectivity mode. (This is
// the sweep semantics of the engine: one selection at k_max, prefixes
// 0..k_max; independent re-selections per k carry no such guarantee.)
TEST_P(PolicySweepProperties, GrowingPrefixNeverDecreasesAvailability) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    const std::size_t n = 12;
    const auto dataset = random_dataset(rng, n);
    const auto schedules = random_schedules(rng, n);
    for (PolicyKind kind :
         {PolicyKind::kMaxAv, PolicyKind::kMostActive, PolicyKind::kRandom}) {
      for (Connectivity conn :
           {Connectivity::kConRep, Connectivity::kUnconRep}) {
        const auto policy = placement::make_policy(kind);
        for (graph::UserId u = 0; u < n; ++u) {
          const auto candidates = dataset.graph.contacts(u);
          if (candidates.empty()) continue;
          const auto ctx =
              make_context(dataset, schedules, u, conn, candidates.size());
          const auto selected = policy->select(ctx, rng);
          const auto rows = sim::evaluate_user_prefixes(
              dataset, schedules, u, selected, conn, ctx.max_replicas);
          ASSERT_EQ(rows.size(), ctx.max_replicas + 1);
          EXPECT_DOUBLE_EQ(rows[0].availability, schedules[u].coverage());
          for (std::size_t k = 1; k < rows.size(); ++k) {
            EXPECT_GE(rows[k].availability, rows[k - 1].availability);
            EXPECT_LE(rows[k].availability, 1.0);
            EXPECT_GE(rows[k].aod_time, rows[k - 1].aod_time);
            EXPECT_GE(rows[k].aod_activity, rows[k - 1].aod_activity);
          }
        }
      }
    }
  }
}

// Availability, AoD and max-availability depend only on the placement, not
// on the connectivity regime: evaluating the same placement under ConRep
// and UnconRep must agree bit for bit on every non-delay metric (the paper
// varies connectivity to study *delay*, with availability as the shared
// axis). Delay is where they part: the UnconRep relay path is never worse
// than direct ConRep rendezvous when the direct graph is fully connected.
TEST_P(PolicySweepProperties, ConnectivityAffectsOnlyDelay) {
  util::Rng rng(GetParam() + 7000);
  for (int round = 0; round < 3; ++round) {
    const std::size_t n = 10;
    const auto dataset = random_dataset(rng, n);
    const auto schedules = random_schedules(rng, n);
    const auto policy = placement::make_policy(PolicyKind::kMaxAv);
    for (graph::UserId u = 0; u < n; ++u) {
      const auto candidates = dataset.graph.contacts(u);
      if (candidates.empty()) continue;
      const std::size_t k_max = std::min<std::size_t>(4, candidates.size());
      const auto ctx =
          make_context(dataset, schedules, u, Connectivity::kConRep, k_max);
      const auto selected = policy->select(ctx, rng);

      const auto con = sim::evaluate_user_prefixes(
          dataset, schedules, u, selected, Connectivity::kConRep, k_max);
      const auto uncon = sim::evaluate_user_prefixes(
          dataset, schedules, u, selected, Connectivity::kUnconRep, k_max);
      ASSERT_EQ(con.size(), uncon.size());
      for (std::size_t k = 0; k < con.size(); ++k) {
        EXPECT_EQ(con[k].availability, uncon[k].availability);
        EXPECT_EQ(con[k].max_availability, uncon[k].max_availability);
        EXPECT_EQ(con[k].aod_time, uncon[k].aod_time);
        EXPECT_EQ(con[k].aod_activity, uncon[k].aod_activity);
        EXPECT_EQ(con[k].replicas_used, uncon[k].replicas_used);
      }

      std::vector<DaySchedule> replicas;
      for (graph::UserId host : selected) replicas.push_back(schedules[host]);
      const auto d_con = metrics::update_propagation_delay(
          schedules[u], replicas, Connectivity::kConRep);
      const auto d_uncon = metrics::update_propagation_delay(
          schedules[u], replicas, Connectivity::kUnconRep);
      if (d_con.fully_connected) {
        EXPECT_LE(d_uncon.actual, d_con.actual);
      }
    }
  }
}

// MaxAv's greedy achieves at least the union coverage (its objective) of
// the Random and MostActive selections on the same candidate set and
// budget — in aggregate over the cohort, the dominance the paper's figures
// rest on. Per-case dominance is deliberately NOT asserted: greedy
// max-coverage is only (1-1/e)-optimal, and individual users where a lucky
// heuristic pick beats greedy do occur (seed 202 produces one). When
// greedy stops early, though, it has proved no candidate adds gain, so
// those cases are exact maxima and checked individually.
TEST_P(PolicySweepProperties, MaxAvDominatesHeuristicsOnItsObjective) {
  util::Rng rng(GetParam() + 8000);
  double sum_maxav = 0.0, sum_most_active = 0.0, sum_random = 0.0;
  for (int round = 0; round < 3; ++round) {
    const std::size_t n = 12;
    const auto dataset = random_dataset(rng, n);
    const auto schedules = random_schedules(rng, n);
    for (graph::UserId u = 0; u < n; ++u) {
      const auto candidates = dataset.graph.contacts(u);
      if (candidates.empty()) continue;
      const std::size_t k = std::min<std::size_t>(3, candidates.size());
      const auto ctx =
          make_context(dataset, schedules, u, Connectivity::kUnconRep, k);

      std::size_t maxav_picked = 0;
      const auto coverage_of = [&](PolicyKind kind) {
        const auto policy = placement::make_policy(kind);
        const auto selected = policy->select(ctx, rng);
        if (kind == PolicyKind::kMaxAv) maxav_picked = selected.size();
        std::vector<DaySchedule> replicas;
        for (graph::UserId host : selected)
          replicas.push_back(schedules[host]);
        return metrics::availability(schedules[u], replicas);
      };

      const double maxav = coverage_of(PolicyKind::kMaxAv);
      const double most_active = coverage_of(PolicyKind::kMostActive);
      const double random = coverage_of(PolicyKind::kRandom);
      sum_maxav += maxav;
      sum_most_active += most_active;
      sum_random += random;
      if (maxav_picked < k) {
        // Early greedy stop: the union of ALL candidates is covered, so no
        // selection whatsoever can exceed this coverage.
        EXPECT_GE(maxav + 1e-12, most_active);
        EXPECT_GE(maxav + 1e-12, random);
      }
    }
  }
  EXPECT_GE(sum_maxav + 1e-9, sum_most_active);
  EXPECT_GE(sum_maxav + 1e-9, sum_random);
}

// Degenerate inputs must produce exact sentinel values, not approximations:
// an all-offline population has availability and delay exactly zero at
// every k, and the AoD ratios collapse to their documented vacuous value of
// exactly 1 (no demand seconds / no received activities to miss).
TEST_P(PolicySweepProperties, EmptyTraceAndZeroKAreExact) {
  util::Rng rng(GetParam() + 9000);
  const std::size_t n = 6;
  graph::SocialGraphBuilder builder(graph::GraphKind::kUndirected, n);
  for (graph::UserId v = 1; v < n; ++v) builder.add_edge(0, v);
  trace::Dataset dataset;
  dataset.name = "empty";
  dataset.graph = std::move(builder).build();
  dataset.trace = trace::ActivityTrace(n, {});

  // All-empty schedules: every metric is pinned exactly.
  const std::vector<DaySchedule> offline(n);
  for (Connectivity conn :
       {Connectivity::kConRep, Connectivity::kUnconRep}) {
    const std::vector<graph::UserId> selected{1, 2};
    const auto rows = sim::evaluate_user_prefixes(dataset, offline, 0,
                                                  selected, conn, 2);
    ASSERT_EQ(rows.size(), 3u);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      EXPECT_EQ(rows[k].availability, 0.0);
      EXPECT_EQ(rows[k].max_availability, 0.0);
      EXPECT_EQ(rows[k].delay_actual_h, 0.0);
      EXPECT_EQ(rows[k].delay_observed_h, 0.0);
      EXPECT_EQ(rows[k].aod_time, 1.0);        // vacuous: no demand
      EXPECT_EQ(rows[k].aod_activity, 1.0);    // vacuous: no activities
      EXPECT_EQ(rows[k].replicas_used, static_cast<double>(k));
    }
  }

  // k = 0 with live schedules: availability is exactly the owner coverage
  // and the delay group is the owner alone (zero delay).
  const auto schedules = random_schedules(rng, n);
  for (Connectivity conn :
       {Connectivity::kConRep, Connectivity::kUnconRep}) {
    const auto rows =
        sim::evaluate_user_prefixes(dataset, schedules, 0, {}, conn, 0);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].availability, schedules[0].coverage());
    EXPECT_EQ(rows[0].delay_actual_h, 0.0);
    EXPECT_EQ(rows[0].delay_observed_h, 0.0);
    EXPECT_EQ(rows[0].aod_activity, 1.0);      // vacuous: empty trace
    EXPECT_EQ(rows[0].replicas_used, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicySweepProperties,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace dosn
