// Tests for the runtime-contract layer (util/check.hpp) and for every
// invariant it enforces across the modules: each DOSN_CHECK added by the
// correctness-tooling pass has a test here proving it actually fires on
// malformed input — a contract that cannot fire is documentation, not
// enforcement.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/social_graph.hpp"
#include "interval/day_schedule.hpp"
#include "interval/interval_set.hpp"
#include "net/event_queue.hpp"
#include "net/scenario.hpp"
#include "net/social_dht.hpp"
#include "onlinetime/model.hpp"
#include "placement/policy.hpp"
#include "placement/super_peer.hpp"
#include "serve/serving.hpp"
#include "sim/evaluate.hpp"
#include "trace/dataset.hpp"
#include "util/alias.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dosn {
namespace {

using util::ContractError;

// ---------------------------------------------------------------- macros

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(DOSN_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(DOSN_CHECK(true, "context ", 42));
}

TEST(Check, FailingCheckThrowsContractError) {
  EXPECT_THROW(DOSN_CHECK(false), ContractError);
  // ContractError is part of the dosn::Error hierarchy.
  EXPECT_THROW(DOSN_CHECK(false), Error);
}

TEST(Check, MessageCarriesExpressionLocationAndContext) {
  try {
    const int lo = 3, hi = 2;
    DOSN_CHECK(lo <= hi, "window [", lo, ", ", hi, ") is empty");
    FAIL() << "DOSN_CHECK did not throw";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lo <= hi"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("window [3, 2) is empty"), std::string::npos) << what;
  }
}

TEST(Check, DcheckMatchesBuildType) {
#ifndef NDEBUG
  EXPECT_THROW(DOSN_DCHECK(false, "debug build"), ContractError);
#else
  EXPECT_NO_THROW(DOSN_DCHECK(false, "release build"));
#endif
  EXPECT_NO_THROW(DOSN_DCHECK(true));
}

TEST(Check, UnreachableThrows) {
  EXPECT_THROW(DOSN_UNREACHABLE(), ContractError);
  try {
    DOSN_UNREACHABLE("policy kind ", 99);
    FAIL() << "DOSN_UNREACHABLE did not throw";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("policy kind 99"),
              std::string::npos);
  }
}

// -------------------------------------------------------------- interval

TEST(IntervalContracts, CanonicalFormIsRecognized) {
  using interval::Interval;
  using interval::IntervalSet;
  EXPECT_TRUE(IntervalSet{}.is_canonical());
  EXPECT_TRUE(IntervalSet({{10, 20}, {30, 40}}).is_canonical());
  // The constructor normalizes unsorted/overlapping input into canonical
  // form — the postcondition the algebra relies on.
  const IntervalSet messy({{30, 45}, {10, 20}, {15, 25}});
  EXPECT_TRUE(messy.is_canonical());
  EXPECT_EQ(messy.to_string(), "{[10,25) [30,45)}");
}

TEST(IntervalContracts, DayScheduleRejectsOutOfDaySets) {
  using interval::DaySchedule;
  using interval::IntervalSet;
  using interval::kDaySeconds;
  EXPECT_THROW(DaySchedule(IntervalSet::single(-60, 60)), ContractError);
  EXPECT_THROW(DaySchedule(IntervalSet::single(0, kDaySeconds + 1)),
               ContractError);
  EXPECT_NO_THROW(DaySchedule(IntervalSet::single(0, kDaySeconds)));
}

// ----------------------------------------------------------------- graph

TEST(GraphContracts, BuilderRejectsOutOfRangeEdge) {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 3);
  EXPECT_THROW(b.add_edge(0, 3), ContractError);
  EXPECT_THROW(b.add_edge(7, 1), ContractError);
}

TEST(GraphContracts, FromCsrAcceptsValidGraph) {
  // 0 - 1, 0 - 2 undirected: each edge stored in both rows.
  const auto g = graph::SocialGraph::from_csr(
      graph::GraphKind::kUndirected, {0, 2, 3, 4}, {1, 2, 0, 0});
  EXPECT_EQ(g.num_users(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(GraphContracts, FromCsrRejectsOutOfRangeEdgeTarget) {
  EXPECT_THROW(graph::SocialGraph::from_csr(graph::GraphKind::kUndirected,
                                            {0, 2, 3, 4}, {1, 2, 0, 9}),
               ContractError);
}

TEST(GraphContracts, FromCsrRejectsNonMonotoneOffsets) {
  EXPECT_THROW(graph::SocialGraph::from_csr(graph::GraphKind::kUndirected,
                                            {0, 3, 1, 4}, {1, 2, 0, 0}),
               ContractError);
}

TEST(GraphContracts, FromCsrRejectsDanglingOffsets) {
  // offsets.back() disagrees with the adjacency length.
  EXPECT_THROW(graph::SocialGraph::from_csr(graph::GraphKind::kUndirected,
                                            {0, 2, 3, 5}, {1, 2, 0, 0}),
               ContractError);
  // Directed graphs must supply the transposed CSR.
  EXPECT_THROW(graph::SocialGraph::from_csr(graph::GraphKind::kDirected,
                                            {0, 1, 1}, {1}),
               ContractError);
}

// ------------------------------------------------------------- placement

using placement::Connectivity;
using placement::PlacementContext;
using placement::ReplicaPolicy;
using placement::UserId;

// A policy that returns whatever selection it is told to return — used to
// prove the central select() contract rejects rogue selections.
class ScriptedPolicy final : public ReplicaPolicy {
 public:
  explicit ScriptedPolicy(std::vector<UserId> selection)
      : selection_(std::move(selection)) {}

  std::string name() const override { return "Scripted"; }

 protected:
  std::vector<UserId> select_impl(const PlacementContext&,
                                  util::Rng&) const override {
    return selection_;
  }

 private:
  std::vector<UserId> selection_;
};

struct PlacementFixture {
  std::vector<UserId> candidates{1, 2, 3};
  std::vector<interval::DaySchedule> schedules{
      interval::DaySchedule::always(), interval::DaySchedule::always(),
      interval::DaySchedule::always(), interval::DaySchedule::always()};

  PlacementContext context(std::size_t k) const {
    PlacementContext c;
    c.user = 0;
    c.candidates = candidates;
    c.schedules = schedules;
    c.connectivity = Connectivity::kUnconRep;
    c.max_replicas = k;
    return c;
  }
};

TEST(PlacementContracts, CompliantSelectionPasses) {
  PlacementFixture f;
  util::Rng rng(7);
  const ScriptedPolicy policy({3, 1});
  EXPECT_EQ(policy.select(f.context(2), rng), (std::vector<UserId>{3, 1}));
}

TEST(PlacementContracts, OverBudgetSelectionFires) {
  PlacementFixture f;
  util::Rng rng(7);
  const ScriptedPolicy policy({1, 2, 3});
  EXPECT_THROW(policy.select(f.context(2), rng), ContractError);
}

TEST(PlacementContracts, NonCandidateHolderFires) {
  PlacementFixture f;
  util::Rng rng(7);
  // User 0 is not his own contact; neither is an arbitrary stranger.
  EXPECT_THROW(ScriptedPolicy({0}).select(f.context(3), rng), ContractError);
  EXPECT_THROW(ScriptedPolicy({9}).select(f.context(3), rng), ContractError);
}

TEST(PlacementContracts, DuplicateHolderFires) {
  PlacementFixture f;
  util::Rng rng(7);
  const ScriptedPolicy policy({2, 2});
  EXPECT_THROW(policy.select(f.context(3), rng), ContractError);
}

TEST(PlacementContracts, PaperPoliciesSatisfyTheContract) {
  // The real policies run through the same validated entry point; a basic
  // end-to-end selection proves the wall does not reject honest output.
  PlacementFixture f;
  trace::ActivityTrace trace(4, {});
  auto ctx = f.context(2);
  ctx.trace = &trace;
  util::Rng rng(7);
  for (const auto kind :
       {placement::PolicyKind::kMaxAv, placement::PolicyKind::kMostActive,
        placement::PolicyKind::kRandom, placement::PolicyKind::kCoreGroup,
        placement::PolicyKind::kHybrid}) {
    const auto policy = placement::make_policy(kind);
    EXPECT_LE(policy->select(ctx, rng).size(), 2u) << policy->name();
  }
}

// ------------------------------------------------------------ onlinetime

// A model that produces one schedule too few — the misalignment the
// schedules() template method must catch.
class TruncatingModel final : public onlinetime::OnlineTimeModel {
 public:
  std::string name() const override { return "Truncating"; }

 protected:
  std::vector<interval::DaySchedule> schedules_impl(
      const trace::Dataset& dataset, util::Rng&) const override {
    return std::vector<interval::DaySchedule>(dataset.num_users() - 1);
  }
};

trace::Dataset tiny_dataset() {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  trace::Dataset d;
  d.name = "tiny";
  d.graph = std::move(b).build();
  d.trace = trace::ActivityTrace(3, {});
  return d;
}

TEST(OnlineTimeContracts, WrongScheduleCountFires) {
  const auto dataset = tiny_dataset();
  util::Rng rng(11);
  EXPECT_THROW(TruncatingModel{}.schedules(dataset, rng), ContractError);
}

TEST(OnlineTimeContracts, RealModelsSatisfyTheContract) {
  const auto dataset = tiny_dataset();
  util::Rng rng(11);
  for (const auto kind :
       {onlinetime::ModelKind::kSporadic, onlinetime::ModelKind::kFixedLength,
        onlinetime::ModelKind::kRandomLength,
        onlinetime::ModelKind::kEnrichedSporadic}) {
    const auto model = onlinetime::make_model(kind);
    EXPECT_EQ(model->schedules(dataset, rng).size(), dataset.num_users())
        << model->name();
  }
}

// ------------------------------------------------------------------- net

TEST(EventQueueContracts, SchedulingIntoThePastFires) {
  net::EventQueue q;
  q.schedule(100, [] {});
  q.run_all();
  EXPECT_EQ(q.now(), 100);
  EXPECT_THROW(q.schedule(99, [] {}), ContractError);
  EXPECT_NO_THROW(q.schedule(100, [] {}));  // same instant is fine
}

// ------------------------------------------------------------------ util

TEST(AliasContracts, ValidTableAccepted) {
  const std::vector<double> prob{0.5, 1.0};
  const std::vector<std::uint32_t> alias{1, 1};
  EXPECT_NO_THROW(util::detail::check_alias_table(prob, alias));
}

TEST(AliasContracts, MalformedTablesFire) {
  const std::vector<double> prob{0.5, 1.0};
  const std::vector<double> bad_prob{0.5, 1.5};
  const std::vector<double> neg_prob{-0.1, 1.0};
  const std::vector<std::uint32_t> alias{1, 1};
  const std::vector<std::uint32_t> bad_alias{1, 2};
  const std::vector<std::uint32_t> short_alias{1};
  EXPECT_THROW(util::detail::check_alias_table(bad_prob, alias),
               ContractError);
  EXPECT_THROW(util::detail::check_alias_table(neg_prob, alias),
               ContractError);
  EXPECT_THROW(util::detail::check_alias_table(prob, bad_alias),
               ContractError);
  EXPECT_THROW(util::detail::check_alias_table(prob, short_alias),
               ContractError);
}

TEST(AliasContracts, ConstructedSamplersPassTheirOwnContract) {
  util::Rng rng(3);
  const std::vector<double> weights{0.1, 0.0, 5.0, 2.5};
  util::DiscreteSampler sampler(weights);  // would throw if malformed
  for (int i = 0; i < 1000; ++i) {
    const std::size_t v = sampler.draw(rng);
    EXPECT_LT(v, weights.size());
    EXPECT_NE(v, 1u);  // zero-weight slot never drawn
  }
}

// ------------------------------------------------------------------- sim

TEST(SimContracts, EvaluateUserRejectsHolderWithoutSchedule) {
  const auto dataset = tiny_dataset();
  const std::vector<interval::DaySchedule> schedules(
      3, interval::DaySchedule::always());
  const std::vector<graph::UserId> bogus{7};
  EXPECT_THROW(sim::evaluate_user(dataset, schedules, 1, bogus,
                                  Connectivity::kUnconRep),
               ContractError);
}

// -------------------------------------------------------------- scenario

TEST(ScenarioContracts, ValidCompositeSpecPasses) {
  net::ScenarioSpec spec;
  spec.regional_outages.push_back({2, 0, 0, 1000, 0.9});
  spec.regional_outages.push_back({2, 1, 0, 1000, 0.9});  // disjoint class
  spec.flash_crowds.push_back({500, 2000, 4.0});
  spec.churn_bursts.push_back({0, 3000, 0.5, 0.8});
  EXPECT_NO_THROW(net::validate(spec));
}

TEST(ScenarioContracts, ProbabilityOutOfRangeFires) {
  net::ScenarioSpec spec;
  spec.regional_outages.push_back({2, 0, 0, 1000, 1.5});
  EXPECT_THROW(net::validate(spec), ConfigError);
  spec = {};
  spec.churn_bursts.push_back({0, 1000, -0.1, 1.0});
  EXPECT_THROW(net::validate(spec), ConfigError);
  spec = {};
  spec.churn_bursts.push_back({0, 1000, 0.5, 2.0});
  EXPECT_THROW(net::validate(spec), ConfigError);
}

TEST(ScenarioContracts, InvertedOrNegativeWindowFires) {
  net::ScenarioSpec spec;
  spec.flash_crowds.push_back({2000, 1000, 2.0});  // inverted
  EXPECT_THROW(net::validate(spec), ConfigError);
  spec = {};
  spec.regional_outages.push_back({2, 0, -5, 1000, 1.0});  // before t=0
  EXPECT_THROW(net::validate(spec), ConfigError);
}

TEST(ScenarioContracts, RegionOutsidePartitionFires) {
  net::ScenarioSpec spec;
  spec.regional_outages.push_back({2, 2, 0, 1000, 1.0});
  EXPECT_THROW(net::validate(spec), ConfigError);
}

TEST(ScenarioContracts, OverlappingPartitionsFire) {
  // regions=2/region=0 and regions=4/region=2 share nodes ≡ 2 (mod 4)
  // over overlapping windows — rejected by the CRT intersection check.
  net::ScenarioSpec spec;
  spec.regional_outages.push_back({2, 0, 0, 1000, 1.0});
  spec.regional_outages.push_back({4, 2, 500, 1500, 1.0});
  EXPECT_THROW(net::validate(spec), ConfigError);

  // Same classes but disjoint windows: fine.
  spec.regional_outages[1].start = 1000;
  spec.regional_outages[1].end = 2000;
  EXPECT_NO_THROW(net::validate(spec));

  // Overlapping windows but disjoint residue classes: fine.
  spec.regional_outages[1] = {4, 1, 500, 1500, 1.0};
  EXPECT_NO_THROW(net::validate(spec));
}

TEST(ScenarioContracts, FlashMultiplierOutOfRangeFires) {
  net::ScenarioSpec spec;
  spec.flash_crowds.push_back({0, 1000, 0.5});
  EXPECT_THROW(net::validate(spec), ConfigError);
  spec.flash_crowds[0].load_multiplier = 65.0;
  EXPECT_THROW(net::validate(spec), ConfigError);
}

TEST(ScenarioContracts, FaultPlanValidateCoversItsScenario) {
  net::FaultPlan plan;
  plan.scenario.flash_crowds.push_back({2000, 1000, 2.0});
  EXPECT_THROW(net::validate(plan), ConfigError);
}

// ------------------------------------------------------------ resilience

TEST(ResilienceContracts, DefaultPolicyIsZeroAndValid) {
  serve::ResiliencePolicy policy;
  EXPECT_TRUE(policy.zero());
  EXPECT_NO_THROW(serve::validate(policy));
}

TEST(ResilienceContracts, OutOfRangeKnobsFire) {
  serve::ResiliencePolicy policy;
  policy.hedge_delay = -1;
  EXPECT_THROW(serve::validate(policy), ConfigError);
  policy = {};
  policy.stale_read_tax = -1;
  EXPECT_THROW(serve::validate(policy), ConfigError);
  policy = {};
  policy.max_retries = 33;
  EXPECT_THROW(serve::validate(policy), ConfigError);
  policy = {};
  policy.retry_backoff = 0;
  EXPECT_THROW(serve::validate(policy), ConfigError);
  policy = {};
  policy.retry_backoff_cap = policy.retry_backoff - 1;
  EXPECT_THROW(serve::validate(policy), ConfigError);
  policy = {};
  policy.deadline = -5;
  EXPECT_THROW(serve::validate(policy), ConfigError);
  policy = {};
  policy.feed_min_coverage = 1.5;
  EXPECT_THROW(serve::validate(policy), ConfigError);
}

TEST(ResilienceContracts, ServingConfigValidateCoversThePolicy) {
  serve::ServingConfig config;
  config.resilience.feed_min_coverage = -0.5;
  EXPECT_THROW(serve::validate(config), ConfigError);
}

// ------------------------------------------------------ storage regimes

TEST(RegimeContracts, SocialDhtConfigBoundsFire) {
  net::SocialDhtConfig config;
  config.replication = 0;
  EXPECT_THROW(net::validate(config), ConfigError);
  config.replication = 65;
  EXPECT_THROW(net::validate(config), ConfigError);
  config = {};
  config.cluster_cap = 0;
  EXPECT_THROW(net::validate(config), ConfigError);
  config.cluster_cap = 4097;
  EXPECT_THROW(net::validate(config), ConfigError);
  config = {};
  config.hop_cost = -1;
  EXPECT_THROW(net::validate(config), ConfigError);
  EXPECT_NO_THROW(net::validate(net::SocialDhtConfig{}));
}

TEST(RegimeContracts, SocialDhtAccessorsRejectOutOfRangeUsers) {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 4);
  b.add_edge(0, 1);
  const auto g = std::move(b).build();
  const net::SocialDht dht(g, net::SocialDhtConfig{});
  EXPECT_THROW(dht.cluster_anchor(4), ContractError);
  EXPECT_THROW(dht.cluster_rank(4), ContractError);
  EXPECT_THROW(dht.key_position(4), ContractError);
  EXPECT_THROW(dht.owner_of(4), ContractError);
  EXPECT_THROW(dht.responsible_nodes(4), ContractError);
  EXPECT_THROW(dht.lookup_from(0, 4), ContractError);
  EXPECT_THROW(dht.lookup_from(4, 0), ContractError);
}

TEST(RegimeContracts, SuperPeerConfigBoundsFire) {
  placement::SuperPeerConfig config;
  config.volunteer_threshold = -0.1;
  EXPECT_THROW(placement::validate(config), ConfigError);
  config.volunteer_threshold = 1.1;
  EXPECT_THROW(placement::validate(config), ConfigError);
  config = {};
  config.target_availability = -0.1;
  EXPECT_THROW(placement::validate(config), ConfigError);
  config.target_availability = 1.1;
  EXPECT_THROW(placement::validate(config), ConfigError);
  config = {};
  config.max_storekeepers = 65;
  EXPECT_THROW(placement::validate(config), ConfigError);
  EXPECT_NO_THROW(placement::validate(placement::SuperPeerConfig{}));
}

TEST(RegimeContracts, ServingConfigRejectsRegimeUnderUnconRep) {
  // The DHT and super-peer regimes replace the relay; combining them
  // with UnconRep has no defined semantics and must be rejected.
  serve::ServingConfig config;
  config.connectivity = placement::Connectivity::kUnconRep;
  config.regime = placement::StorageRegime::kSocialDht;
  EXPECT_THROW(serve::validate(config), ConfigError);
  config.regime = placement::StorageRegime::kSuperPeer;
  EXPECT_THROW(serve::validate(config), ConfigError);
  config.regime = placement::StorageRegime::kReplicaGroup;
  EXPECT_NO_THROW(serve::validate(config));
  // Regime sub-configs are validated through the serving config too.
  config = {};
  config.social_dht.replication = 0;
  EXPECT_THROW(serve::validate(config), ConfigError);
  config = {};
  config.super_peer.max_storekeepers = 65;
  EXPECT_THROW(serve::validate(config), ConfigError);
}

}  // namespace
}  // namespace dosn
