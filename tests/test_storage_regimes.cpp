// Tests for the storage-regime layer (DESIGN.md §16): the socially-aware
// DHT ring (friend clustering, analytic greedy lookups, anchoring against
// the small DhtRing simulation), the SuperNova-style storekeeper
// directory (volunteer threshold, prefix-monotone assignment, churn
// skips), and their serving-layer integration — hand-computed pair
// oracles, exact degeneracy differentials against the replica-group path,
// metamorphic hop/availability properties, and bit-identity across
// thread counts and observability settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "graph/social_graph.hpp"
#include "interval/day_schedule.hpp"
#include "net/dht.hpp"
#include "net/social_dht.hpp"
#include "obs/obs.hpp"
#include "placement/super_peer.hpp"
#include "serve/serving.hpp"
#include "synth/scale.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace dosn {
namespace {

using interval::DaySchedule;
using interval::IntervalSet;
using interval::kDaySeconds;
using interval::Seconds;
using net::SocialDht;
using net::SocialDhtConfig;
using placement::SuperPeerConfig;
using placement::SuperPeerDirectory;
using serve::ServingConfig;
using serve::ServingReport;

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(IntervalSet::single(start_h * kH, end_h * kH));
}

/// Absolute (non-periodic) online set of a daily schedule over `days`.
IntervalSet absolute(const DaySchedule& s, int days) {
  IntervalSet out;
  for (int d = 0; d < days; ++d)
    for (const auto& iv : s.set().pieces())
      out.add(d * kDaySeconds + iv.start, d * kDaySeconds + iv.end);
  return out;
}

/// A connected 40-user graph with deterministic structure: a ring plus
/// skip-5 chords, so every user has degree 4 and the clustering pass has
/// real adjacency to work with.
graph::SocialGraph ring_graph(graph::UserId n) {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, n);
  for (graph::UserId i = 0; i < n; ++i) {
    b.add_edge(i, (i + 1) % n);
    b.add_edge(i, (i + 5) % n);
  }
  return std::move(b).build();
}

// --------------------------------------------------- SocialDht structure

TEST(SocialDhtTest, ClusterPassInvariants) {
  const auto g = ring_graph(40);
  SocialDhtConfig config;
  config.cluster_cap = 4;
  const SocialDht dht(g, config);

  ASSERT_EQ(dht.num_nodes(), 40u);
  std::set<graph::UserId> anchors;
  std::size_t members = 0;
  for (graph::UserId u = 0; u < 40; ++u) {
    const graph::UserId a = dht.cluster_anchor(u);
    // Anchoring is idempotent and the anchor has rank 0.
    EXPECT_EQ(dht.cluster_anchor(a), a);
    EXPECT_EQ(dht.cluster_rank(a), 0u);
    EXPECT_LT(dht.cluster_rank(u), config.cluster_cap);
    // A non-anchor member was absorbed through a real edge.
    if (a != u) {
      const auto contacts = g.contacts(a);
      EXPECT_NE(std::find(contacts.begin(), contacts.end(), u),
                contacts.end())
          << "user " << u << " anchored at non-contact " << a;
    }
    // The key remap is exactly plain_key(anchor) + rank.
    EXPECT_EQ(dht.key_position(u),
              SocialDht::plain_key_position(a) + dht.cluster_rank(u));
    anchors.insert(a);
    ++members;
  }
  EXPECT_EQ(anchors.size(), dht.num_clusters());
  EXPECT_EQ(members, 40u);
  // cap 4 over a degree-4 graph must actually form multi-member clusters.
  EXPECT_LT(dht.num_clusters(), 40u);
  // Ranks within one cluster are distinct (keys collide otherwise).
  for (const graph::UserId a : anchors) {
    std::set<std::uint32_t> ranks;
    for (graph::UserId u = 0; u < 40; ++u) {
      if (dht.cluster_anchor(u) == a) {
        EXPECT_TRUE(ranks.insert(dht.cluster_rank(u)).second);
      }
    }
  }
}

TEST(SocialDhtTest, DegeneraciesReduceToPlainKeys) {
  const auto g = ring_graph(40);
  SocialDhtConfig aware;
  aware.cluster_cap = 1;  // socially aware, but every cluster is a singleton
  const SocialDht capped(g, aware);
  const SocialDht plain(g, aware.plain());

  EXPECT_EQ(capped.num_clusters(), 40u);
  EXPECT_EQ(plain.num_clusters(), 40u);
  for (graph::UserId u = 0; u < 40; ++u) {
    EXPECT_EQ(capped.key_position(u), SocialDht::plain_key_position(u));
    EXPECT_EQ(plain.key_position(u), SocialDht::plain_key_position(u));
    EXPECT_EQ(capped.owner_of(u), plain.owner_of(u));
    EXPECT_EQ(capped.responsible_nodes(u), plain.responsible_nodes(u));
  }
}

TEST(SocialDhtTest, PlainResponsibleSetsAnchorAgainstDhtRing) {
  // The scaled ring and the faithful DhtRing simulation must agree on
  // plain-key ownership node for node: same position hash, same successor
  // walk.
  constexpr graph::UserId kN = 24;
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, kN);
  b.add_edge(0, 1);  // edges are irrelevant for the plain config
  const auto g = std::move(b).build();

  SocialDhtConfig config;
  config.socially_aware = false;
  config.replication = 3;
  const SocialDht dht(g, config);

  net::DhtRing ring(3);
  for (graph::UserId u = 0; u < kN; ++u) ring.join(u);

  for (graph::UserId u = 0; u < kN; ++u) {
    const auto ours = dht.responsible_nodes(u);
    const auto theirs =
        ring.responsible_nodes("profile:" + std::to_string(u));
    ASSERT_EQ(ours.size(), theirs.size()) << "user " << u;
    for (std::size_t i = 0; i < ours.size(); ++i)
      EXPECT_EQ(static_cast<std::uint64_t>(ours[i]), theirs[i])
          << "user " << u << " replica " << i;
  }
}

TEST(SocialDhtTest, LookupFindsOwnerWithBoundedHops) {
  const auto g = ring_graph(40);
  for (const bool aware : {true, false}) {
    SocialDhtConfig config;
    config.socially_aware = aware;
    const SocialDht dht(g, config);
    for (graph::UserId requester = 0; requester < 40; ++requester) {
      for (graph::UserId target = 0; target < 40; target += 3) {
        const auto l = dht.lookup_from(requester, target);
        EXPECT_EQ(l.owner, dht.owner_of(target));
        // The greedy walk halves the remaining distance every hop.
        EXPECT_LE(l.hops, 64u);
      }
    }
  }
}

TEST(SocialDhtTest, ConfigTextRoundTrips) {
  SocialDhtConfig config;
  config.replication = 5;
  config.socially_aware = false;
  config.cluster_cap = 9;
  config.hop_cost = 11;
  EXPECT_EQ(net::parse_social_dht(net::to_text(config)), config);
  EXPECT_EQ(net::parse_social_dht(
                "# comment\nsocial_dht replication=5 socially_aware=0 "
                "cluster_cap=9 hop_cost=11\n"),
            config);
  EXPECT_EQ(net::parse_social_dht(""), SocialDhtConfig{});
}

// ------------------------------------------------ SuperPeer directory

TEST(SuperPeerTest, VolunteerThresholdIsExactOnCoverage) {
  // Coverages: 1.0, 0.75, 0.5, 0.25, 0.125, 1/24.
  const std::vector<DaySchedule> schedules{window(0, 24), window(0, 18),
                                           window(0, 12), window(0, 6),
                                           window(0, 3),  window(0, 1)};
  SuperPeerConfig config;
  config.volunteer_threshold = 0.5;
  const SuperPeerDirectory half(schedules, config);
  // Exactly the users at or above 12 h/day, in id order — the 0.5
  // boundary user is admitted (>=, integer-exact).
  EXPECT_EQ(std::vector<placement::UserId>(half.volunteers().begin(),
                                           half.volunteers().end()),
            (std::vector<placement::UserId>{0, 1, 2}));
  EXPECT_TRUE(half.is_volunteer(2));
  EXPECT_FALSE(half.is_volunteer(3));

  config.volunteer_threshold = 1.0;
  const SuperPeerDirectory strict(schedules, config);
  EXPECT_EQ(std::vector<placement::UserId>(strict.volunteers().begin(),
                                           strict.volunteers().end()),
            (std::vector<placement::UserId>{0}));
}

std::vector<DaySchedule> volunteer_pool() {
  std::vector<DaySchedule> schedules;
  for (int u = 0; u < 12; ++u)
    schedules.push_back(window(u % 12, (u % 12) + 2 + (u % 5)));
  return schedules;
}

TEST(SuperPeerTest, AssignmentIsPrefixMonotoneInTarget) {
  const auto schedules = volunteer_pool();
  SuperPeerConfig config;
  config.volunteer_threshold = 0.05;
  config.max_storekeepers = 8;
  const std::vector<placement::UserId> group{7};

  std::vector<placement::UserId> prev;
  for (const double target : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    config.target_availability = target;
    const SuperPeerDirectory dir(schedules, config);
    const auto picks = dir.assign_storekeepers(7, group, 42);
    // Same walk, later stop: the lower-target picks are a prefix.
    ASSERT_GE(picks.size(), prev.size()) << "target " << target;
    for (std::size_t i = 0; i < prev.size(); ++i)
      EXPECT_EQ(picks[i], prev[i]) << "target " << target;
    // Every pick is a distinct volunteer outside the group.
    std::set<placement::UserId> seen;
    for (const auto v : picks) {
      EXPECT_TRUE(dir.is_volunteer(v));
      EXPECT_NE(v, 7u);
      EXPECT_TRUE(seen.insert(v).second);
    }
    EXPECT_LE(picks.size(), config.max_storekeepers);
    // Deterministic: the same call reproduces the same picks.
    EXPECT_EQ(dir.assign_storekeepers(7, group, 42), picks);
    prev = picks;
  }
  EXPECT_GT(prev.size(), 0u);
}

TEST(SuperPeerTest, CrashedVolunteersAreSkippedNotFatal) {
  const auto schedules = volunteer_pool();
  SuperPeerConfig config;
  config.volunteer_threshold = 0.05;
  config.target_availability = 0.95;
  const SuperPeerDirectory dir(schedules, config);
  const std::vector<placement::UserId> group{7};

  const auto crashed_even = [](placement::UserId v) { return v % 2 == 0; };
  const auto picks = dir.assign_storekeepers(7, group, 42, crashed_even);
  EXPECT_GT(picks.size(), 0u);
  for (const auto v : picks) EXPECT_EQ(v % 2, 1u) << "crashed pick " << v;

  // Every volunteer down: the walk gives up at its attempt bound.
  const auto none = dir.assign_storekeepers(
      7, group, 42, [](placement::UserId) { return true; });
  EXPECT_TRUE(none.empty());
}

TEST(SuperPeerTest, ConfigTextRoundTrips) {
  SuperPeerConfig config;
  config.volunteer_threshold = 0.25;
  config.target_availability = 0.75;
  config.max_storekeepers = 12;
  EXPECT_EQ(placement::parse_super_peer(placement::to_text(config)), config);
  EXPECT_EQ(placement::parse_super_peer(
                "super_peer volunteer_threshold=0.25 "
                "target_availability=0.75 max_storekeepers=12\n"),
            config);
  EXPECT_EQ(placement::parse_super_peer("# nothing\n"), SuperPeerConfig{});
}

// ------------------------------------------- serving-level: pair oracle

trace::Dataset pair_dataset() {
  graph::SocialGraphBuilder b(graph::GraphKind::kUndirected, 2);
  b.add_edge(0, 1);
  trace::Dataset d;
  d.name = "pair";
  d.graph = std::move(b).build();
  d.trace = trace::ActivityTrace(2, {});
  return d;
}

TEST(SocialDhtServingTest, PairMatchesHandComputedWaits) {
  // Two users, two-node ring, replication 2: each profile's responsible
  // set is both nodes, so every request waits on the union of both
  // schedules (reads/feeds) or the friend's own schedule (writes), plus
  // the greedy route taxed at hop_cost — all hand-computable.
  const auto d = pair_dataset();
  const std::vector<DaySchedule> schedules{window(8, 10), window(12, 16)};
  const std::vector<graph::UserId> cohort{0, 1};
  ServingConfig config;
  config.regime = placement::StorageRegime::kSocialDht;
  config.social_dht.replication = 2;
  config.social_dht.hop_cost = 7;
  config.workload.horizon_days = 3;

  const SocialDht dht(d.graph, config.social_dht);
  for (const std::uint64_t seed : {5u, 17u, 42u}) {
    const auto report =
        run_serving_study(d, schedules, cohort, seed, config);

    std::uint64_t requests = 0, unserved = 0, slo_misses = 0;
    std::uint64_t lookups = 0, hops = 0;
    Seconds latency_sum = 0;
    const auto both = absolute(schedules[0], 3).unite(absolute(schedules[1], 3));
    for (graph::UserId u : {0u, 1u}) {
      const graph::UserId v = u == 0 ? 1 : 0;
      const Seconds tax =
          7 * static_cast<Seconds>(dht.lookup_from(u, v).hops);
      const auto friend_store = absolute(schedules[v], 3);
      for (const auto& r : serve::user_requests(config.workload, seed, u, 1)) {
        ++requests;
        std::optional<Seconds> latency;
        if (r.kind == serve::RequestKind::kPostWrite) {
          // Durable at the first non-owner responsible node: the friend.
          if (const auto next = friend_store.next_at_or_after(r.time))
            latency = *next - r.time;
        } else {
          // Read and single-contact feed both resolve v's key (one
          // lookup, taxed) and wait on v's whole responsible group.
          ++lookups;
          hops += dht.lookup_from(u, v).hops;
          if (const auto next = both.next_at_or_after(r.time))
            latency = *next - r.time + tax;
        }
        if (!latency) {
          ++unserved;
          ++slo_misses;
        } else {
          latency_sum += *latency;
          if (*latency > config.slo) ++slo_misses;
        }
      }
    }
    EXPECT_GT(requests, 0u);
    EXPECT_EQ(report.requests, requests) << "seed " << seed;
    EXPECT_EQ(report.unserved, unserved) << "seed " << seed;
    EXPECT_EQ(report.slo_misses, slo_misses) << "seed " << seed;
    EXPECT_EQ(report.latency.sum(), latency_sum) << "seed " << seed;
    EXPECT_EQ(report.regime.lookups, lookups) << "seed " << seed;
    EXPECT_EQ(report.regime.lookup_hops, hops) << "seed " << seed;
    // Degree-1 feeds never revisit an owner.
    EXPECT_EQ(report.regime.locality_hits, 0u);
    EXPECT_EQ(report.regime.groups, 2u);
    // Two-node ring at replication 2: one holder beyond each owner.
    EXPECT_EQ(report.regime.replica_holders, 2u);
    EXPECT_EQ(report.regime.storekeepers, 0u);
  }
}

// ----------------------------------- serving-level: regime differentials

synth::ScaleStudyInput small_input() {
  synth::ScaleOptions options;
  options.users = 400;
  synth::ScaleInputConfig config;
  config.preset = synth::scale_preset(options);
  config.chunk_users = 128;
  return synth::build_scale_study_input(config, 20120618);
}

/// Churny base the differential and metamorphic tests run under.
ServingConfig regime_config(placement::StorageRegime regime) {
  ServingConfig config;
  config.regime = regime;
  config.replicas = 3;
  config.served_users = 24;
  config.workload.horizon_days = 7;
  config.faults.seed = 5;
  config.faults.session_no_show = 0.3;
  config.faults.session_truncate = 0.3;
  config.faults.truncate_max_fraction = 0.8;
  config.social_dht.replication = 3;
  config.social_dht.hop_cost = 5;
  config.super_peer.volunteer_threshold = 0.05;
  config.super_peer.target_availability = 0.7;
  return config;
}

ServingReport run_small(const synth::ScaleStudyInput& input,
                        const ServingConfig& config, std::uint64_t seed,
                        util::ThreadPool* pool = nullptr) {
  return run_serving_study(input.dataset, input.schedules, input.cohort,
                           seed, config, pool);
}

TEST(SocialDhtServingTest, ClusterCapOneMatchesPlainDhtBitForBit) {
  // Both exact degeneracies of the socially-aware remap, under churn:
  // cap-1 clustering and the remap switched off must produce the same
  // request log as each other — the same ring, key for key.
  const auto input = small_input();
  auto config = regime_config(placement::StorageRegime::kSocialDht);
  config.social_dht.cluster_cap = 1;
  const auto capped = run_small(input, config, 11);
  config.social_dht = config.social_dht.plain();
  config.social_dht.cluster_cap = 16;
  const auto plain = run_small(input, config, 11);
  EXPECT_EQ(capped, plain);
  EXPECT_GT(capped.regime.lookups, 0u);
}

TEST(SocialDhtServingTest, ZeroPlanResilienceMatchesNaiveDhtPath) {
  // Under the zero fault plan the resilient client must reproduce the
  // naive DHT serving path's request log bit for bit (the resilience
  // alternatives are provably no earlier; only effort counters differ).
  const auto input = small_input();
  auto config = regime_config(placement::StorageRegime::kSocialDht);
  config.faults = {};
  const auto naive = run_small(input, config, 11);

  config.resilience.hedged_reads = true;
  config.resilience.stale_failover = true;
  config.resilience.degrade_feeds = true;
  const auto resilient = run_small(input, config, 11);
  EXPECT_EQ(resilient.request_log_checksum, naive.request_log_checksum);
  EXPECT_EQ(resilient.read, naive.read);
  EXPECT_EQ(resilient.feed, naive.feed);
  EXPECT_EQ(resilient.write, naive.write);
  EXPECT_EQ(resilient.latency, naive.latency);
  EXPECT_EQ(resilient.unserved, naive.unserved);
  EXPECT_EQ(resilient.regime, naive.regime);
  EXPECT_EQ(resilient.resilience.hedge_wins, 0u);
  EXPECT_EQ(resilient.resilience.stale_served, 0u);
  EXPECT_EQ(resilient.resilience.degraded_feeds, 0u);
}

TEST(SocialDhtServingTest, SocialRemapNeverIncreasesMeanHops) {
  // The metamorphic heart of the regime: same seed, same workload — the
  // friend-clustered ring resolves the same number of lookups in no more
  // total hops than the plain ring, and actually converts fan-in
  // duplicates into free locality hits.
  const auto input = small_input();
  for (const std::uint64_t seed : {5u, 11u}) {
    auto config = regime_config(placement::StorageRegime::kSocialDht);
    const auto social = run_small(input, config, seed);
    config.social_dht = config.social_dht.plain();
    const auto plain = run_small(input, config, seed);

    EXPECT_EQ(social.requests, plain.requests) << "seed " << seed;
    EXPECT_EQ(social.regime.lookups, plain.regime.lookups) << "seed " << seed;
    EXPECT_LE(social.regime.mean_lookup_hops(),
              plain.regime.mean_lookup_hops())
        << "seed " << seed;
    EXPECT_GT(social.regime.locality_hits, plain.regime.locality_hits)
        << "seed " << seed;
    EXPECT_GT(social.regime.lookups, 0u);
  }
}

TEST(SocialDhtServingTest, RoutingIsIndependentOfTheFaultPlan) {
  // Lookups route on the immutable ring: the fault realization changes
  // waits, never routes — hop totals are identical with faults on or off.
  const auto input = small_input();
  const auto faulted =
      run_small(input, regime_config(placement::StorageRegime::kSocialDht), 11);
  auto config = regime_config(placement::StorageRegime::kSocialDht);
  config.faults = {};
  const auto calm = run_small(input, config, 11);
  EXPECT_EQ(faulted.regime.lookups, calm.regime.lookups);
  EXPECT_EQ(faulted.regime.lookup_hops, calm.regime.lookup_hops);
  EXPECT_EQ(faulted.regime.locality_hits, calm.regime.locality_hits);
  // ...while the faults did degrade the waits.
  EXPECT_GE(faulted.slo_misses, calm.slo_misses);
}

TEST(SuperPeerServingTest, ThresholdOneDegradesToReplicaGroupExactly) {
  // volunteer_threshold 1.0 empties the directory (no synthetic schedule
  // covers a full day), so the regime must reproduce the plain
  // replica-group report bit for bit — whole-report equality, at several
  // seeds and thread counts.
  const auto input = small_input();
  SuperPeerConfig strict;
  strict.volunteer_threshold = 1.0;
  EXPECT_TRUE(
      SuperPeerDirectory(input.schedules, strict).volunteers().empty());

  for (const std::uint64_t seed : {5u, 11u, 23u}) {
    auto config = regime_config(placement::StorageRegime::kSuperPeer);
    config.super_peer.volunteer_threshold = 1.0;
    const auto conrep =
        run_small(input, regime_config(placement::StorageRegime::kReplicaGroup),
                  seed);
    const auto super_serial = run_small(input, config, seed);
    EXPECT_EQ(super_serial, conrep) << "seed " << seed;

    util::ThreadPool pool(4);
    const auto super_parallel = run_small(input, config, seed, &pool);
    EXPECT_EQ(super_parallel, conrep) << "seed " << seed;
  }
}

TEST(SuperPeerServingTest, AvailabilityMonotoneInTargetAvailability) {
  // The prefix property at serving level: raising target_availability
  // only adds storekeepers, so delivered availability and storekeeper
  // counts are nondecreasing and unserved/SLO misses nonincreasing.
  const auto input = small_input();
  std::uint64_t prev_keepers = 0, prev_online = 0;
  std::uint64_t prev_unserved = UINT64_MAX, prev_misses = UINT64_MAX;
  for (const double target : {0.2, 0.5, 0.8}) {
    auto config = regime_config(placement::StorageRegime::kSuperPeer);
    config.super_peer.target_availability = target;
    const auto report = run_small(input, config, 11);
    EXPECT_GE(report.regime.storekeepers, prev_keepers) << target;
    EXPECT_GE(report.regime.online_seconds, prev_online) << target;
    EXPECT_LE(report.unserved, prev_unserved) << target;
    EXPECT_LE(report.slo_misses, prev_misses) << target;
    prev_keepers = report.regime.storekeepers;
    prev_online = report.regime.online_seconds;
    prev_unserved = report.unserved;
    prev_misses = report.slo_misses;
  }
  EXPECT_GT(prev_keepers, 0u);
}

TEST(SuperPeerServingTest, StorekeepersNeverHurtTheReplicaGroupBaseline) {
  // Storekeepers only widen the read surface: availability at least the
  // plain group's, unserved at most — exact dominance, not statistical.
  const auto input = small_input();
  for (const std::uint64_t seed : {5u, 11u}) {
    const auto conrep =
        run_small(input, regime_config(placement::StorageRegime::kReplicaGroup),
                  seed);
    const auto super =
        run_small(input, regime_config(placement::StorageRegime::kSuperPeer),
                  seed);
    EXPECT_EQ(super.requests, conrep.requests) << "seed " << seed;
    EXPECT_GE(super.regime.online_seconds, conrep.regime.online_seconds)
        << "seed " << seed;
    EXPECT_LE(super.unserved, conrep.unserved) << "seed " << seed;
    EXPECT_LE(super.latency.sum(), conrep.latency.sum()) << "seed " << seed;
    EXPECT_GT(super.regime.storekeepers, 0u) << "seed " << seed;
    EXPECT_GE(super.regime.replication_degree(),
              conrep.regime.replication_degree())
        << "seed " << seed;
  }
}

TEST(SuperPeerServingTest, FullDhtCrashDegradesToReplicaGroup) {
  // dht_crash 1.0 holds every volunteer down for the whole horizon: no
  // storekeeper is ever assigned and the report equals the plain
  // replica-group run under the same plan (the knob touches nothing else
  // on the serving path).
  const auto input = small_input();
  auto config = regime_config(placement::StorageRegime::kSuperPeer);
  config.faults.dht_crash = 1.0;
  const auto crashed = run_small(input, config, 11);

  auto base = regime_config(placement::StorageRegime::kReplicaGroup);
  base.faults.dht_crash = 1.0;
  const auto conrep = run_small(input, base, 11);
  EXPECT_EQ(crashed, conrep);
  EXPECT_EQ(crashed.regime.storekeepers, 0u);
}

// ------------------------------------------------ cross-regime identity

TEST(StorageRegimeTest, BitIdenticalAcrossThreadCountsAndObservability) {
  const auto input = small_input();
  for (const auto regime : {placement::StorageRegime::kSocialDht,
                            placement::StorageRegime::kSuperPeer}) {
    const auto config = regime_config(regime);
    const auto serial = run_small(input, config, 11);
    EXPECT_GT(serial.requests, 0u);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      util::ThreadPool pool(threads);
      const auto parallel = run_small(input, config, 11, &pool);
      EXPECT_EQ(parallel, serial)
          << to_string(regime) << " at " << threads << " threads";
    }
    const bool was_enabled = obs::enabled();
    obs::set_enabled(false);
    const auto dark = run_small(input, config, 11);
    obs::set_enabled(was_enabled);
    EXPECT_EQ(dark, serial) << to_string(regime);
  }
}

TEST(StorageRegimeTest, ReplicaGroupReportsGroupAxesOnly) {
  const auto input = small_input();
  const auto report = run_small(
      input, regime_config(placement::StorageRegime::kReplicaGroup), 11);
  EXPECT_EQ(report.regime.groups, 24u);
  EXPECT_EQ(report.regime.lookups, 0u);
  EXPECT_EQ(report.regime.lookup_hops, 0u);
  EXPECT_EQ(report.regime.locality_hits, 0u);
  EXPECT_EQ(report.regime.storekeepers, 0u);
  EXPECT_LE(report.regime.replication_degree(), 3.0);
  EXPECT_GT(report.regime.online_seconds, 0u);
  const Seconds horizon = 7 * kDaySeconds;
  EXPECT_GT(report.regime.availability(horizon), 0.0);
  EXPECT_LE(report.regime.availability(horizon), 1.0);
}

}  // namespace
}  // namespace dosn
