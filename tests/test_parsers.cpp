// Unit tests for the dataset file parsers and writers (round-trips).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "trace/parsers.hpp"
#include "util/error.hpp"

namespace dosn::trace {
namespace {

using graph::GraphKind;

class ParsersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs each case as its own process,
    // so a shared directory races against a sibling's TearDown.
    dir_ = std::filesystem::path(testing::TempDir()) /
           (std::string("dosn_parsers_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& body) {
    const auto path = (dir_ / name).string();
    std::ofstream out(path);
    out << body;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(ParsersTest, IdMapInternsDense) {
  IdMap ids;
  EXPECT_EQ(ids.intern("alice"), 0u);
  EXPECT_EQ(ids.intern("bob"), 1u);
  EXPECT_EQ(ids.intern("alice"), 0u);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids.name_of(1), "bob");
  EXPECT_EQ(ids.find("bob"), 1u);
  EXPECT_EQ(ids.find("nobody"), std::nullopt);
}

TEST_F(ParsersTest, EdgeListBasic) {
  const auto path = write_file("g.edges",
                               "# comment\n"
                               "a b\n"
                               "\n"
                               "b c 123456\n"   // trailing field ignored
                               "a c \\N\n");    // New Orleans style
  IdMap ids;
  const auto edges = load_edge_list(path, ids);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(edges[0], RawEdge(0, 1));
  EXPECT_EQ(edges[1], RawEdge(1, 2));
}

TEST_F(ParsersTest, EdgeListRejectsShortLine) {
  const auto path = write_file("bad.edges", "justone\n");
  IdMap ids;
  EXPECT_THROW(load_edge_list(path, ids), ParseError);
}

TEST_F(ParsersTest, ActivitiesBasic) {
  const auto path = write_file("t.activities",
                               "% comment\n"
                               "alice bob 100\n"
                               "bob alice 200\n");
  IdMap ids;
  const auto acts = load_activities(path, ids);
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_EQ(acts[0].receiver, ids.find("alice"));
  EXPECT_EQ(acts[0].creator, ids.find("bob"));
  EXPECT_EQ(acts[0].timestamp, 100);
}

TEST_F(ParsersTest, ActivitiesRejectBadTimestamp) {
  const auto path = write_file("bad.activities", "a b notatime\n");
  IdMap ids;
  EXPECT_THROW(load_activities(path, ids), ParseError);
}

TEST_F(ParsersTest, ActivitiesRejectShortLine) {
  const auto path = write_file("short.activities", "a b\n");
  IdMap ids;
  EXPECT_THROW(load_activities(path, ids), ParseError);
}

TEST_F(ParsersTest, MissingFileThrowsIoError) {
  IdMap ids;
  EXPECT_THROW(load_edge_list((dir_ / "nope").string(), ids), IoError);
}

TEST_F(ParsersTest, LoadDatasetSharesIdSpace) {
  const auto edges = write_file("d.edges", "a b\nb c\n");
  const auto acts = write_file("d.activities",
                               "a b 100\n"
                               "d a 50\n");  // 'd' appears only in activities
  const auto d =
      load_dataset("mini", edges, acts, GraphKind::kUndirected);
  EXPECT_EQ(d.name, "mini");
  EXPECT_EQ(d.num_users(), 4u);  // a b c d
  EXPECT_EQ(d.graph.num_edges(), 2u);
  EXPECT_EQ(d.trace.size(), 2u);
  EXPECT_EQ(d.graph.degree(3), 0u);  // 'd' has no edges
}

TEST_F(ParsersTest, DirectedDatasetContactsAreFollowers) {
  const auto edges = write_file("tw.edges", "f1 star\nf2 star\n");
  const auto acts = write_file("tw.activities", "star star 10\n");
  const auto d = load_dataset("tw", edges, acts, GraphKind::kDirected);
  // star (id 1) has two followers.
  EXPECT_EQ(d.graph.degree(1), 2u);
  EXPECT_EQ(d.graph.degree(0), 0u);
}

TEST_F(ParsersTest, SaveLoadRoundTripUndirected) {
  graph::SocialGraphBuilder b(GraphKind::kUndirected, 3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Dataset d;
  d.name = "rt";
  d.graph = std::move(b).build();
  d.trace = ActivityTrace(3, {{1, 0, 111}, {2, 1, 222}});

  const auto prefix = (dir_ / "rt").string();
  save_dataset(prefix, d);
  const auto loaded = load_dataset("rt", prefix + ".edges",
                                   prefix + ".activities",
                                   GraphKind::kUndirected);
  EXPECT_EQ(loaded.num_users(), 3u);
  EXPECT_EQ(loaded.graph.num_edges(), 2u);
  ASSERT_EQ(loaded.trace.size(), 2u);
  EXPECT_EQ(loaded.trace.all()[0].timestamp, 111);
}

TEST_F(ParsersTest, SaveLoadRoundTripDirected) {
  graph::SocialGraphBuilder b(GraphKind::kDirected, 3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(2, 1);
  Dataset d;
  d.name = "rtd";
  d.graph = std::move(b).build();
  d.trace = ActivityTrace(3, {});

  const auto prefix = (dir_ / "rtd").string();
  save_dataset(prefix, d);
  const auto loaded = load_dataset("rtd", prefix + ".edges",
                                   prefix + ".activities",
                                   GraphKind::kDirected);
  EXPECT_EQ(loaded.graph.num_edges(), 3u);
  EXPECT_EQ(loaded.graph.degree(1), 2u);  // followers preserved
}

}  // namespace
}  // namespace dosn::trace
