// Tests for the observability layer (DESIGN.md §9): registry determinism,
// histogram bucket edges, span-tree nesting, JSON/table export, contract
// firing on bad registrations — and the subsystem's central guarantee that
// toggling observability cannot perturb a single study output bit.
//
// Suite names contain "Obs" so the TSan CI job (-R filter) exercises the
// sharded-counter and span paths under the race detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graph/degree_stats.hpp"
#include "net/replica_sim.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "sim/study.hpp"
#include "synth/presets.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace dosn::obs {
namespace {

using util::ContractError;

/// Every test runs with obs enabled unless it flips the switch itself;
/// restore on exit so test order cannot leak state.
class ObsEnabledGuard {
 public:
  ObsEnabledGuard() : was_(enabled()) { set_enabled(true); }
  ~ObsEnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

// ------------------------------------------------------- mini JSON parser
// Just enough of RFC 8259 to round-trip the exporter's output; any
// deviation from valid JSON is a test failure via std::runtime_error.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class MiniJsonParser {
 public:
  explicit MiniJsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("mini-json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      case 't':
        if (!consume_word("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return v;
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("bad escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          const int code =
              std::stoi(std::string(text_.substr(pos_, 4)), nullptr, 16);
          pos_ += 4;
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = util::parse_f64(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------- counters

TEST(ObsCounter, AddsAndSumsAcrossShards) {
  ObsEnabledGuard guard;
  Counter& c = Registry::global().counter("test.counter.basic");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, DisabledAddIsNoOp) {
  ObsEnabledGuard guard;
  Counter& c = Registry::global().counter("test.counter.disabled");
  c.reset();
  set_enabled(false);
  c.add(1000);
  EXPECT_EQ(c.value(), 0u);
  set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(ObsCounter, RegistrationReturnsStableReference) {
  ObsEnabledGuard guard;
  Counter& a = Registry::global().counter("test.counter.stable");
  Counter& b = Registry::global().counter("test.counter.stable");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsGauge, SetAddRecordMax) {
  ObsEnabledGuard guard;
  Gauge& g = Registry::global().gauge("test.gauge.basic");
  g.reset();
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.record_max(100);
  EXPECT_EQ(g.value(), 100);
  g.record_max(50);  // below the mark: no change
  EXPECT_EQ(g.value(), 100);
}

// --------------------------------------------------------------- registry

TEST(ObsRegistry, SnapshotWalksNamesInSortedOrder) {
  ObsEnabledGuard guard;
  // Registered deliberately out of order.
  Registry::global().counter("test.order.b");
  Registry::global().counter("test.order.a");
  Registry::global().counter("test.order.c");
  const Snapshot snap = Registry::global().snapshot();
  std::vector<std::string> names;
  for (const auto& c : snap.counters) names.push_back(c.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "test.order.a"),
            names.end());
}

TEST(ObsRegistry, DuplicateRegistrationAsOtherKindFiresContract) {
  ObsEnabledGuard guard;
  Registry::global().counter("test.kind.clash");
  EXPECT_THROW(Registry::global().gauge("test.kind.clash"), ContractError);
  constexpr std::int64_t kBounds[] = {1, 2};
  EXPECT_THROW(Registry::global().histogram("test.kind.clash", kBounds),
               ContractError);
}

TEST(ObsRegistry, HistogramReboundsFiresContract) {
  ObsEnabledGuard guard;
  constexpr std::int64_t kBounds[] = {1, 10, 100};
  Histogram& h = Registry::global().histogram("test.kind.rebounds", kBounds);
  // Same bounds: same histogram.
  EXPECT_EQ(&Registry::global().histogram("test.kind.rebounds", kBounds),
            &h);
  constexpr std::int64_t kOther[] = {1, 10, 1000};
  EXPECT_THROW(Registry::global().histogram("test.kind.rebounds", kOther),
               ContractError);
}

TEST(ObsRegistry, BadHistogramBoundsFireContract) {
  ObsEnabledGuard guard;
  constexpr std::int64_t kUnsorted[] = {10, 1};
  EXPECT_THROW(Registry::global().histogram("test.bounds.unsorted", kUnsorted),
               ContractError);
  constexpr std::int64_t kDuplicate[] = {1, 1, 2};
  EXPECT_THROW(
      Registry::global().histogram("test.bounds.duplicate", kDuplicate),
      ContractError);
  EXPECT_THROW(Registry::global().histogram("test.bounds.empty", {}),
               ContractError);
}

TEST(ObsRegistry, ResetZeroesButKeepsReferencesValid) {
  ObsEnabledGuard guard;
  Counter& c = Registry::global().counter("test.reset.counter");
  c.add(5);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the reference stays usable after reset
  EXPECT_EQ(c.value(), 2u);
}

// -------------------------------------------------------------- histogram

TEST(ObsHistogram, UpperInclusiveBucketEdges) {
  ObsEnabledGuard guard;
  constexpr std::int64_t kBounds[] = {0, 10, 20};
  Histogram& h = Registry::global().histogram("test.histo.edges", kBounds);
  h.reset();

  // value -> expected bucket (upper-inclusive; 3 = overflow).
  const std::vector<std::pair<std::int64_t, std::size_t>> cases = {
      {-5, 0}, {0, 0}, {1, 1}, {10, 1}, {11, 2}, {20, 2}, {21, 3},
  };
  for (const auto& [v, bucket] : cases) {
    h.reset();
    h.record(v);
    for (std::size_t i = 0; i <= std::size(kBounds); ++i)
      EXPECT_EQ(h.bucket_count(i), i == bucket ? 1u : 0u)
          << "value " << v << " bucket " << i;
  }

  h.reset();
  for (const auto& [v, bucket] : cases) h.record(v);
  EXPECT_EQ(h.count(), cases.size());
  EXPECT_EQ(h.sum(), -5 + 0 + 1 + 10 + 11 + 20 + 21);
}

// ------------------------------------------------------------------ spans

TEST(ObsSpans, NestingBuildsTreeWithSortedChildren) {
  ObsEnabledGuard guard;
  {
    ScopedTimer outer("test-span-outer");
    {
      ScopedTimer z("test-span-z");
    }
    {
      ScopedTimer a("test-span-a");
    }
    {
      ScopedTimer a_again("test-span-a");
    }
  }

  const Snapshot snap = Registry::global().snapshot();
  const auto outer = std::find_if(
      snap.spans.begin(), snap.spans.end(),
      [](const SpanSample& s) { return s.name == "test-span-outer"; });
  ASSERT_NE(outer, snap.spans.end());
  EXPECT_EQ(outer->calls, 1u);
  ASSERT_EQ(outer->children.size(), 2u);
  // Children are sorted by name, not by first-open order.
  EXPECT_EQ(outer->children[0].name, "test-span-a");
  EXPECT_EQ(outer->children[0].calls, 2u);
  EXPECT_EQ(outer->children[1].name, "test-span-z");
  EXPECT_EQ(outer->children[1].calls, 1u);
}

TEST(ObsSpans, DisabledTimerLeavesNoTrace) {
  ObsEnabledGuard guard;
  set_enabled(false);
  {
    ScopedTimer t("test-span-disabled");
  }
  set_enabled(true);
  const Snapshot snap = Registry::global().snapshot();
  for (const auto& s : snap.spans) EXPECT_NE(s.name, "test-span-disabled");
}

// ----------------------------------------------- sharded counters (TSan)

TEST(ObsSharded, CounterSumExactUnderThreadPool) {
  ObsEnabledGuard guard;
  Counter& c = Registry::global().counter("test.sharded.pool");
  c.reset();
  constexpr std::size_t kIterations = 20000;
  util::ThreadPool pool(4);
  pool.for_each_index(kIterations, [&](std::size_t) { c.add(1); });
  // Shard merging is a commutative sum, so the total is exact no matter
  // which thread landed on which shard.
  EXPECT_EQ(c.value(), kIterations);
}

TEST(ObsSharded, MixedMetricsUnderThreadPool) {
  ObsEnabledGuard guard;
  Counter& c = Registry::global().counter("test.sharded.mixed.counter");
  Gauge& g = Registry::global().gauge("test.sharded.mixed.gauge");
  constexpr std::int64_t kBounds[] = {8, 64, 512};
  Histogram& h =
      Registry::global().histogram("test.sharded.mixed.histo", kBounds);
  c.reset();
  g.reset();
  h.reset();

  constexpr std::size_t kIterations = 4096;
  util::ThreadPool pool(4);
  pool.for_each_index(kIterations, [&](std::size_t i) {
    c.add(2);
    g.record_max(static_cast<std::int64_t>(i));
    h.record(static_cast<std::int64_t>(i % 1000));
  });
  EXPECT_EQ(c.value(), 2 * kIterations);
  EXPECT_EQ(g.value(), static_cast<std::int64_t>(kIterations - 1));
  EXPECT_EQ(h.count(), kIterations);
}

// -------------------------------------------------------------- exporters

TEST(ObsJson, SnapshotRoundTripsThroughParser) {
  ObsEnabledGuard guard;
  Counter& c = Registry::global().counter("test.json.counter");
  c.reset();
  c.add(123);
  Gauge& g = Registry::global().gauge("test.json.gauge");
  g.reset();
  g.set(-7);
  constexpr std::int64_t kBounds[] = {1, 2};
  Histogram& h = Registry::global().histogram("test.json.histo", kBounds);
  h.reset();
  h.record(1);
  h.record(2);
  h.record(3);

  const std::string json = to_json(Registry::global().snapshot());
  const JsonValue root = MiniJsonParser(json).parse();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);

  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* counter = counters->find("test.json.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->number, 123.0);

  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* gauge = gauges->find("test.json.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->number, -7.0);

  const JsonValue* histograms = root.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* histo = histograms->find("test.json.histo");
  ASSERT_NE(histo, nullptr);
  EXPECT_EQ(histo->find("count")->number, 3.0);
  EXPECT_EQ(histo->find("sum")->number, 6.0);
  const JsonValue* buckets = histo->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->items.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(buckets->items[0].find("le")->number, 1.0);
  EXPECT_EQ(buckets->items[0].find("count")->number, 1.0);
  EXPECT_EQ(buckets->items[2].find("le")->string, "+inf");
  EXPECT_EQ(buckets->items[2].find("count")->number, 1.0);

  ASSERT_NE(root.find("spans"), nullptr);
  EXPECT_EQ(root.find("spans")->kind, JsonValue::Kind::kArray);
}

TEST(ObsJson, WriterEnforcesNestingContracts) {
  util::JsonWriter ok;
  ok.begin_object();
  ok.field("k", 1);
  ok.end_object();
  EXPECT_EQ(MiniJsonParser(ok.str()).parse().find("k")->number, 1.0);

  util::JsonWriter keyless;
  keyless.begin_object();
  EXPECT_THROW(keyless.value(1.0), ContractError);  // value without a key

  util::JsonWriter unbalanced;
  unbalanced.begin_object();
  EXPECT_THROW(unbalanced.end_array(), ContractError);
}

TEST(ObsJson, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(util::format_double(0.1), "0.1");
  EXPECT_EQ(util::format_double(1.0), "1");
  EXPECT_EQ(util::format_double(-2.5), "-2.5");
  const std::vector<double> values = {0.1,    1.0 / 3.0, 1e-9, 6.02e23,
                                      -123.456, 20120618.0};
  for (const double v : values) {
    const std::string s = util::format_double(v);
    EXPECT_EQ(util::parse_f64(s), v) << s;  // exact round trip
  }
}

TEST(ObsTable, RendersMetricNamesAndSpans) {
  ObsEnabledGuard guard;
  Counter& c = Registry::global().counter("test.table.counter");
  c.reset();
  c.add(9);
  {
    ScopedTimer t("test-table-span");
  }
  const std::string table = to_table(Registry::global().snapshot());
  EXPECT_NE(table.find("test.table.counter"), std::string::npos);
  EXPECT_NE(table.find("test-table-span"), std::string::npos);
}

// ------------------------------------------------- instrumented hot paths

TEST(ObsNet, ReplicaSimCountersGrow) {
  ObsEnabledGuard guard;
  constexpr net::Seconds kH = 3600;
  const net::DaySchedule day(interval::IntervalSet::single(8 * kH, 12 * kH));
  std::vector<net::DaySchedule> nodes{day, day, day};
  std::vector<net::UpdateSpec> updates{{9 * kH, 0}, {10 * kH, 1}};
  net::ReplicaSimConfig cfg;

  Counter& runs = Registry::global().counter("net.replica_sim.runs");
  Counter& events = Registry::global().counter("net.event_queue.events");
  const std::uint64_t runs_before = runs.value();
  const std::uint64_t events_before = events.value();

  const auto report = net::simulate_replica_group(nodes, updates, cfg);
  EXPECT_GT(report.events, 0u);
  EXPECT_EQ(runs.value(), runs_before + 1);
  EXPECT_GE(events.value(), events_before + report.events);
}

// ------------------------------------- the central guarantee: no feedback

class ObsStudy : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::scaled(synth::facebook_preset(), 0.02);
    util::Rng rng(42);
    dataset_ = new trace::Dataset(synth::generate_study_dataset(preset, rng));
    cohort_degree_ = graph::most_populated_degree(dataset_->graph, 4, 12);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static trace::Dataset* dataset_;
  static std::size_t cohort_degree_;
};

trace::Dataset* ObsStudy::dataset_ = nullptr;
std::size_t ObsStudy::cohort_degree_ = 0;

TEST_F(ObsStudy, ReplicationSweepBitIdenticalObsOnAndOff) {
  ObsEnabledGuard guard;
  sim::Study study(*dataset_, 2012);
  sim::Study::Options opts;
  opts.cohort_degree = cohort_degree_;
  opts.k_max = std::min<std::size_t>(cohort_degree_, 4);
  opts.repetitions = 1;
  opts.threads = 2;

  set_enabled(true);
  const auto with_obs = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {},
      placement::Connectivity::kConRep, opts);
  set_enabled(false);
  const auto without_obs = study.replication_sweep(
      onlinetime::ModelKind::kSporadic, {},
      placement::Connectivity::kConRep, opts);
  set_enabled(true);

  ASSERT_EQ(with_obs.xs, without_obs.xs);
  ASSERT_EQ(with_obs.policies.size(), without_obs.policies.size());
  for (std::size_t p = 0; p < with_obs.policies.size(); ++p) {
    const auto& a = with_obs.policies[p];
    const auto& b = without_obs.policies[p];
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t k = 0; k < a.points.size(); ++k) {
      // Exact equality on every double: metrics are write-only sinks, so
      // the obs switch must not perturb one output bit (hard rule #1 of
      // src/obs/obs.hpp).
      EXPECT_EQ(a.points[k].availability, b.points[k].availability)
          << "p=" << p << " k=" << k;
      EXPECT_EQ(a.points[k].max_availability, b.points[k].max_availability);
      EXPECT_EQ(a.points[k].aod_time, b.points[k].aod_time);
      EXPECT_EQ(a.points[k].aod_activity, b.points[k].aod_activity);
      EXPECT_EQ(a.points[k].aod_activity_expected,
                b.points[k].aod_activity_expected);
      EXPECT_EQ(a.points[k].aod_activity_unexpected,
                b.points[k].aod_activity_unexpected);
      EXPECT_EQ(a.points[k].delay_actual_h, b.points[k].delay_actual_h);
      EXPECT_EQ(a.points[k].delay_observed_h, b.points[k].delay_observed_h);
      EXPECT_EQ(a.points[k].replicas_used, b.points[k].replicas_used);
    }
  }
}

TEST_F(ObsStudy, SweepPopulatesExpectedMetrics) {
  ObsEnabledGuard guard;
  Registry::global().reset();
  sim::Study study(*dataset_, 77);
  sim::Study::Options opts;
  opts.cohort_degree = cohort_degree_;
  opts.k_max = std::min<std::size_t>(cohort_degree_, 4);
  opts.repetitions = 1;
  opts.policies = {placement::PolicyKind::kMaxAv};
  (void)study.replication_sweep(onlinetime::ModelKind::kSporadic, {},
                                placement::Connectivity::kConRep, opts);

  EXPECT_GT(Registry::global().counter("sim.users_evaluated").value(), 0u);
  EXPECT_GT(Registry::global().counter("sim.prefix_sweeps").value(), 0u);
  EXPECT_GT(Registry::global().counter("placement.maxav.gain_evals").value(),
            0u);
  EXPECT_GT(Registry::global().counter("placement.maxav.selections").value(),
            0u);

  const Snapshot snap = Registry::global().snapshot();
  const auto span = std::find_if(
      snap.spans.begin(), snap.spans.end(), [](const SpanSample& s) {
        return s.name == "study.replication_sweep";
      });
  ASSERT_NE(span, snap.spans.end());
  EXPECT_EQ(span->calls, 1u);
  const auto child = std::find_if(
      span->children.begin(), span->children.end(), [](const SpanSample& s) {
        return s.name == "study.evaluate_policy";
      });
  ASSERT_NE(child, span->children.end());
  EXPECT_GE(child->calls, 1u);
}

}  // namespace
}  // namespace dosn::obs
