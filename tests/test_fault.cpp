// Tests for the deterministic fault-injection layer (net/fault): plan
// validation and scaling, the zero-plan identity, per-entity stream
// determinism, intensity nesting, outage-window subtraction, and the obs
// counter flush.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "interval/day_schedule.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace dosn::net {
namespace {

using interval::DaySchedule;
using interval::Interval;
using interval::IntervalSet;
using interval::kDaySeconds;

constexpr Seconds kH = 3600;

DaySchedule window(Seconds start_h, Seconds end_h) {
  return DaySchedule(IntervalSet::single(start_h * kH, end_h * kH));
}

DaySchedule two_windows() {
  IntervalSet s;
  s.add(8 * kH, 10 * kH);
  s.add(14 * kH, 18 * kH);
  return DaySchedule(s);
}

FaultPlan churn_plan(std::uint64_t seed = 7) {
  FaultPlan plan;
  plan.seed = seed;
  plan.session_no_show = 0.3;
  plan.session_truncate = 0.5;
  plan.truncate_max_fraction = 0.6;
  return plan;
}

IntervalSet as_set(std::span<const Interval> pieces) {
  IntervalSet out;
  for (const auto& iv : pieces) out.add(iv);
  return out;
}

TEST(FaultPlan, DefaultIsZero) {
  FaultPlan plan;
  EXPECT_TRUE(plan.zero());
  plan.seed = 99;  // the seed alone does not make a plan non-zero
  EXPECT_TRUE(plan.zero());
  plan.message_drop = 0.1;
  EXPECT_FALSE(plan.zero());
}

TEST(FaultPlan, TruncationWithoutFractionIsZero) {
  FaultPlan plan;
  plan.session_truncate = 0.5;  // gate fires but never cuts anything
  EXPECT_TRUE(plan.zero());
  plan.truncate_max_fraction = 0.1;
  EXPECT_FALSE(plan.zero());
}

TEST(FaultPlan, ValidateRejectsBadValues) {
  FaultPlan plan;
  plan.message_drop = 1.5;
  EXPECT_THROW(validate(plan), ConfigError);
  plan = FaultPlan{};
  plan.session_no_show = -0.1;
  EXPECT_THROW(validate(plan), ConfigError);
  plan = FaultPlan{};
  plan.latency_jitter_max = -1;
  EXPECT_THROW(validate(plan), ConfigError);
  plan = FaultPlan{};
  plan.node_outages.push_back({0, 100, 50});  // recovers before it starts
  EXPECT_THROW(validate(plan), ConfigError);
  plan = FaultPlan{};
  plan.relay_outages.push_back({200, 100});
  EXPECT_THROW(validate(plan), ConfigError);
}

TEST(FaultPlan, ScaledEndpointsAndSeed) {
  FaultPlan base = churn_plan(0xabc);
  base.message_drop = 0.4;
  base.latency_jitter_max = 100;
  base.dht_crash = 0.2;
  base.node_outages.push_back({1, 1000, 5000});
  base.node_outages.push_back({2, 2000, std::nullopt});  // crash-stop
  base.relay_outages.push_back({0, 8000});

  const FaultPlan zero = scaled(base, 0.0);
  EXPECT_TRUE(zero.zero());
  EXPECT_EQ(zero.seed, base.seed);

  const FaultPlan half = scaled(base, 0.5);
  EXPECT_EQ(half.seed, base.seed);
  EXPECT_DOUBLE_EQ(half.message_drop, 0.2);
  EXPECT_EQ(half.latency_jitter_max, 50);
  // Transient outage: start preserved, length halved.
  ASSERT_EQ(half.node_outages.size(), 2u);
  EXPECT_EQ(half.node_outages[0].at, 1000);
  EXPECT_EQ(*half.node_outages[0].recover_at, 3000);
  // Crash-stop kept whole at any positive intensity.
  EXPECT_FALSE(half.node_outages[1].recover_at.has_value());
  ASSERT_EQ(half.relay_outages.size(), 1u);
  EXPECT_EQ(half.relay_outages[0].end, 4000);

  EXPECT_THROW(scaled(base, 1.5), ConfigError);
  EXPECT_THROW(scaled(base, -0.5), ConfigError);
}

TEST(FaultInjector, ZeroPlanPreservesSessionsExactly) {
  FaultInjector injector(FaultPlan{});
  EXPECT_TRUE(injector.zero());
  EXPECT_FALSE(injector.drop_message(3));
  EXPECT_EQ(injector.latency_jitter(3), 0);

  const auto sched = two_windows();
  const auto sessions = injector.sessions(0, sched, 3);
  // Day-major order, one interval per (day, piece), no merging.
  ASSERT_EQ(sessions.size(), 6u);
  for (int day = 0; day < 3; ++day) {
    const Seconds base = day * kDaySeconds;
    EXPECT_EQ(sessions[2 * day].start, base + 8 * kH);
    EXPECT_EQ(sessions[2 * day].end, base + 10 * kH);
    EXPECT_EQ(sessions[2 * day + 1].start, base + 14 * kH);
    EXPECT_EQ(sessions[2 * day + 1].end, base + 18 * kH);
  }
  EXPECT_EQ(injector.degrade_day(0, sched), sched);
}

TEST(FaultInjector, SessionsDeterministicPerSeedAndNode) {
  const auto sched = two_windows();
  FaultInjector a(churn_plan(7));
  FaultInjector b(churn_plan(7));
  EXPECT_EQ(a.sessions(1, sched, 30), b.sessions(1, sched, 30));

  // A different plan seed realizes different churn (with 60 pieces the
  // chance of coincidence is negligible and fixed by determinism anyway).
  FaultInjector c(churn_plan(8));
  EXPECT_NE(a.sessions(1, sched, 30), c.sessions(1, sched, 30));
  // Different nodes draw from unrelated streams of the same plan.
  FaultInjector d(churn_plan(7));
  EXPECT_NE(a.sessions(2, sched, 30), d.sessions(1, sched, 30));
}

TEST(FaultInjector, ChurnActuallySkipsAndTruncates) {
  const auto sched = two_windows();
  FaultInjector injector(churn_plan());
  const auto sessions = injector.sessions(0, sched, 60);
  // 120 pieces at 30% no-show: some sessions must vanish...
  EXPECT_LT(sessions.size(), 120u);
  EXPECT_GT(sessions.size(), 40u);
  // ...and the surviving time is strictly less than the ideal total.
  const Seconds ideal = 60 * sched.online_seconds();
  EXPECT_LT(as_set(sessions).measure(), ideal);
  EXPECT_GT(injector.stats().sessions_skipped, 0u);
  EXPECT_GT(injector.stats().sessions_truncated, 0u);
}

TEST(FaultInjector, SessionsNestedAcrossIntensities) {
  const auto sched = two_windows();
  FaultPlan base = churn_plan(0x51ab);
  base.node_outages.push_back({0, 5 * kDaySeconds, 8 * kDaySeconds});

  std::vector<IntervalSet> kept;
  for (const double f : {1.0, 0.6, 0.3, 0.0}) {
    FaultInjector injector(scaled(base, f));
    kept.push_back(as_set(injector.sessions(0, sched, 30)));
  }
  // Higher intensity keeps a subset of what lower intensity keeps:
  // kept[f2] ⊆ kept[f1] for f2 >= f1 (exact nesting, not expectation).
  for (std::size_t i = 0; i + 1 < kept.size(); ++i) {
    EXPECT_EQ(kept[i].subtract(kept[i + 1]).measure(), 0)
        << "intensity step " << i;
    EXPECT_LE(kept[i].measure(), kept[i + 1].measure());
  }
  EXPECT_LT(kept.front().measure(), kept.back().measure());
}

TEST(FaultInjector, CrashStopOutageEndsSessionsForGood) {
  FaultPlan plan;
  plan.node_outages.push_back({0, kDaySeconds + 9 * kH, std::nullopt});
  FaultInjector injector(plan);
  const auto sessions = injector.sessions(0, window(8, 10), 4);
  // Day 0 intact; day 1 cut at 09:00; days 2..3 gone.
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0], (Interval{8 * kH, 10 * kH}));
  EXPECT_EQ(sessions[1],
            (Interval{kDaySeconds + 8 * kH, kDaySeconds + 9 * kH}));
}

TEST(FaultInjector, TransientOutageResumesAfterRecovery) {
  FaultPlan plan;
  plan.node_outages.push_back(
      {0, kDaySeconds + 9 * kH, 2 * kDaySeconds + 9 * kH});
  FaultInjector injector(plan);
  const auto sessions = injector.sessions(0, window(8, 10), 4);
  // Day 1 cut at 09:00, day 2 starts late at 09:00, days 0 and 3 intact.
  ASSERT_EQ(sessions.size(), 4u);
  EXPECT_EQ(sessions[1],
            (Interval{kDaySeconds + 8 * kH, kDaySeconds + 9 * kH}));
  EXPECT_EQ(sessions[2],
            (Interval{2 * kDaySeconds + 9 * kH, 2 * kDaySeconds + 10 * kH}));
  EXPECT_EQ(sessions[3],
            (Interval{3 * kDaySeconds + 8 * kH, 3 * kDaySeconds + 10 * kH}));
  EXPECT_EQ(injector.stats().outage_cuts, 2u);
}

TEST(FaultInjector, OutageSplitsSessionInTheMiddle) {
  FaultPlan plan;
  plan.node_outages.push_back({0, 12 * kH, 13 * kH});
  FaultInjector injector(plan);
  const auto sessions = injector.sessions(0, window(10, 16), 1);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0], (Interval{10 * kH, 12 * kH}));
  EXPECT_EQ(sessions[1], (Interval{13 * kH, 16 * kH}));
}

TEST(FaultInjector, DegradeDayMatchesSessionsDayZero) {
  // degrade_day replays the first day of the per-node stream, so its kept
  // set must equal the day-0 slice of sessions() for a churn-only plan.
  const auto sched = two_windows();
  FaultInjector a(churn_plan(0x77));
  FaultInjector b(churn_plan(0x77));
  const auto day0 = a.sessions(5, sched, 1);
  EXPECT_EQ(b.degrade_day(5, sched).set(), as_set(day0));
}

TEST(FaultInjector, DegradeDayProjectsOutages) {
  FaultPlan plan;
  plan.node_outages.push_back({0, 9 * kH, 10 * kH});
  FaultInjector injector(plan);
  const auto degraded = injector.degrade_day(0, window(8, 12));
  IntervalSet expect;
  expect.add(8 * kH, 9 * kH);
  expect.add(10 * kH, 12 * kH);
  EXPECT_EQ(degraded.set(), expect);

  // A crash-stop blankets the whole daily cycle: in the periodic view a
  // permanently dead node contributes no availability at all.
  FaultPlan crash;
  crash.node_outages.push_back({0, 9 * kH, std::nullopt});
  FaultInjector cinj(crash);
  EXPECT_TRUE(cinj.degrade_day(0, window(8, 12)).empty());
}

TEST(FaultInjector, MessageStreamIsPerSenderAndCounted) {
  FaultPlan plan;
  plan.seed = 3;
  plan.message_drop = 0.5;
  plan.latency_jitter_max = 30;
  FaultInjector a(plan), b(plan);

  std::vector<bool> drops_a, drops_b;
  for (int i = 0; i < 200; ++i) {
    drops_a.push_back(a.drop_message(0));
    a.latency_jitter(0);
    drops_b.push_back(b.drop_message(0));
    b.latency_jitter(0);
  }
  EXPECT_EQ(drops_a, drops_b);
  const auto dropped =
      static_cast<std::size_t>(std::count(drops_a.begin(), drops_a.end(),
                                          true));
  EXPECT_GT(dropped, 50u);
  EXPECT_LT(dropped, 150u);
  EXPECT_EQ(a.stats().messages_dropped, dropped);
  EXPECT_GT(a.stats().jitter_applied, 0u);

  // Interleaving another sender must not disturb sender 0's stream.
  FaultInjector c(plan);
  std::vector<bool> drops_c;
  for (int i = 0; i < 200; ++i) {
    c.drop_message(7);
    c.latency_jitter(7);
    drops_c.push_back(c.drop_message(0));
    c.latency_jitter(0);
  }
  EXPECT_EQ(drops_c, drops_a);
}

TEST(FaultInjector, JitterBoundedAndZeroWhenDisabled) {
  FaultPlan plan;
  plan.latency_jitter_max = 45;
  FaultInjector injector(plan);
  Seconds max_seen = 0;
  for (int i = 0; i < 500; ++i) {
    const Seconds j = injector.latency_jitter(0);
    EXPECT_GE(j, 0);
    EXPECT_LE(j, 45);
    max_seen = std::max(max_seen, j);
  }
  EXPECT_GT(max_seen, 30);  // the whole range is reachable
}

TEST(FaultInjector, DhtCrashDeterministicAndProportional) {
  FaultPlan plan;
  plan.seed = 11;
  plan.dht_crash = 0.25;
  FaultInjector a(plan), b(plan);
  std::size_t crashed = 0;
  for (std::uint64_t id = 0; id < 400; ++id) {
    EXPECT_EQ(a.dht_crashed(id), b.dht_crashed(id));
    if (a.dht_crashed(id)) ++crashed;
  }
  EXPECT_GT(crashed, 60u);
  EXPECT_LT(crashed, 140u);
  FaultInjector none(FaultPlan{});
  EXPECT_FALSE(none.dht_crashed(0));
}

TEST(FaultInjector, RelayDownWindows) {
  FaultPlan plan;
  plan.relay_outages.push_back({100, 200});
  plan.relay_outages.push_back({500, 600});
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.relay_down(99));
  EXPECT_TRUE(injector.relay_down(100));
  EXPECT_TRUE(injector.relay_down(199));
  EXPECT_FALSE(injector.relay_down(200));  // half-open
  EXPECT_TRUE(injector.relay_down(550));
  EXPECT_FALSE(injector.relay_down(700));
}

// ---------------------------------------------------- composite scenarios

TEST(Scenario, ZeroSpecInjectsNothing) {
  FaultPlan plain = churn_plan(13);
  FaultPlan with_spec = plain;
  // Inactive entries only: zero regions, empty window, multiplier 1.
  with_spec.scenario.regional_outages.push_back({0, 0, 100, 200, 1.0});
  with_spec.scenario.flash_crowds.push_back({100, 200, 1.0});
  with_spec.scenario.churn_bursts.push_back({100, 100, 0.5, 1.0});
  EXPECT_TRUE(with_spec.scenario.zero());

  FaultInjector a(plain), b(with_spec);
  for (std::size_t node = 0; node < 4; ++node) {
    const auto sa = a.sessions(node, two_windows(), 10);
    const auto sb = b.sessions(node, two_windows(), 10);
    EXPECT_EQ(std::vector<Interval>(sa.begin(), sa.end()),
              std::vector<Interval>(sb.begin(), sb.end()))
        << "node " << node;
  }
  EXPECT_EQ(b.stats().scenario_windows, 0u);
}

TEST(Scenario, NonZeroSpecMakesThePlanNonZero) {
  FaultPlan plan;
  EXPECT_TRUE(plan.zero());
  plan.scenario.churn_bursts.push_back({0, kDaySeconds, 0.5, 1.0});
  EXPECT_FALSE(plan.zero());
}

TEST(Scenario, RegionalOutageHitsOnlyItsRegion) {
  FaultPlan plan;
  plan.seed = 31;
  plan.scenario.regional_outages.push_back(
      {2, 0, 1 * kDaySeconds, 3 * kDaySeconds, 1.0});

  FaultInjector injector(plan);
  FaultInjector clean{FaultPlan{}};
  for (std::size_t node = 0; node < 4; ++node) {
    const auto faulted = as_set(injector.sessions(node, two_windows(), 5));
    const auto ideal = as_set(clean.sessions(node, two_windows(), 5));
    if (node % 2 == 0) {
      // Participation 1: the outage window is carved out exactly.
      const auto expected = ideal.subtract(
          IntervalSet::single(1 * kDaySeconds, 3 * kDaySeconds));
      EXPECT_EQ(faulted, expected) << "node " << node;
    } else {
      EXPECT_EQ(faulted, ideal) << "node " << node;
    }
  }
  EXPECT_EQ(injector.stats().scenario_windows, 2u);
}

TEST(Scenario, ChurnBurstDropsWholeDaysDeterministically) {
  FaultPlan plan;
  plan.seed = 77;
  plan.scenario.churn_bursts.push_back(
      {1 * kDaySeconds, 3 * kDaySeconds, 1.0, 1.0});

  FaultInjector injector(plan);
  FaultInjector clean{FaultPlan{}};
  const auto faulted = as_set(injector.sessions(0, two_windows(), 5));
  const auto ideal = as_set(clean.sessions(0, two_windows(), 5));
  // no_show 1, participation 1: days 1 and 2 vanish, the rest survive.
  const auto expected = ideal.subtract(
      IntervalSet::single(1 * kDaySeconds, 3 * kDaySeconds));
  EXPECT_EQ(faulted, expected);

  // Same plan, same node: bit-identical on re-realization.
  FaultInjector again(plan);
  EXPECT_EQ(as_set(again.sessions(0, two_windows(), 5)), faulted);
}

TEST(Scenario, ScaledRealizationsNestExactly) {
  FaultPlan plan;
  plan.seed = 91;
  plan.scenario.regional_outages.push_back(
      {2, 1, 0, 4 * kDaySeconds, 0.8});
  plan.scenario.churn_bursts.push_back(
      {2 * kDaySeconds, 6 * kDaySeconds, 0.7, 0.9});

  IntervalSet prev;  // sessions at the previous (higher) intensity
  bool first = true;
  for (const double f : {1.0, 0.6, 0.3, 0.0}) {
    const FaultPlan cut = scaled(plan, f);
    EXPECT_EQ(cut.scenario.regional_outages.size(), 1u);
    EXPECT_EQ(cut.scenario.churn_bursts.size(), 1u);
    FaultInjector injector(cut);
    const auto online = as_set(injector.sessions(1, two_windows(), 8));
    if (!first) {
      // Lower intensity must be a superset: prev minus online is empty.
      EXPECT_TRUE(prev.subtract(online).pieces().empty()) << "f " << f;
    }
    prev = online;
    first = false;
  }
  // f = 0 equals the unfaulted sessions.
  FaultInjector clean{FaultPlan{}};
  EXPECT_EQ(prev, as_set(clean.sessions(1, two_windows(), 8)));
}

TEST(Scenario, ParserRoundTripsAndRejectsGarbage) {
  const ScenarioSpec spec = parse_scenario(
      "# composite scenario\n"
      "regional_outage regions=3 region=1 start=86400 end=259200 "
      "participation=0.75\n"
      "\n"
      "flash_crowd start=172800 end=345600 load_multiplier=4\n"
      "churn_burst start=345600 end=604800 no_show=0.5\n");
  ASSERT_EQ(spec.regional_outages.size(), 1u);
  EXPECT_EQ(spec.regional_outages[0].regions, 3u);
  EXPECT_EQ(spec.regional_outages[0].region, 1u);
  EXPECT_DOUBLE_EQ(spec.regional_outages[0].participation, 0.75);
  ASSERT_EQ(spec.flash_crowds.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.flash_crowds[0].load_multiplier, 4.0);
  ASSERT_EQ(spec.churn_bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.churn_bursts[0].participation, 1.0);  // default

  EXPECT_EQ(parse_scenario(to_text(spec)), spec);

  EXPECT_THROW(parse_scenario("meteor_strike start=0 end=1"), ParseError);
  EXPECT_THROW(parse_scenario("flash_crowd start=0 end=1"), ParseError);
  EXPECT_THROW(
      parse_scenario("flash_crowd start=0 end=1 load_multiplier=2 x=3"),
      ParseError);
  EXPECT_THROW(parse_scenario("churn_burst start=0 end=1 no_show"),
               ParseError);
}

TEST(FaultInjector, FlushStatsPublishesToObsAndResets) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  auto& counter =
      obs::Registry::global().counter("net.fault.sessions_skipped");
  const std::uint64_t before = counter.value();

  FaultPlan plan = churn_plan(21);
  plan.session_no_show = 0.9;
  FaultInjector injector(plan);
  injector.sessions(0, window(8, 12), 50);
  const std::uint64_t skipped = injector.stats().sessions_skipped;
  ASSERT_GT(skipped, 0u);
  injector.flush_stats();
  EXPECT_EQ(counter.value(), before + skipped);
  EXPECT_EQ(injector.stats().sessions_skipped, 0u);  // flushed and zeroed
  obs::set_enabled(was_enabled);
}

}  // namespace
}  // namespace dosn::net
